#!/usr/bin/env bash
# Tier-1 verify: configure, build, test. Standard pre-merge gate — run from
# anywhere; exits non-zero on the first failure.
#
#   scripts/check.sh                     # Release build into ./build
#   scripts/check.sh -DARBOR_WERROR=ON   # extra cmake args pass through
#   scripts/check.sh --tsan              # ThreadSanitizer smoke stage only:
#                                        # builds the 'tsan' preset and runs
#                                        # engine_test, level0_programs_test,
#                                        # level1_distributed_test, net_test,
#                                        # trace_test, check_test (overlapped
#                                        # deliver+compute AND pooled-context
#                                        # reuse must be provably race-free)
#   scripts/check.sh --mp                # multi-process smoke stage only:
#                                        # driver + 2 local arbor-worker
#                                        # processes over loopback TCP run
#                                        # the DeterminismMatrix programs,
#                                        # the distributed Level-1 sorts
#                                        # (level1_distributed_test) + the
#                                        # full net_test suite
#   scripts/check.sh --bench-smoke       # run every bench binary at tiny
#                                        # sizes to catch bench rot (argv
#                                        # drift, aborts, JSON emit)
#   scripts/check.sh --trace-smoke       # telemetry smoke stage only: run
#                                        # the multiprocess storm launcher
#                                        # under ARBOR_TRACE=full and
#                                        # validate the emitted Chrome
#                                        # trace with tools/trace-validate
#                                        # (valid JSON, driver + worker
#                                        # lanes, spans per phase)
#   scripts/check.sh --asan              # Address+UB sanitizer stage only:
#                                        # builds the 'asan' preset and runs
#                                        # the engine, net, trace, and
#                                        # checked-execution tests clean
#   scripts/check.sh --lint              # style wall only: build and run
#                                        # tools/arbor_lint over src/ (raw
#                                        # getenv, unnamed distributable
#                                        # steps, rand()/time(), registered
#                                        # programs without CostModels)
#   scripts/check.sh --report            # observatory stage only: run the
#                                        # storm launcher and the distributed
#                                        # Level-1 sort bench under
#                                        # ARBOR_TRACE=full, validate the
#                                        # bounds headroom in the RunReport
#                                        # logs, and diff them against the
#                                        # committed baselines/ documents
#                                        # with tools/arbor_report
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

if [[ "${1:-}" == "--mp" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"${JOBS}" --target arbor-worker engine_multiprocess \
    net_test level0_programs_test level1_distributed_test
  echo "== mp: storm launcher, driver + 2 workers over loopback TCP =="
  ./build/engine_multiprocess --transport tcp:2
  echo "== mp: DeterminismMatrix programs over tcp:2 (env override) =="
  ARBOR_TRANSPORT=tcp:2 ctest --test-dir build \
    -R 'DeterminismMatrix|RoundProgramReuse' --output-on-failure -j"${JOBS}"
  echo "== mp: distributed Level-1 sorts over tcp:2 (the context pools one"
  echo "       live 2-process worker group that every internal sort reuses;"
  echo "       DistributedSortPooling asserts zero respawns) =="
  ARBOR_TRANSPORT=tcp:2 ARBOR_DISTRIBUTED_LEVEL1=1 ctest --test-dir build \
    -R 'DistributedSort|DistributedAggregate|DistributedCount|PipelineEquivalence' \
    --output-on-failure -j"${JOBS}"
  echo "== mp: net_test (wire fuzz, transport matrix, failure handling) =="
  ctest --test-dir build \
    -R 'WireFormat|EnvOverrides|TransportDeterminismMatrix|MultiProcessBackend|FailureHandling' \
    --output-on-failure -j"${JOBS}"
  echo "== mp: clean =="
  exit 0
fi

if [[ "${1:-}" == "--bench-smoke" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"${JOBS}" --target arbor-worker
  # Build every bench binary. A compile failure FAILS the stage — catching
  # bench rot is the point. Only bench_kernels may be absent (it needs
  # Google Benchmark; cmake skips configuring it), and only when cmake
  # really did not configure it.
  for src in bench/bench_*.cpp; do
    name="$(basename "${src}" .cpp)"
    if [[ "${name}" == "bench_kernels" ]] && \
       ! cmake --build build --target help 2>/dev/null | \
         grep -q "^\.\.\. ${name}$"; then
      echo "== bench-smoke: skipping ${name} (target not configured) =="
      continue
    fi
    cmake --build build -j"${JOBS}" --target "${name}"
    [[ -x "build/${name}" ]] || { echo "missing build/${name}"; exit 1; }
    # Tiny sizes for the parameterized benches; the rest run their fixed
    # (small) built-in workloads. JSON goes to a scratch dir so the smoke
    # never clobbers committed BENCH_*.json trajectories.
    smoke_dir="build/bench-smoke"
    mkdir -p "${smoke_dir}"
    case "${name}" in
      bench_engine_scaling)
        args=(4096 16384 3 --json "${smoke_dir}/${name}.json") ;;
      bench_level1_sort)
        args=(20000 512 1 --json "${smoke_dir}/${name}.json") ;;
      bench_kernels)
        args=(--benchmark_min_time=0.01) ;;
      *)
        args=() ;;
    esac
    echo "== bench-smoke: ${name} ${args[*]:-} =="
    # ${args[@]+...} (not :-) so an empty array expands to ZERO arguments,
    # never a single "" positional that strtoull would read as 0.
    "./build/${name}" ${args[@]+"${args[@]}"} > "${smoke_dir}/${name}.out" || {
      echo "bench-smoke: ${name} FAILED; last lines:"
      tail -20 "${smoke_dir}/${name}.out"
      exit 1
    }
    if [[ "${name}" == "bench_level1_sort" ]]; then
      # Route-aggregation A/B: run the sort bench with the knob forced each
      # way (strict-parsed — a typo here fails loudly instead of silently
      # benching the wrong path), so both the bulk span route and the
      # per-record fallback stay exercised end to end.
      for agg in on off; do
        echo "== bench-smoke: ${name} (ARBOR_ROUTE_AGGREGATION=${agg}) =="
        ARBOR_ROUTE_AGGREGATION="${agg}" "./build/${name}" 20000 512 1 \
          --json "${smoke_dir}/${name}.agg-${agg}.json" \
          > "${smoke_dir}/${name}.agg-${agg}.out" || {
          echo "bench-smoke: ${name} (agg=${agg}) FAILED; last lines:"
          tail -20 "${smoke_dir}/${name}.agg-${agg}.out"
          exit 1
        }
      done
      # Merge-path A/B: both the k-way merge of sorted inbox runs and the
      # wholesale re-sort baseline stay exercised end to end (the bench
      # itself aborts if either path's output disagrees with central).
      for merge in on off; do
        echo "== bench-smoke: ${name} (ARBOR_MERGE_PATH=${merge}) =="
        ARBOR_MERGE_PATH="${merge}" "./build/${name}" 20000 512 1 \
          --json "${smoke_dir}/${name}.merge-${merge}.json" \
          > "${smoke_dir}/${name}.merge-${merge}.out" || {
          echo "bench-smoke: ${name} (merge=${merge}) FAILED; last lines:"
          tail -20 "${smoke_dir}/${name}.merge-${merge}.out"
          exit 1
        }
      done
    fi
  done
  echo "== bench-smoke: clean =="
  exit 0
fi

if [[ "${1:-}" == "--trace-smoke" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"${JOBS}" \
    --target arbor-worker engine_multiprocess trace-validate trace_test
  smoke_dir="build/trace-smoke"
  mkdir -p "${smoke_dir}"
  trace_json="${smoke_dir}/engine_multiprocess.json"
  echo "== trace-smoke: storm over tcp:2 with ARBOR_TRACE=full =="
  ARBOR_TRACE="full:${trace_json}" \
    ./build/engine_multiprocess --transport tcp:2
  [[ -f "${trace_json}" ]] || { echo "no trace written at ${trace_json}"; exit 1; }
  echo "== trace-smoke: validating ${trace_json} =="
  ./build/trace-validate "${trace_json}" --min-events 10 --expect-pids 3 \
    --expect "driver,worker 0,worker 1,compute,serialize,deliver" \
    --metrics "round_us"
  echo "== trace-smoke: trace_test (perturbation matrix + telemetry) =="
  ctest --test-dir build -R 'Trace|Metrics|Percentile' \
    --output-on-failure -j"${JOBS}"
  echo "== trace-smoke: clean =="
  exit 0
fi

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake --preset tsan "$@"
  cmake --build build-tsan -j"${JOBS}" \
    --target engine_test level0_programs_test level1_distributed_test \
             net_test trace_test check_test arbor-worker
  echo "== tsan: engine_test =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/engine_test
  echo "== tsan: level0_programs_test (DeterminismMatrix's parallel(4)"
  echo "         rows drive the worker-staged zero-copy direct scatter:"
  echo "         concurrent per-destination span staging must be race-free) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/level0_programs_test
  echo "== tsan: level1_distributed_test (pooled-context reuse: live"
  echo "         worker groups + retained arenas across repeated sorts"
  echo "         must be race-free) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/level1_distributed_test
  echo "== tsan: net_test (loopback transport threads + tcp groups) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/net_test
  echo "== tsan: trace_test (traced programs: per-thread span buffers and"
  echo "         the shared metrics registry must be provably race-free) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/trace_test
  echo "== tsan: check_test (checked-mode programs: the Monitor's"
  echo "         owned_span gate and loopback monitors must be race-free) =="
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/check_test
  echo "== tsan: clean =="
  exit 0
fi

if [[ "${1:-}" == "--asan" ]]; then
  shift
  cmake --preset asan "$@"
  cmake --build build-asan -j"${JOBS}" \
    --target engine_test net_test trace_test check_test arbor-worker
  # abort_on_error so a worker PROCESS dying on a report fails the driver
  # visibly; detect_leaks stays on (the default) — the wall is the point.
  for t in engine_test net_test trace_test check_test; do
    echo "== asan: ${t} =="
    ASAN_OPTIONS="abort_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
      "./build-asan/${t}"
  done
  echo "== asan: clean =="
  exit 0
fi

if [[ "${1:-}" == "--report" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"${JOBS}" --target arbor-worker engine_multiprocess \
    bench_level1_sort arbor_report trace-validate
  report_dir="build/report"
  mkdir -p "${report_dir}"

  echo "== report: storm over loopback:2 + tcp:2 under ARBOR_TRACE=full =="
  storm_trace="${report_dir}/storm_trace.json"
  storm_report="${report_dir}/report_storm.json"
  ARBOR_TRACE="full:${storm_trace}" \
    ./build/engine_multiprocess --report "${storm_report}"
  ./build/trace-validate "${storm_trace}" --min-events 10 --expect-pids 3 \
    --metrics "round_us,cluster.rounds.net.storm.scatter"

  echo "== report: distributed Level-1 sort bench under ARBOR_TRACE=full =="
  sort_report="${report_dir}/report_level1_sort.json"
  ARBOR_DISTRIBUTED_LEVEL1=1 ARBOR_TRACE=full \
    ./build/bench_level1_sort 20000 512 1 \
    --json "${report_dir}/BENCH_level1_sort.json" --report "${sort_report}" \
    > "${report_dir}/bench_level1_sort.out" || {
    echo "report: bench_level1_sort FAILED; last lines:"
    tail -20 "${report_dir}/bench_level1_sort.out"
    exit 1
  }

  echo "== report: rendering ${storm_report} =="
  ./build/arbor_report show "${storm_report}"
  echo "== report: rendering ${sort_report} =="
  ./build/arbor_report show "${sort_report}"

  echo "== report: regression gate vs. committed baselines/ =="
  ./build/arbor_report diff baselines/report_storm.json "${storm_report}" \
    --threshold 0.10
  ./build/arbor_report diff baselines/report_level1_sort.json \
    "${sort_report}" --threshold 0.10
  echo "== report: clean =="
  exit 0
fi

if [[ "${1:-}" == "--lint" ]]; then
  shift
  cmake -B build -S . "$@"
  cmake --build build -j"${JOBS}" --target arbor_lint
  echo "== lint: arbor_lint over src/ =="
  ./build/arbor_lint src
  echo "== lint: clean =="
  exit 0
fi

cmake -B build -S . "$@"
cmake --build build -j"${JOBS}"

# Tier-1 runs twice: once on the central Level-1 reference path, once with
# the engine-backed distributed Level-1 primitives. The two are
# bit-identical by design, so the whole suite must pass under both.
echo "== tier-1: distributed Level-1 OFF (central reference path) =="
ARBOR_DISTRIBUTED_LEVEL1=0 ctest --test-dir build --output-on-failure -j"${JOBS}"
echo "== tier-1: distributed Level-1 ON (engine-backed sample sort) =="
ARBOR_DISTRIBUTED_LEVEL1=1 ctest --test-dir build --output-on-failure -j"${JOBS}"
