#!/usr/bin/env bash
# Tier-1 verify: configure, build, test. Standard pre-merge gate — run from
# anywhere; exits non-zero on the first failure.
#
#   scripts/check.sh                 # Release build into ./build
#   scripts/check.sh -DARBOR_WERROR=ON   # extra cmake args pass through
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . "$@"
cmake --build build -j"${JOBS}"

# Tier-1 runs twice: once on the central Level-1 reference path, once with
# the engine-backed distributed Level-1 primitives. The two are
# bit-identical by design, so the whole suite must pass under both.
echo "== tier-1: distributed Level-1 OFF (central reference path) =="
ARBOR_DISTRIBUTED_LEVEL1=0 ctest --test-dir build --output-on-failure -j"${JOBS}"
echo "== tier-1: distributed Level-1 ON (engine-backed sample sort) =="
ARBOR_DISTRIBUTED_LEVEL1=1 ctest --test-dir build --output-on-failure -j"${JOBS}"
