#!/usr/bin/env bash
# Tier-1 verify: configure, build, test. Standard pre-merge gate — run from
# anywhere; exits non-zero on the first failure.
#
#   scripts/check.sh                 # Release build into ./build
#   scripts/check.sh -DARBOR_WERROR=ON   # extra cmake args pass through
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . "$@"
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"
