// The Lemma 4.1 primitive: every node u holds an information bundle B_u and
// a request list L_u of nodes whose bundles it wants; deliver all bundles in
// O(1) MPC rounds.
//
// The paper's implementation (proof sketch of Lemma 4.1) is:
//  1. one sort to compute k_v = #requesters of each v,
//  2. broadcast trees of fan-out n^{δ/2} to make k_v copies of B_v,
//  3. one sort + rank matching to route copy i of B_v to its requester.
// We execute those semantics and charge exactly that round breakdown. The
// graph-exponentiation steps of Algorithm 2 and the directed exponentiation
// of the coloring algorithm are both expressed as bundle fetches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "mpc/primitives.hpp"

namespace arbor::net {
class Registry;
}

namespace arbor::mpc {

struct BundleFetchStats {
  std::size_t rounds_charged = 0;
  std::size_t total_delivered_words = 0;  ///< Lemma 4.1 condition (B) gauge
  std::size_t max_request_list = 0;       ///< Lemma 4.1 condition (A) gauge
  std::size_t max_bundle_words = 0;
  std::size_t max_requester_words = 0;  ///< largest per-machine delivery
  std::size_t max_copies = 0;           ///< largest k_v
};

/// `bundles[v]` is vertex v's bundle; `requests[u]` the list L_u.
/// Returns, for each requester u, the bundles aligned with requests[u].
/// Records footprints with the context's ledger; the stats let callers
/// assert the lemma's preconditions at their chosen budgets.
struct BundleFetchResult {
  std::vector<std::vector<std::vector<Word>>> delivered;
  BundleFetchStats stats;
};

BundleFetchResult fetch_bundles(
    MpcContext& ctx, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests,
    const std::string& label);

/// The executable Level-0 counterpart of fetch_bundles: the same
/// request/serve dataflow run as a real RoundProgram on `cluster`, under
/// its per-machine traffic caps. Bundle owners and requesters are
/// block-assigned to machines (vertex v lives on machine v / ceil(n/M));
/// three rounds: route requests to owners, serve the bundle copies back,
/// and a compute-only assembly round in which every requester machine
/// slots the copies into request order. `delivered` is bit-identical to
/// fetch_bundles' — tests/level0_programs_test.cpp locks the equivalence —
/// so the analytic charge is grounded by a program the scheduler can
/// pipeline.
struct Level0BundleFetchResult {
  std::vector<std::vector<std::vector<Word>>> delivered;
  std::size_t rounds = 0;
};

Level0BundleFetchResult fetch_bundles_program(
    Cluster& cluster, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests);

/// Worker-side factory ("mpc.fetch_bundles") for the multi-process
/// backend (net::Registry::builtin() calls this).
void register_bundle_fetch_program(net::Registry& registry);

}  // namespace arbor::mpc
