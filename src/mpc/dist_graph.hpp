// A Graph distributed across the cluster's machines.
//
// Vertices are assigned to machines by hash; each machine stores the
// adjacency lists of its vertices (so an edge occupies one word at each
// endpoint's machine, as in the standard MPC input format). Construction
// records the storage footprint with the ledger so that every algorithm's
// accounting starts from the true input layout.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::mpc {

class DistributedGraph {
 public:
  /// Distribute `g` over the machines of `ctx`. Charges one input-shuffle
  /// round and notes the per-machine/global storage footprint.
  DistributedGraph(const graph::Graph& g, MpcContext& ctx);

  const graph::Graph& graph() const noexcept { return *graph_; }

  std::size_t machine_of(graph::VertexId v) const noexcept {
    return machine_of_[v];
  }

  /// Words of graph storage held by machine m (vertex record + adjacency).
  std::size_t storage_words(std::size_t machine) const {
    return storage_words_.at(machine);
  }

  std::size_t max_storage_words() const noexcept { return max_storage_; }
  std::size_t total_storage_words() const noexcept { return total_storage_; }

 private:
  const graph::Graph* graph_;
  std::vector<std::uint32_t> machine_of_;
  std::vector<std::size_t> storage_words_;
  std::size_t max_storage_ = 0;
  std::size_t total_storage_ = 0;
};

}  // namespace arbor::mpc
