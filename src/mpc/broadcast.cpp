#include "mpc/broadcast.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::mpc {

namespace {

/// Tree numbering with machine ids relabeled so `root` is node 0:
/// node x's children are x·fanout + 1 .. x·fanout + fanout.
std::size_t relabel(std::size_t machine, std::size_t root,
                    std::size_t machines) {
  return (machine + machines - root) % machines;
}
std::size_t unlabel(std::size_t node, std::size_t root,
                    std::size_t machines) {
  return (node + root) % machines;
}

/// Depth of the deepest node the tree needs to cover `machines` nodes —
/// the number of rounds both trees run for.
std::size_t tree_height(std::size_t machines, std::size_t fanout) {
  std::size_t height = 0;
  for (std::size_t reach = 1; reach < machines; reach = reach * fanout + 1)
    ++height;
  return height;
}

std::size_t depth_of(std::size_t node, std::size_t fanout) {
  std::size_t d = 0;
  while (node != 0) {
    node = (node - 1) / fanout;
    ++d;
  }
  return d;
}

}  // namespace

BroadcastResult broadcast_tree(Cluster& cluster, std::size_t root,
                               std::vector<Word> payload,
                               std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(root < machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  std::vector<std::vector<Word>> holds(machines);
  holds[root] = std::move(payload);
  // Per-machine flags written from inside the (concurrent) step — one
  // byte per machine, NOT vector<bool>: its packed bits are not disjoint
  // objects, so concurrent writes to neighbouring machines' flags would be
  // a data race under a parallel policy.
  std::vector<char> has(machines, 0);
  has[root] = 1;

  // All nodes within depth d hold the payload after round d, so the tree
  // height is the exact round count — the program is declared up front as
  // height identical machine-independent steps. Each step touches only
  // machine-owned slots (has[m], holds[m]) and its own inbox: a machine
  // adopts the payload the moment its copy arrives, then fans it out to
  // its children, so the scheduler can overlap every delivery with the
  // next level's compute.
  const std::size_t height = tree_height(machines, fanout);
  if (height == 0) {  // single machine: the root already holds the payload
    BroadcastResult result;
    result.copies = std::move(holds);
    result.rounds = 0;
    return result;
  }

  RoundProgram program;
  for (std::size_t round = 0; round < height; ++round) {
    program.independent([&, round](std::size_t m, const InboxView& inbox,
                                   Sender& send) {
      // Adopt the payload delivered by the previous level. Round 0 must
      // not look at the inbox: it may still hold traffic from whatever the
      // cluster ran before this program.
      if (round > 0 && !has[m] && !inbox.empty()) {
        holds[m] = inbox.front();
        has[m] = 1;
      }
      if (!has[m]) return;
      const std::size_t node = relabel(m, root, machines);
      for (std::size_t c = 1; c <= fanout; ++c) {
        const std::size_t child = node * fanout + c;
        if (child >= machines) break;
        send.send(unlabel(child, root, machines), holds[m]);
      }
    });
  }
  cluster.run_program(program);

  // The deepest level receives in the final round; its copies sit in the
  // inboxes when the program returns (there is no later step to adopt
  // them), exactly like the imperative loop's post-round processing.
  for (std::size_t m = 0; m < machines; ++m) {
    if (has[m]) continue;
    const auto inbox = cluster.inbox(m);
    if (!inbox.empty()) {
      holds[m] = inbox.front();
      has[m] = 1;
    }
  }

  BroadcastResult result;
  result.copies = std::move(holds);
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

ConvergeResult converge_sum(Cluster& cluster, std::size_t root,
                            const std::vector<Word>& per_machine_value,
                            std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(per_machine_value.size() == machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  const std::size_t height = tree_height(machines, fanout);
  std::vector<Word> partial = per_machine_value;

  // Leaves first: a node at depth d sends its partial sum to its parent in
  // round (height - d), by which time all of its children — depth d+1,
  // sending one round earlier — have reported. Each step folds the inbox
  // into the machine's own partial sum and forwards it if this is the
  // machine's send round; partial[m] is machine-owned, so every step is
  // machine-independent and the levels pipeline under the async scheduler.
  RoundProgram program;
  for (std::size_t round = 0; round < height; ++round) {
    program.independent([&, round](std::size_t m, const InboxView& inbox,
                                   Sender& send) {
      // Children of this machine report in round (height - depth - 1);
      // fold their sums in one round later. Round 0 has no converge
      // traffic yet — only possibly stale messages from an earlier
      // program — so it must not touch the inbox.
      if (round > 0)
        for (const auto& msg : inbox)
          for (Word w : msg) partial[m] += w;
      const std::size_t node = relabel(m, root, machines);
      if (node == 0) return;
      if (depth_of(node, fanout) == height - round) {
        const std::size_t parent = (node - 1) / fanout;
        send.send(unlabel(parent, root, machines), {partial[m]});
      }
    });
  }
  if (height > 0) {
    cluster.run_program(program);
    // The depth-1 children report in the final round; their messages sit
    // in the root's inbox when the program returns.
    for (const auto& msg : cluster.inbox(root))
      for (Word w : msg) partial[root] += w;
  }

  ConvergeResult result;
  result.sum = partial[root];
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

}  // namespace arbor::mpc
