#include "mpc/broadcast.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "check/ownership.hpp"
#include "net/registry.hpp"
#include "obs/cost_model.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

namespace {

/// Tree numbering with machine ids relabeled so `root` is node 0:
/// node x's children are x·fanout + 1 .. x·fanout + fanout.
std::size_t relabel(std::size_t machine, std::size_t root,
                    std::size_t machines) {
  return (machine + machines - root) % machines;
}
std::size_t unlabel(std::size_t node, std::size_t root,
                    std::size_t machines) {
  return (node + root) % machines;
}

/// Depth of the deepest node the tree needs to cover `machines` nodes —
/// the number of rounds both trees run for.
std::size_t tree_height(std::size_t machines, std::size_t fanout) {
  std::size_t height = 0;
  for (std::size_t reach = 1; reach < machines; reach = reach * fanout + 1)
    ++height;
  return height;
}

std::size_t depth_of(std::size_t node, std::size_t fanout) {
  std::size_t d = 0;
  while (node != 0) {
    node = (node - 1) / fanout;
    ++d;
  }
  return d;
}

// Machine-local state of a broadcast; the same builder serves the
// driver's full-cluster run and a worker's block share. Per-machine flags
// are one byte per machine, NOT vector<bool>: its packed bits are not
// disjoint objects, so concurrent writes to neighbouring machines' flags
// would be a data race under a parallel policy.
struct BroadcastState {
  std::vector<std::vector<Word>> holds;
  std::vector<char> has;
  std::size_t machines = 0;
  std::size_t root = 0;
  std::size_t fanout = 0;
  /// Serve the fan-out payload copies through the engine's FetchCache
  /// (ClusterConfig::fetch_cache): a holder builds its outgoing copy once
  /// and every further child (this level and the next) reuses it. Message
  /// bytes are identical on or off.
  bool fetch_cache = true;
};

// All nodes within depth d hold the payload after round d, so the tree
// height is the exact round count — the program is declared up front as
// height identical machine-independent steps. Each step touches only
// machine-owned slots (has[m], holds[m]) and its own inbox: a machine
// adopts the payload the moment its copy arrives, then fans it out to
// its children, so the scheduler can overlap every delivery with the
// next level's compute.
engine::RoundProgram make_broadcast_program(
    std::shared_ptr<BroadcastState> st) {
  const std::size_t height = tree_height(st->machines, st->fanout);
  engine::RoundProgram program;
  for (std::size_t round = 0; round < height; ++round) {
    program.independent("broadcast.tree.level", [st, round](
                                                    std::size_t m,
                                                    const InboxView& inbox,
                                                    Sender& send) {
      // Adopt the payload delivered by the previous level. Round 0 must
      // not look at the inbox: it may still hold traffic from whatever the
      // cluster ran before this program.
      if (round > 0 && !st->has[m] && !inbox.empty()) {
        st->holds[m] = inbox.front();
        st->has[m] = 1;
      }
      if (!st->has[m]) return;
      const std::size_t node = relabel(m, st->root, st->machines);
      for (std::size_t c = 1; c <= st->fanout; ++c) {
        const std::size_t child = node * st->fanout + c;
        if (child >= st->machines) break;
        // Epoch 0 forever: holds[m] is written exactly once (adoption,
        // above) and a machine only fans out AFTER that write, so the
        // payload is immutable for the life of every cache entry.
        send.send_fetched(unlabel(child, st->root, st->machines), /*key=*/0,
                          /*epoch=*/0, [st, m](std::vector<Word>& out) {
                            out.insert(out.end(), st->holds[m].begin(),
                                       st->holds[m].end());
                          });
      }
    });
  }
  auto own = std::make_shared<check::Ownership>();
  own->slabs("holds", &st->holds).elems("has", &st->has).keep_alive(st);
  program.owned(std::move(own));
  program.cached_fetches(st->fetch_cache);

  // Per level, a holder fans at most `fanout` payload copies out and every
  // node hears from its single parent — fanout·|payload| words per machine
  // per round, for exactly `height` rounds. (Worker blocks that do not
  // contain the root see an empty holds[root]; the bound audit is
  // driver-side, where the payload is always present.)
  const std::size_t payload = st->holds[st->root].size();
  auto cost = std::make_shared<obs::CostModel>("mpc.broadcast_tree");
  cost->bound("broadcast.tree.level", st->fanout * payload, height,
              "fanout*|payload| per level, height = ceil(log_fanout p) "
              "levels");
  program.costed(std::move(cost));
  return program;
}

struct ConvergeState {
  std::vector<Word> partial;
  std::size_t machines = 0;
  std::size_t root = 0;
  std::size_t fanout = 0;
};

// Leaves first: a node at depth d sends its partial sum to its parent in
// round (height - d), by which time all of its children — depth d+1,
// sending one round earlier — have reported. Each step folds the inbox
// into the machine's own partial sum and forwards it if this is the
// machine's send round; partial[m] is machine-owned, so every step is
// machine-independent and the levels pipeline under the async scheduler.
engine::RoundProgram make_converge_program(std::shared_ptr<ConvergeState> st) {
  const std::size_t height = tree_height(st->machines, st->fanout);
  engine::RoundProgram program;
  for (std::size_t round = 0; round < height; ++round) {
    program.independent("converge.tree.level", [st, round, height](
                                                   std::size_t m,
                                                   const InboxView& inbox,
                                                   Sender& send) {
      // Children of this machine report in round (height - depth - 1);
      // fold their sums in one round later. Round 0 has no converge
      // traffic yet — only possibly stale messages from an earlier
      // program — so it must not touch the inbox.
      if (round > 0)
        for (const auto& msg : inbox)
          for (Word w : msg) st->partial[m] += w;
      const std::size_t node = relabel(m, st->root, st->machines);
      if (node == 0) return;
      if (depth_of(node, st->fanout) == height - round) {
        const std::size_t parent = (node - 1) / st->fanout;
        send.send(unlabel(parent, st->root, st->machines), {st->partial[m]});
      }
    });
  }
  auto own = std::make_shared<check::Ownership>();
  own->elems("partial", &st->partial).keep_alive(st);
  program.owned(std::move(own));

  // Per level, a node sends one single-word partial and a parent hears
  // from at most `fanout` children — fanout words per machine per round,
  // for exactly `height` rounds.
  auto cost = std::make_shared<obs::CostModel>("mpc.converge_sum");
  cost->bound("converge.tree.level", st->fanout, height,
              "fanout one-word partials per level, height = "
              "ceil(log_fanout p) levels");
  program.costed(std::move(cost));
  return program;
}

}  // namespace

BroadcastResult broadcast_tree(Cluster& cluster, std::size_t root,
                               std::vector<Word> payload,
                               std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(root < machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  auto st = std::make_shared<BroadcastState>();
  st->machines = machines;
  st->root = root;
  st->fanout = fanout;
  st->fetch_cache = cluster.config().fetch_cache;
  st->holds.resize(machines);
  st->holds[root] = std::move(payload);
  st->has.assign(machines, 0);
  st->has[root] = 1;

  const std::size_t height = tree_height(machines, fanout);
  if (height == 0) {  // single machine: the root already holds the payload
    BroadcastResult result;
    result.copies = std::move(st->holds);
    result.rounds = 0;
    return result;
  }

  engine::RoundProgram program = make_broadcast_program(st);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.broadcast_tree";
    spec.scalars = {static_cast<Word>(root), static_cast<Word>(fanout),
                    static_cast<Word>(st->fetch_cache ? 1 : 0)};
    spec.inputs.resize(machines);
    spec.inputs[root] = st->holds[root];
    spec.has_output = true;
    // Output slab per machine: [has, payload words...]; the sink restores
    // the worker-side adoptions the in-process steps would have written.
    spec.output_sink = [st](std::size_t m, std::span<const Word> slab) {
      ARBOR_CHECK(!slab.empty());
      st->has[m] = slab[0] != 0 ? 1 : 0;
      st->holds[m].assign(slab.begin() + 1, slab.end());
    };
    program.distributable(std::move(spec));
  }
  cluster.run_program(program);

  // The deepest level receives in the final round; its copies sit in the
  // inboxes when the program returns (there is no later step to adopt
  // them), exactly like the imperative loop's post-round processing.
  for (std::size_t m = 0; m < machines; ++m) {
    if (st->has[m]) continue;
    const auto inbox = cluster.inbox(m);
    if (!inbox.empty()) {
      st->holds[m] = inbox.front();
      st->has[m] = 1;
    }
  }

  BroadcastResult result;
  result.copies = std::move(st->holds);
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

ConvergeResult converge_sum(Cluster& cluster, std::size_t root,
                            const std::vector<Word>& per_machine_value,
                            std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(per_machine_value.size() == machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  const std::size_t height = tree_height(machines, fanout);
  auto st = std::make_shared<ConvergeState>();
  st->machines = machines;
  st->root = root;
  st->fanout = fanout;
  st->partial = per_machine_value;

  if (height > 0) {
    engine::RoundProgram program = make_converge_program(st);
    if (cluster.distributed()) {
      engine::RemoteSpec spec;
      spec.name = "mpc.converge_sum";
      spec.scalars = {static_cast<Word>(root), static_cast<Word>(fanout)};
      spec.inputs.resize(machines);
      for (std::size_t m = 0; m < machines; ++m)
        spec.inputs[m] = {per_machine_value[m]};
      spec.has_output = true;
      spec.output_sink = [st](std::size_t m, std::span<const Word> slab) {
        ARBOR_CHECK(slab.size() == 1);
        st->partial[m] = slab[0];
      };
      program.distributable(std::move(spec));
    }
    cluster.run_program(program);
    // The depth-1 children report in the final round; their messages sit
    // in the root's inbox when the program returns.
    for (const auto& msg : cluster.inbox(root))
      for (Word w : msg) st->partial[root] += w;
  }

  ConvergeResult result;
  result.sum = st->partial[root];
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

void register_broadcast_programs(net::Registry& registry) {
  registry.add("mpc.broadcast_tree", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 3,
                    "mpc.broadcast_tree expects 3 scalars");
    auto st = std::make_shared<BroadcastState>();
    st->machines = in.machines;
    st->root = static_cast<std::size_t>(in.scalars[0]);
    st->fanout = static_cast<std::size_t>(in.scalars[1]);
    st->fetch_cache = in.scalars[2] != 0;
    ARBOR_CHECK(st->root < st->machines && st->fanout >= 2);
    st->holds.resize(in.machines);
    st->has.assign(in.machines, 0);
    if (st->root >= in.block_begin && st->root < in.block_end) {
      st->holds[st->root] = in.inputs[st->root - in.block_begin];
      st->has[st->root] = 1;
    }
    net::WorkerProgram out;
    out.program = make_broadcast_program(st);
    out.state = st;
    out.output = [st](std::size_t m) {
      std::vector<Word> slab{st->has[m] ? Word{1} : Word{0}};
      slab.insert(slab.end(), st->holds[m].begin(), st->holds[m].end());
      return slab;
    };
    return out;
  });

  registry.add("mpc.converge_sum", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 2,
                    "mpc.converge_sum expects 2 scalars");
    auto st = std::make_shared<ConvergeState>();
    st->machines = in.machines;
    st->root = static_cast<std::size_t>(in.scalars[0]);
    st->fanout = static_cast<std::size_t>(in.scalars[1]);
    ARBOR_CHECK(st->root < st->machines && st->fanout >= 2);
    st->partial.assign(in.machines, 0);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m) {
      const std::vector<Word>& input = in.inputs[m - in.block_begin];
      ARBOR_CHECK_MSG(input.size() == 1,
                      "mpc.converge_sum expects one word per machine");
      st->partial[m] = input[0];
    }
    net::WorkerProgram out;
    out.program = make_converge_program(st);
    out.state = st;
    out.output = [st](std::size_t m) {
      return std::vector<Word>{st->partial[m]};
    };
    return out;
  });
}

}  // namespace arbor::mpc
