#include "mpc/broadcast.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::mpc {

namespace {

/// Tree numbering with machine ids relabeled so `root` is node 0:
/// node x's children are x·fanout + 1 .. x·fanout + fanout.
std::size_t relabel(std::size_t machine, std::size_t root,
                    std::size_t machines) {
  return (machine + machines - root) % machines;
}
std::size_t unlabel(std::size_t node, std::size_t root,
                    std::size_t machines) {
  return (node + root) % machines;
}

}  // namespace

BroadcastResult broadcast_tree(Cluster& cluster, std::size_t root,
                               std::vector<Word> payload,
                               std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(root < machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  std::vector<std::vector<Word>> holds(machines);
  holds[root] = std::move(payload);
  std::vector<bool> has(machines, false);
  has[root] = true;

  while (!std::all_of(has.begin(), has.end(), [](bool b) { return b; })) {
    cluster.run_round([&](std::size_t m, const auto&, Sender& send) {
      if (!has[m]) return;
      const std::size_t node = relabel(m, root, machines);
      for (std::size_t c = 1; c <= fanout; ++c) {
        const std::size_t child = node * fanout + c;
        if (child >= machines) break;
        send.send(unlabel(child, root, machines), holds[m]);
      }
    });
    for (std::size_t m = 0; m < machines; ++m) {
      if (has[m]) continue;
      const auto& inbox = cluster.inbox(m);
      if (!inbox.empty()) {
        holds[m] = inbox.front();
        has[m] = true;
      }
    }
  }

  BroadcastResult result;
  result.copies = std::move(holds);
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

ConvergeResult converge_sum(Cluster& cluster, std::size_t root,
                            const std::vector<Word>& per_machine_value,
                            std::size_t fanout) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(per_machine_value.size() == machines);
  ARBOR_CHECK(fanout >= 2);
  const std::size_t start = cluster.rounds_executed();

  // Height of the fanout-ary tree.
  std::size_t height = 0;
  for (std::size_t reach = 1; reach < machines; reach = reach * fanout + 1)
    ++height;

  std::vector<Word> partial = per_machine_value;
  std::vector<bool> sent(machines, false);

  // Leaves first: a node at depth d sends its partial sum to its parent in
  // round (height - d). A node sends once all its children have reported.
  const auto depth_of = [&](std::size_t node) {
    std::size_t d = 0;
    while (node != 0) {
      node = (node - 1) / fanout;
      ++d;
    }
    return d;
  };

  for (std::size_t round = 0; round < height; ++round) {
    cluster.run_round([&](std::size_t m, const auto&, Sender& send) {
      const std::size_t node = relabel(m, root, machines);
      if (node == 0 || sent[m]) return;
      // Send in the round matching the node's height from the deepest
      // level: all children (deeper nodes) have already reported.
      if (depth_of(node) == height - round) {
        const std::size_t parent = (node - 1) / fanout;
        send.send(unlabel(parent, root, machines), {partial[m]});
      }
    });
    for (std::size_t m = 0; m < machines; ++m) {
      const std::size_t node = relabel(m, root, machines);
      if (node != 0 && depth_of(node) == height - round) sent[m] = true;
      for (const auto& msg : cluster.inbox(m))
        for (Word w : msg) partial[m] += w;
    }
  }

  ConvergeResult result;
  result.sum = partial[root];
  result.rounds = cluster.rounds_executed() - start;
  return result;
}

}  // namespace arbor::mpc
