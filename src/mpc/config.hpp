// Cluster shape for the strongly-sublinear ("scalable") MPC regime.
//
// The model (paper §1.1): M machines, S words of memory each, S ≤ n^δ for a
// constant δ ∈ (0,1); per round a machine sends/receives at most S words;
// global memory M·S must be Ω(m+n) and the algorithms promise Õ(m+n).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "engine/execution_policy.hpp"
#include "engine/types.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

/// One machine word = O(log n) bits: enough for a vertex id, an edge
/// endpoint pair member, or a layer/color value.
using Word = engine::Word;

using engine::ExecutionPolicy;

/// How a cluster's RoundPrograms physically execute: inside this process
/// (the engine's scheduler), or partitioned across worker runtimes behind
/// the src/net/ transport. Purely a deployment knob — the simulated model
/// (machines, caps, rounds) and every program's inboxes, fingerprints, and
/// ledger totals are identical across kinds (tests/net_test.cpp).
struct TransportConfig {
  enum class Kind : std::uint8_t {
    kInProcess,  ///< engine scheduler in this address space (default)
    kLoopback,   ///< worker runtimes as in-process threads over in-memory
                 ///< channels — the transport stack without sockets
    kTcp,        ///< arbor-worker OS processes over localhost TCP sockets
  };

  Kind kind = Kind::kInProcess;
  /// Worker runtimes the machine set is partitioned across (≥ 1);
  /// ignored in-process.
  std::size_t workers = 2;
  /// Thread-pool width for each worker's local compute phase.
  std::size_t worker_threads = 1;

  bool in_process() const noexcept { return kind == Kind::kInProcess; }

  static TransportConfig in_process_default() { return {}; }
  static TransportConfig loopback(std::size_t workers = 2) {
    return {Kind::kLoopback, workers, 1};
  }
  static TransportConfig tcp(std::size_t workers = 2) {
    return {Kind::kTcp, workers, 1};
  }

  friend bool operator==(const TransportConfig&,
                         const TransportConfig&) = default;
};

/// Strict boolean flag parsing shared by the ARBOR_* environment
/// overrides: exactly "1"/"on"/"true"/"yes" enable, "0"/"off"/"false"/"no"
/// disable, anything else throws an InvariantError naming the variable and
/// the offending value — a typo like ARBOR_DISTRIBUTED_LEVEL1=ture must
/// fail the run, not silently pick a default.
bool parse_bool_flag(std::string_view value, std::string_view what);

/// Strict TransportConfig parsing for the ARBOR_TRANSPORT override:
/// "inprocess" | "loopback[:W]" | "tcp[:W]" with W ≥ 1 workers (default
/// 2). Unknown kinds or malformed worker counts throw, naming the value.
TransportConfig parse_transport_flag(std::string_view value,
                                     std::string_view what);

/// Process-wide default for ClusterConfig::distributed_level1, read once
/// from the ARBOR_DISTRIBUTED_LEVEL1 environment variable (strict boolean,
/// see parse_bool_flag). Lets scripts/check.sh run the whole tier-1 suite
/// on both the central and the distributed Level-1 path without touching
/// every test's config literal.
bool distributed_level1_env_default();

/// Process-wide default for ClusterConfig::transport, read once from the
/// ARBOR_TRANSPORT environment variable (strict, see parse_transport_flag).
/// Lets scripts/check.sh --mp run program suites over the multi-process
/// backend without touching every test's config literal.
TransportConfig transport_env_default();

/// Process-wide default for ClusterConfig::route_aggregation, read once
/// from the ARBOR_ROUTE_AGGREGATION environment variable (strict boolean,
/// see parse_bool_flag). Default ON; scripts/check.sh --bench-smoke runs
/// the sort bench with the knob toggled both ways so the per-record
/// fallback path stays exercised.
bool route_aggregation_env_default();

/// Process-wide default for ClusterConfig::merge_path, read once from the
/// ARBOR_MERGE_PATH environment variable (strict boolean, see
/// parse_bool_flag). Default ON; scripts/check.sh --bench-smoke runs the
/// sort bench with the knob toggled both ways so the re-sort baseline
/// stays exercised.
bool merge_path_env_default();

/// Process-wide default for ClusterConfig::fetch_cache, read once from the
/// ARBOR_FETCH_CACHE environment variable (strict boolean, see
/// parse_bool_flag). Default ON.
bool fetch_cache_env_default();

struct ClusterConfig {
  std::size_t num_machines = 0;
  std::size_t words_per_machine = 0;  ///< S

  /// How the Level-0 cluster executes rounds: the serial reference executor
  /// (default) or the thread-pool engine. Purely an execution knob — the
  /// simulated model (machines, caps, rounds) is identical either way.
  ExecutionPolicy execution{};

  /// Execute the Level-1 primitives (MpcContext::sort_items_by_key,
  /// aggregate_by_key, count_by_key) as real engine-backed record sorts on
  /// Level-0 clusters instead of the central reference implementation.
  /// Outputs and ledger charges are bit-identical either way
  /// (tests/level1_distributed_test.cpp), so serial/central vs.
  /// distributed can be diffed directly. Default off (or the
  /// ARBOR_DISTRIBUTED_LEVEL1 environment override).
  bool distributed_level1 = distributed_level1_env_default();

  /// Route the sample sorts' record-movement rounds through the bulk
  /// engine::send_records path: each machine radix-partitions its
  /// key-sorted slab against the splitter vector (one binary search per
  /// splitter, not per record) and ships every bucket as one contiguous
  /// arena span — one coalesced wire frame per (src,dst) on the net/
  /// transport. Off selects the per-record upper_bound + append-buffer
  /// route. Outputs, ledger totals, and traffic words are bit-identical
  /// either way (tests/level0_programs_test.cpp); this is a pure speed
  /// knob kept for A/B benches. Default on (or the ARBOR_ROUTE_AGGREGATION
  /// environment override).
  bool route_aggregation = route_aggregation_env_default();

  /// Replace the sort pipeline's concat-then-re-sort sites (relay/root/
  /// coordinator sample pools, the final bucket assembly) with the
  /// engine's stable k-way merge of the per-source sorted runs the inbox
  /// already delivers (engine::merge_sorted_runs). Ties resolve to the
  /// earliest source run, which is exactly what std::stable_sort of the
  /// concatenation preserved — outputs, fingerprints, and ledger totals
  /// are bit-identical either way (tests/level0_programs_test.cpp); this
  /// is a pure speed knob kept for A/B benches. Default on (or the
  /// ARBOR_MERGE_PATH environment override).
  bool merge_path = merge_path_env_default();

  /// Serve repeated Sender::fetch()/send_fetched() payloads (peeling's
  /// neighbor splits, broadcast fan-out slabs) from the executor's
  /// per-run FetchCache instead of rebuilding them every pass
  /// (engine/fetch_cache.hpp). Message bytes and boundaries are identical
  /// with the cache on or off — a pure speed knob; checked execution
  /// verifies every hit against a rebuild. Default on (or the
  /// ARBOR_FETCH_CACHE environment override).
  bool fetch_cache = fetch_cache_env_default();

  /// Where this cluster's distributable RoundPrograms execute: in-process
  /// (default), or across worker runtimes behind the src/net/ transport
  /// (Cluster installs a net::MultiProcessBackend on its owned engine).
  /// Programs without a RemoteSpec always run in-process regardless.
  /// Default in-process (or the ARBOR_TRANSPORT environment override).
  TransportConfig transport = transport_env_default();

  /// Run tracing + metrics telemetry (src/trace/): off (default, or the
  /// strictly-parsed ARBOR_TRACE override), spans, or full. Constructing
  /// a Cluster raises the process-wide tracer to this mode and, over the
  /// loopback/tcp transport, turns on worker-side telemetry shipping.
  /// Purely observational: inbox fingerprints and ledger totals are
  /// bit-identical with tracing off or full (tests/trace_test.cpp).
  trace::TraceConfig trace = trace::trace_env_default();

  /// Derive a cluster for a graph problem of n vertices / m edges with
  /// local memory S = max(n^δ, min_words) and enough machines for
  /// `global_factor`·(n+m) words of global memory.
  static ClusterConfig for_problem(std::size_t n, std::size_t m, double delta,
                                   double global_factor = 8.0,
                                   std::size_t min_words = 256) {
    ARBOR_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ClusterConfig cfg;
    const double s = std::pow(static_cast<double>(std::max<std::size_t>(n, 2)),
                              delta);
    cfg.words_per_machine =
        std::max<std::size_t>(static_cast<std::size_t>(std::llround(s)),
                              min_words);
    const double global_words =
        global_factor * static_cast<double>(n + m + 1);
    cfg.num_machines = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(global_words /
                         static_cast<double>(cfg.words_per_machine))));
    return cfg;
  }

  std::size_t global_words() const noexcept {
    return num_machines * words_per_machine;
  }
};

}  // namespace arbor::mpc
