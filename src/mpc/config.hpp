// Cluster shape for the strongly-sublinear ("scalable") MPC regime.
//
// The model (paper §1.1): M machines, S words of memory each, S ≤ n^δ for a
// constant δ ∈ (0,1); per round a machine sends/receives at most S words;
// global memory M·S must be Ω(m+n) and the algorithms promise Õ(m+n).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "engine/execution_policy.hpp"
#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

/// One machine word = O(log n) bits: enough for a vertex id, an edge
/// endpoint pair member, or a layer/color value.
using Word = engine::Word;

using engine::ExecutionPolicy;

/// Process-wide default for ClusterConfig::distributed_level1, read once
/// from the ARBOR_DISTRIBUTED_LEVEL1 environment variable ("1"/"on"/
/// "true"/"yes" enable it). Lets scripts/check.sh run the whole tier-1
/// suite on both the central and the distributed Level-1 path without
/// touching every test's config literal.
bool distributed_level1_env_default();

struct ClusterConfig {
  std::size_t num_machines = 0;
  std::size_t words_per_machine = 0;  ///< S

  /// How the Level-0 cluster executes rounds: the serial reference executor
  /// (default) or the thread-pool engine. Purely an execution knob — the
  /// simulated model (machines, caps, rounds) is identical either way.
  ExecutionPolicy execution{};

  /// Execute the Level-1 primitives (MpcContext::sort_items_by_key,
  /// aggregate_by_key, count_by_key) as real engine-backed record sorts on
  /// Level-0 clusters instead of the central reference implementation.
  /// Outputs and ledger charges are bit-identical either way
  /// (tests/level1_distributed_test.cpp), so serial/central vs.
  /// distributed can be diffed directly. Default off (or the
  /// ARBOR_DISTRIBUTED_LEVEL1 environment override).
  bool distributed_level1 = distributed_level1_env_default();

  /// Derive a cluster for a graph problem of n vertices / m edges with
  /// local memory S = max(n^δ, min_words) and enough machines for
  /// `global_factor`·(n+m) words of global memory.
  static ClusterConfig for_problem(std::size_t n, std::size_t m, double delta,
                                   double global_factor = 8.0,
                                   std::size_t min_words = 256) {
    ARBOR_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ClusterConfig cfg;
    const double s = std::pow(static_cast<double>(std::max<std::size_t>(n, 2)),
                              delta);
    cfg.words_per_machine =
        std::max<std::size_t>(static_cast<std::size_t>(std::llround(s)),
                              min_words);
    const double global_words =
        global_factor * static_cast<double>(n + m + 1);
    cfg.num_machines = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(global_words /
                         static_cast<double>(cfg.words_per_machine))));
    return cfg;
  }

  std::size_t global_words() const noexcept {
    return num_machines * words_per_machine;
  }
};

}  // namespace arbor::mpc
