// Round and memory accounting for the MPC simulation.
//
// Every primitive charges rounds and reports the peak per-machine memory and
// per-round traffic it would incur on the configured cluster; the ledger is
// how benches measure "rounds" and how tests assert the paper's memory
// envelope (local O(n^δ + B), global Õ(m+n)). Violations are recorded — and
// throw in strict mode — rather than silently ignored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpc/config.hpp"

namespace arbor::mpc {

class RoundLedger {
 public:
  explicit RoundLedger(ClusterConfig config, bool strict = false)
      : config_(config), strict_(strict) {}

  const ClusterConfig& config() const noexcept { return config_; }

  /// Charge `rounds` MPC rounds attributed to `label`.
  void charge(std::size_t rounds, const std::string& label);

  /// Record that some machine holds `words` words of state.
  void note_local_words(std::size_t words);

  /// Record total words materialized across the cluster.
  void note_global_words(std::size_t words);

  /// Record the largest per-machine send/receive volume of a round. The
  /// labelled overload additionally folds the volume into the per-label
  /// traffic peaks (see peak_traffic_by_label) so a multi-round protocol's
  /// hot rounds are attributable by name.
  void note_round_traffic(std::size_t words);
  void note_round_traffic(std::size_t words, const std::string& label);

  std::size_t total_rounds() const noexcept { return total_rounds_; }
  std::size_t peak_local_words() const noexcept { return peak_local_words_; }
  std::size_t peak_global_words() const noexcept { return peak_global_words_; }
  std::size_t peak_round_traffic() const noexcept {
    return peak_round_traffic_;
  }
  std::size_t local_violations() const noexcept { return local_violations_; }

  /// Per-label round breakdown, e.g. {"sort": 12, "exponentiate": 8}.
  const std::map<std::string, std::size_t>& rounds_by_label() const noexcept {
    return rounds_by_label_;
  }

  /// Peak per-machine round traffic by round label, e.g.
  /// {"sample_sort.tree.up": 512, "sample_sort.tree.route": 1344}. Only
  /// rounds reported through the labelled note_round_traffic overload
  /// appear here (Cluster::run_program labels every round with its
  /// ProgramStep name).
  const std::map<std::string, std::size_t>& peak_traffic_by_label()
      const noexcept {
    return peak_traffic_by_label_;
  }

  /// Total per-machine round traffic by label: the SUM of every labelled
  /// round's max traffic, where peak_traffic_by_label keeps the max. This
  /// is the volume total the trace telemetry's `cluster.round_words.<label>`
  /// counters must match exactly (tests/trace_test.cpp).
  const std::map<std::string, std::size_t>& traffic_words_by_label()
      const noexcept {
    return traffic_words_by_label_;
  }

  std::string report() const;

  /// Merge a sub-ledger that ran "in parallel" with others (e.g. the
  /// per-part runs after Lemma 2.1 edge partitioning): rounds contribute via
  /// max, memory via sum of globals / max of locals.
  void absorb_parallel(const RoundLedger& other);

  /// Merge a sub-ledger that ran sequentially after this one.
  void absorb_sequential(const RoundLedger& other);

 private:
  ClusterConfig config_;
  bool strict_;
  std::size_t total_rounds_ = 0;
  std::size_t peak_local_words_ = 0;
  std::size_t peak_global_words_ = 0;
  std::size_t peak_round_traffic_ = 0;
  std::size_t local_violations_ = 0;
  std::map<std::string, std::size_t> rounds_by_label_;
  std::map<std::string, std::size_t> peak_traffic_by_label_;
  std::map<std::string, std::size_t> traffic_words_by_label_;
};

}  // namespace arbor::mpc
