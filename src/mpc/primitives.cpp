// Non-template machinery behind MpcContext: the lazily-owned shared engine
// and the engine-backed stable-sort permutation the keyed Level-1 sorts run
// on when ClusterConfig::distributed_level1 is set.
#include "mpc/primitives.hpp"

#include <numeric>

#include "mpc/cluster.hpp"
#include "mpc/sample_sort.hpp"

namespace arbor::mpc {
namespace {

// Wire format of the Level-1 record sort (see src/mpc/README.md): one
// record per item, (order-preserving key, original index), both words part
// of the lexicographic sort key — a total order whose sorted sequence is
// exactly the stable sort by key.
constexpr std::size_t kRecordWidth = 2;

// Slab sizing for the internal sort cluster: enough machines that slabs
// parallelize across the engine's workers, few enough that per-machine
// sorts amortize the routing. Capped by the model config's machine count
// and by kMaxSortMachines — the coordinator's splitter broadcast is
// quadratic in the machine count, and past a few hundred machines the
// extra slab parallelism is pure overhead for any realistic worker pool.
constexpr std::size_t kTargetRecordsPerMachine = 2048;
constexpr std::size_t kMaxSortMachines = 512;

// Splitter sample size per machine (clamped to the slab size inside the
// sort). 32 evenly-spaced samples of distinct (key, index) records keep
// bucket skew low even on heavily duplicated keys, because the index
// tiebreaker spreads duplicates across splitter intervals.
constexpr std::size_t kSamplesPerMachine = 32;

}  // namespace

engine::Engine* MpcContext::ensure_engine() {
  if (engine_ == nullptr) {
    owned_engine_ = std::make_unique<engine::Engine>(config_.execution);
    engine_ = owned_engine_.get();
  }
  return engine_;
}

std::vector<std::size_t> engine_sorted_order(const ClusterConfig& config,
                                             engine::Engine* engine,
                                             const std::vector<Word>& keys) {
  ARBOR_CHECK_MSG(config.num_machines > 0, "misconfigured cluster");
  const std::size_t n = keys.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (n <= 1) return order;

  const std::size_t machines = std::clamp<std::size_t>(
      MpcContext::div_ceil(n, kTargetRecordsPerMachine), 1,
      std::min(config.num_machines, kMaxSortMachines));

  // The internal cluster is an execution vehicle: it runs unledgered (the
  // Level-1 caller already charged the analytic sort cost, identical to
  // the central path) and with a capacity sized to the dataflow rather
  // than the model's S — sampling skew must never abort a sort whose cost
  // was charged correctly. The S-cap grounding of the sample-sort
  // dataflow lives in tests/level0_programs_test.cpp.
  // Capacity must cover every round's worst case: routing (a maximally
  // skewed bucket receives all n records), the coordinator's pooled sample
  // (round 1), and the coordinator's splitter broadcast — (machines-1)
  // splitter keys to each of `machines` destinations, a quadratic send
  // volume (round 2).
  ClusterConfig sort_cfg = config;
  sort_cfg.num_machines = machines;
  sort_cfg.words_per_machine =
      std::max(config.words_per_machine,
               2 * n * kRecordWidth +
                   machines * kSamplesPerMachine * kRecordWidth +
                   machines * (machines - 1) * kRecordWidth);
  Cluster cluster(sort_cfg, /*ledger=*/nullptr, engine);

  // Contiguous initial distribution: machine m holds records
  // [m·per, (m+1)·per).
  const std::size_t per = MpcContext::div_ceil(n, machines);
  std::vector<std::vector<Word>> slabs(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    const std::size_t begin = m * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) continue;
    slabs[m].reserve((end - begin) * kRecordWidth);
    for (std::size_t i = begin; i < end; ++i) {
      slabs[m].push_back(keys[i]);
      slabs[m].push_back(static_cast<Word>(i));
    }
  }

  const RecordSortResult sorted =
      sample_sort_records(cluster, std::move(slabs), kRecordWidth,
                          /*key_words=*/kRecordWidth, kSamplesPerMachine);

  std::size_t pos = 0;
  for (const auto& slab : sorted.slabs) {
    const std::size_t records = slab.size() / kRecordWidth;
    for (std::size_t r = 0; r < records; ++r)
      order[pos++] = static_cast<std::size_t>(slab[r * kRecordWidth + 1]);
  }
  ARBOR_CHECK_MSG(pos == n, "record sort lost or duplicated records");
  return order;
}

}  // namespace arbor::mpc
