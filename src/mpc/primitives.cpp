// MpcContext is header-only (templates); this translation unit exists so the
// module has a home for future non-template helpers and to keep the build
// graph uniform.
#include "mpc/primitives.hpp"
