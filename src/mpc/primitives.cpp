// Non-template machinery behind MpcContext: the lazily-owned shared engine
// and the engine-backed stable-sort permutation the keyed Level-1 sorts run
// on when ClusterConfig::distributed_level1 is set.
#include "mpc/primitives.hpp"

#include <numeric>

#include "mpc/cluster.hpp"
#include "mpc/sample_sort.hpp"

namespace arbor::mpc {
namespace {

// Wire format of the Level-1 record sort (see src/mpc/README.md): one
// record per item, (order-preserving key, original index), both words part
// of the lexicographic sort key — a total order whose sorted sequence is
// exactly the stable sort by key.
constexpr std::size_t kRecordWidth = 2;

// Slab sizing for the internal sort cluster: enough machines that slabs
// parallelize across the engine's workers, few enough that per-machine
// sorts amortize the routing. There is no hard machine-count cap any
// more: the splitter relay tree keeps every splitter round O(√p·s) per
// machine, so wide clusters no longer pay the coordinator's quadratic
// broadcast.
constexpr std::size_t kTargetRecordsPerMachine = 2048;

// Splitter sample budget per machine (clamped to the slab size inside the
// sort, raised to ⌈√p⌉ below so the tree root's thinned pool covers p−1
// splitters). 32 evenly-spaced samples of distinct (key, index) records
// keep bucket skew low even on heavily duplicated keys, because the index
// tiebreaker spreads duplicates across splitter intervals.
constexpr std::size_t kSamplesPerMachine = 32;

// Shape of the internal cluster a Level-1 sort of n keys executes on; the
// sizing rationale lives in the comments inside level1_sort_shape. The
// shape is what the context's cluster pool is keyed by: two sorts with
// equal (machines, words_per_machine) can share one cluster.
struct SortShape {
  ClusterConfig sort_cfg;
  std::size_t model_s = 0;  ///< the model's S, for the grounding ledger
  std::size_t samples = 0;  ///< splitter samples per machine
};

SortShape level1_sort_shape(const ClusterConfig& config, std::size_t n) {
  ARBOR_CHECK_MSG(config.num_machines > 0, "misconfigured cluster");
  const std::size_t model_s = config.words_per_machine;

  // Machines: enough for worker parallelism (kTargetRecordsPerMachine) and
  // enough that a slab plus routing slack fits the model's S, capped by
  // the model's machine count.
  const std::size_t fit = MpcContext::div_ceil(4 * n * kRecordWidth,
                                               std::max<std::size_t>(
                                                   model_s, 1));
  const std::size_t machines = std::clamp<std::size_t>(
      std::max(MpcContext::div_ceil(n, kTargetRecordsPerMachine), fit), 1,
      config.num_machines);
  const std::size_t group = sample_sort_tree_fanout(machines);
  // ⌈√p⌉ samples minimum: the tree root picks p−1 splitters from a pool of
  // at most G·s sampled keys, so s < ⌈√p⌉ would leave it short.
  const std::size_t samples = std::max(kSamplesPerMachine, group);
  const std::size_t slab_words =
      MpcContext::div_ceil(n, machines) * kRecordWidth;

  // The internal cluster is sized by the model's S. The capacity only
  // widens — linearly, never with the old machines·(machines−1) broadcast
  // term — when the model config itself cannot hold the dataflow (S too
  // small for the routed slabs or for the √p·s splitter pools, which
  // happens for test configs whose min_words floor is tiny relative to
  // the data); the grounding ledger still measures every round against
  // the model's S, so such runs are visible, not hidden.
  // Routing slack covers the worst-case bucket: a slab's share plus the
  // sampling granularity ⌈n/s⌉ (an adversarial key run shorter than one
  // sample gap on every machine draws no splitter, so up to n/s records
  // can land between two adjacent splitters) — sampling skew must never
  // abort a sort whose cost was charged correctly.
  const std::size_t routing_slack =
      4 * slab_words + MpcContext::div_ceil(n, samples) * kRecordWidth;
  const std::size_t splitter_slack =
      2 * (group * samples * kRecordWidth + 2);

  SortShape shape;
  shape.sort_cfg = config;
  shape.sort_cfg.num_machines = machines;
  shape.sort_cfg.words_per_machine =
      std::max(model_s, std::max(routing_slack, splitter_slack));
  // Multi-process transports partition the sort across a worker group —
  // worker runtimes do the compute, so the driver-side engine only moves
  // frames and stays serial.
  if (!config.transport.in_process())
    shape.sort_cfg.execution = ExecutionPolicy::serial();
  shape.model_s = model_s;
  shape.samples = samples;
  return shape;
}

// Contiguous initial distribution of (key, original index) records:
// machine m holds records [m·per, (m+1)·per).
std::vector<std::vector<Word>> build_key_slabs(const std::vector<Word>& keys,
                                               std::size_t machines) {
  const std::size_t n = keys.size();
  const std::size_t per = MpcContext::div_ceil(n, machines);
  std::vector<std::vector<Word>> slabs(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    const std::size_t begin = m * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) continue;
    slabs[m].reserve((end - begin) * kRecordWidth);
    for (std::size_t i = begin; i < end; ++i) {
      slabs[m].push_back(keys[i]);
      slabs[m].push_back(static_cast<Word>(i));
    }
  }
  return slabs;
}

// Read the stable-sort permutation off the sorted buckets: the index words
// of the concatenated result slabs, in bucket-machine order.
std::vector<std::size_t> unpack_order(const RecordSortResult& sorted,
                                      std::size_t n) {
  std::vector<std::size_t> order(n);
  std::size_t pos = 0;
  for (const auto& slab : sorted.slabs) {
    const std::size_t records = slab.size() / kRecordWidth;
    for (std::size_t r = 0; r < records; ++r)
      order[pos++] = static_cast<std::size_t>(slab[r * kRecordWidth + 1]);
  }
  ARBOR_CHECK_MSG(pos == n, "record sort lost or duplicated records");
  return order;
}

}  // namespace

// Constructor and destructor out of line so the pooled Clusters
// (forward-declared in the header) are destructible where Cluster is
// complete — and, in the destructor, before owned_engine_, which the
// in-process pool entries execute on (member order in the class).
MpcContext::MpcContext(ClusterConfig config, RoundLedger* ledger,
                       engine::Engine* engine)
    : config_(config), ledger_(ledger), engine_(engine) {
  ARBOR_CHECK(config.num_machines > 0 && config.words_per_machine > 0);
}

MpcContext::~MpcContext() = default;

engine::Engine* MpcContext::ensure_engine() {
  if (engine_ == nullptr) {
    owned_engine_ = std::make_unique<engine::Engine>(config_.execution);
    engine_ = owned_engine_.get();
  }
  return engine_;
}

RoundLedger* MpcContext::level1_sort_grounding() {
  if (!grounding_ledger_) {
    // Model-shaped: violations are counted against the model's S, however
    // the execution cluster was provisioned.
    grounding_ledger_ = std::make_unique<RoundLedger>(config_);
  }
  return grounding_ledger_.get();
}

std::vector<std::size_t> engine_sorted_order(const ClusterConfig& config,
                                             engine::Engine* engine,
                                             const std::vector<Word>& keys,
                                             RoundLedger* grounding) {
  const std::size_t n = keys.size();
  if (n <= 1) {
    ARBOR_CHECK_MSG(config.num_machines > 0, "misconfigured cluster");
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    return order;
  }
  const SortShape shape = level1_sort_shape(config, n);

  // The caller's primary ledger keeps the analytic ⌈log_S N⌉ charge —
  // bit-identical to the central path — while the execution itself is no
  // longer exempt: every round of the internal sort is charged to the
  // model-shaped grounding ledger (per-step labels, traffic peaks,
  // violations against the model's S).
  RoundLedger sort_ledger(ClusterConfig{shape.sort_cfg.num_machines,
                                        shape.model_s,
                                        shape.sort_cfg.execution});
  std::vector<std::vector<Word>> slabs =
      build_key_slabs(keys, shape.sort_cfg.num_machines);

  RecordSortResult sorted;
  if (config.transport.in_process()) {
    Cluster cluster(shape.sort_cfg, &sort_ledger, engine);
    sorted = sample_sort_records(cluster, std::move(slabs), kRecordWidth,
                                 /*key_words=*/kRecordWidth, shape.samples);
  } else {
    // Multi-process transports spawn a worker group for this cluster (the
    // shared engine's machine count does not match).
    Cluster cluster(shape.sort_cfg, &sort_ledger);
    sorted = sample_sort_records(cluster, std::move(slabs), kRecordWidth,
                                 /*key_words=*/kRecordWidth, shape.samples);
  }
  if (grounding) grounding->absorb_sequential(sort_ledger);
  return unpack_order(sorted, n);
}

std::vector<std::size_t> MpcContext::distributed_sorted_order(
    const std::vector<Word>& keys) {
  const std::size_t n = keys.size();
  ARBOR_CHECK(n > 1);  // callers handle the trivial sizes
  const SortShape shape = level1_sort_shape(config_, n);

  // Pool lookup: same (machines, capacity) → same cluster. The pool stays
  // tiny in practice (a pipeline's sorts cluster around a few data sizes),
  // so a linear scan beats a map.
  SortClusterSlot* slot = nullptr;
  for (SortClusterSlot& s : sort_pool_)
    if (s.machines == shape.sort_cfg.num_machines &&
        s.words_per_machine == shape.sort_cfg.words_per_machine) {
      slot = &s;
      break;
    }
  if (slot != nullptr) {
    // Reuse: the RoundState arenas keep their grown capacity and — over
    // the loopback/tcp transport — the worker group stays alive; only the
    // previous sort's final inboxes must go.
    slot->cluster->reset_inboxes();
    auto& tracer = trace::Tracer::global();
    if (tracer.metrics_on()) tracer.metrics().add("engine.arena_reuse_hits", 1);
  } else {
    sort_pool_.push_back(
        {shape.sort_cfg.num_machines, shape.sort_cfg.words_per_machine,
         config_.transport.in_process()
             ? std::make_unique<Cluster>(shape.sort_cfg, nullptr,
                                         ensure_engine())
             : std::make_unique<Cluster>(shape.sort_cfg, nullptr)});
    slot = &sort_pool_.back();
  }

  // Ledger charging is per sort (see engine_sorted_order): attach a
  // short-lived model-shaped ledger for this run and detach before it
  // dies, whatever the program does. A sort that throws (transport
  // failure) also evicts the pooled cluster — its state is unknown.
  RoundLedger sort_ledger(ClusterConfig{shape.sort_cfg.num_machines,
                                        shape.model_s,
                                        shape.sort_cfg.execution});
  slot->cluster->set_ledger(&sort_ledger);
  RecordSortResult sorted;
  try {
    sorted = sample_sort_records(
        *slot->cluster, build_key_slabs(keys, shape.sort_cfg.num_machines),
        kRecordWidth, /*key_words=*/kRecordWidth, shape.samples);
  } catch (...) {
    for (auto it = sort_pool_.begin(); it != sort_pool_.end(); ++it)
      if (&*it == slot) {
        sort_pool_.erase(it);
        break;
      }
    throw;
  }
  slot->cluster->set_ledger(nullptr);
  level1_sort_grounding()->absorb_sequential(sort_ledger);
  return unpack_order(sorted, n);
}

}  // namespace arbor::mpc
