#include "mpc/cluster.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::mpc {

void Sender::send(std::size_t dst_machine, std::vector<Word> payload) {
  words_sent_ += payload.size();
  ARBOR_CHECK_MSG(words_sent_ <= capacity_,
                  "machine " + std::to_string(source_) +
                      " exceeded send capacity " + std::to_string(capacity_));
  out_.emplace_back(dst_machine, std::move(payload));
}

Cluster::Cluster(ClusterConfig config, RoundLedger* ledger)
    : config_(config), ledger_(ledger), inboxes_(config.num_machines) {
  ARBOR_CHECK(config.num_machines > 0);
  ARBOR_CHECK(config.words_per_machine > 0);
}

void Cluster::preload(std::size_t dst, std::vector<Word> payload) {
  ARBOR_CHECK(dst < inboxes_.size());
  inboxes_[dst].push_back(std::move(payload));
}

void Cluster::run_round(const StepFn& step) {
  std::vector<std::pair<std::size_t, std::vector<Word>>> in_flight;
  std::size_t max_traffic = 0;

  for (std::size_t m = 0; m < inboxes_.size(); ++m) {
    std::vector<std::pair<std::size_t, std::vector<Word>>> outgoing;
    Sender sender(m, config_.words_per_machine, outgoing);
    step(m, inboxes_[m], sender);
    max_traffic = std::max(max_traffic, sender.words_sent());
    for (auto& msg : outgoing) {
      ARBOR_CHECK_MSG(msg.first < inboxes_.size(),
                      "message to nonexistent machine");
      in_flight.push_back(std::move(msg));
    }
  }

  // Deliver, enforcing the receiver-side cap.
  for (auto& box : inboxes_) box.clear();
  std::vector<std::size_t> received(inboxes_.size(), 0);
  for (auto& [dst, payload] : in_flight) {
    received[dst] += payload.size();
    ARBOR_CHECK_MSG(received[dst] <= config_.words_per_machine,
                    "machine " + std::to_string(dst) +
                        " exceeded receive capacity");
    inboxes_[dst].push_back(std::move(payload));
  }
  max_traffic = std::max(
      max_traffic,
      received.empty()
          ? std::size_t{0}
          : *std::max_element(received.begin(), received.end()));

  ++rounds_;
  if (ledger_) {
    ledger_->charge(1, "cluster.round");
    ledger_->note_round_traffic(max_traffic);
  }
}

}  // namespace arbor::mpc
