#include "mpc/cluster.hpp"

#include "check/verify.hpp"
#include "net/process_group.hpp"
#include "net/registry.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {
namespace {

engine::Engine& deref_engine(engine::Engine* e) {
  ARBOR_CHECK_MSG(e != nullptr, "Cluster requires a non-null engine");
  return *e;
}

// Tracing is opt-in per ClusterConfig but recorded globally (the engine
// and driver-side net spans go through Tracer::global()). raise_mode never
// lowers: a traced cluster coexisting with untraced ones keeps tracing.
void arm_tracer(const ClusterConfig& config) {
  if (config.trace.mode == trace::Mode::kOff) return;
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.raise_mode(config.trace.mode);
  if (!config.trace.path.empty()) tracer.set_path(config.trace.path);
}

}  // namespace

Cluster::Cluster(ClusterConfig config, RoundLedger* ledger)
    : config_(config),
      ledger_(ledger),
      owned_engine_(std::make_unique<engine::Engine>(config.execution)),
      engine_(owned_engine_.get()),
      state_(engine_->make_state(config.num_machines)) {
  ARBOR_CHECK(config.num_machines > 0);
  ARBOR_CHECK(config.words_per_machine > 0);
  arm_tracer(config);
  if (!config.transport.in_process()) {
    backend_ = net::make_multiprocess_backend(config);
    owned_engine_->set_backend(backend_.get());
  }
}

Cluster::Cluster(ClusterConfig config, RoundLedger* ledger,
                 engine::Engine* engine)
    : config_(config),
      ledger_(ledger),
      engine_(&deref_engine(engine)),
      state_(engine_->make_state(config.num_machines)) {
  ARBOR_CHECK(config.num_machines > 0);
  ARBOR_CHECK(config.words_per_machine > 0);
  arm_tracer(config);
}

void Cluster::preload(std::size_t dst, std::span<const Word> payload) {
  ARBOR_CHECK(dst < state_.num_machines());
  state_.preload(dst, payload, config_.words_per_machine);
}

engine::ProgramStats Cluster::run_program(const RoundProgram& program) {
  // Static verification before the first compute phase: a malformed
  // program (null sink behind has_output, vote flag without a callback,
  // unnamed distributable step, ...) fails here with a VerifyError quoting
  // step and field, while the stack still points at the code that built
  // it. Checked execution additionally cross-checks the spec against its
  // registered worker-side factory — the rebuild every remote worker runs.
  check::VerifyContext vctx;
  vctx.machines = config_.num_machines;
  vctx.capacity = config_.words_per_machine;
  if (config_.execution.check && program.remote)
    vctx.registry = &net::Registry::builtin();
  check::verify_program(program, vctx);

  // Rounds are charged as they commit (caps validated, stats final; under
  // async overlap the delivery may still be in flight), so a program that
  // throws mid-way leaves the ledger reflecting exactly the rounds the
  // imperative run_round loop would have charged — in every mode. Each
  // round is charged under its step's name (the hook fires once per round
  // in step order on every backend, so the label is recovered from the
  // per-program round counter).
  std::size_t program_round = 0;
  return engine_->run_program(
      state_, config_.words_per_machine, rounds_, program,
      [this, &program, &program_round](const engine::RoundStats& stats) {
        const std::string& label =
            program.steps[program_round % program.steps_per_pass()].name;
        ++program_round;
        ++rounds_;
        if (ledger_) {
          ledger_->charge(1, label);
          ledger_->note_round_traffic(stats.max_traffic(), label);
        }
        trace::Tracer& tracer = trace::Tracer::global();
        if (tracer.metrics_on()) {
          // Mirror of the ledger charge above, so the telemetry report can
          // be cross-checked against ledger totals word for word
          // (tests/trace_test.cpp).
          trace::MetricsRegistry& metrics = tracer.metrics();
          metrics.add("cluster.rounds." + label, 1);
          metrics.add("cluster.round_words." + label, stats.max_traffic());
        }
      });
}

void Cluster::run_round(const StepFn& step) {
  RoundProgram program;
  program.barrier(step);
  run_program(program);
}

InboxView Cluster::inbox(std::size_t m) const {
  ARBOR_CHECK(m < state_.num_machines());
  return state_.inbox(m);
}

}  // namespace arbor::mpc
