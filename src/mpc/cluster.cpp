#include "mpc/cluster.hpp"

#include <utility>

#include "check/verify.hpp"
#include "net/process_group.hpp"
#include "net/registry.hpp"
#include "obs/cost_model.hpp"
#include "obs/report.hpp"
#include "obs/watchdog.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {
namespace {

engine::Engine& deref_engine(engine::Engine* e) {
  ARBOR_CHECK_MSG(e != nullptr, "Cluster requires a non-null engine");
  return *e;
}

// Tracing is opt-in per ClusterConfig but recorded globally (the engine
// and driver-side net spans go through Tracer::global()). raise_mode never
// lowers: a traced cluster coexisting with untraced ones keeps tracing.
void arm_tracer(const ClusterConfig& config) {
  if (config.trace.mode == trace::Mode::kOff) return;
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.raise_mode(config.trace.mode);
  if (!config.trace.path.empty()) tracer.set_path(config.trace.path);
}

// RunReport backend string — diagnostic only (structural_json excludes it;
// a shared-engine cluster reports its config's transport even though the
// owning context may have installed a different backend).
std::string backend_string(const ClusterConfig& config) {
  switch (config.transport.kind) {
    case TransportConfig::Kind::kLoopback:
      return "loopback:" + std::to_string(config.transport.workers);
    case TransportConfig::Kind::kTcp:
      return "tcp:" + std::to_string(config.transport.workers);
    default:
      break;
  }
  if (config.execution.is_parallel())
    return "parallel(" + std::to_string(config.execution.threads) + ")";
  return config.execution.check ? "checked" : "serial";
}

// Arena high-water mark: words of message storage the cluster's RoundState
// currently retains (capacity, not size — what a pooled cluster holds on
// to between programs).
std::size_t arena_high_water(const engine::RoundState& state) {
  std::size_t words = 0;
  for (const engine::Inbox& inbox : state.flat_inboxes)
    words += inbox.words.capacity();
  for (const auto& bank : state.outbox_banks)
    for (const engine::Outbox& outbox : bank) words += outbox.words.capacity();
  for (const auto& inbox : state.nested_inboxes)
    for (const auto& msg : inbox) words += msg.capacity();
  return words;
}

}  // namespace

Cluster::Cluster(ClusterConfig config, RoundLedger* ledger)
    : config_(config),
      ledger_(ledger),
      owned_engine_(std::make_unique<engine::Engine>(config.execution)),
      engine_(owned_engine_.get()),
      state_(engine_->make_state(config.num_machines)) {
  ARBOR_CHECK(config.num_machines > 0);
  ARBOR_CHECK(config.words_per_machine > 0);
  arm_tracer(config);
  if (!config.transport.in_process()) {
    backend_ = net::make_multiprocess_backend(config);
    owned_engine_->set_backend(backend_.get());
  }
}

Cluster::Cluster(ClusterConfig config, RoundLedger* ledger,
                 engine::Engine* engine)
    : config_(config),
      ledger_(ledger),
      engine_(&deref_engine(engine)),
      state_(engine_->make_state(config.num_machines)) {
  ARBOR_CHECK(config.num_machines > 0);
  ARBOR_CHECK(config.words_per_machine > 0);
  arm_tracer(config);
}

void Cluster::preload(std::size_t dst, std::span<const Word> payload) {
  ARBOR_CHECK(dst < state_.num_machines());
  state_.preload(dst, payload, config_.words_per_machine);
}

engine::ProgramStats Cluster::run_program(const RoundProgram& program) {
  // Static verification before the first compute phase: a malformed
  // program (null sink behind has_output, vote flag without a callback,
  // unnamed distributable step, ...) fails here with a VerifyError quoting
  // step and field, while the stack still points at the code that built
  // it. Checked execution additionally cross-checks the spec against its
  // registered worker-side factory — the rebuild every remote worker runs.
  check::VerifyContext vctx;
  vctx.machines = config_.num_machines;
  vctx.capacity = config_.words_per_machine;
  if (config_.execution.check && program.remote)
    vctx.registry = &net::Registry::builtin();
  check::verify_program(program, vctx);

  // Rounds are charged as they commit (caps validated, stats final; under
  // async overlap the delivery may still be in flight), so a program that
  // throws mid-way leaves the ledger reflecting exactly the rounds the
  // imperative run_round loop would have charged — in every mode. Each
  // round is charged under its step's name (the hook fires once per round
  // in step order on every backend, so the label is recovered from the
  // per-program round counter). The same hook accumulates the per-label
  // usage the post-run RunReport and bound audit consume — driver-side
  // aggregates, bit-identical across backends and transports.
  std::vector<obs::LabelUsage> usage;
  usage.reserve(program.steps_per_pass());
  obs::Watchdog::ProgramScope watchdog(obs::Watchdog::global(), program,
                                       obs::program_name(program));
  std::size_t program_round = 0;
  const engine::ProgramStats stats = engine_->run_program(
      state_, config_.words_per_machine, rounds_, program,
      [this, &program, &program_round, &usage,
       &watchdog](const engine::RoundStats& round_stats) {
        const std::string& label =
            program.steps[program_round % program.steps_per_pass()].name;
        ++program_round;
        ++rounds_;
        if (ledger_) {
          ledger_->charge(1, label);
          ledger_->note_round_traffic(round_stats.max_traffic(), label);
        }
        trace::Tracer& tracer = trace::Tracer::global();
        if (tracer.metrics_on()) {
          // Mirror of the ledger charge above, so the telemetry report can
          // be cross-checked against ledger totals word for word
          // (tests/trace_test.cpp).
          trace::MetricsRegistry& metrics = tracer.metrics();
          metrics.add("cluster.rounds." + label, 1);
          metrics.add("cluster.round_words." + label,
                      round_stats.max_traffic());
        }
        obs::LabelUsage* entry = nullptr;
        for (obs::LabelUsage& candidate : usage)
          if (candidate.label == label) {
            entry = &candidate;
            break;
          }
        if (entry == nullptr) {
          usage.push_back(obs::LabelUsage{label, 0, 0, 0});
          entry = &usage.back();
        }
        ++entry->rounds;
        const std::size_t traffic = round_stats.max_traffic();
        entry->total_words += traffic;
        if (traffic > entry->peak_words) entry->peak_words = traffic;
        watchdog.round_committed();
      });

  // Join what the run measured with what the program declared, log the
  // report, and audit: headroom > 1.0 is a named VerifyError under checked
  // execution, a warning counter otherwise (obs/report.hpp).
  obs::RunReport report = obs::make_run_report(
      obs::program_name(program), backend_string(config_),
      config_.num_machines, config_.words_per_machine,
      arena_high_water(state_), std::move(usage), program.cost.get());
  obs::ReportLog::global().record(report);  // logged even when the audit throws
  obs::enforce_bounds(report, config_.execution.check);
  return stats;
}

void Cluster::run_round(const StepFn& step) {
  RoundProgram program;
  program.barrier(step);
  run_program(program);
}

InboxView Cluster::inbox(std::size_t m) const {
  ARBOR_CHECK(m < state_.num_machines());
  return state_.inbox(m);
}

}  // namespace arbor::mpc
