#include "mpc/dist_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::mpc {

DistributedGraph::DistributedGraph(const graph::Graph& g, MpcContext& ctx)
    : graph_(&g),
      machine_of_(g.num_vertices()),
      storage_words_(ctx.config().num_machines, 0) {
  const std::size_t machines = ctx.config().num_machines;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t m = util::hash_words(0xd157ULL, v) % machines;
    machine_of_[v] = static_cast<std::uint32_t>(m);
    // One word for the vertex record plus one per incident edge.
    storage_words_[m] += 1 + g.degree(v);
  }
  for (std::size_t w : storage_words_) {
    max_storage_ = std::max(max_storage_, w);
    total_storage_ += w;
  }
  ctx.charge(1, "input.shuffle");
  ctx.note_global_words(total_storage_);
  ctx.note_local_words(max_storage_);
}

}  // namespace arbor::mpc
