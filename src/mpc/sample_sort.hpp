// A real distributed sample sort executed on the Level-0 cluster.
//
// This is the [GSZ11]-style constant-round sort the Level-1 primitives
// charge for: every machine holds a slab of keys; machines send key
// samples to a coordinator, which broadcasts p-1 splitters; every machine
// routes its keys to the splitter-assigned bucket machine; buckets sort
// locally. Rounds: 3 (sample, splitters, route) + the local sort — i.e.
// O(1) when slabs fit in memory, exactly what MpcContext::sort_rounds
// models. Exists so the analytic costs are backed by an executable
// dataflow under the same traffic caps (see tests/sample_sort_test.cpp,
// which cross-checks the round count against sort_rounds).
//
// Limitations (documented, not hidden): keys are single words; the
// coordinator pattern needs p·(samples_per_machine+1) ≤ S, which holds for
// p ≤ √S machines — the regime the framework tests exercise. Larger
// clusters would use a splitter tree; the cost model is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"

namespace arbor::mpc {

struct SampleSortResult {
  /// Sorted keys as held by each machine after the sort (concatenation in
  /// machine order is globally sorted).
  std::vector<std::vector<Word>> slabs;
  std::size_t rounds = 0;
};

/// Sort the union of `input[m]` (machine m's initial slab). Every slab and
/// every bucket must fit in the cluster's per-machine word budget; the
/// sort fails loudly (capacity check in the cluster) otherwise.
/// `samples_per_machine` controls splitter quality (default 8).
SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine = 8);

}  // namespace arbor::mpc
