// A real distributed sample sort executed on the Level-0 cluster.
//
// This is the [GSZ11]-style constant-round sort the Level-1 primitives
// charge for: every machine holds a slab of keys; machines send key
// samples to a coordinator, which broadcasts p-1 splitters; every machine
// routes its keys to the splitter-assigned bucket machine; buckets sort
// locally. Rounds: 3 (sample, splitters, route) + the local sort — i.e.
// O(1) when slabs fit in memory, exactly what MpcContext::sort_rounds
// models. Exists so the analytic costs are backed by an executable
// dataflow under the same traffic caps (see tests/level0_programs_test.cpp,
// which cross-checks the round count against sort_rounds).
//
// Protocol notes:
//  * samples are clamped to the slab size, so a machine never repeats an
//    index (splitter quality on tiny skewed slabs);
//  * the coordinator ALWAYS broadcasts its splitter set, even when it is
//    empty (machines == 1, or an all-empty input pool) — the routing round
//    relies on that message being present, so "no splitters" is an explicit
//    empty payload, never a missing message;
//  * `sample_sort_records` generalizes the dataflow from single Words to
//    fixed-width multi-word records ordered by a key prefix (see
//    src/mpc/README.md for the wire format). `sample_sort` is the
//    single-word special case, kept for the Level-0 framework tests.
//
// Limitations (documented, not hidden): the coordinator pattern needs
// p·(samples_per_machine+1)·key_words ≤ S, which holds for p ≤ √S machines —
// the regime the framework tests exercise. Larger clusters would use a
// splitter tree; the cost model is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"

namespace arbor::net {
class Registry;
}

namespace arbor::mpc {

struct SampleSortResult {
  /// Sorted keys as held by each machine after the sort (concatenation in
  /// machine order is globally sorted).
  std::vector<std::vector<Word>> slabs;
  std::size_t rounds = 0;
};

/// Sort the union of `input[m]` (machine m's initial slab). Every slab and
/// every bucket must fit in the cluster's per-machine word budget; the
/// sort fails loudly (capacity check in the cluster) otherwise.
/// `samples_per_machine` controls splitter quality (default 8).
SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine = 8);

/// Sort fixed-width multi-word records by their leading key words.
///
/// `input[m]` is machine m's initial slab: a flat arena of whole records,
/// `record_width` words each; the first `key_words` words of a record form
/// its sort key, compared lexicographically (`key_words == 0` means "the
/// whole record is the key"). After the sort each machine holds a
/// key-sorted slab and the concatenation in machine order is globally
/// key-sorted. With a full-record key and distinct records the result is a
/// total order (this is how MpcContext gets bit-identical stable sorts:
/// the original index rides along as the last key word). With a partial
/// key, ties within one source slab keep their order and ties across slabs
/// order by source machine — deterministic, but not stable across the
/// whole input.
struct RecordSortResult {
  std::vector<std::vector<Word>> slabs;  ///< key-sorted record arenas
  /// 3 communication rounds (sample, splitters, route) + 1 compute-only
  /// round for the parallel bucket sorts = 4.
  std::size_t rounds = 0;
};

/// `input` is taken by value: callers whose slabs are throwaway (the
/// Level-1 sort path) move them in and skip a full-data copy.
RecordSortResult sample_sort_records(
    Cluster& cluster, std::vector<std::vector<Word>> input,
    std::size_t record_width, std::size_t key_words = 0,
    std::size_t samples_per_machine = 8);

/// Worker-side factories ("mpc.sample_sort", "mpc.sample_sort_records")
/// for the multi-process backend (net::Registry::builtin() calls this).
void register_sample_sort_programs(net::Registry& registry);

}  // namespace arbor::mpc
