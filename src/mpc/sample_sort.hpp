// A real distributed sample sort executed on the Level-0 cluster.
//
// This is the [GSZ11]-style constant-round sort the Level-1 primitives
// charge for: every machine holds a slab of keys (or fixed-width records);
// splitters are agreed on, every machine routes its data to the
// splitter-assigned bucket machine, and buckets sort locally. Exists so
// the analytic costs are backed by an executable dataflow under the same
// traffic caps (see tests/level0_programs_test.cpp, which cross-checks the
// round counts against MpcContext::sort_rounds and grounds the per-round
// traffic against the model's S-cap).
//
// Two splitter strategies share the rest of the dataflow:
//
//  * SplitterStrategy::kTree (default) — the ⌈√p⌉-ary splitter relay tree.
//    Machines send clamped, evenly-spaced samples up a height-2 fan-in
//    tree (each relay pools its ≤ ⌈√p⌉ children's samples and re-samples
//    the pool down to its own sample budget); the root picks the p−1
//    splitters and relays them back down the same tree, giving each relay
//    only the G−1 group-boundary splitters plus its own group's in-group
//    splitters. Records then route in two hops: by boundary splitters to a
//    spread member of the destination group, then by that group's fine
//    splitters to the final bucket machine. Per-machine send/receive
//    volume of every splitter round is O(√p·s) words (s = samples per
//    machine), so the dataflow fits the model's S-cap at any machine
//    count. Rounds: 6 for the word sort (up, up, pick, down, route,
//    route), 7 for the record sort (+ the compute-only bucket sort).
//
//  * SplitterStrategy::kCoordinator — the legacy all-to-one pattern:
//    samples pool at machine 0, which broadcasts all p−1 splitters to
//    every machine (Θ(p·s) receive at the coordinator, Θ(p²) broadcast
//    send), then a single route round. Needs p·(s+1)·key_words ≤ S, i.e.
//    p ≤ √S — kept as the A/B baseline for the benches and the small-p
//    framework tests. Rounds: 3 (word) / 4 (records).
//
// Protocol notes (both strategies):
//  * samples are clamped to the slab size, so a machine never repeats an
//    index (splitter quality on tiny skewed slabs);
//  * splitter messages are ALWAYS present, even when the splitter set is
//    empty (machines == 1, or an all-empty input pool): the tree's down
//    packets carry an explicit [n_coarse, n_fine] header and the
//    coordinator broadcasts an explicit empty payload, so the routing
//    rounds rely on the message being present, never on an accident of
//    the protocol. A relay with no children's samples forwards clean
//    headers, not zero-width frames;
//  * `sample_sort_records` generalizes the dataflow from single Words to
//    fixed-width multi-word records ordered by a key prefix (see
//    src/mpc/README.md for the wire format). `sample_sort` is the
//    single-word special case, kept for the Level-0 framework tests.
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"

namespace arbor::net {
class Registry;
}

namespace arbor::mpc {

/// How the sort agrees on its p−1 splitters (see file comment).
enum class SplitterStrategy : std::uint8_t {
  kCoordinator = 0,  ///< all-to-one pool + full broadcast; needs p ≤ √S
  kTree = 1,         ///< ⌈√p⌉-ary relay tree; O(√p·s) per machine at any p
};

struct SampleSortResult {
  /// Sorted keys as held by each machine after the sort (concatenation in
  /// machine order is globally sorted). Which keys land on which machine
  /// depends on the splitter strategy; the concatenation does not.
  std::vector<std::vector<Word>> slabs;
  std::size_t rounds = 0;  ///< 6 (tree) or 3 (coordinator)
};

/// Sort the union of `input[m]` (machine m's initial slab). Every slab and
/// every bucket must fit in the cluster's per-machine word budget; the
/// sort fails loudly (capacity check in the cluster) otherwise.
/// `samples_per_machine` controls splitter quality (default 8); the tree
/// needs ≥ ⌈√p⌉ samples per machine for its root pool to cover p−1
/// splitters — fewer still sorts correctly, with coarser buckets.
SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine = 8,
                             SplitterStrategy strategy =
                                 SplitterStrategy::kTree);

/// Sort fixed-width multi-word records by their leading key words.
///
/// `input[m]` is machine m's initial slab: a flat arena of whole records,
/// `record_width` words each; the first `key_words` words of a record form
/// its sort key, compared lexicographically (`key_words == 0` means "the
/// whole record is the key"). After the sort each machine holds a
/// key-sorted slab and the concatenation in machine order is globally
/// key-sorted. With a full-record key and distinct records the
/// concatenation is the unique total order — identical under either
/// splitter strategy (this is how MpcContext gets bit-identical stable
/// sorts: the original index rides along as the last key word). With a
/// partial key, tie order within a bucket is deterministic (fixed by the
/// delivery order source-asc, send-order) but depends on the strategy's
/// routing shape and is not stable across the whole input.
struct RecordSortResult {
  std::vector<std::vector<Word>> slabs;  ///< key-sorted record arenas
  std::size_t rounds = 0;  ///< 7 (tree) or 4 (coordinator), incl. the
                           ///< compute-only bucket-sort round
};

/// `input` is taken by value: callers whose slabs are throwaway (the
/// Level-1 sort path) move them in and skip a full-data copy.
RecordSortResult sample_sort_records(
    Cluster& cluster, std::vector<std::vector<Word>> input,
    std::size_t record_width, std::size_t key_words = 0,
    std::size_t samples_per_machine = 8,
    SplitterStrategy strategy = SplitterStrategy::kTree);

/// Relay-tree fanout for a `machines`-wide sort: r = ⌈√machines⌉, the
/// group size of the splitter tree. Exposed so callers sizing a sort
/// cluster (the Level-1 internals) derive their sample budgets and
/// splitter-round slack from the SAME radix the tree builder uses —
/// s ≥ r keeps the root's thinned pool (G·s keys) ≥ machines−1.
std::size_t sample_sort_tree_fanout(std::size_t machines);

/// Worker-side factories ("mpc.sample_sort", "mpc.sample_sort_records")
/// for the multi-process backend (net::Registry::builtin() calls this).
/// The splitter strategy travels as a RemoteSpec scalar, so either
/// strategy runs bit-identically across {in-process, loopback, tcp}.
void register_sample_sort_programs(net::Registry& registry);

}  // namespace arbor::mpc
