#include "mpc/bundle_fetch.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::mpc {

BundleFetchResult fetch_bundles(
    MpcContext& ctx, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests,
    const std::string& label) {
  ARBOR_CHECK_MSG(requests.size() <= bundles.size() || bundles.empty(),
                  "more requesters than vertices with bundles");
  BundleFetchResult result;
  result.delivered.resize(requests.size());

  // Step 1: k_v = number of requesters per vertex (one sort in the model).
  std::vector<std::size_t> copies(bundles.size(), 0);
  std::size_t total_requests = 0;
  for (std::size_t u = 0; u < requests.size(); ++u) {
    result.stats.max_request_list =
        std::max(result.stats.max_request_list, requests[u].size());
    for (graph::VertexId v : requests[u]) {
      ARBOR_CHECK_MSG(v < bundles.size(), "request for unknown vertex");
      ++copies[v];
      ++total_requests;
    }
  }
  const std::size_t count_sort_rounds =
      ctx.sort_rounds(total_requests + 2 * bundles.size());

  // Step 2: replication via broadcast trees; rounds bounded by the deepest
  // tree (largest k_v).
  for (std::size_t v = 0; v < bundles.size(); ++v) {
    result.stats.max_copies = std::max(result.stats.max_copies, copies[v]);
    result.stats.max_bundle_words =
        std::max(result.stats.max_bundle_words, bundles[v].size());
    result.stats.total_delivered_words += copies[v] * bundles[v].size();
  }
  const std::size_t replicate_rounds =
      ctx.broadcast_rounds(std::max<std::size_t>(1, result.stats.max_copies));

  // Step 3: route copies to requesters (one sort over delivered volume),
  // executed here as direct copies.
  for (std::size_t u = 0; u < requests.size(); ++u) {
    std::size_t requester_words = 0;
    result.delivered[u].reserve(requests[u].size());
    for (graph::VertexId v : requests[u]) {
      result.delivered[u].push_back(bundles[v]);
      requester_words += bundles[v].size();
    }
    result.stats.max_requester_words =
        std::max(result.stats.max_requester_words, requester_words);
  }
  const std::size_t route_sort_rounds = ctx.sort_rounds(
      std::max<std::size_t>(1, result.stats.total_delivered_words));

  result.stats.rounds_charged =
      count_sort_rounds + replicate_rounds + route_sort_rounds;
  ctx.charge(result.stats.rounds_charged, label);
  ctx.note_global_words(result.stats.total_delivered_words);
  ctx.note_local_words(result.stats.max_requester_words);
  return result;
}

}  // namespace arbor::mpc
