#include "mpc/bundle_fetch.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace arbor::mpc {

BundleFetchResult fetch_bundles(
    MpcContext& ctx, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests,
    const std::string& label) {
  ARBOR_CHECK_MSG(requests.size() <= bundles.size() || bundles.empty(),
                  "more requesters than vertices with bundles");
  BundleFetchResult result;
  result.delivered.resize(requests.size());

  // Step 1: k_v = number of requesters per vertex (one sort in the model).
  std::vector<std::size_t> copies(bundles.size(), 0);
  std::size_t total_requests = 0;
  for (std::size_t u = 0; u < requests.size(); ++u) {
    result.stats.max_request_list =
        std::max(result.stats.max_request_list, requests[u].size());
    for (graph::VertexId v : requests[u]) {
      ARBOR_CHECK_MSG(v < bundles.size(), "request for unknown vertex");
      ++copies[v];
      ++total_requests;
    }
  }
  const std::size_t count_sort_rounds =
      ctx.sort_rounds(total_requests + 2 * bundles.size());

  // Step 2: replication via broadcast trees; rounds bounded by the deepest
  // tree (largest k_v).
  for (std::size_t v = 0; v < bundles.size(); ++v) {
    result.stats.max_copies = std::max(result.stats.max_copies, copies[v]);
    result.stats.max_bundle_words =
        std::max(result.stats.max_bundle_words, bundles[v].size());
    result.stats.total_delivered_words += copies[v] * bundles[v].size();
  }
  const std::size_t replicate_rounds =
      ctx.broadcast_rounds(std::max<std::size_t>(1, result.stats.max_copies));

  // Step 3: route copies to requesters (one sort over delivered volume),
  // executed here as direct copies.
  for (std::size_t u = 0; u < requests.size(); ++u) {
    std::size_t requester_words = 0;
    result.delivered[u].reserve(requests[u].size());
    for (graph::VertexId v : requests[u]) {
      result.delivered[u].push_back(bundles[v]);
      requester_words += bundles[v].size();
    }
    result.stats.max_requester_words =
        std::max(result.stats.max_requester_words, requester_words);
  }
  const std::size_t route_sort_rounds = ctx.sort_rounds(
      std::max<std::size_t>(1, result.stats.total_delivered_words));

  result.stats.rounds_charged =
      count_sort_rounds + replicate_rounds + route_sort_rounds;
  ctx.charge(result.stats.rounds_charged, label);
  ctx.note_global_words(result.stats.total_delivered_words);
  ctx.note_local_words(result.stats.max_requester_words);
  return result;
}

Level0BundleFetchResult fetch_bundles_program(
    Cluster& cluster, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests) {
  const std::size_t machines = cluster.num_machines();
  const std::size_t start_rounds = cluster.rounds_executed();
  const auto owner_of = [machines](std::size_t id, std::size_t count) {
    const std::size_t block =
        (count + machines - 1) / std::max<std::size_t>(machines, 1);
    return block == 0 ? std::size_t{0} : std::min(id / block, machines - 1);
  };

  Level0BundleFetchResult result;
  result.delivered.resize(requests.size());
  for (std::size_t u = 0; u < requests.size(); ++u) {
    result.delivered[u].resize(requests[u].size());
    for (graph::VertexId v : requests[u])
      ARBOR_CHECK_MSG(v < bundles.size(), "request for unknown vertex");
  }

  // Three machine-independent steps; every step touches only its machine's
  // inbox and the delivered/bundle slots its block owns, so the scheduler
  // overlaps each delivery with the next step's compute.
  RoundProgram program;

  // Machine m's contiguous id block under owner_of (the last machine also
  // absorbs the clamp remainder).
  const auto block_of = [machines](std::size_t m, std::size_t count) {
    const std::size_t block =
        (count + machines - 1) / std::max<std::size_t>(machines, 1);
    const std::size_t lo = std::min(m * block, count);
    const std::size_t hi =
        m + 1 == machines ? count : std::min(lo + block, count);
    return std::pair<std::size_t, std::size_t>(lo, hi);
  };

  // Step 1: each requester machine routes (u, slot, v) triples to the
  // machine hosting v's bundle — scanning only its own requester block.
  program.independent([&](std::size_t m, const auto&, Sender& send) {
    std::vector<std::vector<Word>> outgoing(machines);
    const auto [u_lo, u_hi] = block_of(m, requests.size());
    for (std::size_t u = u_lo; u < u_hi; ++u) {
      for (std::size_t slot = 0; slot < requests[u].size(); ++slot) {
        const graph::VertexId v = requests[u][slot];
        auto& out = outgoing[owner_of(v, bundles.size())];
        out.push_back(u);
        out.push_back(slot);
        out.push_back(v);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 2: each owner machine serves every request in its inbox with a
  // (u, slot, length, payload...) record addressed to u's host machine.
  program.independent([&](std::size_t, const auto& inbox, Sender& send) {
    std::vector<std::vector<Word>> outgoing(machines);
    for (const auto& msg : inbox) {
      for (std::size_t i = 0; i + 2 < msg.size(); i += 3) {
        const auto u = static_cast<std::size_t>(msg[i]);
        const Word slot = msg[i + 1];
        const auto v = static_cast<std::size_t>(msg[i + 2]);
        auto& out = outgoing[owner_of(u, requests.size())];
        out.push_back(u);
        out.push_back(slot);
        out.push_back(bundles[v].size());
        out.insert(out.end(), bundles[v].begin(), bundles[v].end());
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 3 (compute-only): each requester machine unpacks the served
  // copies into request order — delivered[u][slot] slots are owned by u's
  // host machine, so the assembly parallelizes across the cluster.
  program.independent([&](std::size_t, const auto& inbox, Sender&) {
    for (const auto& msg : inbox) {
      std::size_t i = 0;
      while (i + 2 < msg.size()) {
        const auto u = static_cast<std::size_t>(msg[i]);
        const auto slot = static_cast<std::size_t>(msg[i + 1]);
        const auto len = static_cast<std::size_t>(msg[i + 2]);
        i += 3;
        auto& dst = result.delivered[u][slot];
        dst.assign(msg.begin() + i, msg.begin() + i + len);
        i += len;
      }
    }
  });

  cluster.run_program(program);
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

}  // namespace arbor::mpc
