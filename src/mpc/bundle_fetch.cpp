#include "mpc/bundle_fetch.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "check/ownership.hpp"
#include "net/registry.hpp"
#include "net/wire.hpp"
#include "obs/cost_model.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

BundleFetchResult fetch_bundles(
    MpcContext& ctx, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests,
    const std::string& label) {
  ARBOR_CHECK_MSG(requests.size() <= bundles.size() || bundles.empty(),
                  "more requesters than vertices with bundles");
  BundleFetchResult result;
  result.delivered.resize(requests.size());

  // Step 1: k_v = number of requesters per vertex (one sort in the model).
  std::vector<std::size_t> copies(bundles.size(), 0);
  std::size_t total_requests = 0;
  for (std::size_t u = 0; u < requests.size(); ++u) {
    result.stats.max_request_list =
        std::max(result.stats.max_request_list, requests[u].size());
    for (graph::VertexId v : requests[u]) {
      ARBOR_CHECK_MSG(v < bundles.size(), "request for unknown vertex");
      ++copies[v];
      ++total_requests;
    }
  }
  const std::size_t count_sort_rounds =
      ctx.sort_rounds(total_requests + 2 * bundles.size());

  // Step 2: replication via broadcast trees; rounds bounded by the deepest
  // tree (largest k_v).
  for (std::size_t v = 0; v < bundles.size(); ++v) {
    result.stats.max_copies = std::max(result.stats.max_copies, copies[v]);
    result.stats.max_bundle_words =
        std::max(result.stats.max_bundle_words, bundles[v].size());
    result.stats.total_delivered_words += copies[v] * bundles[v].size();
  }
  const std::size_t replicate_rounds =
      ctx.broadcast_rounds(std::max<std::size_t>(1, result.stats.max_copies));

  // Step 3: route copies to requesters (one sort over delivered volume),
  // executed here as direct copies.
  for (std::size_t u = 0; u < requests.size(); ++u) {
    std::size_t requester_words = 0;
    result.delivered[u].reserve(requests[u].size());
    for (graph::VertexId v : requests[u]) {
      result.delivered[u].push_back(bundles[v]);
      requester_words += bundles[v].size();
    }
    result.stats.max_requester_words =
        std::max(result.stats.max_requester_words, requester_words);
  }
  const std::size_t route_sort_rounds = ctx.sort_rounds(
      std::max<std::size_t>(1, result.stats.total_delivered_words));

  result.stats.rounds_charged =
      count_sort_rounds + replicate_rounds + route_sort_rounds;
  ctx.charge(result.stats.rounds_charged, label);
  ctx.note_global_words(result.stats.total_delivered_words);
  ctx.note_local_words(result.stats.max_requester_words);
  return result;
}

namespace {

/// Owner machine of vertex/requester id under block assignment (the last
/// machine also absorbs the clamp remainder).
std::size_t owner_of(std::size_t id, std::size_t count,
                     std::size_t machines) {
  const std::size_t block =
      (count + machines - 1) / std::max<std::size_t>(machines, 1);
  return block == 0 ? std::size_t{0} : std::min(id / block, machines - 1);
}

/// Machine m's contiguous id block under owner_of.
std::pair<std::size_t, std::size_t> id_block_of(std::size_t m,
                                                std::size_t count,
                                                std::size_t machines) {
  const std::size_t block =
      (count + machines - 1) / std::max<std::size_t>(machines, 1);
  const std::size_t lo = std::min(m * block, count);
  const std::size_t hi =
      m + 1 == machines ? count : std::min(lo + block, count);
  return {lo, hi};
}

/// Machine-local state of a Level-0 bundle fetch. Built by the driver as
/// non-owning views over the caller's vectors; rebuilt by a worker as
/// owning storage filled for its machine block only.
struct FetchState {
  std::vector<std::vector<Word>> owned_bundles;
  std::vector<std::vector<graph::VertexId>> owned_requests;
  std::vector<std::vector<std::vector<Word>>> owned_delivered;
  const std::vector<std::vector<Word>>* bundles = nullptr;
  const std::vector<std::vector<graph::VertexId>>* requests = nullptr;
  std::vector<std::vector<std::vector<Word>>>* delivered = nullptr;
  std::size_t machines = 0;
};

// Three machine-independent steps; every step touches only its machine's
// inbox and the delivered/bundle slots its block owns, so the scheduler
// overlaps each delivery with the next step's compute.
engine::RoundProgram make_fetch_program(std::shared_ptr<FetchState> st) {
  const std::size_t machines = st->machines;
  engine::RoundProgram program;

  // Step 1: each requester machine routes (u, slot, v) triples to the
  // machine hosting v's bundle — scanning only its own requester block.
  program.independent("fetch.route", [st, machines](std::size_t m,
                                                    const auto&,
                                                    Sender& send) {
    const auto& requests = *st->requests;
    std::vector<std::vector<Word>> outgoing(machines);
    const auto [u_lo, u_hi] = id_block_of(m, requests.size(), machines);
    for (std::size_t u = u_lo; u < u_hi; ++u) {
      for (std::size_t slot = 0; slot < requests[u].size(); ++slot) {
        const graph::VertexId v = requests[u][slot];
        auto& out = outgoing[owner_of(v, st->bundles->size(), machines)];
        out.push_back(u);
        out.push_back(slot);
        out.push_back(v);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 2: each owner machine serves every request in its inbox with a
  // (u, slot, length, payload...) record addressed to u's host machine.
  program.independent("fetch.serve", [st, machines](std::size_t,
                                                    const auto& inbox,
                                                    Sender& send) {
    const auto& bundles = *st->bundles;
    std::vector<std::vector<Word>> outgoing(machines);
    for (const auto& msg : inbox) {
      for (std::size_t i = 0; i + 2 < msg.size(); i += 3) {
        const auto u = static_cast<std::size_t>(msg[i]);
        const Word slot = msg[i + 1];
        const auto v = static_cast<std::size_t>(msg[i + 2]);
        auto& out = outgoing[owner_of(u, st->requests->size(), machines)];
        out.push_back(u);
        out.push_back(slot);
        out.push_back(bundles[v].size());
        out.insert(out.end(), bundles[v].begin(), bundles[v].end());
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 3 (compute-only): each requester machine unpacks the served
  // copies into request order — delivered[u][slot] slots are owned by u's
  // host machine, so the assembly parallelizes across the cluster.
  program.independent("fetch.unpack", [st](std::size_t, const auto& inbox,
                                           Sender&) {
    for (const auto& msg : inbox) {
      std::size_t i = 0;
      while (i + 2 < msg.size()) {
        const auto u = static_cast<std::size_t>(msg[i]);
        const auto slot = static_cast<std::size_t>(msg[i + 1]);
        const auto len = static_cast<std::size_t>(msg[i + 2]);
        i += 3;
        auto& dst = (*st->delivered)[u][slot];
        dst.assign(msg.begin() + i, msg.begin() + i + len);
        i += len;
      }
    }
  });

  // delivered[u] — the only state the steps mutate — is owned by u's host
  // machine (the same block mapping step 2 routes by).
  auto own = std::make_shared<check::Ownership>();
  own->nested("delivered", st->delivered,
              [st, machines](std::size_t u) {
                return owner_of(u, st->requests->size(), machines);
              })
      .keep_alive(st);
  program.owned(std::move(own));

  // Route and serve are data-movement rounds (request triples, then the
  // copies themselves) — bounded only by the machine capacity S; unpack is
  // compute-only and must move exactly zero words.
  auto cost = std::make_shared<obs::CostModel>("mpc.fetch_bundles");
  cost->bound("fetch.route", obs::kWordsCapacity, 1,
              "<= S (3 words per request triple)");
  cost->bound("fetch.serve", obs::kWordsCapacity, 1,
              "<= S (3-word header + bundle payload per copy)");
  cost->bound("fetch.unpack", 0, 1,
              "0 (machine-local assembly; moves no words)");
  program.costed(std::move(cost));
  return program;
}

}  // namespace

Level0BundleFetchResult fetch_bundles_program(
    Cluster& cluster, const std::vector<std::vector<Word>>& bundles,
    const std::vector<std::vector<graph::VertexId>>& requests) {
  const std::size_t machines = cluster.num_machines();
  const std::size_t start_rounds = cluster.rounds_executed();

  Level0BundleFetchResult result;
  result.delivered.resize(requests.size());
  for (std::size_t u = 0; u < requests.size(); ++u) {
    result.delivered[u].resize(requests[u].size());
    for (graph::VertexId v : requests[u])
      ARBOR_CHECK_MSG(v < bundles.size(), "request for unknown vertex");
  }

  auto st = std::make_shared<FetchState>();
  st->machines = machines;
  st->bundles = &bundles;
  st->requests = &requests;
  st->delivered = &result.delivered;

  engine::RoundProgram program = make_fetch_program(st);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.fetch_bundles";
    spec.scalars = {static_cast<Word>(requests.size()),
                    static_cast<Word>(bundles.size())};
    // inputs[m]: the requester lists and bundles machine m hosts —
    //   [u_count, {len, v...} * u_count, v_count, {len, words...} * v_count]
    spec.inputs.resize(machines);
    for (std::size_t m = 0; m < machines; ++m) {
      std::vector<Word>& input = spec.inputs[m];
      const auto [u_lo, u_hi] = id_block_of(m, requests.size(), machines);
      input.push_back(u_hi - u_lo);
      for (std::size_t u = u_lo; u < u_hi; ++u) {
        input.push_back(requests[u].size());
        for (graph::VertexId v : requests[u]) input.push_back(v);
      }
      const auto [v_lo, v_hi] = id_block_of(m, bundles.size(), machines);
      input.push_back(v_hi - v_lo);
      for (std::size_t v = v_lo; v < v_hi; ++v) {
        input.push_back(bundles[v].size());
        input.insert(input.end(), bundles[v].begin(), bundles[v].end());
      }
    }
    spec.has_output = true;
    // outputs[m]: delivered slots of machine m's requester block —
    //   [{nslots, {len, words...} * nslots} * requesters]
    spec.output_sink = [st, machines](std::size_t m,
                                      std::span<const Word> slab) {
      net::WireReader reader(slab, "fetch-output");
      const auto [u_lo, u_hi] =
          id_block_of(m, st->delivered->size(), machines);
      for (std::size_t u = u_lo; u < u_hi; ++u) {
        auto& slots = (*st->delivered)[u];
        const std::size_t nslots = reader.count();
        ARBOR_CHECK(nslots == slots.size());
        for (std::size_t s = 0; s < nslots; ++s) {
          const std::span<const Word> words = reader.words(reader.count());
          slots[s].assign(words.begin(), words.end());
        }
      }
      reader.expect_end();
    };
    program.distributable(std::move(spec));
  }

  cluster.run_program(program);
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

void register_bundle_fetch_program(net::Registry& registry) {
  registry.add("mpc.fetch_bundles", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 2,
                    "mpc.fetch_bundles expects 2 scalars");
    auto st = std::make_shared<FetchState>();
    st->machines = in.machines;
    const auto num_requesters = static_cast<std::size_t>(in.scalars[0]);
    const auto num_bundles = static_cast<std::size_t>(in.scalars[1]);
    st->owned_requests.resize(num_requesters);
    st->owned_bundles.resize(num_bundles);
    st->owned_delivered.resize(num_requesters);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m) {
      net::WireReader reader(in.inputs[m - in.block_begin], "fetch-input");
      const auto [u_lo, u_hi] = id_block_of(m, num_requesters, in.machines);
      ARBOR_CHECK(reader.count() == u_hi - u_lo);
      for (std::size_t u = u_lo; u < u_hi; ++u) {
        const std::span<const Word> vs = reader.words(reader.count());
        st->owned_requests[u].assign(vs.begin(), vs.end());
        st->owned_delivered[u].resize(vs.size());
      }
      const auto [v_lo, v_hi] = id_block_of(m, num_bundles, in.machines);
      ARBOR_CHECK(reader.count() == v_hi - v_lo);
      for (std::size_t v = v_lo; v < v_hi; ++v) {
        const std::span<const Word> words = reader.words(reader.count());
        st->owned_bundles[v].assign(words.begin(), words.end());
      }
      reader.expect_end();
    }
    st->bundles = &st->owned_bundles;
    st->requests = &st->owned_requests;
    st->delivered = &st->owned_delivered;
    net::WorkerProgram out;
    out.program = make_fetch_program(st);
    out.state = st;
    out.output = [st](std::size_t m) {
      std::vector<Word> slab;
      const auto [u_lo, u_hi] =
          id_block_of(m, st->owned_delivered.size(), st->machines);
      for (std::size_t u = u_lo; u < u_hi; ++u) {
        slab.push_back(st->owned_delivered[u].size());
        for (const std::vector<Word>& words : st->owned_delivered[u]) {
          slab.push_back(words.size());
          slab.insert(slab.end(), words.begin(), words.end());
        }
      }
      return slab;
    };
    return out;
  });
}

}  // namespace arbor::mpc
