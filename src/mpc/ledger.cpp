#include "mpc/ledger.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace arbor::mpc {

void RoundLedger::charge(std::size_t rounds, const std::string& label) {
  total_rounds_ += rounds;
  rounds_by_label_[label] += rounds;
}

void RoundLedger::note_local_words(std::size_t words) {
  peak_local_words_ = std::max(peak_local_words_, words);
  if (words > config_.words_per_machine) {
    ++local_violations_;
    ARBOR_CHECK_MSG(!strict_,
                    "machine memory exceeded: " + std::to_string(words) +
                        " > S=" +
                        std::to_string(config_.words_per_machine));
  }
}

void RoundLedger::note_global_words(std::size_t words) {
  peak_global_words_ = std::max(peak_global_words_, words);
}

void RoundLedger::note_round_traffic(std::size_t words) {
  peak_round_traffic_ = std::max(peak_round_traffic_, words);
  if (words > config_.words_per_machine) {
    ++local_violations_;
    ARBOR_CHECK_MSG(!strict_,
                    "per-round traffic exceeded: " + std::to_string(words) +
                        " > S=" +
                        std::to_string(config_.words_per_machine));
  }
}

void RoundLedger::note_round_traffic(std::size_t words,
                                     const std::string& label) {
  auto& peak = peak_traffic_by_label_[label];
  peak = std::max(peak, words);
  traffic_words_by_label_[label] += words;
  note_round_traffic(words);
}

void RoundLedger::absorb_parallel(const RoundLedger& other) {
  total_rounds_ = std::max(total_rounds_, other.total_rounds_);
  for (const auto& [label, rounds] : other.rounds_by_label_) {
    auto& mine = rounds_by_label_[label];
    mine = std::max(mine, rounds);
  }
  peak_local_words_ = std::max(peak_local_words_, other.peak_local_words_);
  peak_round_traffic_ =
      std::max(peak_round_traffic_, other.peak_round_traffic_);
  for (const auto& [label, words] : other.peak_traffic_by_label_) {
    auto& mine = peak_traffic_by_label_[label];
    mine = std::max(mine, words);
  }
  for (const auto& [label, words] : other.traffic_words_by_label_) {
    auto& mine = traffic_words_by_label_[label];
    mine = std::max(mine, words);  // rounds max under parallel merge; so
                                   // does the volume charged along them
  }
  // Parallel executions coexist: their global footprints add up.
  peak_global_words_ += other.peak_global_words_;
  local_violations_ += other.local_violations_;
}

void RoundLedger::absorb_sequential(const RoundLedger& other) {
  total_rounds_ += other.total_rounds_;
  for (const auto& [label, rounds] : other.rounds_by_label_)
    rounds_by_label_[label] += rounds;
  peak_local_words_ = std::max(peak_local_words_, other.peak_local_words_);
  peak_round_traffic_ =
      std::max(peak_round_traffic_, other.peak_round_traffic_);
  for (const auto& [label, words] : other.peak_traffic_by_label_) {
    auto& mine = peak_traffic_by_label_[label];
    mine = std::max(mine, words);
  }
  for (const auto& [label, words] : other.traffic_words_by_label_)
    traffic_words_by_label_[label] += words;
  peak_global_words_ = std::max(peak_global_words_, other.peak_global_words_);
  local_violations_ += other.local_violations_;
}

std::string RoundLedger::report() const {
  std::ostringstream os;
  os << "rounds=" << total_rounds_
     << " peak_local=" << peak_local_words_ << "/" << config_.words_per_machine
     << " peak_global=" << peak_global_words_ << "/" << config_.global_words()
     << " peak_traffic=" << peak_round_traffic_
     << " violations=" << local_violations_ << "\n";
  for (const auto& [label, rounds] : rounds_by_label_)
    os << "  " << label << ": " << rounds << "\n";
  return os.str();
}

}  // namespace arbor::mpc
