// Level-1 MPC primitives: the dataflow operations the algorithms are
// written against, with analytic round/memory charging.
//
// Cost model (standard for S = n^δ, see [GSZ11], [ASS+18 §E], the Ghaffari
// MPA lecture notes cited by the paper):
//  * sorting N words                        — O(log_S N) = O(1/δ) rounds,
//  * broadcast / convergecast trees of
//    fan-out √S replicating k copies        — O(log_{√S} k) rounds,
//  * aggregate-by-key, prefix sums, joins   — O(1) sorts.
// Each operation charges the cluster-model cost to the RoundLedger,
// including the peak per-machine and global footprints implied by the data
// volumes. The Level-0 cluster tests in tests/level0_programs_test.cpp
// validate that these dataflows really fit the per-round traffic caps.
//
// Execution: by default the semantics run centrally (std::stable_sort — the
// reference path). With ClusterConfig::distributed_level1 set, the keyed
// sorts execute as real [GSZ11] splitter-tree sample sorts on an
// engine-backed Level-0 cluster (mpc/sample_sort.cpp), sharing one worker
// pool across every cluster a pipeline spawns via the lazily-owned Engine.
// The two paths are bit-identical in outputs AND ledger totals: the
// distributed run sorts (order-preserving key, original index) records — a
// total order equal to the stable sort — and keeps charging the same
// analytic costs on the primary ledger, while the internal cluster's real
// rounds are charged to the context's model-shaped grounding ledger
// (level1_sort_grounding(); see src/mpc/README.md).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

class Cluster;

/// Stable-sort permutation of `keys` computed by an engine-backed
/// distributed record sort: order[i] is the original index of the i-th
/// smallest key, equal keys in original order — exactly the permutation
/// std::stable_sort applies. The sort runs as a splitter-tree sample sort
/// on an internal cluster sized by the model's S; every executed round is
/// charged to `grounding` (a model-shaped ledger, may be null) with
/// per-step labels and traffic peaks — see MpcContext::
/// level1_sort_grounding(). Builds a fresh internal cluster per call — the
/// unpooled reference; MpcContext::sort_items_by_key goes through the
/// context's cluster pool instead. Defined in primitives.cpp.
std::vector<std::size_t> engine_sorted_order(const ClusterConfig& config,
                                             engine::Engine* engine,
                                             const std::vector<Word>& keys,
                                             RoundLedger* grounding);

class MpcContext {
 public:
  /// `engine` (optional, not owned) is the execution backend for any
  /// Level-0 clusters spawned while running under this context; pipelines
  /// and benches thread it through so `Cluster(cfg, ledger, ctx.engine())`
  /// shares one worker pool. Null means "built lazily from cfg.execution
  /// on first use" (ensure_engine), so a pipeline and all its
  /// sub-contexts still end up on one pool.
  MpcContext(ClusterConfig config, RoundLedger* ledger,
             engine::Engine* engine = nullptr);

  // Out of line (like the constructor): sort_pool_ holds Clusters,
  // forward-declared here.
  ~MpcContext();
  MpcContext(MpcContext&&) = delete;
  MpcContext& operator=(MpcContext&&) = delete;

  const ClusterConfig& config() const noexcept { return config_; }
  RoundLedger* ledger() const noexcept { return ledger_; }
  engine::Engine* engine() const noexcept { return engine_; }

  /// The shared execution engine, constructing (and then owning) one from
  /// config().execution if none was injected. Pipelines pass this into
  /// sub-contexts and Level-0 clusters so one worker pool serves the whole
  /// run.
  engine::Engine* ensure_engine();

  /// Execution ledger of every internal Level-1 sort this context ran
  /// (distributed path only): real rounds under the splitter-tree step
  /// labels (sample_sort.tree.up/.pick/.down/.route/.sort), per-label
  /// traffic peaks, and violations counted against the MODEL's S — the
  /// internal sorts are charged here rather than exempted. Kept separate
  /// from the primary ledger because the primary charge is the analytic
  /// model cost, bit-identical to the central path (which executes no
  /// internal rounds at all); this ledger is the grounding that the
  /// executed dataflow honours the same budgets. Lazily built; never null.
  RoundLedger* level1_sort_grounding();

  /// Policy Level-0 clusters under this context should execute with.
  ExecutionPolicy execution_policy() const noexcept {
    return engine_ ? engine_->policy() : config_.execution;
  }

  /// Rounds to sort N words with S-word machines: ⌈log_S N⌉, at least 1.
  /// Computed by integer powering — the float log ratio drifts at exact
  /// powers of S (N = S² must charge exactly 2, never 3) and ceil() then
  /// amplifies an ulp of error into a whole extra round.
  std::size_t sort_rounds(std::size_t total_words) const {
    if (total_words <= 1) return 1;
    const std::size_t s = std::max<std::size_t>(config_.words_per_machine, 2);
    std::size_t rounds = 1;
    std::size_t reach = s;  // s^rounds, saturating
    while (reach < total_words) {
      ++rounds;
      if (reach > std::numeric_limits<std::size_t>::max() / s) break;
      reach *= s;
    }
    return rounds;
  }

  /// Rounds for a fan-out-√S broadcast tree producing `copies` replicas.
  std::size_t broadcast_rounds(std::size_t copies) const {
    if (copies <= 1) return 1;
    const double fanout = std::max(
        2.0, std::sqrt(static_cast<double>(config_.words_per_machine)));
    const double r =
        std::log(static_cast<double>(copies)) / std::log(fanout);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(r)));
  }

  void charge(std::size_t rounds, const std::string& label) {
    if (ledger_) ledger_->charge(rounds, label);
  }

  void note_local_words(std::size_t words) {
    if (ledger_) ledger_->note_local_words(words);
  }

  void note_global_words(std::size_t words) {
    if (ledger_) ledger_->note_global_words(words);
  }

  /// Record the footprint of a balanced distribution of `total_words` over
  /// the cluster (the state left behind by a shuffle).
  void note_balanced(std::size_t total_words) {
    note_global_words(total_words);
    note_local_words(div_ceil(total_words, config_.num_machines));
  }

  /// Order-preserving Word encoding of an integral key: k1 < k2 iff
  /// word_key(k1) < word_key(k2). Signed keys are biased into unsigned
  /// range; unsigned keys pass through.
  template <typename K>
  static Word word_key(K key) {
    static_assert(std::is_integral_v<K> && sizeof(K) <= sizeof(Word),
                  "keys must be integral and at most one word wide");
    if constexpr (std::is_signed_v<K>)
      return static_cast<Word>(static_cast<std::int64_t>(key)) ^
             (Word{1} << 63);
    else
      return static_cast<Word>(key);
  }

  /// Distributed sort by an extracted word key: charges ⌈log_S(N·w)⌉
  /// rounds and notes footprints, then reorders `items` exactly as
  /// std::stable_sort comparing key_of(a) < key_of(b) would. With
  /// config().distributed_level1 the permutation is computed by a real
  /// engine-backed sample sort of (key, index) records on a Level-0
  /// cluster sharing ensure_engine(); otherwise centrally. Bit-identical
  /// either way.
  template <typename T, typename KeyFn>
  void sort_items_by_key(std::vector<T>& items, KeyFn key_of,
                         std::size_t words_per_item,
                         const std::string& label) {
    static_assert(
        std::is_same_v<std::invoke_result_t<KeyFn, const T&>, Word>,
        "KeyFn must return Word — encode signed or narrow keys with "
        "MpcContext::word_key so both execution paths compare identically");
    const std::size_t total = items.size() * words_per_item;
    charge(sort_rounds(total), label);
    note_balanced(total);
    if (config_.distributed_level1 && items.size() > 1) {
      std::vector<Word> keys;
      keys.reserve(items.size());
      for (const T& item : items) keys.push_back(key_of(item));
      const std::vector<std::size_t> order = distributed_sorted_order(keys);
      std::vector<T> sorted;
      sorted.reserve(items.size());
      for (const std::size_t idx : order)
        sorted.push_back(std::move(items[idx]));
      items = std::move(sorted);
    } else {
      std::stable_sort(items.begin(), items.end(),
                       [&key_of](const T& a, const T& b) {
                         return key_of(a) < key_of(b);
                       });
    }
  }

  /// Distributed sort under an arbitrary comparator: same charging as the
  /// keyed sort, but the semantics always run on the central reference
  /// path — a comparator that is not induced by a word key cannot be
  /// routed through the record sort. Prefer sort_items_by_key where a key
  /// exists.
  template <typename T, typename Cmp>
  void sort_items(std::vector<T>& items, Cmp cmp, std::size_t words_per_item,
                  const std::string& label) {
    const std::size_t total = items.size() * words_per_item;
    charge(sort_rounds(total), label);
    note_balanced(total);
    std::stable_sort(items.begin(), items.end(), cmp);
  }

  /// Aggregate values by key with an associative combiner; one sort + local
  /// scan. Returns (key, combined) pairs sorted by key. Integral keys run
  /// on the keyed (distributable) sort; other key types fall back to the
  /// central comparator path.
  template <typename K, typename V, typename Combine>
  std::vector<std::pair<K, V>> aggregate_by_key(
      std::vector<std::pair<K, V>> items, Combine combine,
      std::size_t words_per_item, const std::string& label) {
    if constexpr (std::is_integral_v<K> && sizeof(K) <= sizeof(Word)) {
      sort_items_by_key(
          items,
          [](const std::pair<K, V>& kv) { return word_key(kv.first); },
          words_per_item, label);
    } else {
      sort_items(
          items,
          [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
            return a.first < b.first;
          },
          words_per_item, label);
    }
    std::vector<std::pair<K, V>> out;
    out.reserve(items.size());
    for (auto& kv : items) {
      if (!out.empty() && out.back().first == kv.first)
        out.back().second = combine(out.back().second, kv.second);
      else
        out.push_back(std::move(kv));
    }
    return out;
  }

  /// Count occurrences per key; one sort + scan.
  template <typename K>
  std::vector<std::pair<K, std::size_t>> count_by_key(
      std::vector<K> keys, const std::string& label) {
    std::vector<std::pair<K, std::size_t>> pairs;
    pairs.reserve(keys.size());
    for (auto& k : keys) pairs.emplace_back(std::move(k), std::size_t{1});
    return aggregate_by_key<K, std::size_t>(
        std::move(pairs),
        [](std::size_t a, std::size_t b) { return a + b; }, 2, label);
  }

  static std::size_t div_ceil(std::size_t a, std::size_t b) {
    ARBOR_CHECK_MSG(b != 0, "div_ceil by zero — misconfigured cluster");
    return (a + b - 1) / b;
  }

 private:
  /// engine_sorted_order through the context's cluster pool: internal sort
  /// clusters are keyed by (machines, words_per_machine) and kept alive
  /// across sorts, so repeated same-shape sorts reuse the RoundState
  /// arenas at retained capacity — and, over the loopback/tcp transport,
  /// the live worker group — instead of reallocating (respawning) per
  /// sort. Each reuse bumps the engine.arena_reuse_hits metric when
  /// metrics are on. Defined in primitives.cpp.
  std::vector<std::size_t> distributed_sorted_order(
      const std::vector<Word>& keys);

  /// One pooled internal sort cluster (see distributed_sorted_order).
  struct SortClusterSlot {
    std::size_t machines;
    std::size_t words_per_machine;
    std::unique_ptr<Cluster> cluster;
  };

  ClusterConfig config_;
  RoundLedger* ledger_;
  engine::Engine* engine_ = nullptr;  // external, or owned_engine_.get()
  // Lazily built by ensure_engine(); handed out as a raw pointer, so the
  // owning context must outlive every sub-context and cluster using it
  // (pipelines satisfy this by construction: sub-contexts are locals
  // inside the owner's scope).
  std::unique_ptr<engine::Engine> owned_engine_;
  // Lazily built by level1_sort_grounding().
  std::unique_ptr<RoundLedger> grounding_ledger_;
  // Declared last: pooled clusters may reference owned_engine_, so they
  // must be destroyed before it.
  std::vector<SortClusterSlot> sort_pool_;
};

}  // namespace arbor::mpc
