// Level-1 MPC primitives: the dataflow operations the algorithms are
// written against, with analytic round/memory charging.
//
// Cost model (standard for S = n^δ, see [GSZ11], [ASS+18 §E], the Ghaffari
// MPA lecture notes cited by the paper):
//  * sorting N words                        — O(log_S N) = O(1/δ) rounds,
//  * broadcast / convergecast trees of
//    fan-out √S replicating k copies        — O(log_{√S} k) rounds,
//  * aggregate-by-key, prefix sums, joins   — O(1) sorts.
// Each operation here executes its semantics centrally (the simulation is a
// single process) and charges the cluster-model cost to the RoundLedger,
// including the peak per-machine and global footprints implied by the data
// volumes. The Level-0 cluster tests in tests/mpc_cluster_test.cpp validate
// that these dataflows really fit the per-round traffic caps.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

class MpcContext {
 public:
  /// `engine` (optional, not owned) is the execution backend for any
  /// Level-0 clusters spawned while running under this context; pipelines
  /// and benches thread it through so `Cluster(cfg, ledger, ctx.engine())`
  /// shares one worker pool. Null means "each cluster builds its own from
  /// cfg.execution".
  MpcContext(ClusterConfig config, RoundLedger* ledger,
             engine::Engine* engine = nullptr)
      : config_(config), ledger_(ledger), engine_(engine) {
    ARBOR_CHECK(config.num_machines > 0 && config.words_per_machine > 0);
  }

  const ClusterConfig& config() const noexcept { return config_; }
  RoundLedger* ledger() const noexcept { return ledger_; }
  engine::Engine* engine() const noexcept { return engine_; }

  /// Policy Level-0 clusters under this context should execute with.
  ExecutionPolicy execution_policy() const noexcept {
    return engine_ ? engine_->policy() : config_.execution;
  }

  /// Rounds to sort N words with S-word machines: ⌈log_S N⌉, at least 1.
  std::size_t sort_rounds(std::size_t total_words) const {
    if (total_words <= 1) return 1;
    const double s = static_cast<double>(config_.words_per_machine);
    const double r = std::log(static_cast<double>(total_words)) / std::log(s);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(r)));
  }

  /// Rounds for a fan-out-√S broadcast tree producing `copies` replicas.
  std::size_t broadcast_rounds(std::size_t copies) const {
    if (copies <= 1) return 1;
    const double fanout = std::max(
        2.0, std::sqrt(static_cast<double>(config_.words_per_machine)));
    const double r =
        std::log(static_cast<double>(copies)) / std::log(fanout);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(r)));
  }

  void charge(std::size_t rounds, const std::string& label) {
    if (ledger_) ledger_->charge(rounds, label);
  }

  void note_local_words(std::size_t words) {
    if (ledger_) ledger_->note_local_words(words);
  }

  void note_global_words(std::size_t words) {
    if (ledger_) ledger_->note_global_words(words);
  }

  /// Record the footprint of a balanced distribution of `total_words` over
  /// the cluster (the state left behind by a shuffle).
  void note_balanced(std::size_t total_words) {
    note_global_words(total_words);
    note_local_words(div_ceil(total_words, config_.num_machines));
  }

  /// Distributed sort: charges ⌈log_S(N·w)⌉ rounds and notes footprints.
  template <typename T, typename Cmp>
  void sort_items(std::vector<T>& items, Cmp cmp, std::size_t words_per_item,
                  const std::string& label) {
    const std::size_t total = items.size() * words_per_item;
    charge(sort_rounds(total), label);
    note_balanced(total);
    std::stable_sort(items.begin(), items.end(), cmp);
  }

  /// Aggregate values by key with an associative combiner; one sort + local
  /// scan. Returns (key, combined) pairs sorted by key.
  template <typename K, typename V, typename Combine>
  std::vector<std::pair<K, V>> aggregate_by_key(
      std::vector<std::pair<K, V>> items, Combine combine,
      std::size_t words_per_item, const std::string& label) {
    sort_items(
        items,
        [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
          return a.first < b.first;
        },
        words_per_item, label);
    std::vector<std::pair<K, V>> out;
    out.reserve(items.size());
    for (auto& kv : items) {
      if (!out.empty() && out.back().first == kv.first)
        out.back().second = combine(out.back().second, kv.second);
      else
        out.push_back(std::move(kv));
    }
    return out;
  }

  /// Count occurrences per key; one sort + scan.
  template <typename K>
  std::vector<std::pair<K, std::size_t>> count_by_key(
      std::vector<K> keys, const std::string& label) {
    std::vector<std::pair<K, std::size_t>> pairs;
    pairs.reserve(keys.size());
    for (auto& k : keys) pairs.emplace_back(std::move(k), std::size_t{1});
    return aggregate_by_key<K, std::size_t>(
        std::move(pairs),
        [](std::size_t a, std::size_t b) { return a + b; }, 2, label);
  }

  static std::size_t div_ceil(std::size_t a, std::size_t b) {
    return b == 0 ? 0 : (a + b - 1) / b;
  }

 private:
  ClusterConfig config_;
  RoundLedger* ledger_;
  engine::Engine* engine_ = nullptr;  // not owned; may be null
};

}  // namespace arbor::mpc
