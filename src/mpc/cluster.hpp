// Level-0 MPC simulator: explicit machines exchanging word-counted messages
// in synchronous rounds, with the model's per-machine traffic cap enforced.
//
// The algorithm layer (core/, baselines/) is written against the Level-1
// primitives in mpc/primitives.hpp, which charge analytic costs. This
// cluster exists to ground those costs: the framework tests execute real
// distributed dataflows (sample sort, broadcast trees) on it and check they
// respect the same budgets the primitives charge. It also backs the LOCAL
// model embedding used by baseline round-per-round simulation.
//
// Round execution is delegated to engine::Engine (src/engine/): the
// ExecutionPolicy knob on ClusterConfig selects the serial reference
// executor or the thread-pool-backed parallel engine. Protocols declare
// their rounds as engine::RoundPrograms (run_program) — a sequence of step
// descriptors, each tagged machine-independent or barrier — which lets the
// scheduler overlap round r's delivery with round r+1's compute;
// run_round survives as the one-step program. Every mode — serial or
// parallel, overlap on or off — produces bit-identical inboxes and ledger
// totals (tests/engine_test.cpp, tests/level0_programs_test.cpp), so any
// program written against this API can be flipped between executors
// without behavioural change — PROVIDED its step functions honour the
// engine::StepFn concurrency contract (and, for steps tagged
// machine-independent, the stricter contract in src/engine/program.hpp):
// under a parallel policy steps run concurrently for different machines
// and must only write machine-owned state.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "engine/engine.hpp"
#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"

namespace arbor::mpc {

/// Outgoing-message sink handed to the per-machine step function; enforces
/// the sender-side traffic cap as messages are queued.
using Sender = engine::Sender;

/// Read-only views over a machine's received messages.
using InboxView = engine::InboxView;
using MessageView = engine::MessageView;

/// Declarative multi-round protocol descriptor (see engine/program.hpp).
using RoundProgram = engine::RoundProgram;

class Cluster {
 public:
  /// Step function: (machine id, messages received last round, sender).
  using StepFn = engine::StepFn;

  /// Executes with an engine built from `config.execution`. When
  /// `config.transport` selects the loopback or tcp transport, a
  /// net::MultiProcessBackend (owning the worker group) is installed on
  /// that engine: distributable programs then execute across the workers,
  /// programs without a RemoteSpec keep running in-process.
  Cluster(ClusterConfig config, RoundLedger* ledger);

  /// Executes on `engine` (not owned; must outlive the cluster). Lets many
  /// clusters share one worker pool, e.g. via MpcContext::engine().
  /// `config.transport` is ignored here — a shared engine's backend is the
  /// engine owner's decision.
  Cluster(ClusterConfig config, RoundLedger* ledger, engine::Engine* engine);

  std::size_t num_machines() const noexcept { return config_.num_machines; }
  std::size_t capacity() const noexcept { return config_.words_per_machine; }
  std::size_t rounds_executed() const noexcept { return rounds_; }
  const engine::Engine& engine() const noexcept { return *engine_; }
  const ClusterConfig& config() const noexcept { return config_; }

  /// Repoint the ledger the next program's rounds are charged to. Exists
  /// for pooled clusters (MpcContext's internal sort pool): one long-lived
  /// cluster serves many sorts, each of which grounds its rounds on its
  /// own short-lived ledger. Null detaches (rounds still execute, nothing
  /// is charged) — callers must detach before their ledger dies.
  void set_ledger(RoundLedger* ledger) noexcept { ledger_ = ledger; }

  /// Reset for pooled reuse across programs: drop every queued inbox
  /// message, keeping arena capacity. Without this a reused cluster would
  /// hand the previous program's final inboxes to the next program's first
  /// round — and the net/ transport would re-ship them as preinbox
  /// frames. Outbox banks need no reset (every round clears its own), and
  /// the round counter keeps accumulating (callers diff rounds_executed()).
  void reset_inboxes() noexcept { state_.clear_inboxes(); }

  /// True when a multi-process backend is installed: distributable
  /// programs will execute across worker runtimes. Protocols use this to
  /// skip building the (input-copying) RemoteSpec when nothing would read
  /// it.
  bool distributed() const noexcept { return engine_->backend() != nullptr; }

  /// Deliver `payload` into machine `dst`'s inbox before the first round
  /// (input loading; not charged as a round). Copies straight into the
  /// inbox storage; the caller keeps ownership of its buffer.
  void preload(std::size_t dst, std::span<const Word> payload);
  void preload(std::size_t dst, std::initializer_list<Word> payload) {
    preload(dst, std::span<const Word>(payload.begin(), payload.size()));
  }

  /// Execute a RoundProgram: every step is one synchronous round charged
  /// to the ledger individually, with delivery/compute overlap where the
  /// program's step tags and the execution policy allow. Returns the
  /// program's execution stats (rounds, passes, overlapped rounds).
  engine::ProgramStats run_program(const RoundProgram& program);

  /// Execute one synchronous round — a one-step barrier program: every
  /// machine sees its inbox, emits messages; receiver-side volume is
  /// validated once per machine; inboxes swap.
  void run_round(const StepFn& step);

  /// Messages currently waiting at machine `m` (for inspection/tests).
  InboxView inbox(std::size_t m) const;

 private:
  ClusterConfig config_;
  RoundLedger* ledger_;  // not owned; may be null
  std::size_t rounds_ = 0;
  /// Multi-process transport backend when config_.transport asks for one
  /// (installed on the owned engine; distributable programs route through
  /// it, everything else keeps running in-process). Declared before the
  /// engine so the engine's pointer never outlives it.
  std::unique_ptr<engine::ProgramBackend> backend_;
  std::unique_ptr<engine::Engine> owned_engine_;
  engine::Engine* engine_;  // owned_engine_.get() or external
  engine::RoundState state_;
};

}  // namespace arbor::mpc
