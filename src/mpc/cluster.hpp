// Level-0 MPC simulator: explicit machines exchanging word-counted messages
// in synchronous rounds, with the model's per-machine traffic cap enforced.
//
// The algorithm layer (core/, baselines/) is written against the Level-1
// primitives in mpc/primitives.hpp, which charge analytic costs. This
// cluster exists to ground those costs: the framework tests execute real
// distributed dataflows (sample sort, broadcast trees) on it and check they
// respect the same budgets the primitives charge. It also backs the LOCAL
// model embedding used by baseline round-per-round simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mpc/config.hpp"
#include "mpc/ledger.hpp"

namespace arbor::mpc {

/// Outgoing-message sink handed to the per-machine step function; enforces
/// the sender-side traffic cap as messages are queued.
class Sender {
 public:
  Sender(std::size_t source, std::size_t capacity,
         std::vector<std::pair<std::size_t, std::vector<Word>>>& out)
      : source_(source), capacity_(capacity), out_(out) {}

  void send(std::size_t dst_machine, std::vector<Word> payload);

  std::size_t words_sent() const noexcept { return words_sent_; }
  std::size_t source() const noexcept { return source_; }

 private:
  std::size_t source_;
  std::size_t capacity_;
  std::size_t words_sent_ = 0;
  std::vector<std::pair<std::size_t, std::vector<Word>>>& out_;
};

class Cluster {
 public:
  /// Step function: (machine id, messages received last round, sender).
  using StepFn =
      std::function<void(std::size_t, const std::vector<std::vector<Word>>&,
                         Sender&)>;

  Cluster(ClusterConfig config, RoundLedger* ledger);

  std::size_t num_machines() const noexcept { return config_.num_machines; }
  std::size_t capacity() const noexcept { return config_.words_per_machine; }
  std::size_t rounds_executed() const noexcept { return rounds_; }

  /// Deliver `payload` into machine `dst`'s inbox before the first round
  /// (input loading; not charged as a round).
  void preload(std::size_t dst, std::vector<Word> payload);

  /// Execute one synchronous round: every machine sees its inbox, emits
  /// messages; receiver-side volume is validated; inboxes swap.
  void run_round(const StepFn& step);

  /// Messages currently waiting at machine `m` (for inspection/tests).
  const std::vector<std::vector<Word>>& inbox(std::size_t m) const {
    return inboxes_.at(m);
  }

 private:
  ClusterConfig config_;
  RoundLedger* ledger_;  // not owned; may be null
  std::size_t rounds_ = 0;
  std::vector<std::vector<std::vector<Word>>> inboxes_;  // per machine
};

}  // namespace arbor::mpc
