#include "mpc/config.hpp"

#include "util/env_knob.hpp"

namespace arbor::mpc {

bool parse_bool_flag(std::string_view value, std::string_view what) {
  return util::parse_bool_knob(value, what);
}

TransportConfig parse_transport_flag(std::string_view value,
                                     std::string_view what) {
  const auto [kind, arg] = util::split_knob(value);
  // "tcp:" is a truncated "tcp:N" (or a script interpolating an empty
  // variable) — strict means strict, not "fall back to the default".
  if (arg && arg->empty())
    util::reject_knob(what, value, "worker count is empty");

  TransportConfig cfg;
  if (kind == "inprocess" || kind == "in-process") {
    cfg.kind = TransportConfig::Kind::kInProcess;
    if (arg)
      util::reject_knob(what, value,
                        "the in-process transport takes no worker count");
    return cfg;
  } else if (kind == "loopback") {
    cfg.kind = TransportConfig::Kind::kLoopback;
  } else if (kind == "tcp") {
    cfg.kind = TransportConfig::Kind::kTcp;
  } else {
    util::reject_knob(what, value,
                      "not a transport (use inprocess, loopback[:workers], "
                      "or tcp[:workers])");
  }

  if (arg)
    cfg.workers = util::parse_count_knob(*arg, "worker count", 1, 1024, what,
                                         value);
  return cfg;
}

bool distributed_level1_env_default() {
  static const bool value = [] {
    const auto env = util::env_knob("ARBOR_DISTRIBUTED_LEVEL1");
    if (!env) return false;
    return parse_bool_flag(*env, "ARBOR_DISTRIBUTED_LEVEL1");
  }();
  return value;
}

TransportConfig transport_env_default() {
  static const TransportConfig value = [] {
    const auto env = util::env_knob("ARBOR_TRANSPORT");
    if (!env) return TransportConfig{};
    return parse_transport_flag(*env, "ARBOR_TRANSPORT");
  }();
  return value;
}

bool route_aggregation_env_default() {
  static const bool value = [] {
    const auto env = util::env_knob("ARBOR_ROUTE_AGGREGATION");
    if (!env) return true;
    return parse_bool_flag(*env, "ARBOR_ROUTE_AGGREGATION");
  }();
  return value;
}

bool merge_path_env_default() {
  static const bool value = [] {
    const auto env = util::env_knob("ARBOR_MERGE_PATH");
    if (!env) return true;
    return parse_bool_flag(*env, "ARBOR_MERGE_PATH");
  }();
  return value;
}

bool fetch_cache_env_default() {
  static const bool value = [] {
    const auto env = util::env_knob("ARBOR_FETCH_CACHE");
    if (!env) return true;
    return parse_bool_flag(*env, "ARBOR_FETCH_CACHE");
  }();
  return value;
}

}  // namespace arbor::mpc
