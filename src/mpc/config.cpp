#include "mpc/config.hpp"

#include <cstdlib>
#include <string_view>

namespace arbor::mpc {

bool distributed_level1_env_default() {
  static const bool value = [] {
    const char* env = std::getenv("ARBOR_DISTRIBUTED_LEVEL1");
    if (env == nullptr) return false;
    const std::string_view v(env);
    return v == "1" || v == "on" || v == "true" || v == "yes";
  }();
  return value;
}

}  // namespace arbor::mpc
