#include "mpc/config.hpp"

#include <cstdlib>
#include <string>

namespace arbor::mpc {

bool parse_bool_flag(std::string_view value, std::string_view what) {
  if (value == "1" || value == "on" || value == "true" || value == "yes")
    return true;
  if (value == "0" || value == "off" || value == "false" || value == "no")
    return false;
  ARBOR_CHECK_MSG(false, std::string(what) + "=\"" + std::string(value) +
                             "\" is not a boolean flag (use 1/on/true/yes "
                             "or 0/off/false/no)");
  return false;  // unreachable
}

TransportConfig parse_transport_flag(std::string_view value,
                                     std::string_view what) {
  std::string_view kind = value;
  std::string_view workers_part;
  bool has_colon = false;
  if (const auto colon = value.find(':'); colon != std::string_view::npos) {
    kind = value.substr(0, colon);
    workers_part = value.substr(colon + 1);
    has_colon = true;
    // "tcp:" is a truncated "tcp:N" (or a script interpolating an empty
    // variable) — strict means strict, not "fall back to the default".
    ARBOR_CHECK_MSG(!workers_part.empty(),
                    std::string(what) + "=\"" + std::string(value) +
                        "\": worker count is empty");
  }

  TransportConfig cfg;
  if (kind == "inprocess" || kind == "in-process") {
    cfg.kind = TransportConfig::Kind::kInProcess;
    ARBOR_CHECK_MSG(!has_colon,
                    std::string(what) + "=\"" + std::string(value) +
                        "\": the in-process transport takes no worker count");
    return cfg;
  } else if (kind == "loopback") {
    cfg.kind = TransportConfig::Kind::kLoopback;
  } else if (kind == "tcp") {
    cfg.kind = TransportConfig::Kind::kTcp;
  } else {
    ARBOR_CHECK_MSG(false, std::string(what) + "=\"" + std::string(value) +
                               "\" is not a transport (use inprocess, "
                               "loopback[:workers], or tcp[:workers])");
  }

  if (!workers_part.empty()) {
    std::size_t workers = 0;
    for (char c : workers_part) {
      ARBOR_CHECK_MSG(c >= '0' && c <= '9',
                      std::string(what) + "=\"" + std::string(value) +
                          "\": worker count is not a number");
      workers = workers * 10 + static_cast<std::size_t>(c - '0');
      ARBOR_CHECK_MSG(workers <= 1024,
                      std::string(what) + "=\"" + std::string(value) +
                          "\": worker count out of range");
    }
    ARBOR_CHECK_MSG(workers >= 1, std::string(what) + "=\"" +
                                      std::string(value) +
                                      "\": worker count must be >= 1");
    cfg.workers = workers;
  }
  return cfg;
}

bool distributed_level1_env_default() {
  static const bool value = [] {
    const char* env = std::getenv("ARBOR_DISTRIBUTED_LEVEL1");
    if (env == nullptr || *env == '\0') return false;
    return parse_bool_flag(env, "ARBOR_DISTRIBUTED_LEVEL1");
  }();
  return value;
}

TransportConfig transport_env_default() {
  static const TransportConfig value = [] {
    const char* env = std::getenv("ARBOR_TRANSPORT");
    if (env == nullptr || *env == '\0') return TransportConfig{};
    return parse_transport_flag(env, "ARBOR_TRANSPORT");
  }();
  return value;
}

}  // namespace arbor::mpc
