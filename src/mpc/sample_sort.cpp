#include "mpc/sample_sort.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "engine/records.hpp"
#include "net/registry.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

namespace {

// Machine-local state of a word sample sort. One builder produces the
// program for both deployments: the driver's in-process run (state over
// the full input) and a worker's block share (state holds only its
// machines' slabs) — which is what makes the transport an execution
// detail rather than a second protocol implementation.
struct WordSortState {
  std::vector<std::vector<Word>> slabs;  ///< indexed by global machine id
  std::size_t machines = 0;
  std::size_t samples_per_machine = 0;
};

// The whole sort is one RoundProgram of three machine-independent steps:
// each step reads only its machine's inbox and machine-owned slab state,
// so the scheduler may overlap a round's delivery with the next round's
// compute (splitter selection on machine 0 starts while the sample
// messages for other machines are still being delivered, and so on).
engine::RoundProgram make_word_sort_program(
    std::shared_ptr<WordSortState> st) {
  const std::size_t machines = st->machines;
  engine::RoundProgram program;

  // Step 1: every machine sends an evenly-spaced sample of its slab to
  // machine 0 (the splitter coordinator). The sample count is clamped to
  // the slab size so indices never repeat — a slab smaller than
  // samples_per_machine contributes each key once instead of skewing the
  // pool toward its low keys.
  program.independent([st](std::size_t m, const auto&, Sender& send) {
    std::vector<Word> sample;
    const auto& slab = st->slabs[m];
    if (!slab.empty()) {
      std::vector<Word> sorted = slab;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t samples =
          std::min(st->samples_per_machine, sorted.size());
      for (std::size_t i = 0; i < samples; ++i) {
        const std::size_t idx = i * sorted.size() / samples;
        sample.push_back(sorted[idx]);
      }
    }
    send.send(0, sample);
  });

  // Step 2: coordinator picks machines-1 splitters from the pooled sample
  // and broadcasts them. The broadcast happens even when the splitter set
  // is empty — a single-machine cluster needs no splitters, and an
  // all-empty pool has none to offer — so the routing round can rely on
  // the message being present rather than on an accident of the protocol.
  // (For machines ≤ √S the broadcast fits directly; a bigger cluster would
  // relay through a fan-out-√S tree at the same asymptotic cost.)
  program.independent([st, machines](std::size_t m, const auto& inbox,
                                     Sender& send) {
    if (m != 0) return;
    std::vector<Word> chosen;
    if (machines > 1) {
      std::vector<Word> pool;
      for (const auto& msg : inbox) pool.insert(pool.end(), msg.begin(),
                                                msg.end());
      std::sort(pool.begin(), pool.end());
      for (std::size_t b = 1; b < machines; ++b) {
        if (pool.empty()) break;
        chosen.push_back(pool[b * pool.size() / machines]);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      send.send(dst, chosen);
  });

  // Step 3: route every key to its bucket machine (binary search over the
  // received splitters); buckets sort locally after delivery. The splitter
  // message is always present (step 2 broadcasts explicitly, empty or
  // not); an empty splitter set routes everything to machine 0.
  program.independent([st, machines](std::size_t m, const auto& inbox,
                                     Sender& send) {
    ARBOR_CHECK_MSG(!inbox.empty(), "splitter broadcast missing");
    const auto split = inbox.front();  // zero-copy view of the message
    std::vector<std::vector<Word>> outgoing(machines);
    for (Word key : st->slabs[m]) {
      const std::size_t bucket = static_cast<std::size_t>(
          std::upper_bound(split.begin(), split.end(), key) -
          split.begin());
      outgoing[bucket].push_back(key);
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  return program;
}

// ----------------------------------------------- record sort (multi-word)

struct RecordSortState {
  std::vector<std::vector<Word>> slabs;   ///< inputs; key-sorted by step 1
  std::vector<std::vector<Word>> result;  ///< step 4 writes slot m
  std::size_t machines = 0;
  std::size_t record_width = 0;
  std::size_t key_words = 0;
  std::size_t samples_per_machine = 0;
};

// One RoundProgram of four machine-independent steps (3 communication +
// 1 compute-only): every step touches only its machine's inbox and
// machine-owned slabs, so the scheduler can overlap each delivery with
// the next step's compute.
engine::RoundProgram make_record_sort_program(
    std::shared_ptr<RecordSortState> st) {
  const std::size_t machines = st->machines;
  const std::size_t record_width = st->record_width;
  const std::size_t key_words = st->key_words;
  engine::RoundProgram program;

  // Step 1: each machine key-sorts its slab and sends an evenly-spaced,
  // clamped sample of key prefixes to the coordinator. Sorting mutates
  // only slabs[m] — machine-owned state, safe under the engine's
  // concurrency contract — and the sorted slab is reused by the routing
  // round.
  program.independent([st, record_width, key_words](std::size_t m,
                                                    const auto&,
                                                    Sender& send) {
    engine::stable_sort_records(st->slabs[m], record_width, key_words);
    send.send(0, engine::sample_record_keys(st->slabs[m], record_width,
                                            key_words,
                                            st->samples_per_machine));
  });

  // Step 2: coordinator pools the sampled keys, picks machines-1 splitter
  // keys at the sample quantiles, and broadcasts them — explicitly empty
  // for a single-machine cluster or an all-empty pool (see the word sort).
  program.independent([st, machines, key_words](std::size_t m,
                                                const auto& inbox,
                                                Sender& send) {
    if (m != 0) return;
    std::vector<Word> chosen;
    if (machines > 1) {
      std::vector<Word> pool;
      for (const auto& msg : inbox)
        pool.insert(pool.end(), msg.begin(), msg.end());
      engine::stable_sort_records(pool, key_words, key_words);
      const std::size_t pooled = pool.size() / key_words;
      for (std::size_t b = 1; b < machines && pooled > 0; ++b) {
        const Word* key = pool.data() + (b * pooled / machines) * key_words;
        chosen.insert(chosen.end(), key, key + key_words);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      send.send(dst, chosen);
  });

  // Step 3: route every record to its bucket machine. bucket(r) = number
  // of splitter keys ≤ key(r) — the record-key analogue of the word
  // version's upper_bound — so an empty splitter set routes everything to
  // machine 0.
  program.independent([st, machines, record_width, key_words](
                          std::size_t m, const auto& inbox, Sender& send) {
    ARBOR_CHECK_MSG(!inbox.empty(), "splitter broadcast missing");
    const auto split = inbox.front().span();
    const std::size_t num_split = split.size() / key_words;
    const auto& slab = st->slabs[m];
    const std::size_t records =
        engine::record_count(slab.size(), record_width);
    std::vector<std::vector<Word>> outgoing(machines);
    for (std::size_t r = 0; r < records; ++r) {
      const Word* rec = slab.data() + r * record_width;
      std::size_t lo = 0, hi = num_split;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (engine::compare_keys(split.data() + mid * key_words, rec,
                                 key_words) <= 0)
          lo = mid + 1;
        else
          hi = mid;
      }
      outgoing[lo].insert(outgoing[lo].end(), rec, rec + record_width);
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 4 (compute-only, no messages): each bucket machine concatenates
  // its routed records and key-sorts them. Running this inside a round —
  // instead of on the calling thread after the fact — lets the engine
  // spread the final sorts across its workers; each step writes only its
  // own preallocated result slab, honouring the concurrency contract.
  // Under the async scheduler this compute even overlaps the routing
  // round's delivery: bucket m starts sorting as soon as its own records
  // arrive. Delivery order is (source machine asc, send order) in every
  // mode — the transport keeps it too — so the stable sort makes the
  // result deterministic and, with a full-record key, the unique total
  // order.
  program.independent([st, record_width, key_words](std::size_t m,
                                                    const auto& inbox,
                                                    Sender&) {
    auto& slab = st->result[m];
    slab.reserve(inbox.total_words());
    for (const auto& msg : inbox)
      slab.insert(slab.end(), msg.begin(), msg.end());
    engine::stable_sort_records(slab, record_width, key_words);
  });

  return program;
}

}  // namespace

SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  // Machine-local state lives here (the cluster only moves messages).
  auto st = std::make_shared<WordSortState>();
  st->slabs = input;
  st->machines = machines;
  st->samples_per_machine = samples_per_machine;

  engine::RoundProgram program = make_word_sort_program(st);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.sample_sort";
    spec.scalars = {static_cast<Word>(samples_per_machine)};
    spec.inputs = input;
    program.distributable(std::move(spec));
  }

  cluster.run_program(program);

  // The buckets sit in the inboxes when the program returns — identically
  // under every backend (the transport syncs final inboxes back).
  SampleSortResult result;
  result.slabs.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    for (const auto& msg : cluster.inbox(m))
      result.slabs[m].insert(result.slabs[m].end(), msg.begin(), msg.end());
    std::sort(result.slabs[m].begin(), result.slabs[m].end());
  }
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

RecordSortResult sample_sort_records(
    Cluster& cluster, std::vector<std::vector<Word>> input,
    std::size_t record_width, std::size_t key_words,
    std::size_t samples_per_machine) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(record_width > 0);
  if (key_words == 0) key_words = record_width;
  ARBOR_CHECK(key_words <= record_width);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  for (const auto& slab : input)
    engine::record_count(slab.size(), record_width);  // validates widths

  auto st = std::make_shared<RecordSortState>();
  st->machines = machines;
  st->record_width = record_width;
  st->key_words = key_words;
  st->samples_per_machine = samples_per_machine;
  st->result.resize(machines);

  engine::RoundProgram program = make_record_sort_program(st);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.sample_sort_records";
    spec.scalars = {static_cast<Word>(record_width),
                    static_cast<Word>(key_words),
                    static_cast<Word>(samples_per_machine)};
    spec.inputs = input;  // copy: the state takes the originals below
    spec.has_output = true;
    spec.output_sink = [st](std::size_t m, std::span<const Word> slab) {
      st->result[m].assign(slab.begin(), slab.end());
    };
    program.distributable(std::move(spec));
  }
  st->slabs = std::move(input);

  cluster.run_program(program);

  RecordSortResult result;
  result.slabs = std::move(st->result);
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

void register_sample_sort_programs(net::Registry& registry) {
  registry.add("mpc.sample_sort", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 1,
                    "mpc.sample_sort expects 1 scalar");
    auto st = std::make_shared<WordSortState>();
    st->machines = in.machines;
    st->samples_per_machine = static_cast<std::size_t>(in.scalars[0]);
    st->slabs.resize(in.machines);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m)
      st->slabs[m] = in.inputs[m - in.block_begin];
    net::WorkerProgram out;
    out.program = make_word_sort_program(st);
    out.state = st;
    return out;
  });

  registry.add("mpc.sample_sort_records", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 3,
                    "mpc.sample_sort_records expects 3 scalars");
    auto st = std::make_shared<RecordSortState>();
    st->machines = in.machines;
    st->record_width = static_cast<std::size_t>(in.scalars[0]);
    st->key_words = static_cast<std::size_t>(in.scalars[1]);
    st->samples_per_machine = static_cast<std::size_t>(in.scalars[2]);
    ARBOR_CHECK(st->record_width > 0 && st->key_words > 0 &&
                st->key_words <= st->record_width);
    st->slabs.resize(in.machines);
    st->result.resize(in.machines);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m) {
      st->slabs[m] = in.inputs[m - in.block_begin];
      engine::record_count(st->slabs[m].size(), st->record_width);
    }
    net::WorkerProgram out;
    out.program = make_record_sort_program(st);
    out.state = st;
    out.output = [st](std::size_t m) { return st->result[m]; };
    return out;
  });
}

}  // namespace arbor::mpc
