#include "mpc/sample_sort.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "check/ownership.hpp"
#include "engine/records.hpp"
#include "net/registry.hpp"
#include "obs/cost_model.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

namespace {

// Machine-local state of a sample sort. The word sort is the width-1
// special case of the record sort, so one state serves all four programs
// ({word, record} × {coordinator, tree}). One builder set produces the
// program for both deployments: the driver's in-process run (state over
// the full input) and a worker's block share (state holds only its
// machines' slabs) — which is what makes the transport an execution
// detail rather than a second protocol implementation.
struct SortState {
  std::vector<std::vector<Word>> slabs;   ///< inputs; key-sorted by step 1
  std::vector<std::vector<Word>> result;  ///< record sorts: final step slot m
  /// Tree strategy only: machine m's own group's fine splitter keys,
  /// parsed out of the down packet by the route step and consumed by the
  /// placement step (machine-owned state handed between m's own steps —
  /// allowed by the machine-independent contract).
  std::vector<std::vector<Word>> fine;
  std::size_t machines = 0;
  std::size_t record_width = 1;
  std::size_t key_words = 1;
  std::size_t samples_per_machine = 0;
  /// Route rounds ship whole buckets as contiguous spans via
  /// engine::send_records (ClusterConfig::route_aggregation) instead of
  /// the per-record upper_bound + append-buffer path. Same messages, same
  /// ledger charges — only the copy count differs.
  bool aggregate_routes = true;
  /// Replace the concat-then-re-sort sites with engine::merge_sorted_inbox
  /// (ClusterConfig::merge_path). The sample pools are ALWAYS mergeable —
  /// every pool message is a sorted sample (sample_record_keys of a sorted
  /// slab, or a re-sorted relay pool) — so those sites gate on merge_path
  /// alone. The final bucket assembly is mergeable only when the route
  /// rounds shipped contiguous sorted spans, so it gates on merge_path AND
  /// aggregate_routes (the per-record path sends unsorted concatenations).
  /// Bit-identical either way: delivery order is run order, and the merge
  /// breaks ties to the earliest run exactly like the stable re-sort did.
  bool merge_path = true;
};

// ---------------------------------------------------------- tree topology

// ⌈√p⌉-ary splitter relay tree: machines are cut into G = ⌈p/r⌉ contiguous
// groups of r = ⌈√p⌉ (the last possibly smaller, never empty); a group's
// first machine is its relay, machine 0 (relay of group 0) the root.
// Bucket b is owned by machine b, so group boundaries in machine space are
// also bucket-range boundaries in splitter space — which is what lets the
// down-relay ship each group only the G−1 boundary splitters plus its own
// members(g)−1 interior splitters instead of all p−1.
struct SplitterTree {
  std::size_t machines = 0;
  std::size_t group_size = 0;  ///< r = ⌈√p⌉
  std::size_t groups = 0;      ///< G = ⌈p/r⌉ ≤ r

  static SplitterTree over(std::size_t machines) {
    SplitterTree t;
    t.machines = machines;
    t.group_size = 1;
    while (t.group_size * t.group_size < machines) ++t.group_size;
    t.groups = (machines + t.group_size - 1) / t.group_size;
    return t;
  }

  std::size_t group_of(std::size_t m) const { return m / group_size; }
  bool is_relay(std::size_t m) const { return m % group_size == 0; }
  std::size_t relay_of(std::size_t g) const { return g * group_size; }
  std::size_t group_begin(std::size_t g) const { return g * group_size; }
  std::size_t group_end(std::size_t g) const {
    return std::min(machines, (g + 1) * group_size);
  }
  std::size_t members(std::size_t g) const {
    return group_end(g) - group_begin(g);
  }
};

// Count of keys in a key-sorted arena comparing ≤ rec's key — the bucket
// rule of both strategies (a key equal to a splitter goes to the bucket
// above it, like std::upper_bound). Applying it to the boundary splitters
// yields the destination group, to a group's interior splitters the
// in-group offset: both levels count the same global splitter sequence,
// so two-hop routing lands every record on exactly the machine the
// one-hop coordinator rule would pick.
std::size_t keys_at_most(const Word* keys, std::size_t num_keys,
                         const Word* rec, std::size_t key_words) {
  std::size_t lo = 0;
  std::size_t hi = num_keys;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (engine::compare_keys(keys + mid * key_words, rec, key_words) <= 0)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

// p−1 splitter keys at the quantiles of a key-sorted pool (entries may
// repeat when the pool is smaller than p−1; repeats only make some
// buckets empty). Empty when the pool is empty or the cluster has one
// machine — "no splitters" routes everything to machine 0.
std::vector<Word> pick_splitters(const std::vector<Word>& pool,
                                 std::size_t machines,
                                 std::size_t key_words) {
  std::vector<Word> chosen;
  const std::size_t pooled = pool.size() / key_words;
  if (machines <= 1 || pooled == 0) return chosen;
  chosen.reserve((machines - 1) * key_words);
  for (std::size_t b = 1; b < machines; ++b) {
    const Word* key = pool.data() + (b * pooled / machines) * key_words;
    chosen.insert(chosen.end(), key, key + key_words);
  }
  return chosen;
}

std::vector<Word> pool_inbox(const engine::InboxView& inbox) {
  std::vector<Word> pool;
  pool.reserve(inbox.total_words());
  for (const auto& msg : inbox) pool.insert(pool.end(), msg.begin(),
                                            msg.end());
  return pool;
}

// Key-sorted sample pool of an inbox. Every pool message is a sorted run
// (an evenly-spaced sample of a sorted slab, or a relay's re-thinned
// sorted pool), so the merge path k-way merges the runs in delivery order;
// the baseline concatenates and stable-re-sorts, which yields the same
// words (merge ties resolve to the earliest run — exactly what the stable
// sort preserved).
std::vector<Word> sorted_pool(const engine::InboxView& inbox, std::size_t kw,
                              bool merge_path) {
  if (merge_path) {
    std::vector<Word> pool;
    engine::merge_sorted_inbox(inbox, kw, kw, pool);
    return pool;
  }
  std::vector<Word> pool = pool_inbox(inbox);
  engine::stable_sort_records(pool, kw, kw);
  return pool;
}

// Final compute-only round of the record sorts (either strategy): each
// bucket machine assembles its routed records into its result slot, sorted
// — inside a round so the engine spreads the final sorts across its
// workers, and under the async scheduler overlapping the last route
// round's delivery. Each step writes only its own preallocated result
// slab, honouring the concurrency contract. Under merge_path AND
// aggregate_routes the routed messages are contiguous sorted spans of
// senders' key-sorted slabs, so the slab is a k-way merge instead of a
// concat-and-re-sort; the per-record route ships unsorted concatenations,
// so it always takes the re-sort.
void append_bucket_sort_step(engine::RoundProgram& program, std::string name,
                             std::shared_ptr<SortState> st) {
  const std::size_t width = st->record_width;
  const std::size_t kw = st->key_words;
  program.independent(
      std::move(name),
      [st, width, kw](std::size_t m, const auto& inbox, Sender&) {
        auto& slab = st->result[m];
        if (st->merge_path && st->aggregate_routes) {
          engine::merge_sorted_inbox(inbox, width, kw, slab);
          return;
        }
        slab.reserve(inbox.total_words());
        for (const auto& msg : inbox)
          slab.insert(slab.end(), msg.begin(), msg.end());
        engine::stable_sort_records(slab, width, kw);
      });
}

// ------------------------------------------------- tree splitter program
//
// Six communication rounds whose per-machine volume is O(√p·s·key_words)
// words in every splitter round (s = samples per machine) and O(slab) in
// the route rounds — the coordinator's Θ(p·s) pool and Θ(p²) broadcast
// hot-spots never form, so the dataflow fits the model's S-cap at any p:
//
//   up    leaves send clamped evenly-spaced samples to their relay
//         (relay receives ≤ r·s keys);
//   up    relays re-sample their pool down to s keys and forward to the
//         root (root receives ≤ G·s keys);
//   pick  the root picks the p−1 splitters and scatters per-group packets
//         [n_coarse, n_fine | boundary splitters | group g's interior
//         splitters] — ≤ (G−1) + (r−1) keys per packet;
//   down  relays forward their packet to every group member;
//   route every machine keeps its group's fine splitters and sends each
//         record to a spread member of its destination group (boundary
//         splitters only);
//   route the spread members place each received record on its final
//         bucket machine (own group's fine splitters).
//
// A seventh, compute-only round (record sorts) key-sorts every bucket.
//
// The explicit [n_coarse, n_fine] packet header keeps "no splitters"
// (machines == 1, all-empty pool) a clean parseable message, and a relay
// whose children had no samples still scatters/forwards clean headers —
// the route rounds rely on the packet being present, never on an accident
// of the protocol.
engine::RoundProgram make_tree_sort_program(std::shared_ptr<SortState> st,
                                            bool bucket_sort_round) {
  const std::size_t machines = st->machines;
  const std::size_t width = st->record_width;
  const std::size_t kw = st->key_words;
  const SplitterTree tree = SplitterTree::over(machines);
  st->fine.assign(machines, {});
  engine::RoundProgram program;

  // Round 1 — leaves → relays. Key-sorting slabs[m] in place mutates only
  // machine-owned state; the sorted slab is reused by the route round (for
  // the word sort the order of a slab is meaningless anyway). Samples are
  // clamped to the slab size (no repeated indices); an empty slab sends
  // nothing — the relay pools whatever arrives.
  program.independent(
      "sample_sort.tree.up",
      [st, tree, width, kw](std::size_t m, const auto&, Sender& send) {
        engine::stable_sort_records(st->slabs[m], width, kw);
        const std::vector<Word> sample = engine::sample_record_keys(
            st->slabs[m], width, kw, st->samples_per_machine);
        if (!sample.empty())
          send.send(tree.relay_of(tree.group_of(m)), sample);
      });

  // Round 2 — relays → root: pool the ≤ r children's samples, re-sample
  // the pool down to the per-machine budget (sample-of-samples: the root's
  // pool stays ≤ G·s keys instead of p·s), forward to the root.
  program.independent(
      "sample_sort.tree.up",
      [st, tree, kw](std::size_t m, const auto& inbox, Sender& send) {
        if (!tree.is_relay(m)) return;
        const std::vector<Word> pool = sorted_pool(inbox, kw, st->merge_path);
        const std::vector<Word> thinned = engine::sample_record_keys(
            pool, kw, kw, st->samples_per_machine);
        if (!thinned.empty()) send.send(0, thinned);
      });

  // Round 3 — the root picks the p−1 splitters from the thinned pool and
  // scatters one packet per group: the G−1 boundary splitters t_r, t_2r, …
  // (chosen indices j·r−1, always in range because every group is
  // non-empty) plus group g's interior splitters (chosen indices
  // group_begin(g) … group_end(g)−2: members(g)−1 keys).
  program.independent(
      "sample_sort.tree.pick",
      [st, tree, machines, kw](std::size_t m, const auto& inbox,
                               Sender& send) {
        if (m != 0) return;
        const std::vector<Word> pool = sorted_pool(inbox, kw, st->merge_path);
        const std::vector<Word> chosen =
            pick_splitters(pool, machines, kw);
        for (std::size_t g = 0; g < tree.groups; ++g) {
          std::vector<Word> packet(2, 0);
          if (!chosen.empty()) {
            for (std::size_t j = 1; j < tree.groups; ++j) {
              const Word* key =
                  chosen.data() + (j * tree.group_size - 1) * kw;
              packet.insert(packet.end(), key, key + kw);
              ++packet[0];
            }
            for (std::size_t i = tree.group_begin(g);
                 i + 1 < tree.group_end(g); ++i) {
              const Word* key = chosen.data() + i * kw;
              packet.insert(packet.end(), key, key + kw);
              ++packet[1];
            }
          }
          send.send(tree.relay_of(g), packet);
        }
      });

  // Round 4 — relays forward their packet verbatim to every group member
  // (including themselves).
  program.independent(
      "sample_sort.tree.down",
      [tree](std::size_t m, const auto& inbox, Sender& send) {
        if (!tree.is_relay(m)) return;
        ARBOR_CHECK_MSG(!inbox.empty(),
                        "splitter tree: relay " + std::to_string(m) +
                            " missing its splitter packet from the root");
        const std::vector<Word> packet = inbox.front();
        const std::size_t g = tree.group_of(m);
        for (std::size_t dst = tree.group_begin(g);
             dst < tree.group_end(g); ++dst)
          send.send(dst, packet);
      });

  // Round 5 — parse the packet (keeping the group's fine splitters for the
  // placement round), then send every record to a spread member of its
  // destination group: member (m mod members(g)), so a group's incoming
  // volume spreads across its members instead of flooding the relay.
  program.independent(
      "sample_sort.tree.route",
      [st, tree, width, kw](std::size_t m, const auto& inbox,
                            Sender& send) {
        ARBOR_CHECK_MSG(
            !inbox.empty(),
            "splitter tree: machine " + std::to_string(m) +
                " missing its splitter packet from relay " +
                std::to_string(tree.relay_of(tree.group_of(m))));
        const std::span<const Word> packet = inbox.front().span();
        ARBOR_CHECK_MSG(packet.size() >= 2,
                        "splitter tree: truncated splitter packet on "
                        "machine " +
                            std::to_string(m));
        const auto n_coarse = static_cast<std::size_t>(packet[0]);
        const auto n_fine = static_cast<std::size_t>(packet[1]);
        ARBOR_CHECK_MSG(packet.size() == 2 + (n_coarse + n_fine) * kw,
                        "splitter tree: splitter packet header disagrees "
                        "with its payload on machine " +
                            std::to_string(m));
        const Word* coarse = packet.data() + 2;
        st->fine[m].assign(packet.begin() + 2 + n_coarse * kw,
                           packet.end());

        const auto& slab = st->slabs[m];
        const auto spread_member = [&tree, m](std::size_t g) {
          return tree.group_begin(g) + (m % tree.members(g));
        };
        if (st->aggregate_routes) {
          // The slab is key-sorted (round 1), so each destination group's
          // records are one contiguous span: partition once against the
          // boundary splitters and ship bucket g as a single message.
          engine::send_records(send, std::span<const Word>(slab), width, kw,
                               std::span<const Word>(coarse, n_coarse * kw),
                               spread_member);
          return;
        }
        const std::size_t records = slab.size() / width;
        // At most one destination per group (the spread member), so the
        // buffers are G-wide, not p-wide — wide clusters stay linear.
        std::vector<std::vector<Word>> outgoing(tree.groups);
        for (std::size_t i = 0; i < records; ++i) {
          const Word* rec = slab.data() + i * width;
          const std::size_t g = keys_at_most(coarse, n_coarse, rec, kw);
          outgoing[g].insert(outgoing[g].end(), rec, rec + width);
        }
        for (std::size_t g = 0; g < tree.groups; ++g)
          if (!outgoing[g].empty()) send.send(spread_member(g), outgoing[g]);
      });

  // Round 6 — place every received record on its final bucket machine
  // using the group's fine splitters (final machine = group base + count
  // of fine splitters ≤ key). Records pool per destination across the
  // inbox in delivery order (source asc, send order), so the final
  // buckets' contents are deterministic in every mode.
  program.independent(
      "sample_sort.tree.route",
      [st, tree, width, kw](std::size_t m, const auto& inbox,
                            Sender& send) {
        const std::vector<Word>& fine = st->fine[m];
        const std::size_t n_fine = fine.size() / kw;
        const std::size_t g = tree.group_of(m);
        const std::size_t base = tree.group_begin(g);
        if (st->aggregate_routes) {
          // Each incoming message is a contiguous bucket of some sender's
          // key-sorted slab (round 5), so it splits into spans against the
          // fine splitters the same way a whole slab would; each span ships
          // directly as one message (slab → outbox, no intermediate
          // buffer). Message boundaries differ from the per-record path's
          // one-frame-per-bucket shape, but each bucket machine still
          // receives ITS records from any given sender in that sender's
          // inbox order — every bucket is a distinct destination, so
          // filtering a sender's emission sequence down to one receiver
          // yields the same record sequence either way, and caps and
          // ledger totals count payload words only.
          for (const auto& msg : inbox)
            engine::send_records(send, msg.span(), width, kw,
                                 std::span<const Word>(fine),
                                 [base](std::size_t local) {
                                   return base + local;
                                 });
          return;
        }
        // Placement is intra-group: buffers are members(g)-wide.
        std::vector<std::vector<Word>> outgoing(tree.members(g));
        for (const auto& msg : inbox) {
          const std::span<const Word> span = msg.span();
          const std::size_t records = span.size() / width;
          for (std::size_t i = 0; i < records; ++i) {
            const Word* rec = span.data() + i * width;
            const std::size_t local =
                keys_at_most(fine.data(), n_fine, rec, kw);
            outgoing[local].insert(outgoing[local].end(), rec,
                                   rec + width);
          }
        }
        for (std::size_t local = 0; local < outgoing.size(); ++local)
          if (!outgoing[local].empty())
            send.send(base + local, outgoing[local]);
      });

  // Round 7 (record sorts only): the parallel bucket sorts. The word sort
  // skips this: its buckets stay in the inboxes, where the driver reads
  // them (the same contract as the coordinator program).
  if (bucket_sort_round)
    append_bucket_sort_step(program, "sample_sort.tree.sort", st);

  return program;
}

// ------------------------------------------- coordinator splitter program
//
// The legacy all-to-one pattern, kept as the A/B baseline: every machine
// sends its samples to machine 0, which picks and broadcasts all p−1
// splitters; one route round. The pooled sample is Θ(p·s) at the
// coordinator and the broadcast Θ(p²) total, so this shape needs
// p·(s+1)·key_words ≤ S — p ≤ √S machines.
engine::RoundProgram make_coordinator_sort_program(
    std::shared_ptr<SortState> st, bool bucket_sort_round) {
  const std::size_t machines = st->machines;
  const std::size_t width = st->record_width;
  const std::size_t kw = st->key_words;
  engine::RoundProgram program;

  // Step 1: each machine key-sorts its slab and sends an evenly-spaced,
  // clamped sample of key prefixes to the coordinator.
  program.independent(
      "sample_sort.central.sample",
      [st, width, kw](std::size_t m, const auto&, Sender& send) {
        engine::stable_sort_records(st->slabs[m], width, kw);
        send.send(0, engine::sample_record_keys(st->slabs[m], width, kw,
                                                st->samples_per_machine));
      });

  // Step 2: coordinator pools the sampled keys, picks p−1 splitter keys at
  // the sample quantiles, and broadcasts them. The broadcast happens even
  // when the splitter set is empty — a single-machine cluster needs no
  // splitters, and an all-empty pool has none to offer — so the routing
  // round can rely on the message being present rather than on an
  // accident of the protocol.
  program.independent(
      "sample_sort.central.splitters",
      [st, machines, kw](std::size_t m, const auto& inbox, Sender& send) {
        if (m != 0) return;
        const std::vector<Word> pool = sorted_pool(inbox, kw, st->merge_path);
        const std::vector<Word> chosen =
            pick_splitters(pool, machines, kw);
        for (std::size_t dst = 0; dst < machines; ++dst)
          send.send(dst, chosen);
      });

  // Step 3: route every record to its bucket machine — the count of
  // splitter keys ≤ key(r); an empty splitter set routes everything to
  // machine 0.
  program.independent(
      "sample_sort.central.route",
      [st, machines, width, kw](std::size_t m, const auto& inbox,
                                Sender& send) {
        ARBOR_CHECK_MSG(!inbox.empty(), "splitter broadcast missing");
        const std::span<const Word> split = inbox.front().span();
        const std::size_t num_split = split.size() / kw;
        const auto& slab = st->slabs[m];
        if (st->aggregate_routes) {
          // The slab is key-sorted (step 1): bucket dst is one contiguous
          // span, shipped whole. Empty splitter set → everything lands in
          // bucket 0, exactly like the per-record rule.
          engine::send_records(send, std::span<const Word>(slab), width, kw,
                               split, [](std::size_t dst) { return dst; });
          return;
        }
        const std::size_t records = slab.size() / width;
        std::vector<std::vector<Word>> outgoing(machines);
        for (std::size_t i = 0; i < records; ++i) {
          const Word* rec = slab.data() + i * width;
          const std::size_t dst =
              keys_at_most(split.data(), num_split, rec, kw);
          outgoing[dst].insert(outgoing[dst].end(), rec, rec + width);
        }
        for (std::size_t dst = 0; dst < machines; ++dst)
          if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
      });

  // Step 4 (record sorts only): the parallel bucket sorts, as in the tree.
  if (bucket_sort_round)
    append_bucket_sort_step(program, "sample_sort.central.sort", st);

  return program;
}

engine::RoundProgram make_sort_program(std::shared_ptr<SortState> st,
                                       SplitterStrategy strategy,
                                       bool bucket_sort_round) {
  engine::RoundProgram program =
      strategy == SplitterStrategy::kTree
          ? make_tree_sort_program(st, bucket_sort_round)
          : make_coordinator_sort_program(st, bucket_sort_round);
  // Everything the steps mutate is machine-sliced: slabs[m] (sorted in
  // place by the sample round), fine[m] (parsed splitters handed between
  // m's own steps), result[m] (the bucket sort's output slot).
  auto own = std::make_shared<check::Ownership>();
  own->slabs("slabs", &st->slabs)
      .slabs("fine", &st->fine)
      .slabs("result", &st->result)
      .keep_alive(st);
  program.owned(std::move(own));

  // The paper's per-round claims, as data: every splitter-phase bound is a
  // closed form of (p, s, key_words) the post-run audit checks against the
  // measured per-label peaks. Route rounds move the data itself and are
  // bounded only by the machine capacity S (kWordsCapacity resolves to S
  // at audit time); bucket-sort rounds are compute-only and must move
  // exactly zero words.
  const std::size_t p = st->machines;
  const std::size_t s = st->samples_per_machine;
  const std::size_t kw = st->key_words;
  auto cost = std::make_shared<obs::CostModel>(
      bucket_sort_round ? "mpc.sample_sort_records" : "mpc.sample_sort");
  if (strategy == SplitterStrategy::kTree) {
    const SplitterTree tree = SplitterTree::over(p);
    const std::size_t r = tree.group_size;
    const std::size_t G = tree.groups;
    // Pick/down packet: [n_coarse, n_fine | keys] — at most the G−1 group
    // boundaries plus a group's r−1 interior splitters.
    const std::size_t packet = 2 + (G + r - 2) * kw;
    cost->bound("sample_sort.tree.up", r * s * kw, 2,
                "r*s*kw (r = ceil(sqrt(p)) members' samples pooled at a "
                "relay; the thinned relay->root hop is smaller)");
    cost->bound("sample_sort.tree.pick", G * packet, 1,
                "G*(2+(G+r-2)*kw) (root ships one boundary+interior packet "
                "per relay)");
    cost->bound("sample_sort.tree.down", r * packet, 1,
                "r*(2+(G+r-2)*kw) (a relay fans its packet to <= r members)");
    cost->bound("sample_sort.tree.route", obs::kWordsCapacity, 2,
                "<= S (the data movement rounds: route + placement)");
    if (bucket_sort_round)
      cost->bound("sample_sort.tree.sort", 0, 1,
                  "0 (machine-local bucket sort; moves no words)");
  } else {
    cost->bound("sample_sort.central.sample", p * s * kw, 1,
                "p*s*kw (every machine's sample pooled at the coordinator)");
    cost->bound("sample_sort.central.splitters", p * (p - 1) * kw, 1,
                "p*(p-1)*kw (coordinator broadcasts p-1 splitter keys)");
    cost->bound("sample_sort.central.route", obs::kWordsCapacity, 1,
                "<= S (the data movement round)");
    if (bucket_sort_round)
      cost->bound("sample_sort.central.sort", 0, 1,
                  "0 (machine-local bucket sort; moves no words)");
  }
  program.costed(std::move(cost));
  return program;
}

SplitterStrategy strategy_from_scalar(Word scalar) {
  ARBOR_CHECK_MSG(scalar <= 1, "unknown splitter strategy scalar " +
                                   std::to_string(scalar));
  return static_cast<SplitterStrategy>(scalar);
}

}  // namespace

std::size_t sample_sort_tree_fanout(std::size_t machines) {
  return SplitterTree::over(machines).group_size;
}

SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine,
                             SplitterStrategy strategy) {
  trace::Span stage_span = trace::Tracer::global().span("mpc", "sample_sort");
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  // Machine-local state lives here (the cluster only moves messages).
  auto st = std::make_shared<SortState>();
  st->slabs = input;
  st->machines = machines;
  st->samples_per_machine = samples_per_machine;
  st->aggregate_routes = cluster.config().route_aggregation;
  st->merge_path = cluster.config().merge_path;

  engine::RoundProgram program =
      make_sort_program(st, strategy, /*bucket_sort_round=*/false);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.sample_sort";
    spec.scalars = {static_cast<Word>(samples_per_machine),
                    static_cast<Word>(strategy),
                    static_cast<Word>(st->aggregate_routes ? 1 : 0),
                    static_cast<Word>(st->merge_path ? 1 : 0)};
    spec.inputs = input;
    program.distributable(std::move(spec));
  }

  cluster.run_program(program);

  // The buckets sit in the inboxes when the program returns — identically
  // under every backend (the transport syncs final inboxes back).
  SampleSortResult result;
  result.slabs.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    // Same gate as the bucket-sort round: aggregated route messages are
    // sorted word spans, mergeable; per-record messages are not. Words
    // have a total order, so merge vs. sort is trivially bit-identical.
    if (st->merge_path && st->aggregate_routes) {
      engine::merge_sorted_inbox(cluster.inbox(m), 1, 1, result.slabs[m]);
      continue;
    }
    for (const auto& msg : cluster.inbox(m))
      result.slabs[m].insert(result.slabs[m].end(), msg.begin(), msg.end());
    std::sort(result.slabs[m].begin(), result.slabs[m].end());
  }
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

RecordSortResult sample_sort_records(
    Cluster& cluster, std::vector<std::vector<Word>> input,
    std::size_t record_width, std::size_t key_words,
    std::size_t samples_per_machine, SplitterStrategy strategy) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(record_width > 0);
  if (key_words == 0) key_words = record_width;
  ARBOR_CHECK(key_words <= record_width);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  for (const auto& slab : input)
    engine::record_count(slab.size(), record_width);  // validates widths

  auto st = std::make_shared<SortState>();
  st->machines = machines;
  st->record_width = record_width;
  st->key_words = key_words;
  st->samples_per_machine = samples_per_machine;
  st->aggregate_routes = cluster.config().route_aggregation;
  st->merge_path = cluster.config().merge_path;
  st->result.resize(machines);

  engine::RoundProgram program =
      make_sort_program(st, strategy, /*bucket_sort_round=*/true);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "mpc.sample_sort_records";
    spec.scalars = {static_cast<Word>(record_width),
                    static_cast<Word>(key_words),
                    static_cast<Word>(samples_per_machine),
                    static_cast<Word>(strategy),
                    static_cast<Word>(st->aggregate_routes ? 1 : 0),
                    static_cast<Word>(st->merge_path ? 1 : 0)};
    spec.inputs = input;  // copy: the state takes the originals below
    spec.has_output = true;
    spec.output_sink = [st](std::size_t m, std::span<const Word> slab) {
      st->result[m].assign(slab.begin(), slab.end());
    };
    program.distributable(std::move(spec));
  }
  st->slabs = std::move(input);

  cluster.run_program(program);

  RecordSortResult result;
  result.slabs = std::move(st->result);
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

void register_sample_sort_programs(net::Registry& registry) {
  registry.add("mpc.sample_sort", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 4,
                    "mpc.sample_sort expects 4 scalars");
    auto st = std::make_shared<SortState>();
    st->machines = in.machines;
    st->samples_per_machine = static_cast<std::size_t>(in.scalars[0]);
    st->aggregate_routes = in.scalars[2] != 0;
    st->merge_path = in.scalars[3] != 0;
    st->slabs.resize(in.machines);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m)
      st->slabs[m] = in.inputs[m - in.block_begin];
    net::WorkerProgram out;
    out.program = make_sort_program(st, strategy_from_scalar(in.scalars[1]),
                                    /*bucket_sort_round=*/false);
    out.state = st;
    return out;
  });

  registry.add("mpc.sample_sort_records", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 6,
                    "mpc.sample_sort_records expects 6 scalars");
    auto st = std::make_shared<SortState>();
    st->machines = in.machines;
    st->record_width = static_cast<std::size_t>(in.scalars[0]);
    st->key_words = static_cast<std::size_t>(in.scalars[1]);
    st->samples_per_machine = static_cast<std::size_t>(in.scalars[2]);
    st->aggregate_routes = in.scalars[4] != 0;
    st->merge_path = in.scalars[5] != 0;
    ARBOR_CHECK(st->record_width > 0 && st->key_words > 0 &&
                st->key_words <= st->record_width);
    st->slabs.resize(in.machines);
    st->result.resize(in.machines);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m) {
      st->slabs[m] = in.inputs[m - in.block_begin];
      engine::record_count(st->slabs[m].size(), st->record_width);
    }
    net::WorkerProgram out;
    out.program = make_sort_program(st, strategy_from_scalar(in.scalars[3]),
                                    /*bucket_sort_round=*/true);
    out.state = st;
    out.output = [st](std::size_t m) { return st->result[m]; };
    return out;
  });
}

}  // namespace arbor::mpc
