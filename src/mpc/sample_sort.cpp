#include "mpc/sample_sort.hpp"

#include <algorithm>

#include "engine/records.hpp"
#include "util/assert.hpp"

namespace arbor::mpc {

SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  // Machine-local state lives here (the cluster only moves messages).
  std::vector<std::vector<Word>> slabs = input;

  // The whole sort is one RoundProgram of three machine-independent steps:
  // each step reads only its machine's inbox and machine-owned slab state,
  // so the scheduler may overlap a round's delivery with the next round's
  // compute (splitter selection on machine 0 starts while the sample
  // messages for other machines are still being delivered, and so on).
  engine::RoundProgram program;

  // Step 1: every machine sends an evenly-spaced sample of its slab to
  // machine 0 (the splitter coordinator). The sample count is clamped to
  // the slab size so indices never repeat — a slab smaller than
  // samples_per_machine contributes each key once instead of skewing the
  // pool toward its low keys.
  program.independent([&](std::size_t m, const auto&, Sender& send) {
    std::vector<Word> sample;
    const auto& slab = slabs[m];
    if (!slab.empty()) {
      std::vector<Word> sorted = slab;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t samples =
          std::min(samples_per_machine, sorted.size());
      for (std::size_t i = 0; i < samples; ++i) {
        const std::size_t idx = i * sorted.size() / samples;
        sample.push_back(sorted[idx]);
      }
    }
    send.send(0, sample);
  });

  // Step 2: coordinator picks machines-1 splitters from the pooled sample
  // and broadcasts them. The broadcast happens even when the splitter set
  // is empty — a single-machine cluster needs no splitters, and an
  // all-empty pool has none to offer — so the routing round can rely on
  // the message being present rather than on an accident of the protocol.
  // (For machines ≤ √S the broadcast fits directly; a bigger cluster would
  // relay through a fan-out-√S tree at the same asymptotic cost.)
  program.independent([&](std::size_t m, const auto& inbox, Sender& send) {
    if (m != 0) return;
    std::vector<Word> chosen;
    if (machines > 1) {
      std::vector<Word> pool;
      for (const auto& msg : inbox) pool.insert(pool.end(), msg.begin(),
                                                msg.end());
      std::sort(pool.begin(), pool.end());
      for (std::size_t b = 1; b < machines; ++b) {
        if (pool.empty()) break;
        chosen.push_back(pool[b * pool.size() / machines]);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      send.send(dst, chosen);
  });

  // Step 3: route every key to its bucket machine (binary search over the
  // received splitters); buckets sort locally after delivery. The splitter
  // message is always present (step 2 broadcasts explicitly, empty or
  // not); an empty splitter set routes everything to machine 0.
  program.independent([&](std::size_t m, const auto& inbox, Sender& send) {
    ARBOR_CHECK_MSG(!inbox.empty(), "splitter broadcast missing");
    const auto split = inbox.front();  // zero-copy view of the message
    std::vector<std::vector<Word>> outgoing(machines);
    for (Word key : slabs[m]) {
      const std::size_t bucket = static_cast<std::size_t>(
          std::upper_bound(split.begin(), split.end(), key) -
          split.begin());
      outgoing[bucket].push_back(key);
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  cluster.run_program(program);

  SampleSortResult result;
  result.slabs.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    for (const auto& msg : cluster.inbox(m))
      result.slabs[m].insert(result.slabs[m].end(), msg.begin(), msg.end());
    std::sort(result.slabs[m].begin(), result.slabs[m].end());
  }
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

RecordSortResult sample_sort_records(
    Cluster& cluster, std::vector<std::vector<Word>> input,
    std::size_t record_width, std::size_t key_words,
    std::size_t samples_per_machine) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(record_width > 0);
  if (key_words == 0) key_words = record_width;
  ARBOR_CHECK(key_words <= record_width);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  std::vector<std::vector<Word>> slabs = std::move(input);
  for (const auto& slab : slabs)
    engine::record_count(slab.size(), record_width);  // validates widths

  // One RoundProgram of four machine-independent steps (3 communication +
  // 1 compute-only): every step touches only its machine's inbox and
  // machine-owned slabs, so the scheduler can overlap each delivery with
  // the next step's compute.
  engine::RoundProgram program;

  // Step 1: each machine key-sorts its slab and sends an evenly-spaced,
  // clamped sample of key prefixes to the coordinator. Sorting mutates
  // only slabs[m] — machine-owned state, safe under the engine's
  // concurrency contract — and the sorted slab is reused by the routing
  // round.
  program.independent([&](std::size_t m, const auto&, Sender& send) {
    engine::stable_sort_records(slabs[m], record_width, key_words);
    send.send(0, engine::sample_record_keys(slabs[m], record_width,
                                            key_words, samples_per_machine));
  });

  // Step 2: coordinator pools the sampled keys, picks machines-1 splitter
  // keys at the sample quantiles, and broadcasts them — explicitly empty
  // for a single-machine cluster or an all-empty pool (see sample_sort).
  program.independent([&](std::size_t m, const auto& inbox, Sender& send) {
    if (m != 0) return;
    std::vector<Word> chosen;
    if (machines > 1) {
      std::vector<Word> pool;
      for (const auto& msg : inbox)
        pool.insert(pool.end(), msg.begin(), msg.end());
      engine::stable_sort_records(pool, key_words, key_words);
      const std::size_t pooled = pool.size() / key_words;
      for (std::size_t b = 1; b < machines && pooled > 0; ++b) {
        const Word* key = pool.data() + (b * pooled / machines) * key_words;
        chosen.insert(chosen.end(), key, key + key_words);
      }
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      send.send(dst, chosen);
  });

  // Step 3: route every record to its bucket machine. bucket(r) = number
  // of splitter keys ≤ key(r) — the record-key analogue of the word
  // version's upper_bound — so an empty splitter set routes everything to
  // machine 0.
  program.independent([&](std::size_t m, const auto& inbox, Sender& send) {
    ARBOR_CHECK_MSG(!inbox.empty(), "splitter broadcast missing");
    const auto split = inbox.front().span();
    const std::size_t num_split = split.size() / key_words;
    const auto& slab = slabs[m];
    const std::size_t records =
        engine::record_count(slab.size(), record_width);
    std::vector<std::vector<Word>> outgoing(machines);
    for (std::size_t r = 0; r < records; ++r) {
      const Word* rec = slab.data() + r * record_width;
      std::size_t lo = 0, hi = num_split;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (engine::compare_keys(split.data() + mid * key_words, rec,
                                 key_words) <= 0)
          lo = mid + 1;
        else
          hi = mid;
      }
      outgoing[lo].insert(outgoing[lo].end(), rec, rec + record_width);
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  // Step 4 (compute-only, no messages): each bucket machine concatenates
  // its routed records and key-sorts them. Running this inside a round —
  // instead of on the calling thread after the fact — lets the engine
  // spread the final sorts across its workers; each step writes only its
  // own preallocated result slab, honouring the concurrency contract.
  // Under the async scheduler this compute even overlaps the routing
  // round's delivery: bucket m starts sorting as soon as its own records
  // arrive. Delivery order is (source machine asc, send order) in every
  // mode, so the stable sort makes the result deterministic and, with a
  // full-record key, the unique total order.
  RecordSortResult result;
  result.slabs.resize(machines);
  program.independent([&](std::size_t m, const auto& inbox, Sender&) {
    auto& slab = result.slabs[m];
    slab.reserve(inbox.total_words());
    for (const auto& msg : inbox)
      slab.insert(slab.end(), msg.begin(), msg.end());
    engine::stable_sort_records(slab, record_width, key_words);
  });

  cluster.run_program(program);
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

}  // namespace arbor::mpc
