#include "mpc/sample_sort.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::mpc {

SampleSortResult sample_sort(Cluster& cluster,
                             const std::vector<std::vector<Word>>& input,
                             std::size_t samples_per_machine) {
  const std::size_t machines = cluster.num_machines();
  ARBOR_CHECK(input.size() == machines);
  ARBOR_CHECK(samples_per_machine >= 1);
  const std::size_t start_rounds = cluster.rounds_executed();

  // Machine-local state lives here (the cluster only moves messages).
  std::vector<std::vector<Word>> slabs = input;

  // Round 1: every machine sends an evenly-spaced sample of its slab to
  // machine 0 (the splitter coordinator).
  cluster.run_round([&](std::size_t m, const auto&, Sender& send) {
    std::vector<Word> sample;
    const auto& slab = slabs[m];
    if (!slab.empty()) {
      std::vector<Word> sorted = slab;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 0; i < samples_per_machine; ++i) {
        const std::size_t idx =
            i * sorted.size() / samples_per_machine;
        sample.push_back(sorted[idx]);
      }
    }
    send.send(0, sample);
  });

  // Round 2: coordinator picks machines-1 splitters from the pooled sample
  // and broadcasts them. (For machines ≤ √S the broadcast fits directly;
  // a bigger cluster would relay through a fan-out-√S tree at the same
  // asymptotic cost.)
  std::vector<Word> splitters;
  cluster.run_round([&](std::size_t m, const auto& inbox, Sender& send) {
    if (m != 0) return;
    std::vector<Word> pool;
    for (const auto& msg : inbox) pool.insert(pool.end(), msg.begin(),
                                              msg.end());
    std::sort(pool.begin(), pool.end());
    std::vector<Word> chosen;
    for (std::size_t b = 1; b < machines; ++b) {
      if (pool.empty()) break;
      chosen.push_back(pool[b * pool.size() / machines]);
    }
    splitters = chosen;  // retained locally for verification by callers
    for (std::size_t dst = 0; dst < machines; ++dst)
      send.send(dst, chosen);
  });

  // Round 3: route every key to its bucket machine (binary search over the
  // received splitters); buckets sort locally after delivery.
  cluster.run_round([&](std::size_t m, const auto& inbox, Sender& send) {
    ARBOR_CHECK_MSG(!inbox.empty(), "splitters missing");
    const auto split = inbox.front();  // zero-copy view of the message
    std::vector<std::vector<Word>> outgoing(machines);
    for (Word key : slabs[m]) {
      const std::size_t bucket = static_cast<std::size_t>(
          std::upper_bound(split.begin(), split.end(), key) -
          split.begin());
      outgoing[bucket].push_back(key);
    }
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });

  SampleSortResult result;
  result.slabs.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    for (const auto& msg : cluster.inbox(m))
      result.slabs[m].insert(result.slabs[m].end(), msg.begin(), msg.end());
    std::sort(result.slabs[m].begin(), result.slabs[m].end());
  }
  result.rounds = cluster.rounds_executed() - start_rounds;
  return result;
}

}  // namespace arbor::mpc
