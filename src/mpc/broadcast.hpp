// Real fan-out broadcast / convergecast trees on the Level-0 cluster —
// the replication machinery behind Lemma 4.1's "make k_v copies of B_v"
// step, executed as an actual message program under the traffic caps.
//
// broadcast_tree: machine `root` holds a payload of ≤ S/fanout words; after
// ⌈log_fanout(machines)⌉ rounds every machine holds a copy.
// converge_sum: every machine holds one word; after the same number of
// rounds machine `root` holds the sum (the aggregation dual).
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/cluster.hpp"

namespace arbor::net {
class Registry;
}

namespace arbor::mpc {

struct BroadcastResult {
  std::vector<std::vector<Word>> copies;  ///< per machine
  std::size_t rounds = 0;
};

BroadcastResult broadcast_tree(Cluster& cluster, std::size_t root,
                               std::vector<Word> payload,
                               std::size_t fanout);

struct ConvergeResult {
  Word sum = 0;
  std::size_t rounds = 0;
};

ConvergeResult converge_sum(Cluster& cluster, std::size_t root,
                            const std::vector<Word>& per_machine_value,
                            std::size_t fanout);

/// Worker-side factories ("mpc.broadcast_tree", "mpc.converge_sum") for
/// the multi-process backend (net::Registry::builtin() calls this).
void register_broadcast_programs(net::Registry& registry);

}  // namespace arbor::mpc
