// Deterministic, splittable random number generation.
//
// Two layers:
//  * SplitRng — a stateful generator (xoshiro256**) used where a sequential
//    stream is fine (graph generators, shuffles). `split(tag)` derives an
//    independent child stream, so parallel-in-spirit algorithm phases can
//    draw without coupling their consumption order.
//  * StatelessCoin — pure functions of (seed, key...) used where several
//    simulated machines must reproduce the same draw independently.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/hashing.hpp"

namespace arbor::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = mix64(x);
      word = x;
    }
    // xoshiro must not start at the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is rejected.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p).
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent child generator keyed by `tag`.
  SplitRng split(std::uint64_t tag) noexcept {
    return SplitRng(hash_words(state_[0] ^ state_[2], tag, 0x5eedULL));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Pure per-key coins: every call with equal arguments returns the same
/// value, regardless of call order — the property the cone-replay coloring
/// simulation depends on.
class StatelessCoin {
 public:
  explicit StatelessCoin(std::uint64_t seed) noexcept : seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform 64-bit word for key (a, b, c).
  std::uint64_t word(std::uint64_t a, std::uint64_t b = 0,
                     std::uint64_t c = 0) const noexcept {
    return hash_words(seed_, a, b, c);
  }

  /// Uniform in [0, bound) for key (a, b, c). Uses 128-bit multiply-shift,
  /// bias ≤ bound/2^64 — negligible for bound ≪ 2^64 and, crucially, still a
  /// pure function of the key.
  std::uint64_t below(std::uint64_t bound, std::uint64_t a, std::uint64_t b = 0,
                      std::uint64_t c = 0) const;

  double uniform(std::uint64_t a, std::uint64_t b = 0,
                 std::uint64_t c = 0) const noexcept {
    return static_cast<double>(word(a, b, c) >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p, std::uint64_t a, std::uint64_t b = 0,
                 std::uint64_t c = 0) const noexcept {
    return uniform(a, b, c) < p;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace arbor::util
