// Lightweight runtime-check helpers.
//
// ARBOR_CHECK is always on (release included): algorithm invariants in this
// library are cheap relative to the simulation itself, and silent invariant
// drift is the main reproduction risk. ARBOR_DCHECK compiles out in NDEBUG
// builds and guards the expensive structural validations (e.g. full
// valid-mapping scans of every tree on every exponentiation step).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace arbor {

/// Thrown when a runtime invariant of the library is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace arbor

#define ARBOR_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr))                                                      \
      ::arbor::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define ARBOR_CHECK_MSG(expr, msg)                                    \
  do {                                                                \
    if (!(expr))                                                      \
      ::arbor::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define ARBOR_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define ARBOR_DCHECK(expr) ARBOR_CHECK(expr)
#endif
