// Stateless 64-bit mixing functions.
//
// The coloring simulation (core/coloring_mpc) replays the LOCAL list-coloring
// algorithm independently inside many gathered cones; every replica must see
// the *same* coin flips for a given (vertex, phase, trial). We therefore
// derive all per-vertex randomness from a stateless mix of
// (seed, vertex, tags...) instead of a stateful generator.
#pragma once

#include <cstdint>

namespace arbor::util {

/// Finalizer from SplitMix64 (Steele et al.); passes PractRand / BigCrush as
/// the core of splitmix. Bijective on 64 bits.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a running hash with one more word (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) noexcept {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

/// Hash an arbitrary-length key of 64-bit words.
template <typename... Ts>
constexpr std::uint64_t hash_words(std::uint64_t seed, Ts... words) noexcept {
  std::uint64_t h = mix64(seed);
  ((h = hash_combine(h, static_cast<std::uint64_t>(words))), ...);
  return h;
}

}  // namespace arbor::util
