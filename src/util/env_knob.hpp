// Strict parsing for the ARBOR_* environment knobs.
//
// Every knob (ARBOR_DISTRIBUTED_LEVEL1, ARBOR_TRANSPORT, ARBOR_TRACE,
// ARBOR_TSAN, ...) shares one contract: unknown or malformed values throw
// an InvariantError with the single canonical message shape
//
//     NAME="value": <problem>
//
// instead of silently falling back to a default — a typo like
// ARBOR_DISTRIBUTED_LEVEL1=ture must fail the run. The helpers here are
// the one place that shape is produced; knob owners (mpc/config.cpp,
// trace/trace.cpp) only supply the problem text.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace arbor::util {

/// Throw the canonical knob rejection: `what="value": problem`.
[[noreturn]] void reject_knob(std::string_view what, std::string_view value,
                              std::string_view problem);

/// Exactly "1"/"on"/"true"/"yes" → true, "0"/"off"/"false"/"no" → false;
/// anything else is rejected by name.
bool parse_bool_knob(std::string_view value, std::string_view what);

/// A knob split at its first ':' — "tcp:4" → {"tcp", "4"}, "full" →
/// {"full", nullopt}. A present-but-empty argument ("tcp:") stays an
/// empty string_view so callers can reject it by item name; silent
/// fallback on a truncated knob is exactly the bug this layer exists to
/// prevent.
struct KnobParts {
  std::string_view head;
  std::optional<std::string_view> arg;
};
KnobParts split_knob(std::string_view value);

/// Parse `digits` as a decimal count in [min, max]. `item` names the field
/// in rejections ("worker count", ...); `what`/`value` identify the whole
/// knob so the message always shows the full offending setting.
std::size_t parse_count_knob(std::string_view digits, std::string_view item,
                             std::size_t min, std::size_t max,
                             std::string_view what, std::string_view value);

/// getenv() that treats unset and empty identically (both → nullopt):
/// an exported-but-empty knob means "default", not "reject".
std::optional<std::string_view> env_knob(const char* name);

}  // namespace arbor::util
