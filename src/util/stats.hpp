// Small descriptive-statistics helpers used by benches and EXPERIMENTS.md
// tables: summaries of distributions (max out-degree per run, layer sizes,
// cone sizes, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace arbor::util {

/// One-pass accumulator for min/max/mean/variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double min_ = 0.0, max_ = 0.0, mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
};

/// Summary of a sample: quantiles computed by sorting a copy.
struct Summary {
  std::size_t count = 0;
  double min = 0, p25 = 0, median = 0, p75 = 0, p95 = 0, max = 0, mean = 0;

  std::string to_string() const;
};

Summary summarize(std::vector<double> values);
Summary summarize_counts(const std::vector<std::uint64_t>& values);

/// Least-squares slope of y over x (used to characterize round-growth
/// shapes, e.g. rounds vs log n).
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace arbor::util
