#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace arbor::util {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

namespace {
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p25 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.p75 = quantile_sorted(values, 0.75);
  s.p95 = quantile_sorted(values, 0.95);
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

Summary summarize_counts(const std::vector<std::uint64_t>& values) {
  std::vector<double> d(values.begin(), values.end());
  return summarize(std::move(d));
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " med=" << median
     << " mean=" << mean << " p95=" << p95 << " max=" << max;
  return os.str();
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  ARBOR_CHECK(x.size() == y.size());
  ARBOR_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  ARBOR_CHECK_MSG(denom != 0.0, "degenerate x values in linear_slope");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace arbor::util
