#include "util/env_knob.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"

namespace arbor::util {

void reject_knob(std::string_view what, std::string_view value,
                 std::string_view problem) {
  throw InvariantError(std::string(what) + "=\"" + std::string(value) +
                       "\": " + std::string(problem));
}

bool parse_bool_knob(std::string_view value, std::string_view what) {
  if (value == "1" || value == "on" || value == "true" || value == "yes")
    return true;
  if (value == "0" || value == "off" || value == "false" || value == "no")
    return false;
  reject_knob(what, value,
              "not a boolean flag (use 1/on/true/yes or 0/off/false/no)");
}

KnobParts split_knob(std::string_view value) {
  const auto colon = value.find(':');
  if (colon == std::string_view::npos) return {value, std::nullopt};
  return {value.substr(0, colon), value.substr(colon + 1)};
}

std::size_t parse_count_knob(std::string_view digits, std::string_view item,
                             std::size_t min, std::size_t max,
                             std::string_view what, std::string_view value) {
  if (digits.empty())
    reject_knob(what, value, std::string(item) + " is empty");
  std::size_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9')
      reject_knob(what, value, std::string(item) + " is not a number");
    n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > max) reject_knob(what, value, std::string(item) + " out of range");
  }
  if (n < min)
    reject_knob(what, value,
                std::string(item) + " must be >= " + std::to_string(min));
  return n;
}

std::optional<std::string_view> env_knob(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::string_view(env);
}

}  // namespace arbor::util
