#include "util/rng.hpp"

#include "util/assert.hpp"

namespace arbor::util {

std::uint64_t SplitRng::next_below(std::uint64_t bound) {
  ARBOR_CHECK_MSG(bound > 0, "next_below(0)");
  // Rejection sampling for exact uniformity.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t StatelessCoin::below(std::uint64_t bound, std::uint64_t a,
                                   std::uint64_t b, std::uint64_t c) const {
  ARBOR_CHECK_MSG(bound > 0, "StatelessCoin::below(0)");
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(word(a, b, c)) * bound;
  return static_cast<std::uint64_t>(wide >> 64);
}

}  // namespace arbor::util
