// How a cluster executes its synchronous rounds.
//
// serial() steps machines one after another on the calling thread in
// strict three-phase rounds — the reference ORDER semantics the framework
// tests were written against (its flat pool-less rounds ride the
// scheduler's zero-copy route+deliver pass). parallel(k) partitions
// machines across k worker threads and overlaps delivery with the next
// compute where the program allows. checked() additionally keeps the
// original nested per-message-vector inbox representation while the
// Monitor verifies the step contracts. All modes produce bit-identical
// inboxes and ledger totals (tests/engine_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <thread>

namespace arbor::engine {

struct ExecutionPolicy {
  enum class Mode : std::uint8_t { kSerial, kParallel };

  Mode mode = Mode::kSerial;
  std::size_t threads = 1;

  /// Overlap delivery of round r with compute of round r+1 inside
  /// RoundPrograms whose next step is machine-independent (see
  /// engine/program.hpp). Bit-identical to strict three-phase execution —
  /// inboxes, fingerprints, and ledger totals all agree — so it defaults
  /// on; flip it off to A/B the overlap (bench_engine_scaling does). The
  /// serial reference executor ignores it and always runs strict.
  bool async_rounds = true;

  /// Checked execution (src/check/): every compute phase runs through the
  /// model-race Monitor, which verifies the StepFn ownership contracts and
  /// replays machine-independent steps under an adversarial machine order.
  /// Forces strict (non-overlapped) single-threaded compute so violations
  /// are deterministic; outputs stay bit-identical to an unchecked run.
  /// Off by default and zero-cost when off.
  bool check = false;

  static ExecutionPolicy serial() { return {}; }

  /// The serial reference executor with checked execution on.
  static ExecutionPolicy checked() {
    ExecutionPolicy p;
    p.check = true;
    return p;
  }

  /// `threads == 0` means "use the hardware concurrency".
  static ExecutionPolicy parallel(std::size_t threads = 0) {
    if (threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      threads = hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }
    return {Mode::kParallel, threads};
  }

  bool is_parallel() const noexcept { return mode == Mode::kParallel; }

  /// Same policy with asynchronous round overlap forced on or off.
  ExecutionPolicy with_async(bool on) const noexcept {
    ExecutionPolicy p = *this;
    p.async_rounds = on;
    return p;
  }

  /// Same policy with checked execution forced on or off.
  ExecutionPolicy with_check(bool on) const noexcept {
    ExecutionPolicy p = *this;
    p.check = on;
    return p;
  }

  /// Worker threads the engine will actually run with (≥ 1).
  std::size_t effective_threads() const noexcept {
    return is_parallel() && threads > 0 ? threads : 1;
  }

  friend bool operator==(const ExecutionPolicy&,
                         const ExecutionPolicy&) = default;
};

}  // namespace arbor::engine
