// Delegate-style read cache for repeated fetch payloads (Grappa
// delegate::read / reset_cache is the exemplar).
//
// Multi-pass programs (repeat_while peeling, broadcast trees) rebuild and
// re-ship payloads that are byte-identical from pass to pass: a peeled
// vertex's neighbor split is consulted once when it peels and again one
// pass later when its decrements apply; a broadcast holder re-sends the
// same immutable slab to every child on every level. The FetchCache
// memoizes those builds per run and per machine, keyed by
// (step label, source machine, caller key) and validated by a
// caller-supplied epoch.
//
// Invalidation contract: the epoch is the caller's promise about the
// owning slab. State a program never declares in its Ownership is
// immutable for the program's duration (the checked-execution contract),
// so a constant epoch is correct for it; state the owner legally writes
// must bump the epoch with the write, or the entry goes stale. Checked
// execution polices the promise: every cache hit re-runs the build
// function and rejects the entry — naming the step and machine — if the
// rebuilt payload differs from the cached words. The cache is reset at
// program start, so entries never outlive the run that built them.
//
// Thread safety: slots are per machine and a machine is only ever touched
// by the worker thread that owns its block, so no locking is needed —
// the same sharding argument the outboxes rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/types.hpp"
#include "util/hashing.hpp"

namespace arbor::engine {

/// Per-run, per-machine memo of fetch payloads. Owned by the scheduler
/// (in-process) or the worker runtime (net/) and wired into Senders via a
/// FetchContext only when the program opts in (RoundProgram::fetch_cache).
class FetchCache {
 public:
  struct Entry {
    std::uint64_t epoch = 0;
    std::vector<Word> words;
    bool valid = false;
  };

  /// Drop every entry and hit count; called at program start so no entry
  /// outlives the run that built it.
  void reset(std::size_t machines) { slots_.assign(machines, {}); }

  Entry& entry(std::size_t machine, std::uint64_t key) {
    return slots_[machine].entries[key];
  }

  void count_hit(std::size_t machine) noexcept { ++slots_[machine].hits; }

  /// Total hits across machines — flushed into the
  /// `engine.fetch_cache_hits` metric at program end.
  std::size_t total_hits() const noexcept {
    std::size_t total = 0;
    for (const Slot& slot : slots_) total += slot.hits;
    return total;
  }

 private:
  struct Slot {
    std::unordered_map<std::uint64_t, Entry> entries;
    std::size_t hits = 0;
  };
  std::vector<Slot> slots_;
};

/// Salt mixed into every cache key so entries are scoped to their step
/// label — the "(step label, source, epoch)" key of the design.
inline std::uint64_t fetch_step_salt(std::string_view step_name) noexcept {
  std::uint64_t h = util::mix64(step_name.size());
  for (const char c : step_name)
    h = util::hash_combine(h, static_cast<std::uint64_t>(c));
  return h;
}

/// How a Sender resolves fetch() calls this round. A null cache means
/// caching is off: every fetch rebuilds, which is the bit-identical A/B
/// baseline. `verify` (checked execution) rebuilds on every hit and
/// rejects stale entries.
struct FetchContext {
  FetchCache* cache = nullptr;
  std::uint64_t step_salt = 0;
  const std::string* step_name = nullptr;
  bool verify = false;
};

}  // namespace arbor::engine
