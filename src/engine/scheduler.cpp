#include "engine/scheduler.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "check/monitor.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

namespace {

/// Largest round volume (front-bank words) the async scheduler still fuses
/// into one deliver+compute phase. Fusing saves a phase barrier but pays a
/// payload copy per delivered word; the zero-copy direct scatter pays one
/// fixed routing pass and copies nothing. Small rounds (splitter
/// exchanges, votes) are barrier-dominated and keep fusing; bulk route
/// rounds are copy-dominated and go direct — which is what erases the
/// parallel-policy route-round penalty on the Level-1 sort.
constexpr std::size_t kFuseMaxRouteWords = 16384;

std::size_t front_bank_words(const std::vector<Outbox>& outboxes) {
  std::size_t total = 0;
  for (const Outbox& out : outboxes) total += out.word_count();
  return total;
}

}  // namespace

ProgramStats Scheduler::run(RoundState& state, std::size_t capacity,
                            std::size_t first_round_index,
                            const RoundProgram& program,
                            const RoundHook& on_round) {
  ARBOR_CHECK(state.num_machines() > 0);
  ARBOR_CHECK(capacity > 0);
  ARBOR_CHECK_MSG(!program.steps.empty(), "RoundProgram has no steps");
  // Shared schedulers must serialize programs: the pool and the scratch
  // routing tables hold one round at a time. Fail loudly instead of
  // corrupting. (exchange: if the flag was already set we throw without
  // constructing the reset guard, leaving the owner's flag intact.)
  ARBOR_CHECK_MSG(
      !in_program_.exchange(true, std::memory_order_acq_rel),
      "Scheduler re-entered: a shared Engine executes one program at a "
      "time (do not run a program or round from inside a step function, a "
      "continue callback, or a second thread)");
  struct Reset {
    std::atomic<bool>& flag;
    ~Reset() { flag.store(false, std::memory_order_release); }
  } reset{in_program_};
  // Zero-copy deliveries leave the final round's inboxes as spans into an
  // outbox bank; everything outside a running program expects the flat
  // representation, so materialize on every exit path (including a step
  // throwing mid-program — the referenced bank is still frozen then).
  struct Materialize {
    Scheduler& scheduler;
    RoundState& state;
    ~Materialize() { scheduler.materialize_scatter(state); }
  } materialize{*this, state};

  // Overlap needs flat inboxes, the parallel engine, and the policy
  // opt-in; barrier steps drop back to strict per step below. The serial
  // policy always runs strict rounds — its pool-less flat rounds take the
  // fused route+deliver_direct pass instead, which beats overlap when
  // there are no phase barriers to save. Checked execution forces strict
  // phases: the Monitor replays steps under two machine orders, which a
  // fused deliver+compute cannot interleave with.
  const bool overlap = policy_.is_parallel() && state.is_flat &&
                       policy_.async_rounds && !policy_.check;

  std::unique_ptr<check::Monitor> monitor;
  if (policy_.check)
    monitor = std::make_unique<check::Monitor>(program, capacity,
                                               state.num_machines());

  // Programs opt into the delegate-style read cache; entries never outlive
  // the run that built them.
  FetchCache* fetch_cache = program.fetch_cache ? &fetch_cache_ : nullptr;
  if (fetch_cache) fetch_cache->reset(state.num_machines());

  trace::Tracer& tracer = trace::Tracer::global();

  ProgramStats stats;
  for (;;) {
    bool computed_ahead = false;
    for (std::size_t i = 0; i < program.steps.size(); ++i) {
      const std::string& label = program.steps[i].name;
      const std::int64_t round_t0 = tracer.metrics_on() ? trace::now_ns() : 0;
      if (!computed_ahead) {
        trace::Span span = tracer.span("engine", "compute " + label);
        compute(state, capacity, program.steps[i], monitor.get(), fetch_cache);
      }
      computed_ahead = false;
      const ProgramStep* next =
          i + 1 < program.steps.size() ? &program.steps[i + 1] : nullptr;
      // Fusing delivery with the next compute only pays off while the
      // delivered volume is barrier-dominated; past the threshold the
      // zero-copy direct scatter wins (see kFuseMaxRouteWords). The choice
      // is execution-only — deliveries are byte-identical either way.
      const bool fused = overlap && next &&
                         next->kind == StepKind::kMachineIndependent &&
                         front_bank_words(state.front_outboxes()) <=
                             kFuseMaxRouteWords;
      // Flat unchecked delivery fuses route and deliver into a zero-copy
      // scatter pass — source-major and routing-table-free when inline,
      // table-then-parallel-staging under a pool — so the scatter inboxes
      // alias the frozen bank in every policy. The strict two-phase path
      // remains for the fused async phase and the nested (checked)
      // representation.
      const bool direct = !fused && state.is_flat && !policy_.check;
      if (direct) {
        trace::Span span = tracer.span("engine", "route+deliver " + label);
        const RoundStats round_stats = route_and_deliver_direct(
            state, capacity, first_round_index + stats.rounds, label);
        span.end();
        ++stats.rounds;
        if (on_round) on_round(round_stats);
        if (tracer.metrics_on()) {
          const double us =
              static_cast<double>(trace::now_ns() - round_t0) / 1000.0;
          tracer.metrics().observe("round_us", us);
          tracer.metrics().observe("round_us." + label, us);
        }
        continue;
      }
      RoundStats round_stats;
      {
        trace::Span span = tracer.span("engine", "route " + label);
        round_stats =
            route(state, capacity, first_round_index + stats.rounds, label);
      }
      if (fused) {
        // Commit round i before the fused phase: its caps are validated and
        // its stats exact, and the strict executor would have charged it
        // before the next step's compute could throw — charging afterwards
        // would make ledger totals diverge between async and strict on
        // exactly the error paths the caps exist for.
        ++stats.rounds;
        if (on_round) on_round(round_stats);
        {
          // The span that proves (or disproves) the async overlap claim:
          // one fused phase where strict execution would show a deliver
          // span, a barrier, then a compute span.
          trace::Span span =
              tracer.span("engine", "deliver+compute " + next->name);
          deliver_and_compute(state, capacity, *next, fetch_cache);
        }
        state.flip();  // the fused compute's bank becomes next round's front
        computed_ahead = true;
        ++stats.overlapped;
      } else {
        trace::Span span = tracer.span("engine", "deliver " + label);
        deliver(state);
        span.end();
        ++stats.rounds;
        if (on_round) on_round(round_stats);
      }
      if (tracer.metrics_on()) {
        // Per step-iteration wall time: under overlap the iteration ends
        // when the fused deliver+compute does.
        const double us =
            static_cast<double>(trace::now_ns() - round_t0) / 1000.0;
        tracer.metrics().observe("round_us", us);
        tracer.metrics().observe("round_us." + label, us);
      }
    }
    ++stats.passes;
    if (!program.continue_fn) break;
    bool more;
    if (monitor) {
      // The continue callback runs at a true barrier and may update shared
      // pass state — unless the program has machine-independent steps,
      // whose contract forbids them reading state the callback maintains.
      const std::vector<std::uint64_t> before = monitor->hashes();
      more = program.continue_fn(stats.passes);
      monitor->expect_continue_clean(before, "continue callback");
    } else {
      more = program.continue_fn(stats.passes);
    }
    if (!more) break;
    if (stats.passes >= program.max_passes) break;
  }
  if (fetch_cache && tracer.metrics_on()) {
    const std::size_t hits = fetch_cache->total_hits();
    if (hits > 0)
      tracer.metrics().add("engine.fetch_cache_hits",
                           static_cast<std::uint64_t>(hits));
  }
  return stats;
}

void Scheduler::run_parallel(std::size_t n, const ThreadPool::BlockFn& fn) {
  if (pool_)
    pool_->run_blocks(n, fn);
  else
    fn(0, n);
}

void Scheduler::compute(RoundState& state, std::size_t capacity,
                        const ProgramStep& step, check::Monitor* monitor,
                        FetchCache* fetch_cache) {
  const std::size_t machines = state.num_machines();
  std::vector<Outbox>& out = state.front_outboxes();
  const FetchContext fetch{fetch_cache, fetch_step_salt(step.name), &step.name,
                           policy_.check};
  if (monitor) {
    // Checked execution: single-threaded by design, so contract violations
    // are deterministic and reproduce without a thread schedule.
    monitor->run_step(
        step, 0, machines,
        [&state](std::size_t m) { return state.inbox(m); }, out, fetch);
    return;
  }
  trace::Tracer& tracer = trace::Tracer::global();
  run_parallel(machines, [&](std::size_t begin, std::size_t end) {
    // One span per machine block: pool threads show up as their own trace
    // lanes, and the block spans' alignment makes load imbalance visible.
    trace::Span span = tracer.span("engine", "block " + step.name);
    for (std::size_t m = begin; m < end; ++m) {
      out[m].clear();  // keeps arena capacity from previous rounds
      Sender sender(m, capacity, machines, out[m], fetch);
      step.fn(m, state.inbox(m), sender);
    }
  });
}

RoundStats Scheduler::route(RoundState& state, std::size_t capacity,
                            std::size_t round_index,
                            const std::string& step_name) {
  const std::size_t machines = state.num_machines();
  const std::vector<Outbox>& outboxes = state.front_outboxes();
  RoundStats stats;

  // Count per-destination volume and group the outbox records by
  // destination with a stable counting sort (source asc, send order) — the
  // delivery order of the serial reference executor.
  recv_words_.assign(machines, 0);
  recv_msgs_.assign(machines, 0);
  std::size_t total_msgs = 0;
  for (std::size_t src = 0; src < machines; ++src) {
    const Outbox& out = outboxes[src];
    total_msgs += out.msgs.size();
    // Sent volume is the sum of message lengths, not the arena size: a
    // sender that aliases one arena payload under several messages must
    // still be charged per message sent.
    std::size_t sent = 0;
    for (const Outbox::Msg& msg : out.msgs) {
      sent += msg.length;
      recv_words_[msg.dst] += msg.length;
      recv_msgs_[msg.dst] += 1;
    }
    stats.max_sent = std::max(stats.max_sent, sent);
  }

  // Receiver-side cap: validated once per machine, naming the offender.
  for (std::size_t dst = 0; dst < machines; ++dst) {
    ARBOR_CHECK_MSG(recv_words_[dst] <= capacity,
                    "machine " + std::to_string(dst) +
                        " exceeded receive capacity: " +
                        std::to_string(recv_words_[dst]) + " > " +
                        std::to_string(capacity) + " words in round " +
                        std::to_string(round_index) +
                        step_name_suffix(step_name));
    stats.max_received = std::max(stats.max_received, recv_words_[dst]);
  }

  route_begin_.resize(machines + 1);
  route_begin_[0] = 0;
  for (std::size_t dst = 0; dst < machines; ++dst)
    route_begin_[dst + 1] = route_begin_[dst] + recv_msgs_[dst];
  route_cursor_.assign(route_begin_.begin(), route_begin_.end() - 1);
  routes_.resize(total_msgs);
  for (std::size_t src = 0; src < machines; ++src)
    for (const Outbox::Msg& msg : outboxes[src].msgs)
      routes_[route_cursor_[msg.dst]++] = {static_cast<std::uint32_t>(src),
                                           msg.offset, msg.length};

  return stats;
}

RoundStats Scheduler::route_and_deliver_direct(RoundState& state,
                                               std::size_t capacity,
                                               std::size_t round_index,
                                               const std::string& step_name) {
  const std::size_t machines = state.num_machines();
  const std::vector<Outbox>& outboxes = state.front_outboxes();

  if (pool_ != nullptr) {
    // Parallel zero-copy scatter: route() groups the outbox records by
    // destination and validates the receiver caps — with the exact strict
    // error text, before any inbox mutation — then worker threads convert
    // each destination's route entries into span references concurrently.
    // Destinations are disjoint across threads, so the staging is
    // lock-free, and still no payload word moves.
    RoundStats stats = route(state, capacity, round_index, step_name);
    if (scatter_scratch_.size() != machines) scatter_scratch_.resize(machines);
    run_parallel(machines, [&](std::size_t begin, std::size_t end) {
      for (std::size_t dst = begin; dst < end; ++dst) {
        ScatterInbox& sc = scatter_scratch_[dst];
        sc.clear();
        sc.msgs.reserve(recv_msgs_[dst]);
        for (std::size_t r = route_begin_[dst]; r < route_begin_[dst + 1];
             ++r) {
          const Route& route = routes_[r];
          sc.msgs.push_back(
              {outboxes[route.src].words.data() + route.offset, route.length});
        }
        sc.words = recv_words_[dst];
      }
    });
    state.scatter_inboxes.swap(scatter_scratch_);
    state.scatter_active = true;
    state.back_outboxes();  // ensure the other bank is sized before flipping
    state.flip();
    return stats;
  }

  RoundStats stats;

  // One source-major pass: count per-destination volume AND stage span
  // references. Each destination sees its messages in (source asc, send
  // order) — the counting-sorted order deliver() walks — but no payload
  // word is copied and no routing table is built.
  recv_words_.assign(machines, 0);
  if (scatter_scratch_.size() != machines) scatter_scratch_.resize(machines);
  for (ScatterInbox& in : scatter_scratch_) in.clear();
  for (std::size_t src = 0; src < machines; ++src) {
    const Outbox& out = outboxes[src];
    std::size_t sent = 0;  // Σ msg lengths, like route() — see there
    for (const Outbox::Msg& msg : out.msgs) {
      sent += msg.length;
      recv_words_[msg.dst] += msg.length;
      scatter_scratch_[msg.dst].msgs.push_back(
          {out.words.data() + msg.offset, msg.length});
    }
    stats.max_sent = std::max(stats.max_sent, sent);
  }

  // Receiver-side cap: validated (with route()'s exact diagnostics) before
  // any inbox state changes — on a violation the staged spans are simply
  // discarded and the previous round's inboxes remain current.
  for (std::size_t dst = 0; dst < machines; ++dst) {
    ARBOR_CHECK_MSG(recv_words_[dst] <= capacity,
                    "machine " + std::to_string(dst) +
                        " exceeded receive capacity: " +
                        std::to_string(recv_words_[dst]) + " > " +
                        std::to_string(capacity) + " words in round " +
                        std::to_string(round_index) +
                        step_name_suffix(step_name));
    stats.max_received = std::max(stats.max_received, recv_words_[dst]);
    scatter_scratch_[dst].words = recv_words_[dst];
  }

  // Commit: the staged bank becomes the live inboxes. The spans alias the
  // current front bank, which flips below so the next round's compute
  // writes the other bank and the references stay valid for the round
  // that reads them.
  state.scatter_inboxes.swap(scatter_scratch_);
  state.scatter_active = true;
  state.back_outboxes();  // ensure the other bank is sized before flipping
  state.flip();
  return stats;
}

void Scheduler::materialize_scatter(RoundState& state) {
  if (!state.scatter_active) return;
  const std::size_t machines = state.num_machines();
  for (std::size_t m = 0; m < machines; ++m) {
    Inbox& in = state.flat_inboxes[m];
    const ScatterInbox& sc = state.scatter_inboxes[m];
    in.clear();
    in.words.reserve(sc.words);
    in.msgs.reserve(sc.msgs.size());
    for (const std::span<const Word>& span : sc.msgs) in.append(span);
  }
  for (ScatterInbox& sc : state.scatter_inboxes) sc.clear();
  state.scatter_active = false;
}

void Scheduler::deliver(RoundState& state) {
  const std::size_t machines = state.num_machines();
  const std::vector<Outbox>& outboxes = state.front_outboxes();
  state.scatter_active = false;  // flat inboxes become current again
  // Copy payloads out of the source arenas into each destination's inbox.
  // Flat inboxes are filled in parallel (destinations are disjoint); the
  // nested reference representation materializes one vector per message on
  // the calling thread.
  if (state.is_flat) {
    run_parallel(machines, [&](std::size_t begin, std::size_t end) {
      for (std::size_t dst = begin; dst < end; ++dst) {
        Inbox& in = state.flat_inboxes[dst];
        in.clear();
        in.words.reserve(recv_words_[dst]);
        in.msgs.reserve(recv_msgs_[dst]);
        for (std::size_t r = route_begin_[dst]; r < route_begin_[dst + 1];
             ++r) {
          const Route& route = routes_[r];
          const Outbox& out = outboxes[route.src];
          in.append({out.words.data() + route.offset, route.length});
        }
      }
    });
  } else {
    for (std::size_t dst = 0; dst < machines; ++dst) {
      auto& in = state.nested_inboxes[dst];
      in.clear();
      in.reserve(recv_msgs_[dst]);
      for (std::size_t r = route_begin_[dst]; r < route_begin_[dst + 1]; ++r) {
        const Route& route = routes_[r];
        const Outbox& out = outboxes[route.src];
        const Word* data = out.words.data() + route.offset;
        in.emplace_back(data, data + route.length);
      }
    }
  }
}

void Scheduler::deliver_and_compute(RoundState& state, std::size_t capacity,
                                    const ProgramStep& next_step,
                                    FetchCache* fetch_cache) {
  const std::size_t machines = state.num_machines();
  // The front bank is frozen (round r's routed outboxes); the fused compute
  // writes the back bank. Materialize the back bank on this thread before
  // entering the parallel region.
  const std::vector<Outbox>& cur = state.front_outboxes();
  std::vector<Outbox>& nxt = state.back_outboxes();
  state.scatter_active = false;  // flat inboxes become current again
  const FetchContext fetch{fetch_cache, fetch_step_salt(next_step.name),
                           &next_step.name, policy_.check};
  trace::Tracer& tracer = trace::Tracer::global();
  run_parallel(machines, [&](std::size_t begin, std::size_t end) {
    trace::Span span = tracer.span("engine", "block " + next_step.name);
    for (std::size_t m = begin; m < end; ++m) {
      // Deliver round r's messages for machine m...
      Inbox& in = state.flat_inboxes[m];
      in.clear();
      in.words.reserve(recv_words_[m]);
      in.msgs.reserve(recv_msgs_[m]);
      for (std::size_t r = route_begin_[m]; r < route_begin_[m + 1]; ++r) {
        const Route& route = routes_[r];
        const Outbox& out = cur[route.src];
        in.append({out.words.data() + route.offset, route.length});
      }
      // ...and immediately start round r+1's compute for it: m's inbox is
      // complete even though other machines' deliveries may still be in
      // flight (the machine-independent contract makes this sufficient).
      nxt[m].clear();
      Sender sender(m, capacity, machines, nxt[m], fetch);
      next_step.fn(m, InboxView(in), sender);
    }
  });
}

}  // namespace arbor::engine
