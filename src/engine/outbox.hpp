// Flat per-machine outbox and the Sender handed to step functions.
//
// A send appends the payload to the machine's Word arena and records a
// (dst, offset, length) triple — no per-message allocation. Arenas persist
// across rounds inside RoundState and clear() keeps their capacity, so after
// the first few rounds a steady-state round performs no allocation at all on
// the send side. The sender-side traffic cap is enforced as messages are
// queued; the destination range is validated here too, so the merge phase
// can trust every record.
//
// Tradeoff vs. the pre-engine executor: sends always copy the payload into
// the arena (the old per-message std::vector could be moved end-to-end).
// The copy is what makes zero-allocation rounds and lock-free parallel
// delivery possible, and it wins on measured round throughput even for the
// serial executor; but a step function that materializes a large buffer
// solely to send it should prefer building it in place and sending a span.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/fetch_cache.hpp"
#include "engine/types.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::engine {

/// One machine's outgoing messages for the current round.
struct Outbox {
  struct Msg {
    std::size_t dst = 0;
    std::size_t offset = 0;
    std::size_t length = 0;
  };

  std::vector<Word> words;
  std::vector<Msg> msgs;

  void clear() noexcept {
    words.clear();
    msgs.clear();
  }

  std::size_t word_count() const noexcept { return words.size(); }

  std::span<const Word> payload(const Msg& m) const {
    return {words.data() + m.offset, m.length};
  }
};

/// Outgoing-message sink handed to the per-machine step function.
class Sender {
 public:
  Sender(std::size_t source, std::size_t capacity, std::size_t num_machines,
         Outbox& out, FetchContext fetch = {})
      : source_(source),
        capacity_(capacity),
        num_machines_(num_machines),
        out_(out),
        fetch_(fetch) {}

  void send(std::size_t dst_machine, std::span<const Word> payload) {
    ARBOR_CHECK_MSG(dst_machine < num_machines_,
                    "message to nonexistent machine " +
                        std::to_string(dst_machine) + " from machine " +
                        std::to_string(source_));
    words_sent_ += payload.size();
    ARBOR_CHECK_MSG(words_sent_ <= capacity_,
                    "machine " + std::to_string(source_) +
                        " exceeded send capacity " + std::to_string(capacity_));
    out_.msgs.push_back({dst_machine, out_.words.size(), payload.size()});
    out_.words.insert(out_.words.end(), payload.begin(), payload.end());
  }

  void send(std::size_t dst_machine, const std::vector<Word>& payload) {
    send(dst_machine, std::span<const Word>(payload));
  }

  /// Delegate-style memoized read (see engine/fetch_cache.hpp). Returns
  /// the payload `build` produces for (key, epoch), serving it from the
  /// per-run FetchCache when the program opted in and the epoch matches
  /// the cached entry; with no cache wired (caching off, the A/B
  /// baseline) the payload is rebuilt into thread-local scratch, so the
  /// bytes a caller sees are identical either way. The span stays valid
  /// until the next fetch() on this thread — use it before fetching
  /// again. Under checked execution every hit re-runs `build` and
  /// rejects the entry if the owning state changed without an epoch
  /// bump.
  template <typename BuildFn>
  std::span<const Word> fetch(std::uint64_t key, std::uint64_t epoch,
                              BuildFn&& build) {
    if (fetch_.cache == nullptr) {
      static thread_local std::vector<Word> scratch;
      scratch.clear();
      build(scratch);
      return scratch;
    }
    FetchCache::Entry& e = fetch_.cache->entry(
        source_, util::hash_combine(fetch_.step_salt, key));
    if (e.valid && e.epoch == epoch) {
      if (fetch_.verify) {
        static thread_local std::vector<Word> rebuilt;
        rebuilt.clear();
        build(rebuilt);
        ARBOR_CHECK_MSG(
            rebuilt == e.words,
            "checked execution: step \"" +
                (fetch_.step_name ? *fetch_.step_name : std::string("?")) +
                "\": machine " + std::to_string(source_) +
                " reused a stale fetch-cache entry (epoch " +
                std::to_string(epoch) +
                "): the owning state changed but the epoch did not");
      }
      fetch_.cache->count_hit(source_);
      return e.words;
    }
    e.words.clear();
    build(e.words);
    e.epoch = epoch;
    e.valid = true;
    return e.words;
  }

  /// fetch() + send(): ship a memoized payload. Message boundaries and
  /// bytes are identical with the cache on or off — only the rebuild
  /// work is saved.
  template <typename BuildFn>
  void send_fetched(std::size_t dst_machine, std::uint64_t key,
                    std::uint64_t epoch, BuildFn&& build) {
    send(dst_machine, fetch(key, epoch, std::forward<BuildFn>(build)));
  }

  std::size_t words_sent() const noexcept { return words_sent_; }
  std::size_t source() const noexcept { return source_; }

 private:
  std::size_t source_;
  std::size_t capacity_;
  std::size_t num_machines_;
  std::size_t words_sent_ = 0;
  Outbox& out_;
  FetchContext fetch_;
};

}  // namespace arbor::engine
