// Fixed-width record utilities for the engine's flat word arenas.
//
// A "record" is `width` consecutive Words inside a flat arena; the first
// `key_words` of them form the sort key, compared lexicographically (word 0
// most significant). This is the wire format the Level-1 record sort
// (mpc/sample_sort.cpp) and its benches move multi-word payloads through:
// arenas of whole records travel as ordinary messages, so the routing and
// delivery phases never need to know the width — only the endpoints do.
// The helpers live here, next to the arenas the records travel through;
// engine/ still depends only on util/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "engine/outbox.hpp"
#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

/// Number of whole records in an arena of `arena_words` words; rejects
/// arenas that are not a whole number of records.
inline std::size_t record_count(std::size_t arena_words, std::size_t width) {
  ARBOR_CHECK(width > 0);
  ARBOR_CHECK_MSG(arena_words % width == 0,
                  "arena is not a whole number of records");
  return arena_words / width;
}

/// Lexicographic three-way compare of two keys of `key_words` words.
inline int compare_keys(const Word* a, const Word* b,
                        std::size_t key_words) {
  for (std::size_t i = 0; i < key_words; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Stable in-place sort of the records in `arena` by their key prefix.
/// Sorts a permutation and gathers once, so records move exactly one time
/// regardless of width.
inline void stable_sort_records(std::vector<Word>& arena, std::size_t width,
                                std::size_t key_words) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  if (n <= 1) return;
  ARBOR_CHECK_MSG(n <= UINT32_MAX,
                  "record count exceeds the 32-bit permutation index");
  if (width == 1) {
    // Single-word records: equal words are indistinguishable, so a plain
    // sort IS the stable sort (this is the word sample sort's path).
    std::sort(arena.begin(), arena.end());
    return;
  }
  if (width == 2 && key_words == 2) {
    // Hot path for the Level-1 (key, index) records: packed pairs sort
    // without index indirection, and a full-record key makes ties
    // byte-identical, so an unstable sort yields the same sequence. The
    // scratch is thread-local because a wide cluster calls this once per
    // simulated machine per round — tens of thousands of tiny sorts that
    // would otherwise each pay an allocation.
    static thread_local std::vector<std::pair<Word, Word>> packed;
    packed.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      packed[i] = {arena[2 * i], arena[2 * i + 1]};
    std::sort(packed.begin(), packed.end());
    for (std::size_t i = 0; i < n; ++i) {
      arena[2 * i] = packed[i].first;
      arena[2 * i + 1] = packed[i].second;
    }
    return;
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t lhs, std::uint32_t rhs) {
                     return compare_keys(arena.data() + lhs * width,
                                         arena.data() + rhs * width,
                                         key_words) < 0;
                   });
  std::vector<Word> sorted(arena.size());
  for (std::size_t i = 0; i < n; ++i)
    std::copy_n(arena.data() + order[i] * width, width,
                sorted.data() + i * width);
  arena.swap(sorted);
}

/// Bucket boundaries of a KEY-SORTED record arena against a KEY-SORTED
/// sequence of splitter keys, under the routing rule of the sample sorts
/// (bucket of a record = count of splitters ≤ its key, like
/// std::upper_bound). Returns `num_splitters + 2` record indices: bucket b
/// occupies records [bounds[b], bounds[b+1]), bounds.front() == 0,
/// bounds.back() == the record count. Duplicate splitters yield empty
/// buckets between them; an empty splitter sequence leaves every record in
/// bucket 0. One binary search per SPLITTER instead of one per RECORD —
/// the monotone destination sequence of a sorted slab is what makes each
/// bucket a single contiguous span.
inline std::vector<std::size_t> partition_sorted_records(
    std::span<const Word> arena, std::size_t width, std::size_t key_words,
    std::span<const Word> splitters) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  const std::size_t k = record_count(splitters.size(), key_words);
  std::vector<std::size_t> bounds(k + 2);
  bounds[0] = 0;
  for (std::size_t b = 1; b <= k; ++b) {
    const Word* key = splitters.data() + (b - 1) * key_words;
    // First record whose key ≥ splitter b−1: everything before it has
    // fewer than b splitters ≤ its key. Sorted splitters make the
    // boundaries monotone, so the search starts at the previous one.
    std::size_t lo = bounds[b - 1];
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (compare_keys(arena.data() + mid * width, key, key_words) < 0)
        lo = mid + 1;
      else
        hi = mid;
    }
    bounds[b] = lo;
  }
  bounds[k + 1] = n;
  return bounds;
}

/// First index in [lo, hi) satisfying the monotone predicate (false…true);
/// hi when none does. Galloping doubles the probe gap from `lo` before the
/// final binary search, so the cost is O(log distance-from-lo) rather than
/// O(log (hi − lo)) — one comparison total when the answer IS `lo`.
template <typename Pred>
inline std::size_t gallop_lower(std::size_t lo, std::size_t hi, Pred pred) {
  std::size_t step = 1;
  while (lo < hi) {
    std::size_t probe = lo + step - 1;
    if (probe >= hi) probe = hi - 1;
    if (pred(probe)) {
      hi = probe;  // answer is in [lo, probe]
      break;
    }
    lo = probe + 1;
    step *= 2;
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

/// Walk a key-sorted record slab bucket by bucket, invoking
/// `fn(bucket, span)` once per NON-EMPTY bucket in ascending bucket order
/// (bucket of a record = count of splitters ≤ its key, like
/// std::upper_bound; records keep slab order inside a bucket). Walks the
/// slab span by span instead of computing all k+2 fenceposts, and both
/// searches gallop from the position the previous span established: a
/// one-record slab whose bucket continues where the last span left off
/// (the fine route of a wide cluster handles many such fragments) costs
/// O(1) comparisons, not O(k) and not even O(log k) — this is what keeps
/// the aggregated route ahead of the per-record one when slabs are far
/// smaller than the bucket count.
template <typename SpanFn>
inline void for_each_bucket_span(std::span<const Word> slab, std::size_t width,
                                 std::size_t key_words,
                                 std::span<const Word> splitters, SpanFn&& fn) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(slab.size(), width);
  const std::size_t k = record_count(splitters.size(), key_words);
  std::size_t i = 0;
  std::size_t b = 0;  // lowest candidate bucket for record i
  while (i < n) {
    const Word* key = slab.data() + i * width;
    // Bucket of record i = count of splitters ≤ its key; every splitter
    // below b is already known to be ≤, so search only [b, k) — and the
    // bucket is usually b itself or close to it, which the gallop turns
    // into a comparison or two.
    b = gallop_lower(b, k, [&](std::size_t s) {
      return compare_keys(splitters.data() + s * key_words, key, key_words) >
             0;
    });
    // End of bucket b's span: first record with key ≥ splitter b. Spans
    // are short when buckets outnumber records, so gallop from i + 1.
    std::size_t j = n;
    if (b < k) {
      const Word* split = splitters.data() + b * key_words;
      j = gallop_lower(i + 1, n, [&](std::size_t r) {
        return compare_keys(slab.data() + r * width, split, key_words) >= 0;
      });
    }
    fn(b, slab.subspan(i * width, (j - i) * width));
    i = j;
    // Record j (if any) has key ≥ splitter b, so its bucket is at least
    // b + 1 — the next search never revisits this bucket.
    ++b;
  }
}

/// Bulk route of a key-sorted record slab: emit each non-empty bucket as
/// ONE contiguous message to `dst_of(bucket)`. Message destinations,
/// contents, and emission order are identical to the per-record
/// upper_bound + per-destination append buffers this replaces (records
/// keep slab order inside a bucket, buckets are emitted in ascending index
/// order, empty buckets send nothing) — so the two route implementations
/// are interchangeable mid-protocol; only the per-record binary searches
/// and the intermediate buffer copy are gone. Records move exactly once,
/// slab → outbox arena.
template <typename DstFn>
inline void send_records(Sender& send, std::span<const Word> slab,
                         std::size_t width, std::size_t key_words,
                         std::span<const Word> splitters, DstFn&& dst_of) {
  for_each_bucket_span(slab, width, key_words, splitters,
                       [&send, &dst_of](std::size_t b,
                                        std::span<const Word> span) {
                         send.send(dst_of(b), span);
                       });
}

/// Evenly-spaced sample of at most `max_samples` key prefixes from a
/// key-sorted record arena. The sample count is clamped to the record
/// count, so every sampled index is distinct — small slabs contribute each
/// key at most once instead of repeating their first records.
inline std::vector<Word> sample_record_keys(const std::vector<Word>& arena,
                                            std::size_t width,
                                            std::size_t key_words,
                                            std::size_t max_samples) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  const std::size_t samples = std::min(max_samples, n);
  std::vector<Word> out;
  out.reserve(samples * key_words);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t idx = i * n / samples;  // strictly increasing: s ≤ n
    const Word* key = arena.data() + idx * width;
    out.insert(out.end(), key, key + key_words);
  }
  return out;
}

}  // namespace arbor::engine
