// Fixed-width record utilities for the engine's flat word arenas.
//
// A "record" is `width` consecutive Words inside a flat arena; the first
// `key_words` of them form the sort key, compared lexicographically (word 0
// most significant). This is the wire format the Level-1 record sort
// (mpc/sample_sort.cpp) and its benches move multi-word payloads through:
// arenas of whole records travel as ordinary messages, so the routing and
// delivery phases never need to know the width — only the endpoints do.
// The helpers live here, next to the arenas the records travel through;
// engine/ still depends only on util/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

/// Number of whole records in an arena of `arena_words` words; rejects
/// arenas that are not a whole number of records.
inline std::size_t record_count(std::size_t arena_words, std::size_t width) {
  ARBOR_CHECK(width > 0);
  ARBOR_CHECK_MSG(arena_words % width == 0,
                  "arena is not a whole number of records");
  return arena_words / width;
}

/// Lexicographic three-way compare of two keys of `key_words` words.
inline int compare_keys(const Word* a, const Word* b,
                        std::size_t key_words) {
  for (std::size_t i = 0; i < key_words; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Stable in-place sort of the records in `arena` by their key prefix.
/// Sorts a permutation and gathers once, so records move exactly one time
/// regardless of width.
inline void stable_sort_records(std::vector<Word>& arena, std::size_t width,
                                std::size_t key_words) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  if (n <= 1) return;
  ARBOR_CHECK_MSG(n <= UINT32_MAX,
                  "record count exceeds the 32-bit permutation index");
  if (width == 1) {
    // Single-word records: equal words are indistinguishable, so a plain
    // sort IS the stable sort (this is the word sample sort's path).
    std::sort(arena.begin(), arena.end());
    return;
  }
  if (width == 2 && key_words == 2) {
    // Hot path for the Level-1 (key, index) records: packed pairs sort
    // without index indirection, and a full-record key makes ties
    // byte-identical, so an unstable sort yields the same sequence.
    std::vector<std::pair<Word, Word>> packed(n);
    for (std::size_t i = 0; i < n; ++i)
      packed[i] = {arena[2 * i], arena[2 * i + 1]};
    std::sort(packed.begin(), packed.end());
    for (std::size_t i = 0; i < n; ++i) {
      arena[2 * i] = packed[i].first;
      arena[2 * i + 1] = packed[i].second;
    }
    return;
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t lhs, std::uint32_t rhs) {
                     return compare_keys(arena.data() + lhs * width,
                                         arena.data() + rhs * width,
                                         key_words) < 0;
                   });
  std::vector<Word> sorted(arena.size());
  for (std::size_t i = 0; i < n; ++i)
    std::copy_n(arena.data() + order[i] * width, width,
                sorted.data() + i * width);
  arena.swap(sorted);
}

/// Evenly-spaced sample of at most `max_samples` key prefixes from a
/// key-sorted record arena. The sample count is clamped to the record
/// count, so every sampled index is distinct — small slabs contribute each
/// key at most once instead of repeating their first records.
inline std::vector<Word> sample_record_keys(const std::vector<Word>& arena,
                                            std::size_t width,
                                            std::size_t key_words,
                                            std::size_t max_samples) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  const std::size_t samples = std::min(max_samples, n);
  std::vector<Word> out;
  out.reserve(samples * key_words);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t idx = i * n / samples;  // strictly increasing: s ≤ n
    const Word* key = arena.data() + idx * width;
    out.insert(out.end(), key, key + key_words);
  }
  return out;
}

}  // namespace arbor::engine
