// Fixed-width record utilities for the engine's flat word arenas.
//
// A "record" is `width` consecutive Words inside a flat arena; the first
// `key_words` of them form the sort key, compared lexicographically (word 0
// most significant). This is the wire format the Level-1 record sort
// (mpc/sample_sort.cpp) and its benches move multi-word payloads through:
// arenas of whole records travel as ordinary messages, so the routing and
// delivery phases never need to know the width — only the endpoints do.
// The helpers live here, next to the arenas the records travel through;
// engine/ still depends only on util/.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <span>
#include <utility>
#include <vector>

#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

/// Number of whole records in an arena of `arena_words` words; rejects
/// arenas that are not a whole number of records.
inline std::size_t record_count(std::size_t arena_words, std::size_t width) {
  ARBOR_CHECK(width > 0);
  ARBOR_CHECK_MSG(arena_words % width == 0,
                  "arena is not a whole number of records");
  return arena_words / width;
}

/// Lexicographic three-way compare of two keys of `key_words` words.
inline int compare_keys(const Word* a, const Word* b,
                        std::size_t key_words) {
  for (std::size_t i = 0; i < key_words; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// Stable in-place sort of the records in `arena` by their key prefix.
/// Sorts a permutation and gathers once, so records move exactly one time
/// regardless of width.
inline void stable_sort_records(std::vector<Word>& arena, std::size_t width,
                                std::size_t key_words) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  if (n <= 1) return;
  ARBOR_CHECK_MSG(n <= UINT32_MAX,
                  "record count exceeds the 32-bit permutation index");
  if (width == 1) {
    // Single-word records: equal words are indistinguishable, so a plain
    // sort IS the stable sort (this is the word sample sort's path).
    std::sort(arena.begin(), arena.end());
    return;
  }
  if (width == 2 && key_words == 2) {
    // Hot path for the Level-1 (key, index) records: packed pairs sort
    // without index indirection, and a full-record key makes ties
    // byte-identical, so an unstable sort yields the same sequence. The
    // scratch is thread-local because a wide cluster calls this once per
    // simulated machine per round — tens of thousands of tiny sorts that
    // would otherwise each pay an allocation.
    static thread_local std::vector<std::pair<Word, Word>> packed;
    packed.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      packed[i] = {arena[2 * i], arena[2 * i + 1]};
    std::sort(packed.begin(), packed.end());
    for (std::size_t i = 0; i < n; ++i) {
      arena[2 * i] = packed[i].first;
      arena[2 * i + 1] = packed[i].second;
    }
    return;
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t lhs, std::uint32_t rhs) {
                     return compare_keys(arena.data() + lhs * width,
                                         arena.data() + rhs * width,
                                         key_words) < 0;
                   });
  std::vector<Word> sorted(arena.size());
  for (std::size_t i = 0; i < n; ++i)
    std::copy_n(arena.data() + order[i] * width, width,
                sorted.data() + i * width);
  arena.swap(sorted);
}

/// Bucket boundaries of a KEY-SORTED record arena against a KEY-SORTED
/// sequence of splitter keys, under the routing rule of the sample sorts
/// (bucket of a record = count of splitters ≤ its key, like
/// std::upper_bound). Returns `num_splitters + 2` record indices: bucket b
/// occupies records [bounds[b], bounds[b+1]), bounds.front() == 0,
/// bounds.back() == the record count. Duplicate splitters yield empty
/// buckets between them; an empty splitter sequence leaves every record in
/// bucket 0. One binary search per SPLITTER instead of one per RECORD —
/// the monotone destination sequence of a sorted slab is what makes each
/// bucket a single contiguous span.
inline std::vector<std::size_t> partition_sorted_records(
    std::span<const Word> arena, std::size_t width, std::size_t key_words,
    std::span<const Word> splitters) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  const std::size_t k = record_count(splitters.size(), key_words);
  std::vector<std::size_t> bounds(k + 2);
  bounds[0] = 0;
  for (std::size_t b = 1; b <= k; ++b) {
    const Word* key = splitters.data() + (b - 1) * key_words;
    // First record whose key ≥ splitter b−1: everything before it has
    // fewer than b splitters ≤ its key. Sorted splitters make the
    // boundaries monotone, so the search starts at the previous one.
    std::size_t lo = bounds[b - 1];
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (compare_keys(arena.data() + mid * width, key, key_words) < 0)
        lo = mid + 1;
      else
        hi = mid;
    }
    bounds[b] = lo;
  }
  bounds[k + 1] = n;
  return bounds;
}

/// First index in [lo, hi) satisfying the monotone predicate (false…true);
/// hi when none does. Galloping doubles the probe gap from `lo` before the
/// final binary search, so the cost is O(log distance-from-lo) rather than
/// O(log (hi − lo)) — one comparison total when the answer IS `lo`.
template <typename Pred>
inline std::size_t gallop_lower(std::size_t lo, std::size_t hi, Pred pred) {
  std::size_t step = 1;
  while (lo < hi) {
    std::size_t probe = lo + step - 1;
    if (probe >= hi) probe = hi - 1;
    if (pred(probe)) {
      hi = probe;  // answer is in [lo, probe]
      break;
    }
    lo = probe + 1;
    step *= 2;
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pred(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

namespace merge_detail {

/// Stable two-way merge of sorted record runs: `a` is the earlier-source
/// run, so ties take from `a` (`cmp(b, a) < 0` is the only case that takes
/// from `b`). Writes exactly the combined word count at `out` and returns
/// the write head one past it. `kFixedWidth` (when non-zero) lets hot
/// record shapes compile to an unrolled copy instead of a runtime-width
/// loop — the caller must pass the same value as `width`.
template <std::size_t kFixedWidth, typename Cmp>
inline Word* merge_two_runs(const Word* a, const Word* a_end, const Word* b,
                            const Word* b_end, std::size_t width, Cmp cmp,
                            Word* out) {
  const std::size_t w = kFixedWidth != 0 ? kFixedWidth : width;
  while (a != a_end && b != b_end) {
    const bool take_b = cmp(b, a) < 0;
    const Word* s = take_b ? b : a;
    if constexpr (kFixedWidth != 0) {
      for (std::size_t i = 0; i < kFixedWidth; ++i) out[i] = s[i];
    } else {
      for (std::size_t i = 0; i < w; ++i) out[i] = s[i];
    }
    out += w;
    (take_b ? b : a) += w;
  }
  out = std::copy(a, a_end, out);
  return std::copy(b, b_end, out);
}

/// Bottom-up cascade of stable two-way merges: adjacent runs pair up
/// level by level (⌈log₂ k⌉ levels), ping-ponging between two scratch
/// buffers, with the final level writing straight into `out` (which the
/// caller has already reserved — no reallocation races with the scratch
/// reads). Pairing ADJACENT runs keeps the left operand the earlier
/// source at every level, so tie-to-`a` two-way merges compose into the
/// global earliest-run tie-break — bit-identical to std::stable_sort of
/// the concatenation. Each record moves once per level through tight
/// sequential loops; against the alternative heap-of-cursors this trades
/// 2·log k indirect comparator calls per record for log k direct ones,
/// which is what lets the merge beat a re-sort at the pipeline's shapes.
/// Requires `count >= 2` non-empty runs totalling `total` words.
template <typename MergeTwo>
inline void merge_runs_cascade(const std::span<const Word>* runs,
                               std::size_t count, std::size_t total,
                               MergeTwo merge_two, std::vector<Word>& out) {
  const std::size_t base = out.size();
  if (count == 2) {
    out.resize(base + total);
    merge_two(runs[0].data(), runs[0].data() + runs[0].size(),
              runs[1].data(), runs[1].data() + runs[1].size(),
              out.data() + base);
    return;
  }
  static thread_local std::vector<Word> ping, pong;
  static thread_local std::vector<std::size_t> cuts, next_cuts;
  ping.resize(total);
  cuts.clear();
  Word* w = ping.data();
  for (std::size_t i = 0; i + 1 < count; i += 2) {
    cuts.push_back(static_cast<std::size_t>(w - ping.data()));
    w = merge_two(runs[i].data(), runs[i].data() + runs[i].size(),
                  runs[i + 1].data(), runs[i + 1].data() + runs[i + 1].size(),
                  w);
  }
  if (count % 2 != 0) {
    cuts.push_back(static_cast<std::size_t>(w - ping.data()));
    w = std::copy(runs[count - 1].data(),
                  runs[count - 1].data() + runs[count - 1].size(), w);
  }
  cuts.push_back(total);
  while (cuts.size() - 1 > 2) {
    const std::size_t n = cuts.size() - 1;
    pong.resize(total);
    next_cuts.clear();
    Word* d = pong.data();
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      next_cuts.push_back(static_cast<std::size_t>(d - pong.data()));
      d = merge_two(ping.data() + cuts[i], ping.data() + cuts[i + 1],
                    ping.data() + cuts[i + 1], ping.data() + cuts[i + 2], d);
    }
    if (n % 2 != 0) {
      next_cuts.push_back(static_cast<std::size_t>(d - pong.data()));
      d = std::copy(ping.data() + cuts[n - 1], ping.data() + cuts[n], d);
    }
    next_cuts.push_back(total);
    ping.swap(pong);
    cuts.swap(next_cuts);
  }
  out.resize(base + total);
  merge_two(ping.data() + cuts[0], ping.data() + cuts[1],
            ping.data() + cuts[1], ping.data() + cuts[2], out.data() + base);
}

}  // namespace merge_detail

/// Stable k-way merge of key-sorted record runs, appended to `out`. Ties
/// across runs resolve to the EARLIEST run (and records keep their order
/// within a run), so the result is bit-identical to std::stable_sort of
/// the runs' concatenation in run order — which is why the sort pipeline
/// can swap its concat-then-re-sort sites for this merge without moving a
/// byte on the wire: inbox delivery order (source machine ascending, send
/// order within a source) IS the run order the old stable sort preserved.
/// Empty runs and empty run lists are fine; each run must be a whole
/// number of records and key-sorted.
inline void merge_sorted_runs(std::span<const std::span<const Word>> runs,
                              std::size_t width, std::size_t key_words,
                              std::vector<Word>& out) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  static thread_local std::vector<std::span<const Word>> live;
  live.clear();
  std::size_t total = 0;
  for (const std::span<const Word>& run : runs) {
    if (record_count(run.size(), width) == 0) continue;
    live.push_back(run);
    total += run.size();
  }
  out.reserve(out.size() + total);
  if (live.empty()) return;
  if (live.size() == 1) {
    out.insert(out.end(), live[0].begin(), live[0].end());
    return;
  }
  if (total < 4 * width * live.size()) {
    // Adaptive cutoff: runs average under four records, so there is no
    // sorted structure worth exploiting — a merge would pay its ⌈log₂ k⌉
    // levels to discover what a sort finds directly. Concatenate in run
    // order and stable-sort, which is the merge's own specification
    // (earliest-run tie-break == concatenation order under a stable
    // sort), so the output is bit-identical either way.
    static thread_local std::vector<Word> pooled;
    std::vector<Word>& dst = out.empty() ? out : pooled;
    dst.clear();
    dst.reserve(total);
    for (const std::span<const Word>& run : live)
      dst.insert(dst.end(), run.begin(), run.end());
    stable_sort_records(dst, width, key_words);
    if (&dst != &out) out.insert(out.end(), dst.begin(), dst.end());
    return;
  }
  if (width == 1 && key_words == 1) {
    // Word runs (the Level-0 word sort): single-word compare and copy.
    merge_detail::merge_runs_cascade(
        live.data(), live.size(), total,
        [](const Word* a, const Word* a_end, const Word* b,
           const Word* b_end, Word* d) {
          return merge_detail::merge_two_runs<1>(
              a, a_end, b, b_end, 1,
              [](const Word* x, const Word* y) {
                return *x < *y ? -1 : (*x > *y ? 1 : 0);
              },
              d);
        },
        out);
    return;
  }
  if (width == 2 && key_words == 2) {
    // The Level-1 record shape (two-word packed keys): unrolled copies
    // and an inline two-word compare, mirroring stable_sort_records'
    // packed fast path so the merge stays ahead of the re-sort it
    // replaces.
    merge_detail::merge_runs_cascade(
        live.data(), live.size(), total,
        [](const Word* a, const Word* a_end, const Word* b,
           const Word* b_end, Word* d) {
          return merge_detail::merge_two_runs<2>(
              a, a_end, b, b_end, 2,
              [](const Word* x, const Word* y) {
                if (x[0] != y[0]) return x[0] < y[0] ? -1 : 1;
                return x[1] < y[1] ? -1 : (x[1] > y[1] ? 1 : 0);
              },
              d);
        },
        out);
    return;
  }
  merge_detail::merge_runs_cascade(
      live.data(), live.size(), total,
      [width, key_words](const Word* a, const Word* a_end, const Word* b,
                         const Word* b_end, Word* d) {
        return merge_detail::merge_two_runs<0>(
            a, a_end, b, b_end, width,
            [key_words](const Word* x, const Word* y) {
              return compare_keys(x, y, key_words);
            },
            d);
      },
      out);
}

/// Merge a machine's inbox — every message a key-sorted run — into `out`.
/// Message order is delivery order (source ascending, send order), so the
/// result equals stable-sorting the concatenated inbox: the drop-in
/// replacement for the pool-then-re-sort pattern.
inline void merge_sorted_inbox(const InboxView& inbox, std::size_t width,
                               std::size_t key_words, std::vector<Word>& out) {
  const std::size_t total = inbox.total_words();
  if (out.empty() && total < 4 * width * inbox.size()) {
    // The inbox's runs average under four records (the bucket-placement
    // shape: one tiny span per sender) — merge_sorted_runs would take its
    // adaptive concat-and-sort cutoff anyway, so gather straight from the
    // messages and skip building the span list twice.
    out.reserve(total);
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      const std::span<const Word> span = inbox[i].span();
      out.insert(out.end(), span.begin(), span.end());
    }
    stable_sort_records(out, width, key_words);
    return;
  }
  static thread_local std::vector<std::span<const Word>> runs;
  runs.clear();
  runs.reserve(inbox.size());
  for (std::size_t i = 0; i < inbox.size(); ++i)
    runs.push_back(inbox[i].span());
  merge_sorted_runs(runs, width, key_words, out);
}

/// Walk a key-sorted record slab bucket by bucket, invoking
/// `fn(bucket, span)` once per NON-EMPTY bucket in ascending bucket order
/// (bucket of a record = count of splitters ≤ its key, like
/// std::upper_bound; records keep slab order inside a bucket). Walks the
/// slab span by span instead of computing all k+2 fenceposts, and both
/// searches gallop from the position the previous span established: a
/// one-record slab whose bucket continues where the last span left off
/// (the fine route of a wide cluster handles many such fragments) costs
/// O(1) comparisons, not O(k) and not even O(log k) — this is what keeps
/// the aggregated route ahead of the per-record one when slabs are far
/// smaller than the bucket count.
template <typename SpanFn>
inline void for_each_bucket_span(std::span<const Word> slab, std::size_t width,
                                 std::size_t key_words,
                                 std::span<const Word> splitters, SpanFn&& fn) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(slab.size(), width);
  const std::size_t k = record_count(splitters.size(), key_words);
  std::size_t i = 0;
  std::size_t b = 0;  // lowest candidate bucket for record i
  while (i < n) {
    const Word* key = slab.data() + i * width;
    // Bucket of record i = count of splitters ≤ its key; every splitter
    // below b is already known to be ≤, so search only [b, k) — and the
    // bucket is usually b itself or close to it, which the gallop turns
    // into a comparison or two.
    b = gallop_lower(b, k, [&](std::size_t s) {
      return compare_keys(splitters.data() + s * key_words, key, key_words) >
             0;
    });
    // End of bucket b's span: first record with key ≥ splitter b. Spans
    // are short when buckets outnumber records, so gallop from i + 1.
    std::size_t j = n;
    if (b < k) {
      const Word* split = splitters.data() + b * key_words;
      j = gallop_lower(i + 1, n, [&](std::size_t r) {
        return compare_keys(slab.data() + r * width, split, key_words) >= 0;
      });
    }
    fn(b, slab.subspan(i * width, (j - i) * width));
    i = j;
    // Record j (if any) has key ≥ splitter b, so its bucket is at least
    // b + 1 — the next search never revisits this bucket.
    ++b;
  }
}

/// Bulk route of a key-sorted record slab: emit each non-empty bucket as
/// ONE contiguous message to `dst_of(bucket)`. Message destinations,
/// contents, and emission order are identical to the per-record
/// upper_bound + per-destination append buffers this replaces (records
/// keep slab order inside a bucket, buckets are emitted in ascending index
/// order, empty buckets send nothing) — so the two route implementations
/// are interchangeable mid-protocol; only the per-record binary searches
/// and the intermediate buffer copy are gone. Records move exactly once,
/// slab → outbox arena.
template <typename DstFn>
inline void send_records(Sender& send, std::span<const Word> slab,
                         std::size_t width, std::size_t key_words,
                         std::span<const Word> splitters, DstFn&& dst_of) {
  for_each_bucket_span(slab, width, key_words, splitters,
                       [&send, &dst_of](std::size_t b,
                                        std::span<const Word> span) {
                         send.send(dst_of(b), span);
                       });
}

/// Evenly-spaced sample of at most `max_samples` key prefixes from a
/// key-sorted record arena. The sample count is clamped to the record
/// count, so every sampled index is distinct — small slabs contribute each
/// key at most once instead of repeating their first records.
inline std::vector<Word> sample_record_keys(const std::vector<Word>& arena,
                                            std::size_t width,
                                            std::size_t key_words,
                                            std::size_t max_samples) {
  ARBOR_CHECK(key_words > 0 && key_words <= width);
  const std::size_t n = record_count(arena.size(), width);
  const std::size_t samples = std::min(max_samples, n);
  std::vector<Word> out;
  out.reserve(samples * key_words);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t idx = i * n / samples;  // strictly increasing: s ≤ n
    const Word* key = arena.data() + idx * width;
    out.insert(out.end(), key, key + key_words);
  }
  return out;
}

}  // namespace arbor::engine
