// Base vocabulary of the execution engine.
//
// The engine layer sits below mpc/: it knows about machine words and message
// buffers but nothing about clusters, ledgers, or graphs. mpc::Word aliases
// engine::Word so the two layers agree without a dependency cycle.
#pragma once

#include <cstdint>

namespace arbor::engine {

/// One machine word = O(log n) bits (vertex id, edge endpoint, layer/color).
using Word = std::uint64_t;

}  // namespace arbor::engine
