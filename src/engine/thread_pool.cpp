#include "engine/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::engine {

ThreadPool::ThreadPool(std::size_t workers)
    : width_(std::max<std::size_t>(workers, 1)) {
  // The calling thread participates in every run_blocks, so only width-1
  // threads are spawned; a pool of width 1 runs everything inline.
  errors_.resize(width_);
  workers_.reserve(width_ - 1);
  for (std::size_t i = 0; i + 1 < width_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_block_of(std::size_t index, std::size_t n,
                              const BlockFn& fn) {
  const std::size_t chunk = (n + width_ - 1) / width_;
  const std::size_t begin = std::min(index * chunk, n);
  const std::size_t end = std::min(begin + chunk, n);
  if (begin >= end) return;
  try {
    fn(begin, end);
  } catch (...) {
    errors_[index] = std::current_exception();
  }
}

void ThreadPool::run_blocks(std::size_t n, const BlockFn& fn) {
  if (n == 0) return;
  std::fill(errors_.begin(), errors_.end(), std::exception_ptr{});
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_n_ = n;
      job_fn_ = &fn;
      pending_ = workers_.size();
      ++generation_;
    }
    start_cv_.notify_all();
  }
  // The caller takes the last block while the workers run theirs.
  run_block_of(width_ - 1, n, fn);
  if (!workers_.empty()) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_fn_ = nullptr;
  }
  // Deterministic error reporting: lowest block index wins.
  for (const auto& err : errors_)
    if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const BlockFn* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n = job_n_;
    }
    run_block_of(index, n, *fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace arbor::engine
