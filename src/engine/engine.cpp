#include "engine/engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/assert.hpp"

namespace arbor::engine {

Engine::Engine(ExecutionPolicy policy) : policy_(policy) {
  // Oversubscribing a synchronous-round executor past the core count only
  // adds scheduler thrash between the barriers, so the pool is capped at
  // the hardware concurrency; the policy keeps recording the request.
  std::size_t workers = policy_.effective_threads();
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) workers = std::min<std::size_t>(workers, hw);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
  scheduler_ = std::make_unique<Scheduler>(policy_, pool_.get());
}

Engine::~Engine() = default;

ProgramStats Engine::run_program(RoundState& state, std::size_t capacity,
                                 std::size_t first_round_index,
                                 const RoundProgram& program,
                                 const RoundHook& on_round) {
  if (backend_ && program.remote)
    return backend_->run_program(state, capacity, first_round_index, program,
                                 on_round);
  return scheduler_->run(state, capacity, first_round_index, program,
                         on_round);
}

RoundStats Engine::run_round(RoundState& state, std::size_t capacity,
                             std::size_t round_index, const StepFn& step) {
  RoundProgram program;
  program.barrier(step);
  RoundStats stats;
  scheduler_->run(state, capacity, round_index, program,
                  [&stats](const RoundStats& s) { stats = s; });
  return stats;
}

}  // namespace arbor::engine
