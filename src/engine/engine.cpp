#include "engine/engine.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"

namespace arbor::engine {

Engine::Engine(ExecutionPolicy policy) : policy_(policy) {
  // Oversubscribing a synchronous-round executor past the core count only
  // adds scheduler thrash between the barriers, so the pool is capped at
  // the hardware concurrency; the policy keeps recording the request.
  std::size_t workers = policy_.effective_threads();
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) workers = std::min<std::size_t>(workers, hw);
  if (workers > 1) pool_ = std::make_unique<ThreadPool>(workers);
}

Engine::~Engine() = default;

RoundStats Engine::run_round(RoundState& state, std::size_t capacity,
                             std::size_t round_index, const StepFn& step) {
  ARBOR_CHECK(state.num_machines() > 0);
  ARBOR_CHECK(capacity > 0);
  // Shared engines must serialize rounds: the pool and the scratch routing
  // tables hold one round at a time. Fail loudly instead of corrupting.
  ARBOR_CHECK_MSG(!in_round_,
                  "Engine::run_round re-entered: a shared Engine executes "
                  "one cluster round at a time (do not call run_round from "
                  "inside a step function or from a second thread)");
  in_round_ = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{in_round_};
  compute(state, capacity, step);
  return route_and_deliver(state, capacity, round_index);
}

void Engine::compute(RoundState& state, std::size_t capacity,
                     const StepFn& step) {
  const std::size_t machines = state.num_machines();
  const auto run_block = [&](std::size_t begin, std::size_t end) {
    for (std::size_t m = begin; m < end; ++m) {
      Outbox& out = state.outboxes[m];
      out.clear();  // keeps arena capacity from previous rounds
      Sender sender(m, capacity, machines, out);
      step(m, state.inbox(m), sender);
    }
  };
  if (pool_)
    pool_->run_blocks(machines, run_block);
  else
    run_block(0, machines);
}

RoundStats Engine::route_and_deliver(RoundState& state, std::size_t capacity,
                                     std::size_t round_index) {
  const std::size_t machines = state.num_machines();
  RoundStats stats;

  // Route: count per-destination volume and group the outbox records by
  // destination with a stable counting sort (source asc, send order) — the
  // delivery order of the serial reference executor.
  recv_words_.assign(machines, 0);
  recv_msgs_.assign(machines, 0);
  std::size_t total_msgs = 0;
  for (std::size_t src = 0; src < machines; ++src) {
    const Outbox& out = state.outboxes[src];
    stats.max_sent = std::max(stats.max_sent, out.word_count());
    total_msgs += out.msgs.size();
    for (const Outbox::Msg& msg : out.msgs) {
      recv_words_[msg.dst] += msg.length;
      recv_msgs_[msg.dst] += 1;
    }
  }

  // Receiver-side cap: validated once per machine, naming the offender.
  for (std::size_t dst = 0; dst < machines; ++dst) {
    ARBOR_CHECK_MSG(recv_words_[dst] <= capacity,
                    "machine " + std::to_string(dst) +
                        " exceeded receive capacity: " +
                        std::to_string(recv_words_[dst]) + " > " +
                        std::to_string(capacity) + " words in round " +
                        std::to_string(round_index));
    stats.max_received = std::max(stats.max_received, recv_words_[dst]);
  }

  route_begin_.resize(machines + 1);
  route_begin_[0] = 0;
  for (std::size_t dst = 0; dst < machines; ++dst)
    route_begin_[dst + 1] = route_begin_[dst] + recv_msgs_[dst];
  route_cursor_.assign(route_begin_.begin(), route_begin_.end() - 1);
  routes_.resize(total_msgs);
  for (std::size_t src = 0; src < machines; ++src)
    for (const Outbox::Msg& msg : state.outboxes[src].msgs)
      routes_[route_cursor_[msg.dst]++] = {static_cast<std::uint32_t>(src),
                                           msg.offset, msg.length};

  // Deliver: copy payloads out of the source arenas into each destination's
  // inbox. Flat inboxes are filled in parallel (destinations are disjoint);
  // the nested reference representation materializes one vector per message
  // on the calling thread.
  if (state.is_flat) {
    const auto deliver_block = [&](std::size_t begin, std::size_t end) {
      for (std::size_t dst = begin; dst < end; ++dst) {
        Inbox& in = state.flat_inboxes[dst];
        in.clear();
        in.words.reserve(recv_words_[dst]);
        in.msgs.reserve(recv_msgs_[dst]);
        for (std::size_t r = route_begin_[dst]; r < route_begin_[dst + 1];
             ++r) {
          const Route& route = routes_[r];
          const Outbox& out = state.outboxes[route.src];
          in.append({out.words.data() + route.offset, route.length});
        }
      }
    };
    if (pool_)
      pool_->run_blocks(machines, deliver_block);
    else
      deliver_block(0, machines);
  } else {
    for (std::size_t dst = 0; dst < machines; ++dst) {
      auto& in = state.nested_inboxes[dst];
      in.clear();
      in.reserve(recv_msgs_[dst]);
      for (std::size_t r = route_begin_[dst]; r < route_begin_[dst + 1]; ++r) {
        const Route& route = routes_[r];
        const Outbox& out = state.outboxes[route.src];
        const Word* data = out.words.data() + route.offset;
        in.emplace_back(data, data + route.length);
      }
    }
  }

  return stats;
}

}  // namespace arbor::engine
