// Fixed-size worker pool running contiguous index blocks with a barrier.
//
// The engine's unit of parallelism is "a block of machine (or inbox) ids":
// run_blocks(n, fn) partitions [0, n) into one contiguous block per worker,
// runs fn(begin, end) on each worker, and returns only after every block
// finished (the round barrier). Exceptions thrown inside a block are
// captured and rethrown on the calling thread — the one from the
// lowest-indexed block wins, so error reporting is deterministic regardless
// of scheduling.
//
// The pool is created once per engine and reused for every phase of every
// round; a round costs two condition-variable handshakes, not thread spawns.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arbor::engine {

class ThreadPool {
 public:
  /// Pool of `workers`-way parallelism (at least 1). The calling thread
  /// runs the last block of every run_blocks, so only workers-1 threads
  /// are spawned.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism width (blocks per run), caller included.
  std::size_t size() const noexcept { return width_; }

  using BlockFn = std::function<void(std::size_t begin, std::size_t end)>;

  /// Run fn over [0, n) split into size() contiguous blocks; blocks until
  /// all workers finish. Not reentrant and not thread-safe: one run at a
  /// time, from one caller.
  void run_blocks(std::size_t n, const BlockFn& fn);

 private:
  void worker_loop(std::size_t index);
  void run_block_of(std::size_t index, std::size_t n, const BlockFn& fn);

  std::size_t width_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // bumped per run_blocks call
  std::size_t pending_ = 0;
  std::size_t job_n_ = 0;
  const BlockFn* job_fn_ = nullptr;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // slot per worker
  std::vector<std::thread> workers_;
};

}  // namespace arbor::engine
