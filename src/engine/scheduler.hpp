// Executes RoundPrograms over a RoundState, overlapping rounds when the
// program allows it.
//
// Strict execution (the original three-phase round, still used for barrier
// steps, the serial policy, and single-step programs):
//
//   compute — machines are partitioned into contiguous blocks, one per
//             worker thread; each machine's step function writes into its
//             own flat Outbox (no sharing, no locks).
//   route   — a single pass over the outbox records counts per-destination
//             words, validates the receiver-side traffic cap once per
//             machine, and builds a routing table grouped by destination
//             (a stable counting sort by dst) for the phases that need
//             destination-grouped access.
//   deliver — destinations are partitioned across the workers; each worker
//             copies the payloads for its destinations out of the source
//             arenas into the destination Inbox arenas.
//
// Unchecked flat execution collapses route and deliver into a zero-copy
// pass (route_and_deliver_direct) that skips the payload copy entirely: it
// counts volume, validates the caps, and records span references into the
// frozen outbox bank (ScatterInbox); the banks flip, and the next compute
// reads the spans where they lie — the same (source asc, send order)
// delivery order with zero words moved. Pool-less (serial) rounds do it in
// ONE source-major pass with no routing table; parallel rounds first build
// the destination-grouped routing table (route(), which also validates the
// receiver caps with the exact strict-path error text before any inbox
// mutation), then stage each destination's spans from worker threads —
// destinations are disjoint, so the staging is lock-free. The final
// round's spans are materialized into flat inboxes before run() returns,
// so only the scheduler ever observes the scatter representation.
//
// Asynchronous overlap: when the NEXT step of the program is tagged
// machine-independent (see program.hpp for the contract), the deliver phase
// of round r and the compute phase of round r+1 run fused in ONE parallel
// phase. Each worker, for each machine m in its block, first copies m's
// round-r messages out of the frozen front outbox bank into m's inbox, then
// immediately runs round r+1's step for m, writing into the back outbox
// bank; the banks flip at the phase barrier. Machine m's compute therefore
// starts as soon as m's own inbox is complete — other machines' deliveries
// may still be in flight — which halves the barrier count per round and
// overlaps copy-dominated delivery with compute. No writes are shared: the
// front bank is read-only during the fused phase, inbox m and back-bank
// slot m are touched only by the worker that owns machine m.
//
// Delivery order is (source machine asc, send order) for every destination
// in both modes — exactly the order the serial reference executor produces —
// so inboxes, fingerprints, and ledger totals are bit-identical across
// {serial, parallel} × {async on, off} (tests/engine_test.cpp,
// tests/level0_programs_test.cpp). Traffic accounting is computed from
// per-machine totals in the route phase, so it is exact under concurrency
// without atomics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <functional>
#include <vector>

#include "engine/execution_policy.hpp"
#include "engine/fetch_cache.hpp"
#include "engine/program.hpp"
#include "engine/round_state.hpp"
#include "engine/thread_pool.hpp"

namespace arbor::check {
class Monitor;  // check/monitor.hpp
}  // namespace arbor::check

namespace arbor::engine {

/// Per-round commit hook: invoked once per round when the round is
/// committed — compute done, caps validated, traffic stats final. Under
/// strict execution that is after the round's delivery; under async
/// overlap the round's delivery may still be in flight (it runs fused
/// with the next compute), so the hook must not inspect inboxes — it is
/// for accounting (clusters charge their ledgers here), and the charged
/// totals are identical in every mode, including mid-program throws.
using RoundHook = std::function<void(const RoundStats&)>;

class Scheduler {
 public:
  /// `pool` may be null (phases run inline on the calling thread); it is
  /// borrowed, not owned.
  Scheduler(ExecutionPolicy policy, ThreadPool* pool)
      : policy_(policy), pool_(pool) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Execute `program` on `state`. `first_round_index` only feeds error
  /// messages; `on_round` (optional) fires once per completed round. Not
  /// thread-safe and not reentrant: a shared scheduler executes one program
  /// at a time and fails loudly otherwise.
  ProgramStats run(RoundState& state, std::size_t capacity,
                   std::size_t first_round_index, const RoundProgram& program,
                   const RoundHook& on_round);

 private:
  void run_parallel(std::size_t n, const ThreadPool::BlockFn& fn);
  /// `monitor` non-null routes the phase through checked execution
  /// (inline, single-threaded) instead of the parallel block loop.
  /// `fetch_cache` non-null wires the per-run FetchCache into the step's
  /// Senders (the program opted in via RoundProgram::fetch_cache).
  void compute(RoundState& state, std::size_t capacity,
               const ProgramStep& step, check::Monitor* monitor,
               FetchCache* fetch_cache);
  RoundStats route(RoundState& state, std::size_t capacity,
                   std::size_t round_index, const std::string& step_name);
  void deliver(RoundState& state);
  /// Zero-copy route+delivery for flat unchecked rounds: count
  /// per-destination volume, validate the caps, and stage span references
  /// into the frozen outbox bank (then flip banks so the spans survive the
  /// next compute). Pool-less execution does it in ONE source-major pass
  /// with no routing table; under a pool, route() builds the
  /// destination-grouped table (and validates the caps) first and worker
  /// threads stage the spans sharded by destination — disjoint
  /// destinations, so lock-free. Caps are validated — with route()'s exact
  /// error text — before any inbox state changes, so a violating round
  /// leaves the previous round's inboxes intact exactly like the two-phase
  /// path. Delivery order is identical to deliver(): the counting sort
  /// groups by destination but keeps (source asc, send order) inside each
  /// group, which is exactly the order a single source-major pass
  /// produces.
  RoundStats route_and_deliver_direct(RoundState& state, std::size_t capacity,
                                      std::size_t round_index,
                                      const std::string& step_name);
  /// Copy scatter-delivered spans into the flat inboxes and drop the
  /// scatter flag; no-op when the last delivery already produced flat
  /// inboxes. Runs on every program exit path.
  void materialize_scatter(RoundState& state);
  void deliver_and_compute(RoundState& state, std::size_t capacity,
                           const ProgramStep& next_step,
                           FetchCache* fetch_cache);

  ExecutionPolicy policy_;
  ThreadPool* pool_;  // null => phases run inline
  // Reentrancy/concurrency guard. Atomic so that a step function calling
  // back into a shared scheduler from a worker thread is reported as the
  // programming error it is instead of being a data race on the flag.
  std::atomic<bool> in_program_{false};

  // Scratch routing tables, reused across rounds.
  struct Route {
    std::uint32_t src = 0;
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::vector<std::size_t> recv_words_;
  std::vector<std::size_t> recv_msgs_;
  std::vector<std::size_t> route_begin_;  // per dst: first index into routes_
  std::vector<std::size_t> route_cursor_;
  std::vector<Route> routes_;
  // Staging bank for route_and_deliver_direct: spans are collected here and
  // swapped into the state only after the caps validate, so a cap violation
  // leaves the previous round's inboxes untouched.
  std::vector<ScatterInbox> scatter_scratch_;
  // Per-run delegate-style read cache (engine/fetch_cache.hpp); reset at
  // the start of every program that opts in (RoundProgram::fetch_cache)
  // and flushed into the engine.fetch_cache_hits metric at program end.
  FetchCache fetch_cache_;
};

}  // namespace arbor::engine
