// Parallel round executor for Cluster-style synchronous MPC rounds.
//
// The Engine bundles the worker pool and a Scheduler (scheduler.hpp — the
// actual three-phase / overlapped executor) but holds no per-cluster state;
// RoundState (round_state.hpp, owned by each Cluster) carries the inboxes
// and outbox banks. One Engine may therefore be shared by several clusters,
// as long as calls into it are serialized — the scheduler's reentrancy
// guard enforces this loudly.
//
// Protocols are expressed as RoundPrograms (program.hpp) and executed with
// run_program; run_round survives as the one-step-program special case the
// framework tests drive directly.
#pragma once

#include <cstddef>
#include <memory>

#include "engine/execution_policy.hpp"
#include "engine/program.hpp"
#include "engine/round_state.hpp"
#include "engine/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "engine/types.hpp"

namespace arbor::engine {

/// Alternative executor for RoundPrograms that carry a RemoteSpec — the
/// seam the multi-process transport backend (src/net/) plugs into. A
/// backend observes the same contract as the in-process scheduler: every
/// step is one synchronous round with both traffic caps enforced,
/// `on_round` fires once per committed round with exact stats, and the
/// RoundState's inboxes hold the final round's delivery when run_program
/// returns (so post-program inbox reads behave identically).
class ProgramBackend {
 public:
  virtual ~ProgramBackend() = default;

  virtual ProgramStats run_program(RoundState& state, std::size_t capacity,
                                   std::size_t first_round_index,
                                   const RoundProgram& program,
                                   const RoundHook& on_round) = 0;
};

class Engine {
 public:
  explicit Engine(ExecutionPolicy policy);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ExecutionPolicy& policy() const noexcept { return policy_; }

  /// Route programs that carry a RemoteSpec through `backend` (borrowed;
  /// must outlive the engine or be reset first). Programs without a spec —
  /// ad-hoc run_round lambdas, framework test programs — keep executing on
  /// the in-process scheduler, so installing a backend never breaks a
  /// protocol that has not opted in to distribution.
  void set_backend(ProgramBackend* backend) noexcept { backend_ = backend; }
  ProgramBackend* backend() const noexcept { return backend_; }

  /// Worker threads backing the compute/deliver phases (1 when inline).
  std::size_t worker_threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  /// Matching RoundState representation for this engine's policy: flat
  /// word arenas everywhere except checked execution, which keeps the
  /// nested per-message vectors of the original reference executor (the
  /// representation the framework tests were written against, preserved
  /// where determinism is being verified rather than speed measured).
  RoundState make_state(std::size_t machines) const {
    return RoundState(machines, !policy_.check);
  }

  /// Execute a RoundProgram: every step is one synchronous round (capacity
  /// caps enforced on both sides), with delivery of round r overlapped into
  /// the compute of round r+1 where the program and policy allow (see
  /// scheduler.hpp). `first_round_index` only feeds error messages;
  /// `on_round` fires once per completed round for ledger charging. Not
  /// thread-safe: serialize calls per Engine.
  ProgramStats run_program(RoundState& state, std::size_t capacity,
                           std::size_t first_round_index,
                           const RoundProgram& program,
                           const RoundHook& on_round = {});

  /// One synchronous round — a one-step barrier program: every machine sees
  /// its inbox and emits messages; the receiver-side cap is validated once
  /// per machine; inboxes swap.
  RoundStats run_round(RoundState& state, std::size_t capacity,
                       std::size_t round_index, const StepFn& step);

 private:
  ExecutionPolicy policy_;
  std::unique_ptr<ThreadPool> pool_;  // null => phases run inline
  std::unique_ptr<Scheduler> scheduler_;
  ProgramBackend* backend_ = nullptr;  // not owned; null => in-process only
};

}  // namespace arbor::engine
