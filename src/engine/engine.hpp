// Parallel round executor for Cluster-style synchronous MPC rounds.
//
// One round runs in three phases:
//
//   compute — machines are partitioned into contiguous blocks, one per
//             worker thread; each machine's step function writes into its
//             own flat Outbox (no sharing, no locks).
//   route   — a single pass over the outbox records builds a routing table
//             grouped by destination (a stable counting sort by dst), counts
//             per-destination words, and validates the receiver-side traffic
//             cap once per machine.
//   deliver — destinations are partitioned across the workers; each worker
//             copies the payloads for its destinations out of the source
//             arenas into the destination Inbox arenas.
//
// Delivery order is (source machine asc, send order) for every destination —
// exactly the order the serial reference executor produces — so inboxes are
// bit-identical to serial execution no matter how blocks are scheduled.
// Traffic accounting is computed from per-machine totals after the barrier,
// so it is exact under concurrency without atomics.
//
// The Engine holds the worker pool and scratch routing tables but no
// per-cluster state; RoundState (owned by each Cluster) carries the inboxes
// and outboxes. One Engine may therefore be shared by several clusters, as
// long as calls into it are serialized.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "engine/execution_policy.hpp"
#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "engine/thread_pool.hpp"
#include "engine/types.hpp"

namespace arbor::engine {

/// Per-cluster message state: one inbox and one outbox slot per machine.
/// The serial reference executor keeps inboxes as nested per-message
/// vectors; the engine keeps them as flat arenas. Both reuse storage across
/// rounds.
struct RoundState {
  RoundState(std::size_t machines, bool flat)
      : flat_inboxes(flat ? machines : 0),
        nested_inboxes(flat ? 0 : machines),
        outboxes(machines),
        is_flat(flat) {}

  std::size_t num_machines() const noexcept { return outboxes.size(); }

  InboxView inbox(std::size_t m) const {
    return is_flat ? InboxView(flat_inboxes[m]) : InboxView(nested_inboxes[m]);
  }

  /// Deliver `payload` into machine `dst`'s inbox outside of any round
  /// (input loading).
  void preload(std::size_t dst, std::span<const Word> payload) {
    if (is_flat)
      flat_inboxes[dst].append(payload);
    else
      nested_inboxes[dst].emplace_back(payload.begin(), payload.end());
  }

  std::vector<Inbox> flat_inboxes;
  std::vector<std::vector<std::vector<Word>>> nested_inboxes;
  std::vector<Outbox> outboxes;
  bool is_flat;
};

/// What one executed round looked like, for ledger charging.
struct RoundStats {
  std::size_t max_sent = 0;      ///< largest per-machine send volume
  std::size_t max_received = 0;  ///< largest per-machine receive volume

  std::size_t max_traffic() const noexcept {
    return max_sent > max_received ? max_sent : max_received;
  }
};

/// Step function: (machine id, messages received last round, sender).
///
/// CONCURRENCY CONTRACT: under a parallel policy the step function is
/// invoked concurrently for different machines. It may freely read shared
/// immutable state (the graph, last round's snapshots) but must only write
/// state owned by its machine id (disjoint slots of per-machine arrays,
/// its Sender). Mutating shared accumulators from inside a step is a data
/// race; aggregate per-machine results after run_round returns instead.
using StepFn =
    std::function<void(std::size_t, const InboxView&, Sender&)>;

class Engine {
 public:
  explicit Engine(ExecutionPolicy policy);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ExecutionPolicy& policy() const noexcept { return policy_; }

  /// Worker threads backing the compute/deliver phases (1 when inline).
  std::size_t worker_threads() const noexcept {
    return pool_ ? pool_->size() : 1;
  }

  /// Matching RoundState representation for this engine's policy.
  RoundState make_state(std::size_t machines) const {
    return RoundState(machines, policy_.is_parallel());
  }

  /// Execute one synchronous round: every machine sees its inbox and emits
  /// messages (sender cap enforced as they are queued); the receiver-side
  /// cap is validated once per machine; inboxes swap. `round_index` only
  /// feeds error messages. Not thread-safe: serialize calls per Engine.
  RoundStats run_round(RoundState& state, std::size_t capacity,
                       std::size_t round_index, const StepFn& step);

 private:
  void compute(RoundState& state, std::size_t capacity, const StepFn& step);
  RoundStats route_and_deliver(RoundState& state, std::size_t capacity,
                               std::size_t round_index);

  ExecutionPolicy policy_;
  std::unique_ptr<ThreadPool> pool_;  // null => phases run inline
  bool in_round_ = false;             // reentrancy/concurrency guard

  // Scratch routing tables, reused across rounds.
  struct Route {
    std::uint32_t src = 0;
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::vector<std::size_t> recv_words_;
  std::vector<std::size_t> recv_msgs_;
  std::vector<std::size_t> route_begin_;  // per dst: first index into routes_
  std::vector<std::size_t> route_cursor_;
  std::vector<Route> routes_;
};

}  // namespace arbor::engine
