// Flat per-machine inboxes and the views the step functions read them
// through.
//
// The engine never materializes a std::vector per message: an Inbox is one
// Word arena plus an (offset, length) record per message, both reused across
// rounds (clear() keeps capacity). Step functions and tests access messages
// through InboxView/MessageView, which also adapt the serial reference
// executor's nested vector-of-vectors storage — so the same program text
// runs unchanged on either executor.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

/// One machine's received messages as a flat arena + offset records.
struct Inbox {
  struct Msg {
    std::size_t offset = 0;
    std::size_t length = 0;
  };

  std::vector<Word> words;
  std::vector<Msg> msgs;

  void clear() noexcept {
    words.clear();
    msgs.clear();
  }

  std::size_t word_count() const noexcept { return words.size(); }
  std::size_t message_count() const noexcept { return msgs.size(); }

  void append(std::span<const Word> payload) {
    msgs.push_back({words.size(), payload.size()});
    words.insert(words.end(), payload.begin(), payload.end());
  }

  std::span<const Word> message(std::size_t i) const {
    const Msg& m = msgs[i];
    return {words.data() + m.offset, m.length};
  }
};

/// One machine's received messages as spans into the sender arenas — the
/// zero-copy inbox the scheduler's routing-table-free delivery produces.
/// The spans alias the frozen outbox bank of the round that delivered
/// them, so they stay valid for exactly one round (the banks alternate);
/// the scheduler materializes them into flat Inboxes at program end, which
/// is the only point anything outlives the round.
struct ScatterInbox {
  std::vector<std::span<const Word>> msgs;
  std::size_t words = 0;  ///< total payload words across msgs

  void clear() noexcept {
    msgs.clear();
    words = 0;
  }
};

/// Read-only view of one message; converts to std::vector<Word> so code
/// written against the vector-based inboxes keeps compiling.
class MessageView {
 public:
  MessageView() = default;
  /*implicit*/ MessageView(std::span<const Word> s) : span_(s) {}

  std::size_t size() const noexcept { return span_.size(); }
  bool empty() const noexcept { return span_.empty(); }
  Word operator[](std::size_t i) const { return span_[i]; }
  const Word* begin() const noexcept { return span_.data(); }
  const Word* end() const noexcept { return span_.data() + span_.size(); }
  Word front() const { return span_.front(); }
  Word back() const { return span_.back(); }
  std::span<const Word> span() const noexcept { return span_; }

  operator std::vector<Word>() const {  // NOLINT(google-explicit-constructor)
    return {span_.begin(), span_.end()};
  }

  friend bool operator==(const MessageView& a, const std::vector<Word>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<Word>& a, const MessageView& b) {
    return b == a;
  }

 private:
  std::span<const Word> span_;
};

/// Read-only view over one machine's inbox, independent of whether the
/// storage is a flat arena (engine) or nested vectors (serial reference).
class InboxView {
 public:
  InboxView() = default;
  explicit InboxView(const Inbox& flat) : flat_(&flat) {}
  explicit InboxView(const ScatterInbox& scatter) : scatter_(&scatter) {}
  explicit InboxView(const std::vector<std::vector<Word>>& nested)
      : nested_(&nested) {}

  std::size_t size() const noexcept {
    if (flat_) return flat_->message_count();
    if (scatter_) return scatter_->msgs.size();
    if (nested_) return nested_->size();
    return 0;
  }
  bool empty() const noexcept { return size() == 0; }

  MessageView operator[](std::size_t i) const {
    ARBOR_DCHECK(i < size());
    if (flat_) return MessageView(flat_->message(i));
    if (scatter_) return MessageView(scatter_->msgs[i]);
    return MessageView(std::span<const Word>((*nested_)[i]));
  }
  MessageView front() const { return (*this)[0]; }

  /// Total words across all messages.
  std::size_t total_words() const noexcept {
    if (flat_) return flat_->word_count();
    if (scatter_) return scatter_->words;
    std::size_t total = 0;
    if (nested_)
      for (const auto& msg : *nested_) total += msg.size();
    return total;
  }

  class iterator {
   public:
    using value_type = MessageView;
    using difference_type = std::ptrdiff_t;

    iterator(const InboxView* view, std::size_t i) : view_(view), i_(i) {}
    MessageView operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.i_ != b.i_;
    }

   private:
    const InboxView* view_;
    std::size_t i_;
  };

  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, size()}; }

 private:
  const Inbox* flat_ = nullptr;
  const ScatterInbox* scatter_ = nullptr;
  const std::vector<std::vector<Word>>* nested_ = nullptr;
};

}  // namespace arbor::engine
