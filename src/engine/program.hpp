// Declarative multi-round protocols: a RoundProgram is the unit the
// Scheduler executes.
//
// A protocol used to drive Cluster::run_round imperatively, one lambda per
// round, with a hard barrier between every compute, route, and deliver
// phase. A RoundProgram instead declares the whole protocol up front as a
// sequence of step descriptors, which lets the scheduler pipeline phases:
// when the NEXT step is tagged machine-independent, the delivery of round r
// and the compute of round r+1 run fused in one parallel phase (see
// scheduler.hpp). Programs are also the single choke point a future
// multi-process backend needs — a program is data, an ad-hoc lambda chain
// is not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/inbox.hpp"
#include "engine/outbox.hpp"

namespace arbor::check {
class Ownership;  // check/ownership.hpp
}  // namespace arbor::check

namespace arbor::obs {
class CostModel;  // obs/cost_model.hpp
}  // namespace arbor::obs

namespace arbor::engine {

/// Step function: (machine id, messages received last round, sender).
///
/// CONCURRENCY CONTRACT: under a parallel policy the step function is
/// invoked concurrently for different machines. It may freely read shared
/// immutable state (the graph, slabs loaded before the program) but must
/// only write state owned by its machine id (disjoint slots of per-machine
/// arrays, its Sender). Mutating shared accumulators from inside a step is
/// a data race; aggregate per-machine results in a RoundProgram continue
/// callback or after the program returns.
using StepFn =
    std::function<void(std::size_t, const InboxView&, Sender&)>;

/// How a step may be scheduled relative to the previous round's delivery.
enum class StepKind : std::uint8_t {
  /// MACHINE-INDEPENDENT CONTRACT (strictly stronger than the StepFn
  /// concurrency contract above): machine m's invocation depends only on
  ///   (a) machine m's own inbox for this round,
  ///   (b) state owned by machine m (including values machine m's earlier
  ///       steps wrote), and
  ///   (c) shared state that is immutable for the whole program.
  /// In particular it must NOT read per-machine state written by OTHER
  /// machines' step invocations, nor global aggregates updated between
  /// rounds. Under this contract the scheduler may start machine m's
  /// compute as soon as m's inbox is delivered, while other machines'
  /// deliveries of the previous round are still in flight.
  kMachineIndependent,
  /// The step needs the previous round fully delivered on every machine
  /// before any compute starts (e.g. it reads state a continue callback or
  /// another machine's step maintains). Executed with the strict
  /// three-phase compute/route/deliver sequence.
  kBarrier,
};

/// Ledger/diagnostic label of a step that has not declared its own name.
inline constexpr const char* kDefaultStepName = "cluster.round";

struct ProgramStep {
  StepFn fn;
  StepKind kind = StepKind::kBarrier;
  /// Per-round label: clusters charge their ledgers under this name and
  /// cap-violation errors quote it, so a multi-round protocol's traffic is
  /// attributable round by round (e.g. "sample_sort.tree.up"). Defaults to
  /// the anonymous round label.
  std::string name = kDefaultStepName;
};

/// Serializable description of a RoundProgram, for execution backends that
/// cannot ship the step closures across an address-space boundary (the
/// multi-process transport in src/net/). A step function is code; its
/// *inputs* are data. A program that wants to run distributed therefore
/// names a registered worker-side factory (src/net/registry.hpp) and
/// carries everything that factory needs to rebuild the exact same program
/// over worker-local state:
///
///   * `scalars` — protocol parameters (fanout, record width, ...);
///   * `inputs`  — one word slab per machine, scattered so each worker
///     process receives only its machine block's share;
///   * `output_sink` — driver-side receiver for per-machine output slabs
///     the workers extract after the final round (protocols whose results
///     are written by compute-only steps rather than read from inboxes);
///   * `continue_with_votes` — driver-side replacement for
///     RoundProgram::continue_fn: at each pass barrier every worker
///     reduces a per-machine vote word over its block, the driver sums the
///     votes and this callback decides whether another pass runs (the
///     worker-side factory supplies the matching vote function).
///
/// Programs without a spec still execute on the in-process scheduler under
/// every backend — the spec is an opt-in contract, not a requirement.
struct RemoteSpec {
  std::string name;                       ///< registry key (net/registry.hpp)
  std::vector<Word> scalars;              ///< protocol parameters
  std::vector<std::vector<Word>> inputs;  ///< per-machine input slabs
  bool has_output = false;                ///< workers ship output slabs back
  bool has_vote = false;                  ///< pass continuation is voted
  std::function<void(std::size_t machine, std::span<const Word>)> output_sink;
  std::function<bool(std::size_t passes, Word vote_total)> continue_with_votes;
};

/// A declarative multi-round protocol: an ordered list of steps, optionally
/// repeated. Build with the fluent helpers:
///
///   engine::RoundProgram program;
///   program.independent(sample_step)
///          .independent(splitter_step)
///          .independent(route_step);
///   cluster.run_program(program);
///
/// Loops whose trip count is data-dependent (e.g. peeling until no vertex
/// moves) use repeat_while: after every full pass over `steps` — a full
/// barrier, all deliveries complete — the continue callback runs on the
/// calling thread, may inspect and update driver state, and decides whether
/// to run another pass.
struct RoundProgram {
  /// Post-pass decision hook: `passes` is the number of completed passes
  /// (1 after the first). Runs at a barrier on the calling thread.
  using ContinueFn = std::function<bool(std::size_t passes)>;

  std::vector<ProgramStep> steps;
  ContinueFn continue_fn;     ///< null: run the steps exactly once
  /// Safety cap on the pass count, consulted after continue_fn. The steps
  /// always execute at least one pass (the first pass runs before either
  /// is consulted) — a loop whose bound may be zero must guard the whole
  /// run_program call (see embedded_threshold_peeling's max_rounds == 0).
  std::size_t max_passes = 1;
  /// Serializable counterpart of the steps, set by distributable(). Null:
  /// the program can only execute in-process. Shared, not owned, so that
  /// copying a program (run_round wraps steps by value) stays cheap.
  std::shared_ptr<RemoteSpec> remote;
  /// Which machine owns which slice of the protocol's mutable state, set
  /// by owned() — the declaration ExecutionPolicy checked mode verifies
  /// the StepFn contracts against (check/ownership.hpp). Null: checked
  /// runs still replay independent steps and accept owned_span()
  /// registrations, but have no up-front state map. Shared like `remote`
  /// and for the same reason.
  std::shared_ptr<check::Ownership> ownership;
  /// Declared analytic cost model, set by costed() — per step label, the
  /// words/machine and round-count bounds the run is audited against after
  /// every Cluster::run_program (obs/cost_model.hpp). The program verifier
  /// requires every distributable program to either declare one or opt out
  /// explicitly with exempt_cost(). Shared like `remote`, same reason.
  std::shared_ptr<const obs::CostModel> cost;
  /// Explicit opt-out from the CostModel requirement, set by exempt_cost().
  /// Reserved for programs whose traffic is intentionally unmodeled (the
  /// adversarial check.* self-checks); real protocols declare bounds.
  bool cost_exempt = false;
  /// Serve the program's Sender::fetch()/send_fetched() payloads from the
  /// executor's per-run FetchCache (engine/fetch_cache.hpp). Off, every
  /// fetch rebuilds its payload — byte-identical messages either way, so
  /// this is purely a performance opt-in. Drivers set it from
  /// ClusterConfig::fetch_cache; worker-side factories from the matching
  /// RemoteSpec scalar.
  bool fetch_cache = false;

  RoundProgram& independent(StepFn fn) {
    steps.push_back({std::move(fn), StepKind::kMachineIndependent});
    return *this;
  }

  /// Named variant: the round is charged to the ledger under `name` and
  /// cap-violation errors quote it.
  RoundProgram& independent(std::string name, StepFn fn) {
    steps.push_back(
        {std::move(fn), StepKind::kMachineIndependent, std::move(name)});
    return *this;
  }

  RoundProgram& barrier(StepFn fn) {
    steps.push_back({std::move(fn), StepKind::kBarrier});
    return *this;
  }

  RoundProgram& barrier(std::string name, StepFn fn) {
    steps.push_back({std::move(fn), StepKind::kBarrier, std::move(name)});
    return *this;
  }

  RoundProgram& repeat_while(
      ContinueFn fn,
      std::size_t passes = std::numeric_limits<std::size_t>::max()) {
    continue_fn = std::move(fn);
    max_passes = passes;
    return *this;
  }

  /// Attach the serializable description that lets a multi-process backend
  /// execute this program across address spaces (see RemoteSpec).
  RoundProgram& distributable(RemoteSpec spec) {
    remote = std::make_shared<RemoteSpec>(std::move(spec));
    return *this;
  }

  /// Attach the ownership declaration checked execution verifies the
  /// step contracts against (check/ownership.hpp).
  RoundProgram& owned(std::shared_ptr<check::Ownership> declaration) {
    ownership = std::move(declaration);
    return *this;
  }

  /// Attach the declared analytic cost model the post-run bound audit
  /// checks measured traffic against (obs/cost_model.hpp).
  RoundProgram& costed(std::shared_ptr<const obs::CostModel> model) {
    cost = std::move(model);
    return *this;
  }

  /// Explicitly opt out of the CostModel requirement (see `cost_exempt`).
  RoundProgram& exempt_cost() {
    cost_exempt = true;
    return *this;
  }

  /// Opt into the executor's per-run FetchCache (see `fetch_cache`).
  RoundProgram& cached_fetches(bool on = true) {
    fetch_cache = on;
    return *this;
  }

  /// Rounds one pass over the steps executes.
  std::size_t steps_per_pass() const noexcept { return steps.size(); }
};

/// Suffix quoting a step's name in round-indexed error messages, shared by
/// the in-process scheduler and the multi-process worker runtime so a cap
/// violation reads identically whichever side detects it. Anonymous steps
/// keep the bare message.
inline std::string step_name_suffix(const std::string& name) {
  return name == kDefaultStepName ? std::string() : " (" + name + ")";
}

/// What one executed round looked like, for ledger charging.
struct RoundStats {
  std::size_t max_sent = 0;      ///< largest per-machine send volume
  std::size_t max_received = 0;  ///< largest per-machine receive volume

  std::size_t max_traffic() const noexcept {
    return max_sent > max_received ? max_sent : max_received;
  }
};

/// What one executed program looked like.
struct ProgramStats {
  std::size_t rounds = 0;      ///< rounds fully executed (delivered)
  std::size_t passes = 0;      ///< passes over the step list
  /// Rounds whose compute ran fused with the previous round's delivery
  /// (asynchronous overlap). 0 under the serial policy, for barrier steps,
  /// and when ExecutionPolicy::async_rounds is off.
  std::size_t overlapped = 0;
};

}  // namespace arbor::engine
