// Per-cluster message state: inboxes, and double-buffered outboxes.
//
// Checked execution keeps inboxes as nested per-message vectors (the
// original reference representation); everything else keeps them as flat
// arenas. Both reuse storage across rounds.
// Outboxes come in two banks: strict execution only ever touches the front
// bank, while the scheduler's overlapped phase computes round r+1 into the
// back bank while round r's delivery is still reading the front one (the
// back bank is allocated lazily, so serial/strict states pay nothing).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "engine/types.hpp"
#include "util/assert.hpp"

namespace arbor::engine {

struct RoundState {
  RoundState(std::size_t machines, bool flat)
      : flat_inboxes(flat ? machines : 0),
        nested_inboxes(flat ? 0 : machines),
        is_flat(flat) {
    outbox_banks[0].resize(machines);
  }

  std::size_t num_machines() const noexcept { return outbox_banks[0].size(); }

  InboxView inbox(std::size_t m) const {
    if (!is_flat) return InboxView(nested_inboxes[m]);
    if (scatter_active) return InboxView(scatter_inboxes[m]);
    return InboxView(flat_inboxes[m]);
  }

  /// Words currently queued in machine `m`'s inbox.
  std::size_t inbox_words(std::size_t m) const noexcept {
    if (is_flat)
      return scatter_active ? scatter_inboxes[m].words
                            : flat_inboxes[m].word_count();
    std::size_t total = 0;
    for (const auto& msg : nested_inboxes[m]) total += msg.size();
    return total;
  }

  /// Deliver `payload` into machine `dst`'s inbox outside of any round
  /// (input loading). Preloads count against the same receiver-side word
  /// cap a round's delivery is validated with: the model's machines hold at
  /// most `capacity` words, however those words arrived.
  void preload(std::size_t dst, std::span<const Word> payload,
               std::size_t capacity) {
    const std::size_t queued = inbox_words(dst) + payload.size();
    ARBOR_CHECK_MSG(queued <= capacity,
                    "machine " + std::to_string(dst) +
                        " exceeded receive capacity: " +
                        std::to_string(queued) + " > " +
                        std::to_string(capacity) + " words in preload");
    ARBOR_DCHECK(!scatter_active);  // programs materialize before returning
    if (is_flat)
      flat_inboxes[dst].append(payload);
    else
      nested_inboxes[dst].emplace_back(payload.begin(), payload.end());
  }

  /// Drop every queued message, keeping arena capacity (Inbox::clear
  /// semantics) — the reset a pooled cluster performs between programs so
  /// the next program neither re-reads a previous program's final inboxes
  /// nor re-ships them as preinbox frames over the net/ transport. After
  /// the first few programs a pooled steady state allocates nothing here.
  void clear_inboxes() noexcept {
    for (Inbox& inbox : flat_inboxes) inbox.clear();
    for (ScatterInbox& inbox : scatter_inboxes) inbox.clear();
    for (auto& inbox : nested_inboxes) inbox.clear();
    scatter_active = false;
  }

  /// Outbox bank the current round's compute writes and the current round's
  /// route/deliver phases read.
  std::vector<Outbox>& front_outboxes() noexcept {
    return outbox_banks[front];
  }
  const std::vector<Outbox>& front_outboxes() const noexcept {
    return outbox_banks[front];
  }

  /// The spare bank for the scheduler's overlapped deliver+compute phase.
  /// Allocated on first use; call from the scheduling thread before any
  /// parallel region writes into it.
  std::vector<Outbox>& back_outboxes() {
    std::vector<Outbox>& bank = outbox_banks[1 - front];
    if (bank.size() != num_machines()) bank.resize(num_machines());
    return bank;
  }

  /// Swap banks after an overlapped phase: the just-computed back bank
  /// becomes the front bank the next round routes from.
  void flip() noexcept { front = 1 - front; }

  std::vector<Inbox> flat_inboxes;
  /// Zero-copy inboxes for the scheduler's routing-table-free delivery:
  /// spans into the frozen outbox bank of the round that delivered them.
  /// `scatter_active` selects which representation inbox(m) reads; the
  /// scheduler materializes scatter contents into flat_inboxes (and drops
  /// the flag) before a program returns, so everything outside a running
  /// program only ever sees the flat representation.
  std::vector<ScatterInbox> scatter_inboxes;
  bool scatter_active = false;
  std::vector<std::vector<std::vector<Word>>> nested_inboxes;
  std::array<std::vector<Outbox>, 2> outbox_banks;
  std::size_t front = 0;
  bool is_flat;
};

}  // namespace arbor::engine
