// Dinic maximum-flow on a capacitated directed graph.
//
// Exists to support the exact densest-subgraph oracle (Goldberg's min-cut
// construction) in graph/arboricity.*. Kept small, deterministic, and exact
// over integer-scaled capacities.
#pragma once

#include <cstdint>
#include <vector>

namespace arbor::graph {

class MaxFlow {
 public:
  using Capacity = std::int64_t;

  explicit MaxFlow(std::size_t num_nodes);

  std::size_t num_nodes() const noexcept { return head_.size(); }

  /// Add directed arc u -> v with given capacity; a residual reverse arc of
  /// capacity 0 is added automatically. Returns the arc index (for tests).
  std::size_t add_arc(std::uint32_t u, std::uint32_t v, Capacity capacity);

  /// Compute the max flow from s to t. May be called once per instance.
  Capacity solve(std::uint32_t s, std::uint32_t t);

  /// After solve(): the set of nodes reachable from s in the residual graph
  /// (the source side of a minimum cut).
  std::vector<bool> min_cut_source_side(std::uint32_t s) const;

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t next;  // next arc index in the adjacency list, or kNone
    Capacity residual;
  };
  static constexpr std::uint32_t kNone = 0xffffffffu;

  bool bfs_build_levels(std::uint32_t s, std::uint32_t t);
  Capacity dfs_augment(std::uint32_t v, std::uint32_t t, Capacity limit);

  std::vector<std::uint32_t> head_;   // per-node first arc
  std::vector<Arc> arcs_;             // paired: arc i ^ 1 is its reverse
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  bool solved_ = false;
};

}  // namespace arbor::graph
