#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::graph {

namespace {
std::uint64_t pair_key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

Graph gnm(std::size_t n, std::size_t m, util::SplitRng& rng) {
  ARBOR_CHECK(n >= 2 || m == 0);
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  ARBOR_CHECK_MSG(m <= max_edges, "gnm: m exceeds n(n-1)/2");

  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph gnp(std::size_t n, double p, util::SplitRng& rng) {
  ARBOR_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return b.build();
  if (p >= 1.0) return clique(n);

  // Geometric skipping over the n(n-1)/2 canonical pairs: draw the gap to
  // the next present pair from Geometric(p), so each pair is present
  // independently with probability p but we only touch present pairs.
  const double log_q = std::log1p(-p);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Pairs strictly before row u: sum_{i<u} (n-1-i) = u(n-1) - u(u-1)/2.
  const auto pairs_before_row = [n](std::uint64_t u) {
    return u * (n - 1) - u * (u - 1) / 2;
  };
  std::uint64_t idx = 0;
  bool first = true;
  while (true) {
    const auto gap = static_cast<std::uint64_t>(
        std::floor(std::log(1.0 - rng.next_double()) / log_q));
    idx += gap + (first ? 0 : 1);
    first = false;
    if (idx >= total) break;
    // Decode linear index -> canonical pair (u, v), u < v: binary search for
    // the largest row whose starting offset is ≤ idx.
    std::uint64_t lo = 0, hi = n - 1;
    while (lo < hi) {
      const std::uint64_t mid = (lo + hi + 1) / 2;
      if (pairs_before_row(mid) <= idx)
        lo = mid;
      else
        hi = mid - 1;
    }
    const auto u = static_cast<VertexId>(lo);
    const auto v =
        static_cast<VertexId>(u + 1 + (idx - pairs_before_row(lo)));
    b.add_edge(u, v);
  }
  return b.build();
}

Graph random_forest(std::size_t n, util::SplitRng& rng, double root_prob) {
  GraphBuilder b(n);
  if (n < 2) return b.build();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    if (rng.next_bool(root_prob)) continue;  // start a new tree
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    b.add_edge(order[i], order[j]);
  }
  return b.build();
}

Graph forest_union(std::size_t n, std::size_t k, util::SplitRng& rng) {
  GraphBuilder b(n);
  for (std::size_t f = 0; f < k; ++f) {
    util::SplitRng child = rng.split(0xf0c4e5700ULL + f);
    const Graph forest = random_forest(n, child, /*root_prob=*/0.0);
    for (const Edge& e : forest.edges()) b.add_edge(e.u, e.v);
  }
  return b.build();
}

Graph star(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_edge(v - 1, v);
  return b.build();
}

Graph cycle(std::size_t n) {
  GraphBuilder b(n);
  if (n >= 3) {
    for (VertexId v = 1; v < n; ++v) b.add_edge(v - 1, v);
    b.add_edge(static_cast<VertexId>(n - 1), 0);
  } else if (n == 2) {
    b.add_edge(0, 1);
  }
  return b.build();
}

Graph clique(std::size_t n) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph complete_bipartite(std::size_t a, std::size_t b_count) {
  GraphBuilder b(a + b_count);
  for (VertexId u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b_count; ++v)
      b.add_edge(u, static_cast<VertexId>(a + v));
  return b.build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph planted_clique(std::size_t n, std::size_t background_edges,
                     std::size_t clique_size, util::SplitRng& rng) {
  ARBOR_CHECK(clique_size <= n);
  const Graph background = gnm(n, background_edges, rng);
  GraphBuilder b(n);
  for (const Edge& e : background.edges()) b.add_edge(e.u, e.v);

  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), VertexId{0});
  rng.shuffle(ids);
  for (std::size_t i = 0; i < clique_size; ++i)
    for (std::size_t j = i + 1; j < clique_size; ++j)
      b.add_edge(ids[i], ids[j]);
  return b.build();
}

Graph barabasi_albert(std::size_t n, std::size_t attach,
                      util::SplitRng& rng) {
  ARBOR_CHECK(attach >= 1);
  ARBOR_CHECK(n > attach);
  GraphBuilder b(n);
  // `targets` holds one entry per edge endpoint so sampling uniformly from
  // it is sampling proportionally to degree.
  std::vector<VertexId> targets;
  targets.reserve(2 * attach * n);
  // Seed: a clique on the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u) {
    for (VertexId v = u + 1; v <= attach; ++v) {
      b.add_edge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(attach + 1); v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < attach) {
      const VertexId t = targets[static_cast<std::size_t>(
          rng.next_below(targets.size()))];
      chosen.insert(t);
    }
    for (VertexId t : chosen) {
      b.add_edge(v, t);
      targets.push_back(v);
      targets.push_back(t);
    }
  }
  return b.build();
}

SlowPeelingChain slow_peeling_chain(std::size_t levels, std::size_t d,
                                    util::SplitRng& rng) {
  ARBOR_CHECK(levels >= 1);
  ARBOR_CHECK_MSG(d >= 10, "need d >= 10 for the degree margins to hold");
  const std::size_t q = 2 * d + 1;  // clique size; per-vertex density d
  // Support degree: level-i vertices (i ≥ 1) carry c edges into level i-1.
  // λ ≈ d + c/2, so the (2+ε)λ threshold is ≈ 2.2d + 1.1c and the
  // fully-supported degree is 2d + 1.5c; the construction needs
  //   2d + 0.5c ≤ threshold < 2d + 1.5c,
  // i.e. 0.4c > 0.2d + slack. c = 0.5d + 14 (rounded even) leaves a margin
  // of ≥ 3 on the upper side for all d ≥ 10.
  const std::size_t c = ((d / 2 + 14) + 3) / 4 * 4;  // rounded up to 4 | c

  // Level i holds 2^{levels-1-i} cliques: sizes halve exactly as the level
  // index grows, level 0 is the largest.
  std::vector<std::vector<VertexId>> level_vertices(levels);
  std::size_t n = 0;
  for (std::size_t i = 0; i < levels; ++i) {
    const std::size_t cliques = std::size_t{1} << (levels - 1 - i);
    level_vertices[i].resize(cliques * q);
    for (auto& v : level_vertices[i]) v = static_cast<VertexId>(n++);
  }

  GraphBuilder b(n);
  for (std::size_t i = 0; i < levels; ++i) {
    // Cliques within the level.
    const auto& verts = level_vertices[i];
    for (std::size_t base = 0; base < verts.size(); base += q)
      for (std::size_t x = 0; x < q; ++x)
        for (std::size_t y = x + 1; y < q; ++y)
          b.add_edge(verts[base + x], verts[base + y]);
    // Support edges into the previous level, deterministic and exactly
    // regular: in round r (r < c/2), vertex j of this level connects to
    // prev[(j+r) mod P] and prev[(j+P/2+r) mod P] where P = |prev| = 2·|cur|.
    // Every current vertex sends exactly c edges to distinct targets; every
    // previous-level vertex receives exactly c/2.
    if (i == 0) continue;
    const auto& prev = level_vertices[i - 1];
    const std::size_t p_size = prev.size();
    ARBOR_CHECK(p_size == 2 * verts.size());
    // The LAST level gets 1.5c down-support instead of c: it has no
    // incoming support of its own, and without the extra 0.5c it would
    // peel in round 1 from the far end, halving the cascade length.
    const std::size_t support =
        (i + 1 == levels && levels >= 2) ? c + c / 2 : c;
    ARBOR_CHECK_MSG(support / 2 < p_size / 2,
                    "support degree too large for the last level");
    for (std::size_t j = 0; j < verts.size(); ++j) {
      for (std::size_t r = 0; r < support / 2; ++r) {
        b.add_edge(verts[j], prev[(j + r) % p_size]);
        b.add_edge(verts[j], prev[(j + p_size / 2 + r) % p_size]);
      }
    }
  }
  (void)rng;  // construction is deterministic; parameter kept for symmetry
              // with the other generators' interfaces

  SlowPeelingChain chain;
  chain.graph = b.build();
  chain.lambda = d + c / 2 + 1;
  chain.levels = levels;
  chain.max_sustained_degree = 2 * d + (3 * c) / 2;
  return chain;
}

Graph relabel_randomly(const Graph& g, util::SplitRng& rng) {
  std::vector<VertexId> perm(g.num_vertices());
  std::iota(perm.begin(), perm.end(), VertexId{0});
  rng.shuffle(perm);
  GraphBuilder b(g.num_vertices());
  for (const Edge& e : g.edges()) b.add_edge(perm[e.u], perm[e.v]);
  return b.build();
}

}  // namespace arbor::graph
