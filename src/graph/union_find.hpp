// Disjoint-set union with path halving and union by size.
// Used by the forest generators (cycle avoidance) and connectivity checks.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace arbor::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  std::uint32_t find(std::uint32_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true iff x and y were in different components (i.e. a merge
  /// actually happened).
  bool unite(std::uint32_t x, std::uint32_t y) noexcept {
    std::uint32_t rx = find(x), ry = find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    return true;
  }

  bool connected(std::uint32_t x, std::uint32_t y) noexcept {
    return find(x) == find(y);
  }

  std::size_t component_size(std::uint32_t x) noexcept {
    return size_[find(x)];
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace arbor::graph
