#include "graph/coloring.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/arboricity.hpp"
#include "util/assert.hpp"

namespace arbor::graph {

ColoringCheck check_coloring(const Graph& g,
                             const std::vector<Color>& color) {
  ColoringCheck result;
  if (color.size() != g.num_vertices()) return result;  // not proper

  for (const Edge& e : g.edges()) {
    if (color[e.u] == color[e.v]) {
      result.violation = e;
      return result;
    }
  }
  std::unordered_set<Color> palette(color.begin(), color.end());
  result.proper = true;
  result.colors_used = palette.size();
  return result;
}

std::vector<Color> greedy_coloring(const Graph& g,
                                   const std::vector<VertexId>& order) {
  ARBOR_CHECK(order.size() == g.num_vertices());
  constexpr Color kUncolored = 0xffffffffu;
  std::vector<Color> color(g.num_vertices(), kUncolored);
  std::vector<bool> used;  // scratch, grown on demand
  for (VertexId v : order) {
    std::size_t bound = g.degree(v) + 1;
    if (used.size() < bound) used.resize(bound);
    std::fill(used.begin(), used.begin() + static_cast<std::ptrdiff_t>(bound),
              false);
    for (VertexId w : g.neighbors(v)) {
      const Color c = color[w];
      if (c != kUncolored && c < bound) used[c] = true;
    }
    Color c = 0;
    while (used[c]) ++c;
    color[v] = c;
  }
  return color;
}

std::vector<Color> degeneracy_coloring(const Graph& g) {
  std::vector<VertexId> order;
  degeneracy(g, &order);
  std::reverse(order.begin(), order.end());
  return greedy_coloring(g, order);
}

}  // namespace arbor::graph
