#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace arbor::graph {

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t n = 0, m = 0;
  bool header_seen = false;
  GraphBuilder builder(0);
  std::size_t edges_read = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!header_seen) {
      ARBOR_CHECK_MSG(static_cast<bool>(ls >> n >> m),
                      "edge list: bad header line (want 'n m')");
      header_seen = true;
      builder = GraphBuilder(n);
      continue;
    }
    std::uint64_t u = 0, v = 0;
    ARBOR_CHECK_MSG(static_cast<bool>(ls >> u >> v),
                    "edge list: bad edge line (want 'u v')");
    builder.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    ++edges_read;
  }
  ARBOR_CHECK_MSG(header_seen, "edge list: empty input");
  ARBOR_CHECK_MSG(edges_read == m, "edge list: edge count != header m");
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  ARBOR_CHECK_MSG(in.good(), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  ARBOR_CHECK_MSG(out.good(), "cannot open output file: " + path);
  write_edge_list(out, g);
}

}  // namespace arbor::graph
