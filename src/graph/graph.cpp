#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace arbor::graph {

std::size_t Graph::max_degree() const noexcept {
  std::size_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v)
    best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(VertexId u, VertexId v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  // Search the shorter list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

double Graph::average_degree() const noexcept {
  if (num_vertices() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices());
}

InducedSubgraph Graph::induced(std::span<const VertexId> vertices) const {
  std::unordered_map<VertexId, VertexId> to_new;
  to_new.reserve(vertices.size());
  std::vector<VertexId> to_original(vertices.begin(), vertices.end());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    ARBOR_CHECK_MSG(vertices[i] < num_vertices(),
                    "induced(): vertex id out of range");
    const bool inserted =
        to_new.emplace(vertices[i], static_cast<VertexId>(i)).second;
    ARBOR_CHECK_MSG(inserted, "induced(): duplicate vertex in selection");
  }

  // Build CSR for the subgraph directly: count, then fill.
  const std::size_t sub_n = vertices.size();
  std::vector<EdgeId> offsets(sub_n + 1, 0);
  for (std::size_t i = 0; i < sub_n; ++i) {
    for (VertexId w : neighbors(vertices[i]))
      if (to_new.contains(w)) ++offsets[i + 1];
  }
  for (std::size_t i = 0; i < sub_n; ++i) offsets[i + 1] += offsets[i];

  std::vector<VertexId> adjacency(offsets[sub_n]);
  std::vector<Edge> edges;
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t i = 0; i < sub_n; ++i) {
    for (VertexId w : neighbors(vertices[i])) {
      const auto it = to_new.find(w);
      if (it == to_new.end()) continue;
      const VertexId j = it->second;
      adjacency[cursor[i]++] = j;
      if (i < j) edges.push_back({static_cast<VertexId>(i), j});
    }
  }
  // Neighbor lists inherit the original order keyed by *original* ids; the
  // subgraph must be sorted by *new* ids.
  for (std::size_t i = 0; i < sub_n; ++i) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]));
  }
  std::sort(edges.begin(), edges.end());

  return {Graph(std::move(offsets), std::move(adjacency), std::move(edges)),
          std::move(to_original)};
}

}  // namespace arbor::graph
