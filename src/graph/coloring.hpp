// Vertex colorings and their quality measures.
//
// Theorem 1.2's target is a proper coloring with O(λ log log n) colors.
// Validation recomputes properness edge-by-edge; palette size is the count
// of distinct colors actually used.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::graph {

using Color = std::uint32_t;

struct ColoringCheck {
  bool proper = false;
  std::size_t colors_used = 0;
  /// First conflicting edge if not proper.
  std::optional<Edge> violation;
};

/// Recompute properness and palette size from scratch.
ColoringCheck check_coloring(const Graph& g, const std::vector<Color>& color);

/// Greedy coloring scanning `order`, assigning the smallest color not used
/// by an already-colored neighbor. With a degeneracy order this uses at most
/// degeneracy+1 colors — the sequential quality yardstick.
std::vector<Color> greedy_coloring(const Graph& g,
                                   const std::vector<VertexId>& order);

/// Greedy along a degeneracy elimination order, reversed (so every vertex
/// sees at most `degeneracy` colored neighbors when processed).
std::vector<Color> degeneracy_coloring(const Graph& g);

}  // namespace arbor::graph
