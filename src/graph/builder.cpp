#include "graph/builder.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::graph {

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  ARBOR_CHECK_MSG(u < num_vertices_ && v < num_vertices_,
                  "add_edge(): endpoint out of range");
  if (u == v) return;  // self-loops dropped
  if (u > v) std::swap(u, v);
  pending_.push_back({u, v});
}

Graph GraphBuilder::build() const {
  std::vector<Edge> edges = pending_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  std::vector<EdgeId> offsets(num_vertices_ + 1, 0);
  for (const Edge& e : edges) {
    ++offsets[e.u + 1];
    ++offsets[e.v + 1];
  }
  for (std::size_t i = 0; i < num_vertices_; ++i) offsets[i + 1] += offsets[i];

  std::vector<VertexId> adjacency(offsets[num_vertices_]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    adjacency[cursor[e.u]++] = e.v;
    adjacency[cursor[e.v]++] = e.u;
  }
  for (std::size_t i = 0; i < num_vertices_; ++i) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[i]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[i + 1]));
  }
  return Graph(std::move(offsets), std::move(adjacency), std::move(edges));
}

Graph GraphBuilder::build_and_clear() {
  Graph g = build();
  pending_.clear();
  pending_.shrink_to_fit();
  return g;
}

Graph from_edges(std::size_t num_vertices, std::span<const Edge> edges) {
  GraphBuilder b(num_vertices);
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

}  // namespace arbor::graph
