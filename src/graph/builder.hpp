// Mutable edge-list accumulator that produces immutable CSR Graphs.
//
// All graph construction funnels through here so that the simple-graph
// invariants (no self-loops, no parallel edges) are established exactly once.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace arbor::graph {

class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex set [0, n). Edges to vertices outside
  /// the range are rejected.
  explicit GraphBuilder(std::size_t num_vertices)
      : num_vertices_(num_vertices) {}

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_pending_edges() const noexcept { return pending_.size(); }

  /// Record an undirected edge. Order of endpoints is irrelevant;
  /// duplicates and self-loops are silently dropped at build() time.
  void add_edge(VertexId u, VertexId v);

  /// Build the CSR graph. The builder may be reused afterwards (it keeps
  /// its pending edges).
  Graph build() const;

  /// Build and clear the pending edge list.
  Graph build_and_clear();

 private:
  std::size_t num_vertices_;
  std::vector<Edge> pending_;
};

/// Convenience: build a graph directly from an edge list.
Graph from_edges(std::size_t num_vertices, std::span<const Edge> edges);

}  // namespace arbor::graph
