// Plain-text edge-list I/O, used by the examples so users can bring their
// own graphs. Format: first line "n m", then one "u v" pair per line,
// 0-indexed. Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace arbor::graph {

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

void write_edge_list(std::ostream& out, const Graph& g);
void write_edge_list_file(const std::string& path, const Graph& g);

}  // namespace arbor::graph
