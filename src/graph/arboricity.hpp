// Density and arboricity measurement.
//
// The paper's guarantees are all stated relative to the maximum subgraph
// density α(G) = max_S |E(S)|/|S| and the arboricity λ(G) = max_S
// ⌈|E(S)|/(|S|-1)⌉, with α ≤ λ ≤ α+1. Benches and tests need trustworthy
// values of these, so we provide:
//  * an EXACT densest-subgraph oracle (Goldberg's min-cut construction,
//    binary search over a 1/(2n²) density grid — exact because distinct
//    subgraph densities differ by more than the grid resolution),
//  * linear-time degeneracy (bucket-queue peeling), which sandwiches λ via
//    ⌈α⌉ ≤ λ ≤ degeneracy,
//  * the classic 2-approximation peeling density.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::graph {

/// Exact densest subgraph: the vertex set S maximizing |E(S)|/|S|, its edge
/// count, and the density as an exact rational evaluated to double.
struct DensestSubgraph {
  std::vector<VertexId> vertices;  ///< the maximizing S (empty iff m = 0)
  std::uint64_t subgraph_edges = 0;
  double density = 0.0;  ///< |E(S)| / |S|
};

/// Goldberg's exact algorithm. O(log(n·m) ) max-flow calls; intended for
/// validation on graphs up to a few tens of thousands of vertices.
DensestSubgraph exact_densest_subgraph(const Graph& g);

/// Degeneracy d(G) = max over subgraphs of the minimum degree, computed by
/// bucket-queue peeling in O(n + m). If `elimination_order` is non-null it
/// receives the peel order (each vertex has ≤ d(G) neighbors later in the
/// order). λ(G) ≤ d(G) ≤ 2λ(G) - 1.
std::size_t degeneracy(const Graph& g,
                       std::vector<VertexId>* elimination_order = nullptr);

/// Density of the best prefix found by peeling minimum-degree vertices —
/// the classic factor-2 approximation of α(G). O(n + m).
double peeling_density_lower_bound(const Graph& g);

/// Sandwich bounds for arboricity: lower = ⌈|E(S*)|/(|S*|-1)⌉ from the exact
/// densest subgraph, upper = degeneracy.
struct ArboricityBounds {
  std::size_t lower = 0;
  std::size_t upper = 0;
};
ArboricityBounds arboricity_bounds(const Graph& g);

}  // namespace arbor::graph
