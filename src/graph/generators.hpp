// Workload generators.
//
// The experiments need graph families with *known* (or tightly controlled)
// arboricity: unions of k random forests have λ ≤ k by construction and
// λ ≈ k when each forest is near-spanning; planted dense subgraphs exercise
// the high-λ edge-partitioning path of Theorem 1.1; stars and cliques are
// the paper's own motivating extremes (λ=1 vs Δ=n-1).
//
// All generators are deterministic functions of their SplitRng argument.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace arbor::graph {

/// Erdős–Rényi G(n, m): m distinct uniform edges. Requires m ≤ n(n-1)/2.
Graph gnm(std::size_t n, std::size_t m, util::SplitRng& rng);

/// Erdős–Rényi G(n, p) via geometric skipping; efficient for small p.
Graph gnp(std::size_t n, double p, util::SplitRng& rng);

/// Random labeled forest: vertices are attached in random order, each to a
/// uniformly random earlier vertex, and with probability `root_prob` a
/// vertex starts a new tree instead. λ = 1 (if any edge exists).
Graph random_forest(std::size_t n, util::SplitRng& rng,
                    double root_prob = 0.02);

/// Union of k independent random forests on the same vertex set:
/// λ ≤ k by construction (Nash–Williams), and ≈ k in practice after
/// deduplication. The workhorse family of E2/E4.
Graph forest_union(std::size_t n, std::size_t k, util::SplitRng& rng);

/// Star K_{1,n-1}: Δ = n-1 but λ = 1 — the paper's motivating example for
/// density- over degree-dependent bounds.
Graph star(std::size_t n);

/// Path and cycle on n vertices.
Graph path(std::size_t n);
Graph cycle(std::size_t n);

/// Complete graph on n vertices (λ = ⌈n/2⌉).
Graph clique(std::size_t n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(std::size_t a, std::size_t b);

/// 2-D grid graph (rows × cols), λ = 2.
Graph grid(std::size_t rows, std::size_t cols);

/// Sparse background G(n, m_background) plus a clique planted on
/// `clique_size` random vertices: α ≈ (clique_size - 1)/2 regardless of the
/// sparse remainder. Drives the Lemma 2.1/2.2 partitioning experiments.
Graph planted_clique(std::size_t n, std::size_t background_edges,
                     std::size_t clique_size, util::SplitRng& rng);

/// Barabási–Albert preferential attachment, `attach` edges per new vertex;
/// heavy-tailed degrees with λ ≤ attach + o(·) — the "social network"
/// example workload.
Graph barabasi_albert(std::size_t n, std::size_t attach, util::SplitRng& rng);

/// Random permutation of vertex ids (guards against id-correlated
/// artifacts in algorithms that break ties by id).
Graph relabel_randomly(const Graph& g, util::SplitRng& rng);

/// The Θ(log n) hard instance for (2+ε)λ-threshold peeling (the E1
/// workload). `levels` levels of cliques K_{2d+1}; level sizes halve as the
/// level index grows; every vertex of level i ≥ 1 additionally has
/// `c = ⌈0.8·d⌉` "support" edges into level i-1. Peeling at threshold
/// (2+ε)·λ removes exactly one level per round (level 0 first: its degree
/// 2d + c/2 is below threshold; deeper levels sit at 2d + 1.5c just above
/// it until their support disappears) — Θ(levels) = Θ(log n) rounds. An
/// algorithm allowed out-degree ≥ 2d + 1.5c + 1 clears the whole graph at
/// once, which is how the paper's O(λ log log n) slack wins E1.
struct SlowPeelingChain {
  Graph graph;
  std::size_t lambda = 0;      ///< exact-by-construction density parameter
  std::size_t levels = 0;      ///< peel rounds forced at threshold (2+ε)λ
  std::size_t max_sustained_degree = 0;  ///< ≈ 2d + 1.5c
};
SlowPeelingChain slow_peeling_chain(std::size_t levels, std::size_t d,
                                    util::SplitRng& rng);

}  // namespace arbor::graph
