#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/assert.hpp"

namespace arbor::graph {

MaxFlow::MaxFlow(std::size_t num_nodes) : head_(num_nodes, kNone) {}

std::size_t MaxFlow::add_arc(std::uint32_t u, std::uint32_t v,
                             Capacity capacity) {
  ARBOR_CHECK(u < head_.size() && v < head_.size());
  ARBOR_CHECK_MSG(capacity >= 0, "negative capacity");
  ARBOR_CHECK_MSG(!solved_, "add_arc after solve");
  const auto idx = static_cast<std::uint32_t>(arcs_.size());
  arcs_.push_back({v, head_[u], capacity});
  head_[u] = idx;
  arcs_.push_back({u, head_[v], 0});
  head_[v] = idx + 1;
  return idx;
}

bool MaxFlow::bfs_build_levels(std::uint32_t s, std::uint32_t t) {
  level_.assign(head_.size(), kNone);
  std::deque<std::uint32_t> queue{s};
  level_[s] = 0;
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (std::uint32_t a = head_[v]; a != kNone; a = arcs_[a].next) {
      if (arcs_[a].residual > 0 && level_[arcs_[a].to] == kNone) {
        level_[arcs_[a].to] = level_[v] + 1;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return level_[t] != kNone;
}

MaxFlow::Capacity MaxFlow::dfs_augment(std::uint32_t v, std::uint32_t t,
                                       Capacity limit) {
  if (v == t) return limit;
  for (std::uint32_t& a = iter_[v]; a != kNone; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.residual <= 0 || level_[arc.to] != level_[v] + 1) continue;
    const Capacity pushed =
        dfs_augment(arc.to, t, std::min(limit, arc.residual));
    if (pushed > 0) {
      arc.residual -= pushed;
      arcs_[a ^ 1].residual += pushed;
      return pushed;
    }
  }
  return 0;
}

MaxFlow::Capacity MaxFlow::solve(std::uint32_t s, std::uint32_t t) {
  ARBOR_CHECK(s < head_.size() && t < head_.size() && s != t);
  ARBOR_CHECK_MSG(!solved_, "solve called twice");
  solved_ = true;
  Capacity total = 0;
  while (bfs_build_levels(s, t)) {
    iter_ = head_;
    for (;;) {
      const Capacity pushed =
          dfs_augment(s, t, std::numeric_limits<Capacity>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

std::vector<bool> MaxFlow::min_cut_source_side(std::uint32_t s) const {
  ARBOR_CHECK_MSG(solved_, "min_cut_source_side before solve");
  std::vector<bool> reachable(head_.size(), false);
  std::deque<std::uint32_t> queue{s};
  reachable[s] = true;
  while (!queue.empty()) {
    const std::uint32_t v = queue.front();
    queue.pop_front();
    for (std::uint32_t a = head_[v]; a != kNone; a = arcs_[a].next) {
      if (arcs_[a].residual > 0 && !reachable[arcs_[a].to]) {
        reachable[arcs_[a].to] = true;
        queue.push_back(arcs_[a].to);
      }
    }
  }
  return reachable;
}

}  // namespace arbor::graph
