#include "graph/orientation.hpp"

#include <algorithm>

#include "graph/arboricity.hpp"
#include "util/assert.hpp"

namespace arbor::graph {

Orientation::Orientation(const Graph& g, std::vector<bool> towards_v)
    : towards_v_(std::move(towards_v)) {
  ARBOR_CHECK_MSG(towards_v_.size() == g.num_edges(),
                  "orientation size mismatch");
}

std::vector<std::size_t> Orientation::outdegrees(const Graph& g) const {
  ARBOR_CHECK(towards_v_.size() == g.num_edges());
  std::vector<std::size_t> out(g.num_vertices(), 0);
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i)
    ++out[towards_v_[i] ? edges[i].u : edges[i].v];
  return out;
}

std::size_t Orientation::max_outdegree(const Graph& g) const {
  const auto out = outdegrees(g);
  return out.empty() ? 0 : *std::max_element(out.begin(), out.end());
}

std::vector<std::vector<VertexId>> Orientation::out_neighbors(
    const Graph& g) const {
  std::vector<std::vector<VertexId>> out(g.num_vertices());
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (towards_v_[i])
      out[edges[i].u].push_back(edges[i].v);
    else
      out[edges[i].v].push_back(edges[i].u);
  }
  return out;
}

Orientation orient_by_layers(const Graph& g,
                             const std::vector<std::uint32_t>& layer,
                             std::uint32_t infinite_layer) {
  ARBOR_CHECK(layer.size() == g.num_vertices());
  const auto edges = g.edges();
  std::vector<bool> towards_v(edges.size());
  const auto rank = [&](VertexId v) {
    // ∞ sorts above all finite layers.
    return layer[v] == infinite_layer ? 0xffffffffu : layer[v];
  };
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = edges[i];
    const std::uint32_t ru = rank(u), rv = rank(v);
    // u -> v if v is in a strictly higher layer, or tie and v has larger id
    // (v > u always holds in canonical order, so ties go u -> v).
    towards_v[i] = ru < rv || (ru == rv);
  }
  return Orientation(g, std::move(towards_v));
}

Orientation orient_by_degeneracy(const Graph& g) {
  std::vector<VertexId> order;
  degeneracy(g, &order);
  std::vector<std::uint32_t> position(g.num_vertices(), 0);
  for (std::size_t i = 0; i < order.size(); ++i)
    position[order[i]] = static_cast<std::uint32_t>(i);

  const auto edges = g.edges();
  std::vector<bool> towards_v(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i)
    towards_v[i] = position[edges[i].u] < position[edges[i].v];
  return Orientation(g, std::move(towards_v));
}

}  // namespace arbor::graph
