#include "graph/arboricity.hpp"

#include <algorithm>
#include <cmath>

#include "graph/maxflow.hpp"
#include "util/assert.hpp"

namespace arbor::graph {

namespace {

/// Tests whether some subgraph has density strictly greater than
/// `g_num / g_den` and, if so, returns the witnessing vertex set.
/// Goldberg's network: s→v with capacity deg(v), arcs both ways per edge
/// with capacity 1, v→t with capacity 2g; all scaled by g_den to stay
/// integral. A cut ({s}∪S, rest) costs 2m - 2|E(S)| + 2g|S|, so the min cut
/// drops below 2m exactly when max_S (|E(S)| - g|S|) > 0.
struct DensityProbe {
  bool improvable = false;
  std::vector<VertexId> witness;
};

DensityProbe probe_density(const Graph& g, std::int64_t g_num,
                           std::int64_t g_den) {
  const auto n = static_cast<std::uint32_t>(g.num_vertices());
  const auto m = static_cast<std::int64_t>(g.num_edges());
  const std::uint32_t source = n;
  const std::uint32_t sink = n + 1;

  MaxFlow flow(n + 2);
  for (VertexId v = 0; v < n; ++v) {
    flow.add_arc(source, v,
                 g_den * static_cast<std::int64_t>(g.degree(v)));
    flow.add_arc(v, sink, 2 * g_num);
  }
  for (const Edge& e : g.edges()) {
    flow.add_arc(e.u, e.v, g_den);
    flow.add_arc(e.v, e.u, g_den);
  }

  const MaxFlow::Capacity cut = flow.solve(source, sink);
  DensityProbe probe;
  if (cut >= 2 * m * g_den) return probe;  // no denser subgraph

  probe.improvable = true;
  const std::vector<bool> source_side = flow.min_cut_source_side(source);
  for (VertexId v = 0; v < n; ++v)
    if (source_side[v]) probe.witness.push_back(v);
  ARBOR_CHECK_MSG(!probe.witness.empty(),
                  "density probe: cut < 2m but empty witness");
  return probe;
}

std::uint64_t count_induced_edges(const Graph& g,
                                  const std::vector<VertexId>& vertices) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : vertices) in_set[v] = true;
  std::uint64_t count = 0;
  for (VertexId v : vertices)
    for (VertexId w : g.neighbors(v))
      if (v < w && in_set[w]) ++count;
  return count;
}

}  // namespace

DensestSubgraph exact_densest_subgraph(const Graph& g) {
  DensestSubgraph result;
  if (g.num_edges() == 0) return result;

  const auto n = static_cast<std::int64_t>(g.num_vertices());
  const auto m = static_cast<std::int64_t>(g.num_edges());
  // Distinct subgraph densities p/q, q ≤ n differ by ≥ 1/n². Searching on
  // the grid 1/unit with unit = 2n² therefore pins down the maximizer.
  const std::int64_t unit = 2 * n * n;

  // Invariant: `best` has density > lo/unit; no subgraph has density
  // > hi/unit. A single edge has density 1/2 > 0.
  std::int64_t lo = 0;
  std::int64_t hi = m * unit;
  result.vertices = {g.edges()[0].u, g.edges()[0].v};
  result.subgraph_edges = 1;

  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    DensityProbe probe = probe_density(g, mid, unit);
    if (probe.improvable) {
      lo = mid;
      result.subgraph_edges = count_induced_edges(g, probe.witness);
      result.vertices = std::move(probe.witness);
    } else {
      hi = mid;
    }
  }

  result.density = static_cast<double>(result.subgraph_edges) /
                   static_cast<double>(result.vertices.size());
  return result;
}

std::size_t degeneracy(const Graph& g,
                       std::vector<VertexId>* elimination_order) {
  const std::size_t n = g.num_vertices();
  if (elimination_order) {
    elimination_order->clear();
    elimination_order->reserve(n);
  }
  if (n == 0) return 0;

  // Bucket queue over current degrees (Matula–Beck).
  std::vector<std::size_t> degree(n);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_deg = std::max(max_deg, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<bool> removed(n, false);
  std::size_t result = 0;
  std::size_t cursor = 0;  // lowest possibly-nonempty bucket
  for (std::size_t peeled = 0; peeled < n; ++peeled) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    // Entries may be stale (degree has since dropped); skip those.
    while (true) {
      ARBOR_CHECK(cursor < buckets.size());
      if (buckets[cursor].empty()) {
        ++cursor;
        continue;
      }
      const VertexId v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (removed[v] || degree[v] != cursor) continue;  // stale entry
      removed[v] = true;
      result = std::max(result, cursor);
      if (elimination_order) elimination_order->push_back(v);
      for (VertexId w : g.neighbors(v)) {
        if (removed[w]) continue;
        --degree[w];
        buckets[degree[w]].push_back(w);
        if (degree[w] < cursor) cursor = degree[w];
      }
      break;
    }
  }
  return result;
}

double peeling_density_lower_bound(const Graph& g) {
  std::vector<VertexId> order;
  degeneracy(g, &order);
  // Peeling removes vertices one by one; the density of the *remaining* set
  // just before each removal is a candidate. Track remaining edges by
  // subtracting the removed vertex's residual degree.
  const std::size_t n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0) return 0.0;

  std::vector<bool> removed(n, false);
  auto remaining_edges = static_cast<double>(g.num_edges());
  double best = remaining_edges / static_cast<double>(n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const VertexId v = order[i];
    std::size_t residual = 0;
    for (VertexId w : g.neighbors(v))
      if (!removed[w]) ++residual;
    removed[v] = true;
    remaining_edges -= static_cast<double>(residual);
    const std::size_t left = n - i - 1;
    if (left > 0)
      best = std::max(best, remaining_edges / static_cast<double>(left));
  }
  return best;
}

ArboricityBounds arboricity_bounds(const Graph& g) {
  ArboricityBounds bounds;
  bounds.upper = degeneracy(g);
  if (g.num_edges() == 0) return bounds;
  const DensestSubgraph ds = exact_densest_subgraph(g);
  ARBOR_CHECK(ds.vertices.size() >= 2);
  const std::uint64_t s = ds.vertices.size();
  bounds.lower =
      static_cast<std::size_t>((ds.subgraph_edges + s - 2) / (s - 1));
  ARBOR_CHECK_MSG(bounds.lower <= bounds.upper,
                  "arboricity sandwich inverted — measurement bug");
  return bounds;
}

}  // namespace arbor::graph
