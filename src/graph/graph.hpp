// Immutable simple undirected graph in compressed-sparse-row form.
//
// This is the substrate every other module consumes: generators produce it,
// the MPC/LOCAL simulators distribute it, validators recompute quality
// measures from it. Vertices are dense ids [0, n); the builder guarantees no
// self-loops and no parallel edges, so degree(v) == |N(v)|.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace arbor::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;

/// An undirected edge with endpoints in canonical order (u < v).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct InducedSubgraph;  // defined after Graph (holds one)

class Graph {
 public:
  Graph() = default;

  /// Construct from CSR arrays. `offsets` has n+1 entries; `adjacency`
  /// stores sorted neighbor lists; `edges` lists each undirected edge once
  /// in canonical order, sorted. Used by GraphBuilder; validated there.
  Graph(std::vector<EdgeId> offsets, std::vector<VertexId> adjacency,
        std::vector<Edge> edges)
      : offsets_(std::move(offsets)),
        adjacency_(std::move(adjacency)),
        edges_(std::move(edges)) {}

  std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  std::size_t degree(VertexId v) const noexcept {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  std::size_t max_degree() const noexcept;

  /// Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// All undirected edges, canonical order (u < v), sorted lexicographically.
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// O(log degree) membership test.
  bool has_edge(VertexId u, VertexId v) const noexcept;

  /// Average degree 2m/n (0 for the empty graph).
  double average_degree() const noexcept;

  /// Subgraph induced by `vertices` (need not be sorted; duplicates
  /// rejected). Also returns the mapping from new ids to original ids.
  InducedSubgraph induced(std::span<const VertexId> vertices) const;

 private:
  std::vector<EdgeId> offsets_;      // n+1
  std::vector<VertexId> adjacency_;  // 2m, sorted per vertex
  std::vector<Edge> edges_;          // m, canonical + sorted
};

struct InducedSubgraph {
  Graph graph;
  std::vector<VertexId> to_original;  ///< new id -> original id
};

}  // namespace arbor::graph
