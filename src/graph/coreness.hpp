// Exact core decomposition (sequential reference).
//
// The coreness (core number) of v is the largest c such that v belongs to
// a subgraph of minimum degree ≥ c. Computed by the classic min-degree
// bucket peel in O(n + m) [Matula–Beck]. Serves as ground truth for the
// MPC approximate coreness of core/coreness_mpc.hpp (the paper's
// footnote-2 generalization of the orientation algorithm).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::graph {

/// coreness[v] for every vertex; max element equals the degeneracy.
std::vector<std::uint32_t> exact_coreness(const Graph& g);

}  // namespace arbor::graph
