#include "graph/coreness.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::graph {

std::vector<std::uint32_t> exact_coreness(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> coreness(n, 0);
  if (n == 0) return coreness;

  std::vector<std::size_t> degree(n);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_deg = std::max(max_deg, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<bool> removed(n, false);
  std::size_t current_core = 0;
  std::size_t cursor = 0;
  for (std::size_t peeled = 0; peeled < n;) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    ARBOR_CHECK(cursor < buckets.size());
    const VertexId v = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[v] || degree[v] != cursor) continue;  // stale entry
    removed[v] = true;
    ++peeled;
    // Core number = running maximum of the removal degree.
    current_core = std::max(current_core, cursor);
    coreness[v] = static_cast<std::uint32_t>(current_core);
    for (VertexId w : g.neighbors(v)) {
      if (removed[w]) continue;
      --degree[w];
      buckets[degree[w]].push_back(w);
      if (degree[w] < cursor) cursor = degree[w];
    }
  }
  return coreness;
}

}  // namespace arbor::graph
