// Edge orientations and their quality measures.
//
// An Orientation assigns each undirected edge of a Graph a direction. The
// paper's Theorem 1.1 quality target is max out-degree O(λ log log n); the
// functions here recompute out-degrees from scratch so algorithm output is
// never trusted, only measured.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::graph {

class Orientation {
 public:
  /// `towards_v[i]` == true means edge i (canonical (u,v), u < v) is
  /// oriented u -> v.
  Orientation(const Graph& g, std::vector<bool> towards_v);

  /// Direction of edge index i in g.edges().
  bool oriented_towards_v(std::size_t edge_index) const {
    return towards_v_[edge_index];
  }

  std::size_t num_edges() const noexcept { return towards_v_.size(); }

  /// Out-degree of every vertex, recomputed from the edge list.
  std::vector<std::size_t> outdegrees(const Graph& g) const;

  std::size_t max_outdegree(const Graph& g) const;

  /// Out-neighbor lists (head of each out-edge per vertex).
  std::vector<std::vector<VertexId>> out_neighbors(const Graph& g) const;

 private:
  std::vector<bool> towards_v_;
};

/// Orient every edge toward the endpoint with the larger layer value,
/// breaking ties toward the larger vertex id — exactly the paper's rule.
/// Layer value for each vertex; `infinite_layer` (e.g. ℓ = ∞) sorts above
/// every finite layer. If a partial layering leaves both endpoints at ∞ the
/// tie-break still orients the edge (ids), so the orientation is total.
Orientation orient_by_layers(const Graph& g,
                             const std::vector<std::uint32_t>& layer,
                             std::uint32_t infinite_layer);

/// Sequential reference: orient along a degeneracy elimination order
/// (earlier-eliminated endpoint becomes the tail). Max out-degree equals the
/// degeneracy ≤ 2λ-1 — the quality yardstick for benches.
Orientation orient_by_degeneracy(const Graph& g);

}  // namespace arbor::graph
