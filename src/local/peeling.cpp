#include "local/peeling.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace arbor::local {

PeelingResult peel_by_threshold(const graph::Graph& g, std::size_t threshold,
                                std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  PeelingResult result;
  result.layer.assign(n, 0);

  std::vector<std::size_t> degree(n);
  std::size_t remaining = n;
  for (graph::VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);

  std::vector<graph::VertexId> peeled_this_round;
  std::uint32_t round = 0;
  while (remaining > 0 && round < max_rounds) {
    peeled_this_round.clear();
    // Synchronous: selection uses degrees at the start of the round.
    for (graph::VertexId v = 0; v < n; ++v)
      if (result.layer[v] == 0 && degree[v] <= threshold)
        peeled_this_round.push_back(v);
    if (peeled_this_round.empty()) {
      // Threshold below the remaining graph's min degree: cannot progress.
      break;
    }
    ++round;
    for (graph::VertexId v : peeled_this_round) result.layer[v] = round;
    for (graph::VertexId v : peeled_this_round) {
      for (graph::VertexId w : g.neighbors(v)) {
        if (result.layer[w] == 0 || result.layer[w] == round) {
          ARBOR_CHECK(degree[w] > 0);
          --degree[w];
        }
      }
    }
    remaining -= peeled_this_round.size();
  }

  result.num_layers = round;
  result.rounds = round;
  result.complete = (remaining == 0);
  return result;
}

PeelingResult be08_h_partition(const graph::Graph& g, std::size_t k,
                               double epsilon) {
  ARBOR_CHECK(epsilon > 0.0);
  const auto threshold = static_cast<std::size_t>(
      std::ceil((2.0 + epsilon) * static_cast<double>(std::max<std::size_t>(
                                      k, 1))));
  // 4·log_{1+eps/...} n is a loose upper bound; peeling halts early anyway.
  const std::size_t max_rounds = 8 * (64 - static_cast<std::size_t>(
                                               __builtin_clzll(
                                                   g.num_vertices() | 1))) +
                                 8;
  PeelingResult result = peel_by_threshold(g, threshold, max_rounds);
  ARBOR_CHECK_MSG(result.complete,
                  "BE08 peeling did not complete: threshold below arboricity?");
  return result;
}

}  // namespace arbor::local
