// Threshold peeling: the Barenboim–Elkin [BE08] H-partition LOCAL algorithm
// the whole paper is organized around.
//
// Per round, all vertices whose degree in the remaining graph is ≤ d are
// simultaneously removed and placed in layer H_i. With d ≥ (2+ε)·2λ ≥
// (2+ε)·avg-degree the layer sizes decay geometrically, giving Θ(log n)
// rounds and the reference layering ℓ_G used throughout §3's analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::local {

struct PeelingResult {
  /// 1-based layer per vertex; layer of v = round in which v was removed.
  std::vector<std::uint32_t> layer;
  std::uint32_t num_layers = 0;  ///< L = number of peel rounds used
  std::size_t rounds = 0;        ///< LOCAL rounds (== num_layers)
  bool complete = false;         ///< all vertices assigned within max_rounds
};

/// Peel vertices of remaining-degree ≤ `threshold` per round. Runs until
/// the graph is exhausted or `max_rounds` elapse (un-peeled vertices keep
/// layer 0 and `complete` is false — callers treat 0 as ∞).
PeelingResult peel_by_threshold(const graph::Graph& g, std::size_t threshold,
                                std::size_t max_rounds);

/// BE08 with threshold (2+epsilon)·k for k ≥ λ(G): guaranteed O(log n)
/// rounds; the LOCAL baseline for orientation.
PeelingResult be08_h_partition(const graph::Graph& g, std::size_t k,
                               double epsilon = 0.2);

}  // namespace arbor::local
