#include "local/list_coloring.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::local {

namespace {
constexpr graph::Color kUncolored = 0xffffffffu;
}

ListColoringResult list_color(
    const graph::Graph& g, const std::vector<std::uint64_t>& vertex_keys,
    const std::vector<std::vector<graph::Color>>& palettes,
    const util::StatelessCoin& coin, std::uint64_t phase_tag,
    std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  ARBOR_CHECK(vertex_keys.size() == n);
  ARBOR_CHECK(palettes.size() == n);
  for (graph::VertexId v = 0; v < n; ++v) {
    ARBOR_CHECK_MSG(palettes[v].size() >= g.degree(v) + 1,
                    "list coloring needs |palette| >= degree+1");
  }

  ListColoringResult result;
  result.colors.assign(n, kUncolored);
  std::size_t uncolored = n;

  std::vector<graph::Color> proposal(n, kUncolored);
  std::vector<graph::Color> available;  // scratch

  for (std::size_t round = 1; round <= max_rounds && uncolored > 0; ++round) {
    result.rounds = round;
    // Propose. The available list must be a deterministic function of the
    // palette and the neighbors' committed colors (sorted palettes assumed
    // as given; we filter preserving order) so cone replays agree.
    for (graph::VertexId v = 0; v < n; ++v) {
      proposal[v] = kUncolored;
      if (result.colors[v] != kUncolored) continue;
      available.clear();
      for (graph::Color c : palettes[v]) {
        bool used = false;
        for (graph::VertexId w : g.neighbors(v)) {
          if (result.colors[w] == c) {
            used = true;
            break;
          }
        }
        if (!used) available.push_back(c);
      }
      ARBOR_CHECK_MSG(!available.empty(),
                      "palette exhausted — degree+1 precondition violated");
      const std::uint64_t pick =
          coin.below(available.size(), phase_tag, vertex_keys[v], round);
      proposal[v] = available[static_cast<std::size_t>(pick)];
    }
    // Commit unless a neighbor proposed the same color this round. The
    // check reads only the proposal array (round-start state), never the
    // colors committed earlier in this same loop — synchronous semantics.
    // proposal[w] != kUncolored exactly for the vertices that were
    // uncolored at round start, so equality of proposals is the full test.
    for (graph::VertexId v = 0; v < n; ++v) {
      if (proposal[v] == kUncolored) continue;
      bool conflict = false;
      for (graph::VertexId w : g.neighbors(v)) {
        if (proposal[w] == proposal[v]) {
          conflict = true;
          break;
        }
      }
      if (!conflict) {
        result.colors[v] = proposal[v];
        --uncolored;
      }
    }
  }

  result.complete = (uncolored == 0);
  return result;
}

}  // namespace arbor::local
