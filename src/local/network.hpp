// Round-synchronous LOCAL model harness.
//
// LOCAL (paper §1.1): one processor per graph node; per round every node
// exchanges messages with its neighbors and updates its state. The harness
// enforces the synchronous discipline by double-buffering: a round's update
// for node v sees only the *previous* round's states of v's neighbors.
// Round counts from here feed the baselines' MPC round charging (one LOCAL
// round of a simple algorithm = one MPC round when simulated directly).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace arbor::local {

template <typename State>
class RoundEngine {
 public:
  RoundEngine(const graph::Graph& g, std::vector<State> initial)
      : graph_(&g), current_(std::move(initial)), next_(current_) {
    ARBOR_CHECK(current_.size() == g.num_vertices());
  }

  const graph::Graph& graph() const noexcept { return *graph_; }
  std::size_t rounds() const noexcept { return rounds_; }
  const std::vector<State>& states() const noexcept { return current_; }
  const State& state(graph::VertexId v) const { return current_.at(v); }

  /// One synchronous round. `update(v, previous_states) -> new state of v`;
  /// `previous_states` is the full prior-round state vector, but LOCAL
  /// semantics oblige the update to only inspect v and its neighbors —
  /// algorithm code in this repo accesses exactly neighbors(v).
  template <typename Update>
  void run_round(Update&& update) {
    for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v)
      next_[v] = update(v, std::cref(current_).get());
    current_.swap(next_);
    ++rounds_;
  }

  /// Run rounds until `done()` returns true or `max_rounds` elapse.
  /// Returns true iff `done()` was reached.
  template <typename Update, typename Done>
  bool run_until(Update&& update, Done&& done, std::size_t max_rounds) {
    for (std::size_t r = 0; r < max_rounds; ++r) {
      if (done(std::cref(current_).get())) return true;
      run_round(update);
    }
    return done(std::cref(current_).get());
  }

 private:
  const graph::Graph* graph_;
  std::vector<State> current_;
  std::vector<State> next_;
  std::size_t rounds_ = 0;
};

}  // namespace arbor::local
