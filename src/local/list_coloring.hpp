// Randomized (degree+1)-list coloring in the LOCAL model.
//
// The paper uses state-of-the-art list coloring [HKNT22, GG24b] as a black
// box inside each layer; our substitution (DESIGN.md §3) is the classic
// trial/commit algorithm: each round every uncolored vertex proposes a
// uniformly random color from its palette minus the colors of already-
// colored neighbors, and commits unless an uncolored neighbor proposed the
// same color. With |palette(v)| ≥ deg(v)+1 each vertex succeeds with
// constant probability per round, so O(log n) rounds suffice whp.
//
// Determinism contract: all randomness comes from a StatelessCoin keyed by
// (phase_tag, vertex_key, round). Re-running any sub-instance whose vertex
// keys and palettes match (e.g. the replay inside a gathered cone in
// core/coloring_mpc) reproduces identical proposals — this is what makes
// the MPC simulation of §4 consistent across machines.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace arbor::local {

struct ListColoringResult {
  std::vector<graph::Color> colors;
  std::size_t rounds = 0;
  bool complete = false;
};

/// Color `g` so that color[v] ∈ palettes[v] and no edge is monochromatic.
/// `vertex_keys[v]` is the stable identity used for coin keys (the original
/// graph id when `g` is an induced subgraph). Requires
/// |palettes[v]| ≥ deg(v) + 1 for every v.
ListColoringResult list_color(const graph::Graph& g,
                              const std::vector<std::uint64_t>& vertex_keys,
                              const std::vector<std::vector<graph::Color>>&
                                  palettes,
                              const util::StatelessCoin& coin,
                              std::uint64_t phase_tag,
                              std::size_t max_rounds = 512);

}  // namespace arbor::local
