// LOCAL-in-MPC embedding, executed on the Level-0 cluster.
//
// The baselines charge "one MPC round per LOCAL round" when simulating
// simple LOCAL algorithms directly (BE08 peeling, the paper's §1.2
// observation). This module grounds that charge: threshold peeling runs as
// an actual message-passing program — vertices are block-assigned to
// machines, each LOCAL round is exactly one cluster round in which every
// machine peels its sub-threshold vertices and notifies the machines
// hosting their neighbors — under the cluster's per-machine traffic caps.
// tests/mpc_embedding_test.cpp checks the result matches the reference
// peeling bit-for-bit and that the round counts agree.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"

namespace arbor::net {
class Registry;
}

namespace arbor::local {

struct EmbeddedPeelingResult {
  /// 1-based removal round per vertex; 0 = never peeled (stalled).
  std::vector<std::uint32_t> layer;
  std::uint32_t num_layers = 0;
  std::size_t cluster_rounds = 0;  ///< cluster rounds consumed (== layers+1)
  bool complete = false;
};

/// Run threshold peeling distributed over `cluster`'s machines (vertex v
/// lives on machine v / ceil(n/M)). Requires every machine's adjacency
/// slab and worst-case per-round notification volume to fit the cluster's
/// word budget — the cluster throws otherwise (capacity is the point).
EmbeddedPeelingResult embedded_threshold_peeling(const graph::Graph& g,
                                                 std::size_t threshold,
                                                 mpc::Cluster& cluster,
                                                 std::size_t max_rounds);

/// Worker-side factory ("local.embedded_peeling") for the multi-process
/// backend (net::Registry::builtin() calls this).
void register_embedded_peeling_program(net::Registry& registry);

}  // namespace arbor::local
