#include "local/mpc_embedding.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::local {

EmbeddedPeelingResult embedded_threshold_peeling(const graph::Graph& g,
                                                 std::size_t threshold,
                                                 mpc::Cluster& cluster,
                                                 std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  const std::size_t machines = cluster.num_machines();
  const std::size_t per_machine = (n + machines - 1) / std::max<std::size_t>(
                                      machines, 1);
  const auto machine_of = [per_machine](graph::VertexId v) {
    return per_machine == 0 ? std::size_t{0} : v / per_machine;
  };
  const std::size_t start_rounds = cluster.rounds_executed();

  EmbeddedPeelingResult result;
  result.layer.assign(n, 0);
  if (n == 0) {
    result.complete = true;
    return result;
  }

  // Machine-local state: residual degrees of the machine's own vertices.
  std::vector<std::size_t> degree(n);
  for (graph::VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);
  std::size_t remaining = n;
  std::uint32_t round = 0;
  bool progressed = true;

  while (remaining > 0 && progressed && round < max_rounds) {
    progressed = false;
    ++round;
    const std::uint32_t this_round = round;

    // One LOCAL round == one cluster round. Each machine scans ITS
    // vertices, peels the sub-threshold ones, and sends each removal to
    // the machines hosting neighbors (one word per remote neighbor;
    // local neighbors are handled without messages, as a machine computes
    // freely on its own memory).
    std::vector<std::vector<graph::VertexId>> peeled_by_machine(machines);
    cluster.run_round([&](std::size_t m, const auto&, mpc::Sender& send) {
      std::vector<std::vector<mpc::Word>> outgoing(machines);
      const auto lo = static_cast<graph::VertexId>(
          std::min(m * per_machine, n));
      const auto hi = static_cast<graph::VertexId>(
          std::min((m + 1) * per_machine, n));
      for (graph::VertexId v = lo; v < hi; ++v) {
        if (result.layer[v] != 0 || degree[v] > threshold) continue;
        peeled_by_machine[m].push_back(v);
        for (graph::VertexId w : g.neighbors(v)) {
          const std::size_t mw = machine_of(w);
          if (mw != m) outgoing[mw].push_back(w);
        }
      }
      for (std::size_t dst = 0; dst < machines; ++dst)
        if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
    });

    // Post-round state update (the receiving side of the same round):
    // mark removals, apply local decrements, then remote notifications.
    for (std::size_t m = 0; m < machines; ++m) {
      for (graph::VertexId v : peeled_by_machine[m]) {
        result.layer[v] = this_round;
        --remaining;
        progressed = true;
      }
    }
    for (std::size_t m = 0; m < machines; ++m) {
      for (graph::VertexId v : peeled_by_machine[m]) {
        for (graph::VertexId w : g.neighbors(v)) {
          if (machine_of(w) == m && result.layer[w] == 0) {
            ARBOR_CHECK(degree[w] > 0);
            --degree[w];
          }
        }
      }
      for (const auto& msg : cluster.inbox(m)) {
        for (mpc::Word word : msg) {
          const auto w = static_cast<graph::VertexId>(word);
          if (result.layer[w] == 0) {
            ARBOR_CHECK(degree[w] > 0);
            --degree[w];
          }
        }
      }
    }
  }

  result.num_layers = round - (progressed ? 0 : 1);
  result.cluster_rounds = cluster.rounds_executed() - start_rounds;
  result.complete = (remaining == 0);
  return result;
}

}  // namespace arbor::local
