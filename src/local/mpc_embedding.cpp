#include "local/mpc_embedding.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::local {

EmbeddedPeelingResult embedded_threshold_peeling(const graph::Graph& g,
                                                 std::size_t threshold,
                                                 mpc::Cluster& cluster,
                                                 std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  const std::size_t machines = cluster.num_machines();
  const std::size_t per_machine = (n + machines - 1) / std::max<std::size_t>(
                                      machines, 1);
  const auto machine_of = [per_machine](graph::VertexId v) {
    return per_machine == 0 ? std::size_t{0} : v / per_machine;
  };
  const std::size_t start_rounds = cluster.rounds_executed();

  EmbeddedPeelingResult result;
  result.layer.assign(n, 0);
  if (n == 0) {
    result.complete = true;
    return result;
  }

  // Machine-local state: residual degrees of the machine's own vertices.
  std::vector<std::size_t> degree(n);
  for (graph::VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);
  std::size_t remaining = n;
  std::uint32_t round = 0;
  bool progressed = true;

  if (max_rounds == 0) {
    result.num_layers = 0;
    result.complete = false;
    return result;
  }

  // One LOCAL round == one cluster round, expressed as a single-step
  // RoundProgram repeated until peeling stalls. Each pass, machine m:
  //   1. applies the decrements implied by the PREVIOUS pass — its own
  //      peels' local neighbors, then the remote notifications in its
  //      inbox (both touch only degree/layer slots of m's vertex range);
  //   2. scans its range, peels the sub-threshold vertices (marking their
  //      layer at peel time — a vertex peeled this pass is thereby
  //      excluded from decrements next pass, exactly as the imperative
  //      post-round update excluded same-round peels), and notifies the
  //      machines hosting remote neighbors.
  // The step is tagged barrier — the canonical case: it reads `round`, a
  // global the continue callback advances at the pass boundary, so it must
  // not be scheduled while a previous round is still delivering. (A
  // single-step repeated program never fuses anyway — the continue hook is
  // itself a barrier — but the tag records the contract, not the accident.)
  std::vector<std::vector<graph::VertexId>> peeled_prev(machines);
  std::vector<std::size_t> peeled_now(machines, 0);

  mpc::RoundProgram program;
  program.barrier([&](std::size_t m, const auto& inbox,
                          mpc::Sender& send) {
    // Decrements from the previous pass: local neighbors of my peels...
    for (graph::VertexId v : peeled_prev[m]) {
      for (graph::VertexId w : g.neighbors(v)) {
        if (machine_of(w) == m && result.layer[w] == 0) {
          ARBOR_CHECK(degree[w] > 0);
          --degree[w];
        }
      }
    }
    // ...then the remote notifications addressed to my vertices. Pass 1
    // must not touch the inbox: it may still hold traffic from whatever
    // the cluster ran before this program, and a stale word would index
    // layer/degree arbitrarily.
    if (round > 1) {
      for (const auto& msg : inbox) {
        for (mpc::Word word : msg) {
          const auto w = static_cast<graph::VertexId>(word);
          if (result.layer[w] == 0) {
            ARBOR_CHECK(degree[w] > 0);
            --degree[w];
          }
        }
      }
    }
    // Peel this pass: scan my vertex range with the settled degrees.
    peeled_prev[m].clear();
    std::vector<std::vector<mpc::Word>> outgoing(machines);
    const auto lo = static_cast<graph::VertexId>(
        std::min(m * per_machine, n));
    const auto hi = static_cast<graph::VertexId>(
        std::min((m + 1) * per_machine, n));
    for (graph::VertexId v = lo; v < hi; ++v) {
      if (result.layer[v] != 0 || degree[v] > threshold) continue;
      result.layer[v] = round;
      peeled_prev[m].push_back(v);
      for (graph::VertexId w : g.neighbors(v)) {
        const std::size_t mw = machine_of(w);
        if (mw != m) outgoing[mw].push_back(w);
      }
    }
    peeled_now[m] = peeled_prev[m].size();
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });
  // `passes` counts completed passes, i.e. the 1-based index of the pass
  // that just ran — the same value the imperative loop compared against
  // max_rounds. `round` (read by the step as the layer to stamp) advances
  // only when another pass is actually coming.
  program.repeat_while(
      [&](std::size_t passes) {
        std::size_t peeled = 0;
        for (std::size_t m = 0; m < machines; ++m) peeled += peeled_now[m];
        remaining -= peeled;
        progressed = peeled > 0;
        const bool again = remaining > 0 && progressed && passes < max_rounds;
        if (again) ++round;
        return again;
      },
      max_rounds);

  round = 1;  // the first pass stamps layer 1
  cluster.run_program(program);

  result.num_layers = round - (progressed ? 0 : 1);
  result.cluster_rounds = cluster.rounds_executed() - start_rounds;
  result.complete = (remaining == 0);
  return result;
}

}  // namespace arbor::local
