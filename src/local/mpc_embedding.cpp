#include "local/mpc_embedding.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "check/ownership.hpp"
#include "net/registry.hpp"
#include "net/wire.hpp"
#include "obs/cost_model.hpp"
#include "util/assert.hpp"

namespace arbor::local {

namespace {

/// Machine-local state of an embedded peeling run. Built by the driver
/// over the caller's graph; rebuilt by a worker over the adjacency slabs
/// of its machine block (every array is machine-partitioned: vertex v
/// lives on machine v / per_machine, and a step only ever touches its own
/// machine's vertex range).
struct PeelState {
  std::size_t n = 0;
  std::size_t machines = 0;
  std::size_t per_machine = 0;
  std::size_t threshold = 0;
  /// Layer the CURRENT pass stamps; advanced at the pass barrier, only
  /// when another pass actually runs.
  std::uint32_t round = 1;
  /// Serve the per-vertex neighbor splits from the engine's FetchCache
  /// (ClusterConfig::fetch_cache). Purely a speed knob: the split payload
  /// is a pure function of the immutable adjacency, so messages and
  /// decrements are bit-identical on or off.
  bool fetch_cache = true;
  std::vector<std::size_t> degree;
  std::vector<std::uint32_t> layer;  ///< 0 = not peeled yet
  std::vector<std::vector<graph::VertexId>> peeled_prev;  ///< per machine
  std::vector<std::size_t> peeled_now;                    ///< per machine

  const graph::Graph* graph = nullptr;  ///< driver side
  std::vector<std::vector<graph::VertexId>> owned_adjacency;  ///< worker

  std::span<const graph::VertexId> neighbors(graph::VertexId v) const {
    return graph ? graph->neighbors(v)
                 : std::span<const graph::VertexId>(owned_adjacency[v]);
  }
  std::size_t machine_of(graph::VertexId v) const {
    return per_machine == 0 ? std::size_t{0} : v / per_machine;
  }
  std::pair<graph::VertexId, graph::VertexId> vertex_range(
      std::size_t m) const {
    return {static_cast<graph::VertexId>(std::min(m * per_machine, n)),
            static_cast<graph::VertexId>(std::min((m + 1) * per_machine, n))};
  }
};

// One LOCAL round == one cluster round, expressed as a single-step
// RoundProgram repeated until peeling stalls. Each pass, machine m:
//   1. applies the decrements implied by the PREVIOUS pass — its own
//      peels' local neighbors, then the remote notifications in its
//      inbox (both touch only degree/layer slots of m's vertex range);
//   2. scans its range, peels the sub-threshold vertices (marking their
//      layer at peel time — a vertex peeled this pass is thereby
//      excluded from decrements next pass, exactly as the imperative
//      post-round update excluded same-round peels), and notifies the
//      machines hosting remote neighbors.
// The step is tagged barrier — the canonical case: it reads `round`, a
// global the continue callback advances at the pass boundary, so it must
// not be scheduled while a previous round is still delivering. (A
// single-step repeated program never fuses anyway — the continue hook is
// itself a barrier — but the tag records the contract, not the accident.)
engine::RoundProgram make_peel_program(std::shared_ptr<PeelState> st) {
  engine::RoundProgram program;
  program.barrier("peel.round", [st](std::size_t m, const auto& inbox,
                                     mpc::Sender& send) {
    const std::size_t machines = st->machines;
    // Neighbor split of v as seen from its home machine m: [n_local,
    // local neighbors..., remote neighbors...], each class in adjacency
    // order. Built at peel time and served from the engine's FetchCache
    // on the NEXT pass's decrement walk — the delegate-read pattern.
    // Epoch 0 forever: the adjacency is immutable for the program's life,
    // the same promise its absence from the ownership families records.
    const auto split_of = [st, m](graph::VertexId v) {
      return [st, m, v](std::vector<mpc::Word>& out) {
        const std::span<const graph::VertexId> adj = st->neighbors(v);
        out.push_back(0);
        for (graph::VertexId w : adj)
          if (st->machine_of(w) == m) {
            out.push_back(w);
            ++out[0];
          }
        for (graph::VertexId w : adj)
          if (st->machine_of(w) != m) out.push_back(w);
      };
    };
    // Decrements from the previous pass: local neighbors of my peels...
    for (graph::VertexId v : st->peeled_prev[m]) {
      const std::span<const mpc::Word> split =
          send.fetch(v, /*epoch=*/0, split_of(v));
      const auto n_local = static_cast<std::size_t>(split[0]);
      for (std::size_t i = 1; i <= n_local; ++i) {
        const auto w = static_cast<graph::VertexId>(split[i]);
        if (st->layer[w] == 0) {
          ARBOR_CHECK(st->degree[w] > 0);
          --st->degree[w];
        }
      }
    }
    // ...then the remote notifications addressed to my vertices. Pass 1
    // must not touch the inbox: it may still hold traffic from whatever
    // the cluster ran before this program, and a stale word would index
    // layer/degree arbitrarily.
    if (st->round > 1) {
      for (const auto& msg : inbox) {
        for (mpc::Word word : msg) {
          const auto w = static_cast<graph::VertexId>(word);
          if (st->layer[w] == 0) {
            ARBOR_CHECK(st->degree[w] > 0);
            --st->degree[w];
          }
        }
      }
    }
    // Peel this pass: scan my vertex range with the settled degrees.
    st->peeled_prev[m].clear();
    std::vector<std::vector<mpc::Word>> outgoing(machines);
    const auto [lo, hi] = st->vertex_range(m);
    for (graph::VertexId v = lo; v < hi; ++v) {
      if (st->layer[v] != 0 || st->degree[v] > st->threshold) continue;
      st->layer[v] = st->round;
      st->peeled_prev[m].push_back(v);
      // The remote suffix of the split, bucketed by host machine — the
      // same vertex sequence per destination as filtering the adjacency
      // directly (classes preserve adjacency order).
      const std::span<const mpc::Word> split =
          send.fetch(v, /*epoch=*/0, split_of(v));
      for (std::size_t i = 1 + static_cast<std::size_t>(split[0]);
           i < split.size(); ++i) {
        const auto w = static_cast<graph::VertexId>(split[i]);
        outgoing[st->machine_of(w)].push_back(split[i]);
      }
    }
    st->peeled_now[m] = st->peeled_prev[m].size();
    for (std::size_t dst = 0; dst < machines; ++dst)
      if (!outgoing[dst].empty()) send.send(dst, outgoing[dst]);
  });
  // `round` is deliberately NOT declared: the continue callback advances
  // it, which is legal exactly because every step is a barrier (checked
  // execution only polices continue-callback writes against
  // machine-independent steps).
  auto own = std::make_shared<check::Ownership>();
  own->range("degree", &st->degree,
             [st](std::size_t m) {
               const auto [lo, hi] = st->vertex_range(m);
               return std::pair<std::size_t, std::size_t>{lo, hi};
             })
      .range("layer", &st->layer,
             [st](std::size_t m) {
               const auto [lo, hi] = st->vertex_range(m);
               return std::pair<std::size_t, std::size_t>{lo, hi};
             })
      .slabs("peeled_prev", &st->peeled_prev)
      .elems("peeled_now", &st->peeled_now)
      .keep_alive(st);
  program.owned(std::move(own));
  program.cached_fetches(st->fetch_cache);

  // A pass ships one word per cross-machine edge incident to that pass's
  // peels — graph-dependent, so only the model's S-cap applies. The pass
  // count depends on the peeling schedule; the driver re-declares this
  // bound with its max_rounds budget (workers take passes from the frame
  // and never audit).
  auto cost = std::make_shared<obs::CostModel>("local.embedded_peeling");
  cost->bound("peel.round", obs::kWordsCapacity, 0,
              "<= S (one word per cross-machine edge of this pass's peels)");
  program.costed(std::move(cost));
  return program;
}

}  // namespace

EmbeddedPeelingResult embedded_threshold_peeling(const graph::Graph& g,
                                                 std::size_t threshold,
                                                 mpc::Cluster& cluster,
                                                 std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  const std::size_t machines = cluster.num_machines();
  const std::size_t start_rounds = cluster.rounds_executed();

  EmbeddedPeelingResult result;
  result.layer.assign(n, 0);
  if (n == 0) {
    result.complete = true;
    return result;
  }
  if (max_rounds == 0) {
    result.num_layers = 0;
    result.complete = false;
    return result;
  }

  auto st = std::make_shared<PeelState>();
  st->n = n;
  st->machines = machines;
  st->per_machine = (n + machines - 1) / std::max<std::size_t>(machines, 1);
  st->threshold = threshold;
  st->fetch_cache = cluster.config().fetch_cache;
  st->graph = &g;
  st->degree.resize(n);
  for (graph::VertexId v = 0; v < n; ++v) st->degree[v] = g.degree(v);
  st->layer.assign(n, 0);
  st->peeled_prev.resize(machines);
  st->peeled_now.assign(machines, 0);

  std::size_t remaining = n;
  bool progressed = true;

  // The pass decision, shared verbatim by both deployments: the
  // in-process continue callback sums peeled_now itself; the distributed
  // path gets the same total as the reduced worker votes. `passes` counts
  // completed passes, i.e. the 1-based index of the pass that just ran —
  // the same value the imperative loop compared against max_rounds.
  // `round` (read by the step as the layer to stamp) advances only when
  // another pass is actually coming.
  const auto decide = [st, &remaining, &progressed, max_rounds](
                          std::size_t passes, std::size_t peeled) {
    remaining -= peeled;
    progressed = peeled > 0;
    const bool again = remaining > 0 && progressed && passes < max_rounds;
    if (again) ++st->round;
    return again;
  };

  engine::RoundProgram program = make_peel_program(st);
  {
    // Driver side the pass budget is known: tighten the builder's
    // open-ended round bound to the max_rounds the repeat_while enforces.
    auto cost = std::make_shared<obs::CostModel>("local.embedded_peeling");
    cost->bound("peel.round", obs::kWordsCapacity, max_rounds,
                "<= S words; <= max_rounds passes (repeat_while budget)");
    program.costed(std::move(cost));
  }
  program.repeat_while(
      [st, decide](std::size_t passes) {
        std::size_t peeled = 0;
        for (std::size_t m = 0; m < st->machines; ++m)
          peeled += st->peeled_now[m];
        return decide(passes, peeled);
      },
      max_rounds);
  if (cluster.distributed()) {
    engine::RemoteSpec spec;
    spec.name = "local.embedded_peeling";
    spec.scalars = {static_cast<mpc::Word>(n),
                    static_cast<mpc::Word>(threshold),
                    static_cast<mpc::Word>(st->fetch_cache ? 1 : 0)};
    // inputs[m]: adjacency of machine m's vertex range —
    //   [{len, neighbors...} per vertex]
    spec.inputs.resize(machines);
    for (std::size_t m = 0; m < machines; ++m) {
      const auto [lo, hi] = st->vertex_range(m);
      std::vector<mpc::Word>& input = spec.inputs[m];
      for (graph::VertexId v = lo; v < hi; ++v) {
        input.push_back(g.degree(v));
        for (graph::VertexId w : g.neighbors(v)) input.push_back(w);
      }
    }
    spec.has_vote = true;
    spec.continue_with_votes = [decide](std::size_t passes,
                                        mpc::Word total) {
      return decide(passes, static_cast<std::size_t>(total));
    };
    spec.has_output = true;
    spec.output_sink = [st](std::size_t m, std::span<const mpc::Word> slab) {
      const auto [lo, hi] = st->vertex_range(m);
      ARBOR_CHECK(slab.size() == hi - lo);
      for (std::size_t i = 0; i < slab.size(); ++i)
        st->layer[lo + i] = static_cast<std::uint32_t>(slab[i]);
    };
    program.distributable(std::move(spec));
  }

  cluster.run_program(program);

  result.layer = std::move(st->layer);
  result.num_layers = st->round - (progressed ? 0 : 1);
  result.cluster_rounds = cluster.rounds_executed() - start_rounds;
  result.complete = (remaining == 0);
  return result;
}

void register_embedded_peeling_program(net::Registry& registry) {
  registry.add("local.embedded_peeling", [](const net::ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 3,
                    "local.embedded_peeling expects 3 scalars");
    auto st = std::make_shared<PeelState>();
    st->n = static_cast<std::size_t>(in.scalars[0]);
    st->threshold = static_cast<std::size_t>(in.scalars[1]);
    st->fetch_cache = in.scalars[2] != 0;
    st->machines = in.machines;
    st->per_machine =
        (st->n + in.machines - 1) / std::max<std::size_t>(in.machines, 1);
    st->degree.assign(st->n, 0);
    st->layer.assign(st->n, 0);
    st->peeled_prev.resize(in.machines);
    st->peeled_now.assign(in.machines, 0);
    st->owned_adjacency.resize(st->n);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m) {
      net::WireReader reader(in.inputs[m - in.block_begin], "peel-input");
      const auto [lo, hi] = st->vertex_range(m);
      for (graph::VertexId v = lo; v < hi; ++v) {
        const std::span<const mpc::Word> ws = reader.words(reader.count());
        st->owned_adjacency[v].assign(ws.begin(), ws.end());
        st->degree[v] = ws.size();
      }
      reader.expect_end();
    }
    net::WorkerProgram out;
    out.program = make_peel_program(st);
    out.state = st;
    out.vote = [st](std::size_t m) {
      return static_cast<mpc::Word>(st->peeled_now[m]);
    };
    out.on_continue = [st] { ++st->round; };
    out.output = [st](std::size_t m) {
      const auto [lo, hi] = st->vertex_range(m);
      std::vector<mpc::Word> slab;
      slab.reserve(hi - lo);
      for (graph::VertexId v = lo; v < hi; ++v) slab.push_back(st->layer[v]);
      return slab;
    };
    return out;
  });
}

}  // namespace arbor::local
