// RoundEngine is header-only (templated on the node-state type); this file
// anchors the module in the build.
#include "local/network.hpp"
