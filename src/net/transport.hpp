// Transport abstraction of the multi-process backend: reliable, ordered,
// framed duplex channels between the driver and its workers.
//
// Two implementations share the Conn interface:
//
//   * loopback — in-memory frame queues between threads of one process.
//     The whole driver/worker runtime (wire encoding included) runs
//     unchanged, just without sockets or fork: the fast path for tests
//     and for exercising the transport stack under sanitizers.
//   * tcp — 127.0.0.1 sockets between real OS processes (the arbor-worker
//     binary). Frames are the wire.hpp encoding written verbatim; reads
//     that end mid-frame are rejected as truncated by name.
//
// Above Conn sits the event layer: every connection gets a reader thread
// that drains frames into a shared Mailbox, so a runtime blocked waiting
// for one source still observes failures (or shutdowns) of any other —
// the property that turns "worker died mid-round" into a prompt, named
// error at the driver instead of a distributed deadlock. FrameHub bundles
// the connections, stashes out-of-order frames per source (BSP skew: a
// fast peer may send round r+1 before the local runtime finished round
// r), and is the only API the driver/worker loops use.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hpp"

namespace arbor::net {

/// Failure of the transport fabric itself — a lost connection, a short
/// read, a protocol break — as opposed to a relayed InvariantError from a
/// simulated machine (which keeps its original type across the wire).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Reliable, ordered, framed duplex channel. send() is thread-safe
/// against a concurrent recv(); recv() has a single consumer (the reader
/// thread). shutdown() unblocks a pending recv() on both ends.
class Conn {
 public:
  virtual ~Conn() = default;

  virtual void send(FrameType type, std::span<const Word> payload) = 0;
  /// Blocks for the next frame; false on orderly close. Transport-level
  /// corruption (bad magic, short read) throws TransportError or
  /// InvariantError.
  virtual bool recv(Frame& out) = 0;
  virtual void shutdown() noexcept = 0;
};

/// A connected pair of in-memory endpoints.
std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> loopback_pair();

/// Listening 127.0.0.1 socket on an ephemeral port.
class TcpListener {
 public:
  TcpListener();
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  /// Blocks for the next connection; with `timeout_ms` >= 0 returns null
  /// when nothing dialed in before the deadline.
  std::unique_ptr<Conn> accept(int timeout_ms = -1);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

std::unique_ptr<Conn> tcp_connect(std::uint16_t port);

// ------------------------------------------------------------ event layer

/// Event source meaning "no specific connection" — a wait that timed out
/// before ANY source produced a frame. Handlers must not map it to a
/// worker: blaming rank 0 for a fabric-wide stall points the operator at
/// the wrong machine.
inline constexpr std::size_t kNoSource = static_cast<std::size_t>(-1);

/// One observation from a connection's reader thread.
struct Event {
  std::size_t source = 0;
  Frame frame;
  bool closed = false;  ///< connection ended; `error` says how
  std::string error;    ///< empty on orderly close
};

class Mailbox {
 public:
  void post(Event event);
  Event wait();
  bool poll(Event& out);
  /// poll() that waits up to `timeout` for something to arrive.
  bool poll_for(Event& out, std::chrono::milliseconds timeout);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Event> events_;
};

/// The driver's and worker's view of all their connections: sends go
/// straight to the Conn, receives come through the mailbox so any
/// source's failure interrupts any wait. Frames that arrive from a source
/// before the runtime asks for them are stashed per source and replayed
/// in order.
class FrameHub {
 public:
  explicit FrameHub(std::size_t sources);
  ~FrameHub();
  FrameHub(const FrameHub&) = delete;
  FrameHub& operator=(const FrameHub&) = delete;

  /// Take ownership of `conn` as `source` and start its reader thread.
  void attach(std::size_t source, std::unique_ptr<Conn> conn);
  bool attached(std::size_t source) const;

  void send(std::size_t source, FrameType type, std::span<const Word> payload);

  /// Out-of-band event observed while waiting for something else: a
  /// kError frame, an unexpected frame type, or a closed connection. The
  /// handler must throw; returning is a programming error.
  using OobHandler = std::function<void(const Event& event)>;

  /// Next frame of `type` from `source`; everything else goes through
  /// `oob` (which must throw) — except frames from OTHER sources, which
  /// are stashed for their own expect() calls.
  Frame expect(std::size_t source, FrameType type, const OobHandler& oob);

  /// One frame of `type` from every attached source in `sources`, arrival
  /// order, returned indexed like `sources`. Drains the mailbox
  /// non-blocking first so that when several events raced in (a crash
  /// plus late frames), the handler sees the complete picture via
  /// `pending` before anything throws.
  std::vector<Frame> collect(std::span<const std::size_t> sources,
                             FrameType type, const OobHandler& oob);

  /// Next event from exactly `source`, waiting up to `timeout` for it;
  /// events from other sources observed while waiting are stashed. Lets
  /// an error handler give a dying worker's own report a grace window
  /// before settling for a peer's second-hand account of the loss.
  std::optional<Event> next_event_from(std::size_t source,
                                       std::chrono::milliseconds timeout);

  /// Shut every connection down (idempotent); reader threads wind down.
  void shutdown_all() noexcept;

 private:
  struct Slot {
    std::unique_ptr<Conn> conn;
    std::thread reader;
    std::deque<Event> stash;
  };

  std::optional<Event> sweep_interrupts(std::optional<Event> seed);

  Mailbox mailbox_;
  std::vector<Slot> slots_;
};

}  // namespace arbor::net
