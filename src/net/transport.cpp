#include "net/transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/assert.hpp"

namespace arbor::net {

namespace {

/// Ceiling on any single frame wait. The runtimes are lockstep — a frame
/// that has not arrived in two minutes means a peer is gone in a way the
/// socket layer did not surface — so convert the hang into a named error
/// instead of wedging the test suite.
constexpr std::chrono::seconds kEventTimeout{120};

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

// ------------------------------------------------------------- loopback

struct LoopbackQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> frames;
  bool closed = false;
};

class LoopbackConn final : public Conn {
 public:
  LoopbackConn(std::shared_ptr<LoopbackQueue> in,
               std::shared_ptr<LoopbackQueue> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~LoopbackConn() override { LoopbackConn::shutdown(); }

  void send(FrameType type, std::span<const Word> payload) override {
    // Same ceiling the socket path enforces, so loopback and tcp reject
    // an oversized bank identically.
    encode_frame_header(type, payload.size());
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed)
      throw TransportError("send on closed loopback channel");
    out_->frames.push_back(
        Frame{type, std::vector<Word>(payload.begin(), payload.end())});
    out_->cv.notify_all();
  }

  bool recv(Frame& out) override {
    std::unique_lock<std::mutex> lock(in_->mu);
    in_->cv.wait(lock, [&] { return !in_->frames.empty() || in_->closed; });
    if (in_->frames.empty()) return false;
    out = std::move(in_->frames.front());
    in_->frames.pop_front();
    return true;
  }

  void shutdown() noexcept override {
    for (LoopbackQueue* q : {in_.get(), out_.get()}) {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
      q->cv.notify_all();
    }
  }

 private:
  std::shared_ptr<LoopbackQueue> in_;
  std::shared_ptr<LoopbackQueue> out_;
};

// ------------------------------------------------------------------ tcp

class TcpConn final : public Conn {
 public:
  explicit TcpConn(int fd) : fd_(fd) {
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConn() override {
    TcpConn::shutdown();
    ::close(fd_);
  }

  void send(FrameType type, std::span<const Word> payload) override {
    const std::array<Word, 3> header =
        encode_frame_header(type, payload.size());
    std::lock_guard<std::mutex> lock(send_mu_);
    send_all(header.data(), header.size() * sizeof(Word));
    if (!payload.empty())
      send_all(payload.data(), payload.size() * sizeof(Word));
  }

  bool recv(Frame& out) override {
    std::array<Word, 3> raw;
    const std::size_t got = recv_some(raw.data(), sizeof(raw));
    if (got == 0) return false;  // clean close at a frame boundary
    if (got < sizeof(raw))
      throw TransportError("truncated frame header (" + std::to_string(got) +
                           " of " + std::to_string(sizeof(raw)) + " bytes)");
    const FrameHeader header = decode_frame_header(raw);
    out.type = header.type;
    out.payload.resize(header.payload_words);
    if (header.payload_words > 0) {
      const std::size_t want = header.payload_words * sizeof(Word);
      const std::size_t body = recv_some(out.payload.data(), want);
      if (body < want)
        throw TransportError("truncated frame payload (" +
                             std::to_string(body) + " of " +
                             std::to_string(want) + " bytes)");
    }
    return true;
  }

  void shutdown() noexcept override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  void send_all(const void* data, std::size_t bytes) {
    const char* p = static_cast<const char*>(data);
    while (bytes > 0) {
      const ssize_t n = ::send(fd_, p, bytes, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("socket send failed");
      }
      p += n;
      bytes -= static_cast<std::size_t>(n);
    }
  }

  /// Reads until `bytes` arrived or the stream ended; returns bytes read.
  std::size_t recv_some(void* data, std::size_t bytes) {
    char* p = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < bytes) {
      const ssize_t n = ::recv(fd_, p + got, bytes - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("socket recv failed");
      }
      if (n == 0) break;
      got += static_cast<std::size_t>(n);
    }
    return got;
  }

  int fd_;
  std::mutex send_mu_;
};

}  // namespace

std::pair<std::unique_ptr<Conn>, std::unique_ptr<Conn>> loopback_pair() {
  auto a_to_b = std::make_shared<LoopbackQueue>();
  auto b_to_a = std::make_shared<LoopbackQueue>();
  return {std::make_unique<LoopbackConn>(b_to_a, a_to_b),
          std::make_unique<LoopbackConn>(a_to_b, b_to_a)};
}

TcpListener::TcpListener() {
  // CLOEXEC everywhere: worker processes are fork+exec'd by the driver,
  // and an inherited socket fd would keep a "closed" connection alive in
  // the child — EOF-based teardown depends on no strays surviving exec.
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("cannot create listener socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw_errno("cannot bind 127.0.0.1 listener");
  if (::listen(fd_, 16) < 0) throw_errno("cannot listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("cannot read listener port");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Conn> TcpListener::accept(int timeout_ms) {
  if (timeout_ms >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready > 0) break;
      if (ready == 0) return nullptr;
      if (errno != EINTR) throw_errno("poll on listener failed");
    }
  }
  for (;;) {
    const int fd = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return std::make_unique<TcpConn>(fd);
    if (errno != EINTR) throw_errno("accept failed");
  }
}

std::unique_ptr<Conn> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return std::make_unique<TcpConn>(fd);
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to 127.0.0.1:" + std::to_string(port));
  }
}

// ------------------------------------------------------------ event layer

void Mailbox::post(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
  cv_.notify_all();
}

Event Mailbox::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, kEventTimeout, [&] { return !events_.empty(); })) {
    Event timeout;
    timeout.source = kNoSource;  // nobody spoke — blame no one by rank
    timeout.closed = true;
    timeout.error = "timed out waiting for a frame (" +
                    std::to_string(kEventTimeout.count()) + "s)";
    return timeout;
  }
  Event event = std::move(events_.front());
  events_.pop_front();
  return event;
}

bool Mailbox::poll(Event& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.empty()) return false;
  out = std::move(events_.front());
  events_.pop_front();
  return true;
}

bool Mailbox::poll_for(Event& out, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, timeout, [&] { return !events_.empty(); }))
    return false;
  out = std::move(events_.front());
  events_.pop_front();
  return true;
}

FrameHub::FrameHub(std::size_t sources) : slots_(sources) {}

FrameHub::~FrameHub() {
  shutdown_all();
  for (Slot& slot : slots_)
    if (slot.reader.joinable()) slot.reader.join();
}

void FrameHub::attach(std::size_t source, std::unique_ptr<Conn> conn) {
  ARBOR_CHECK(source < slots_.size());
  Slot& slot = slots_[source];
  ARBOR_CHECK_MSG(!slot.conn, "source attached twice");
  slot.conn = std::move(conn);
  Conn* raw = slot.conn.get();
  slot.reader = std::thread([this, source, raw] {
    for (;;) {
      Event event;
      event.source = source;
      try {
        if (!raw->recv(event.frame)) {
          event.closed = true;
          event.error = "connection closed";
        }
      } catch (const std::exception& e) {
        event.closed = true;
        event.error = e.what();
      }
      const bool closed = event.closed;
      mailbox_.post(std::move(event));
      if (closed) return;
    }
  });
}

bool FrameHub::attached(std::size_t source) const {
  return source < slots_.size() && slots_[source].conn != nullptr;
}

void FrameHub::send(std::size_t source, FrameType type,
                    std::span<const Word> payload) {
  ARBOR_CHECK(source < slots_.size() && slots_[source].conn);
  slots_[source].conn->send(type, payload);
}

namespace {

/// Closed connections, relayed errors, and shutdown requests interrupt
/// any wait, whichever source they come from; ordinary data frames only
/// satisfy a wait on their own source.
bool is_interrupt(const Event& event) {
  return event.closed || event.frame.type == FrameType::kError ||
         event.frame.type == FrameType::kShutdown;
}

[[noreturn]] void oob_must_throw() {
  throw TransportError("out-of-band handler returned instead of throwing");
}

}  // namespace

/// Drain the mailbox without blocking: data frames go to their source's
/// stash, interrupts are gathered. When `seed` is an interrupt itself it
/// joins the pool. Returns the interrupt with the lowest source — so the
/// blame for "which machine broke the round" is deterministic even when a
/// crash and a cap violation race in together — or nothing.
std::optional<Event> FrameHub::sweep_interrupts(std::optional<Event> seed) {
  std::vector<Event> interrupts;
  if (seed) interrupts.push_back(std::move(*seed));
  Event event;
  while (mailbox_.poll(event)) {
    if (is_interrupt(event))
      interrupts.push_back(std::move(event));
    else
      slots_[event.source].stash.push_back(std::move(event));
  }
  if (interrupts.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < interrupts.size(); ++i)
    if (interrupts[i].source < interrupts[best].source) best = i;
  // The losers go back to their source's stash, not on the floor: when
  // two workers fail in the same sweep (one dies, a peer relays the
  // loss), the dead worker's own kError is the better diagnosis, and the
  // oob handler's grace wait recovers it from the stash. Its reader
  // thread has already exited by then, so a dropped frame here would be
  // gone for good.
  for (std::size_t i = 0; i < interrupts.size(); ++i)
    if (i != best && interrupts[i].source < slots_.size())
      slots_[interrupts[i].source].stash.push_back(std::move(interrupts[i]));
  return std::move(interrupts[best]);
}

Frame FrameHub::expect(std::size_t source, FrameType type,
                       const OobHandler& oob) {
  ARBOR_CHECK(source < slots_.size());
  for (;;) {
    if (std::optional<Event> interrupt = sweep_interrupts(std::nullopt)) {
      oob(*interrupt);
      oob_must_throw();
    }
    std::deque<Event>& stash = slots_[source].stash;
    if (!stash.empty()) {
      Event event = std::move(stash.front());
      stash.pop_front();
      if (event.frame.type == type) return std::move(event.frame);
      oob(event);
      oob_must_throw();
    }
    Event event = mailbox_.wait();
    if (is_interrupt(event)) {
      std::optional<Event> interrupt =
          sweep_interrupts(std::move(event));
      oob(*interrupt);
      oob_must_throw();
    }
    slots_[event.source].stash.push_back(std::move(event));
  }
}

std::vector<Frame> FrameHub::collect(std::span<const std::size_t> sources,
                                     FrameType type, const OobHandler& oob) {
  std::vector<Frame> out(sources.size());
  std::vector<bool> have(sources.size(), false);
  std::size_t remaining = sources.size();
  while (remaining > 0) {
    if (std::optional<Event> interrupt = sweep_interrupts(std::nullopt)) {
      oob(*interrupt);
      oob_must_throw();
    }
    bool took = false;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (have[i]) continue;
      std::deque<Event>& stash = slots_[sources[i]].stash;
      if (stash.empty()) continue;
      Event queued = std::move(stash.front());
      stash.pop_front();
      if (queued.frame.type != type) {
        oob(queued);
        oob_must_throw();
      }
      out[i] = std::move(queued.frame);
      have[i] = true;
      --remaining;
      took = true;
    }
    if (remaining == 0 || took) continue;
    Event fresh = mailbox_.wait();
    if (is_interrupt(fresh)) {
      std::optional<Event> interrupt = sweep_interrupts(std::move(fresh));
      oob(*interrupt);
      oob_must_throw();
    }
    slots_[fresh.source].stash.push_back(std::move(fresh));
  }
  return out;
}

std::optional<Event> FrameHub::next_event_from(
    std::size_t source, std::chrono::milliseconds timeout) {
  ARBOR_CHECK(source < slots_.size());
  if (!slots_[source].stash.empty()) {
    Event event = std::move(slots_[source].stash.front());
    slots_[source].stash.pop_front();
    return event;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left <= std::chrono::steady_clock::duration::zero())
      return std::nullopt;
    Event event;
    if (!mailbox_.poll_for(
            event,
            std::chrono::duration_cast<std::chrono::milliseconds>(left)))
      return std::nullopt;
    if (event.source == source) return event;
    if (event.source < slots_.size())
      slots_[event.source].stash.push_back(std::move(event));
  }
}

void FrameHub::shutdown_all() noexcept {
  for (Slot& slot : slots_)
    if (slot.conn) slot.conn->shutdown();
}

}  // namespace arbor::net
