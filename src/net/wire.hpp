// Wire format of the multi-process transport: length-prefixed frames of
// machine words.
//
// Everything that crosses an address-space boundary — outbox banks, inbox
// slabs, program specs, round stats, errors — is encoded as a Frame: a
// 3-word header (magic, type, payload length) followed by `payload length`
// Words. Words travel in host byte order: the transport is a localhost
// fabric (loopback channels and 127.0.0.1 sockets between processes of one
// build), not a portable network protocol, and the simulator's unit of
// account IS the word, so frame payload length doubles as the traffic
// measure the caps are enforced against.
//
// Decoding is defensive everywhere: headers reject bad magic, unknown
// types, and oversized lengths by name; payload readers are bounds-checked
// cursors that reject truncated or trailing words by structure name
// (tests/net_test.cpp fuzzes the round trip). The receiver-side traffic
// cap is validated from an outbox frame's count table BEFORE any message
// payload is deserialized into inboxes — a misbehaving sender cannot make
// a receiver materialize more than its word budget.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "engine/types.hpp"
#include "trace/trace.hpp"

namespace arbor::net {

using Word = engine::Word;

/// First header word of every frame ("ARBORNET" in ASCII).
inline constexpr Word kFrameMagic = 0x4152424f524e4554ULL;

/// Hard ceiling on a frame payload (2^26 words = 512 MiB) — far above any
/// simulated cluster's per-machine budget, low enough that a corrupt
/// length cannot drive a multi-gigabyte allocation.
inline constexpr Word kMaxFramePayloadWords = Word{1} << 26;

enum class FrameType : Word {
  kHello = 1,         ///< worker → driver / peer: rank, listen port
  kConfig = 2,        ///< driver → worker: cluster shape, blocks, peers
  kReady = 3,         ///< worker → driver: mesh established
  kProgram = 4,       ///< driver → worker: program spec + block inputs
  kOutbox = 5,        ///< worker → worker: one round's cross-block messages
  kRoundStats = 6,    ///< worker → driver: per-round traffic + fingerprints
  kRoundAck = 7,      ///< driver → worker: round committed, proceed
  kVote = 8,          ///< worker → driver: pass-barrier continuation vote
  kPassDecision = 9,  ///< driver → worker: run another pass or stop
  kOutputs = 10,      ///< worker → driver: per-machine output slabs
  kInboxDump = 11,    ///< worker → driver: final inbox state of the block
  kError = 12,        ///< either way: InvariantError text to relay
  kShutdown = 13,     ///< driver → worker: tear the group down
  kTelemetry = 14,    ///< worker → driver: spans + metrics at program end
};

const char* frame_type_name(FrameType type);

struct Frame {
  FrameType type = FrameType::kShutdown;
  std::vector<Word> payload;
};

struct FrameHeader {
  FrameType type;
  std::size_t payload_words;
};

std::array<Word, 3> encode_frame_header(FrameType type,
                                        std::size_t payload_words);

/// Validates magic, type, and length; throws InvariantError naming the
/// defect ("bad frame magic", "unknown frame type", "oversized frame").
FrameHeader decode_frame_header(std::span<const Word, 3> header);

// ---------------------------------------------------------------- reader

/// Bounds-checked cursor over a frame payload. Every read that would run
/// past the end throws an InvariantError naming the structure being
/// decoded ("truncated <what> frame"); expect_end() rejects trailing
/// words the encoder never wrote ("oversized <what> frame").
class WireReader {
 public:
  WireReader(std::span<const Word> data, std::string_view what)
      : data_(data), what_(what) {}

  Word word();
  std::span<const Word> words(std::size_t n);
  /// A size field about to drive an allocation: bounded by the remaining
  /// payload so a corrupt count cannot allocate past the frame.
  std::size_t count();
  std::string str();
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  void expect_end() const;

 private:
  [[noreturn]] void fail(const char* defect) const;

  std::span<const Word> data_;
  std::size_t pos_ = 0;
  std::string_view what_;
};

/// Append a byte string as [length, packed words].
void put_str(std::vector<Word>& out, std::string_view s);

// ------------------------------------------------------- outbox frames

/// One round's messages from the machines of `src` block [src_begin,
/// src_end) addressed to the machines of a destination block [dst_begin,
/// dst_end), in (source machine asc, send order) — the delivery order of
/// the in-process executor. Layout:
///
///   [round, src_rank,
///    dst_block_size, words_for_dst_0, ..., words_for_dst_{B-1},
///    num_msgs, {dst_machine, length, words...} * num_msgs]
///
/// The count table up front lets the receiver validate its per-machine
/// word caps before deserializing a single message payload.
std::vector<Word> encode_outbox_frame(std::size_t round, std::size_t src_rank,
                                      std::span<const engine::Outbox> outboxes,
                                      std::size_t src_begin,
                                      std::size_t src_end,
                                      std::size_t dst_begin,
                                      std::size_t dst_end);

struct OutboxFrameView {
  std::size_t round = 0;
  std::size_t src_rank = 0;
  std::vector<std::size_t> dst_words;  ///< per machine of the dst block
  WireReader msgs;                     ///< positioned at [num_msgs, ...]
};

/// Phase 1: header + count table only — no message payload is touched, so
/// the caller can enforce the receiver-side cap first.
OutboxFrameView decode_outbox_counts(std::span<const Word> payload,
                                     std::size_t dst_block_size);

/// Phase 2: append the frame's messages into `inboxes` (indexed by global
/// machine id). Validates per-message destinations against the block and
/// that the payload matches the count table word for word.
void deliver_outbox_msgs(OutboxFrameView& view,
                         std::span<engine::Inbox> inboxes,
                         std::size_t dst_begin, std::size_t dst_end);

// -------------------------------------------------- inbox dumps / slabs

/// Per-machine inbox contents with message boundaries:
///   [{num_msgs, {length, words...} * num_msgs} * block_size]
std::vector<Word> encode_inbox_dump(std::span<const engine::Inbox> inboxes,
                                    std::size_t begin, std::size_t end);

/// Per-machine word slabs without message structure:
///   [{length, words...} * block_size]
std::vector<Word> encode_slab_block(
    const std::vector<std::vector<Word>>& slabs, std::size_t begin,
    std::size_t end);

// ------------------------------------------------------- program frames

/// The kProgram payload: everything a worker needs to rebuild its share of
/// a RoundProgram from the registry (src/net/registry.hpp).
struct ProgramFrame {
  std::size_t first_round = 0;  ///< feeds error text, matches the driver
  std::size_t steps = 0;        ///< cross-checked against the factory's
  std::size_t max_passes = 1;
  bool has_output = false;
  bool has_vote = false;
  std::string name;
  std::vector<Word> scalars;
  /// Input slab per machine of the worker's block (block order).
  std::vector<std::vector<Word>> inputs;
  /// Inbox contents per machine of the block at program start (preloads
  /// and leftovers from earlier programs), message boundaries preserved.
  std::vector<std::vector<std::vector<Word>>> preinbox;
};

std::vector<Word> encode_program_frame(const ProgramFrame& frame);
ProgramFrame decode_program_frame(std::span<const Word> payload,
                                  std::size_t block_size);

// ----------------------------------------------------- telemetry frames

/// The kTelemetry payload a worker ships after its inbox dump when the
/// group runs traced (trace/trace.hpp):
///
///   [rank,
///    num_counters, {name, value} * num_counters,
///    num_histograms, {name, count, sum_bits,
///                     num_samples, sample_bits...} * num_histograms,
///    num_spans, {name, category, tid, start_ns, dur_ns} * num_spans]
///
/// Doubles travel as their IEEE-754 bit patterns (host order, like every
/// other word on this localhost fabric); strings use put_str.
struct TelemetryFrame {
  std::size_t rank = 0;
  trace::TelemetryBlob blob;
};

std::vector<Word> encode_telemetry_frame(std::size_t rank,
                                         const trace::TelemetryBlob& blob);
TelemetryFrame decode_telemetry_frame(std::span<const Word> payload);

}  // namespace arbor::net
