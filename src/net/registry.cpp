#include "net/registry.hpp"

#include "check/selfcheck.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/sample_sort.hpp"
#include "net/storm.hpp"
#include "util/assert.hpp"

namespace arbor::net {

void Registry::add(std::string name, ProgramFactory factory) {
  ARBOR_CHECK_MSG(!name.empty(), "program name must not be empty");
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  ARBOR_CHECK_MSG(inserted, "program \"" + it->first + "\" registered twice");
}

const ProgramFactory& Registry::find(const std::string& name) const {
  const auto it = factories_.find(name);
  ARBOR_CHECK_MSG(it != factories_.end(),
                  "program \"" + name + "\" is not registered");
  return it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

Registry& Registry::builtin() {
  // Explicit registration instead of static-initializer self-registration:
  // the library is static, and a linker is free to drop a translation unit
  // nothing references — a worker binary that silently knows no programs
  // is exactly the failure mode this avoids.
  static Registry registry = [] {
    Registry r;
    mpc::register_sample_sort_programs(r);
    mpc::register_broadcast_programs(r);
    mpc::register_bundle_fetch_program(r);
    local::register_embedded_peeling_program(r);
    register_storm_program(r);
    // Deliberately-broken programs checked execution must reject — in the
    // builtin registry so the stock arbor-worker can rebuild them and the
    // negative tests cover the real remote code path (check/selfcheck.hpp).
    check::register_selfcheck_programs(r);
    return r;
  }();
  return registry;
}

}  // namespace arbor::net
