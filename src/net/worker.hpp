// Worker runtime of the multi-process backend.
//
// One worker owns a contiguous block of the cluster's machines. Per round
// it computes its block locally (the registry-built step functions,
// optionally spread over a thread pool — the same block-partitioned
// compute the in-process engine runs, just over a slice), exchanges one
// outbox frame with every peer worker, validates its machines' receive
// caps from the frames' count tables BEFORE deserializing any payload,
// delivers in (source machine asc, send order) — the in-process executor's
// order — and reports the round's traffic stats and per-machine inbox
// fingerprints to the driver, which commits the round (ledger charge) and
// acks. Pass barriers reduce per-machine votes through the driver; after
// the final round the worker ships its output slabs and final inboxes
// back.
//
// The same run_worker loop serves both transports: the loopback backend
// calls it on an in-process thread, the arbor-worker binary calls it
// after the TCP handshake (tcp_worker_main).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "trace/trace.hpp"

namespace arbor::net {

/// Wire protocol version; driver and worker must agree exactly.
/// v2: the config frame carries the group's trace mode and workers ship a
/// kTelemetry frame after each program's inbox dump when tracing is on.
/// v3: the config frame carries a checked-execution flag word (after the
/// trace word, before the ports) so remote programs run under the same
/// model-race Monitor the driver's in-process scheduler uses.
inline constexpr std::uint64_t kProtocolVersion = 3;

/// FrameHub source ids: ranks 0..workers-1 are peers, `workers` is the
/// driver.
inline constexpr std::size_t driver_source(std::size_t workers) {
  return workers;
}

/// Contiguous machine block of `rank` among `workers` over `machines`.
inline std::pair<std::size_t, std::size_t> machine_block(
    std::size_t machines, std::size_t workers, std::size_t rank) {
  return {rank * machines / workers, (rank + 1) * machines / workers};
}

/// Order-sensitive checksum of one machine's inbox (message boundaries
/// included); the driver folds these in machine order into the per-round
/// cluster fingerprint.
std::uint64_t fingerprint_inbox(const engine::Inbox& inbox);

/// Everything a worker needs to serve programs: identity, cluster shape,
/// and a FrameHub with every peer (and the driver) already attached.
struct WorkerWiring {
  std::size_t rank = 0;
  std::size_t workers = 0;
  std::size_t machines = 0;
  std::size_t capacity = 0;
  std::size_t worker_threads = 1;
  /// Group trace mode (the driver's decision, from ClusterConfig::trace):
  /// when not off, the runtime records spans/metrics into its own tracer
  /// and ships them as a kTelemetry frame after every program.
  trace::Mode trace = trace::Mode::kOff;
  /// Checked execution (the driver's ExecutionPolicy::check): the block's
  /// compute runs through a check::Monitor and contract violations are
  /// relayed to the driver as invariant errors.
  bool checked = false;
  std::unique_ptr<FrameHub> hub;
};

/// Write one line to stderr as `[worker:<rank>] <text>` (single write, so
/// concurrent worker processes cannot interleave mid-line). Every stderr
/// line a worker runtime emits goes through here — multi-process failure
/// logs stay attributable by rank.
void worker_log(std::size_t rank, std::string_view text);

/// Serve programs until the driver shuts the group down (or a connection
/// dies). Never throws: failures are reported to the driver as kError
/// frames and the function returns, closing every connection.
void run_worker(WorkerWiring wiring);

/// The arbor-worker binary's body: dial the driver on 127.0.0.1:`port`,
/// handshake (hello / config / mesh / ready), then run_worker. Returns a
/// process exit code.
int tcp_worker_main(std::uint16_t port, std::size_t rank);

}  // namespace arbor::net
