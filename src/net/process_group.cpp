#include "net/process_group.hpp"

#include <limits.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "net/worker.hpp"
#include "util/assert.hpp"
#include "util/env_knob.hpp"
#include "util/hashing.hpp"

namespace arbor::net {

namespace {

constexpr int kConnectTimeoutMs = 30000;

/// How long handle_oob waits for a failed worker's own final kError frame
/// before settling for "hung up" as the diagnosis. Generous on purpose:
/// when every worker of a checked group raises the same RaceError at once,
/// the report can lag the first closure by a whole scheduling quantum on a
/// loaded machine, and a named violation beats a bare lost-worker error.
constexpr std::chrono::milliseconds kLastWordsGrace{2000};

std::string resolve_worker_binary(const std::string& configured) {
  std::string path = configured;
  if (path.empty()) {
    if (const auto env = util::env_knob("ARBOR_WORKER_BIN"))
      path = std::string(*env);
  }
  if (path.empty()) {
    char exe[PATH_MAX];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) {
      exe[n] = '\0';
      std::string dir(exe);
      const std::size_t slash = dir.rfind('/');
      if (slash != std::string::npos) path = dir.substr(0, slash + 1);
    }
    path += "arbor-worker";
  }
  if (::access(path.c_str(), X_OK) != 0)
    throw TransportError(
        "cannot execute the arbor-worker binary at \"" + path +
        "\" (build the arbor-worker target, or point ARBOR_WORKER_BIN at "
        "it)");
  return path;
}

std::string describe_worker(std::size_t rank, std::size_t machines,
                            std::size_t workers) {
  const auto [begin, end] = machine_block(machines, workers, rank);
  std::string out = "worker " + std::to_string(rank) + " (machines ";
  if (begin == end)
    out += "none";
  else
    out += std::to_string(begin) + ".." + std::to_string(end - 1);
  return out + ")";
}

}  // namespace

ProcessGroup::ProcessGroup(GroupOptions options)
    : options_(std::move(options)) {
  ARBOR_CHECK(options_.machines > 0);
  ARBOR_CHECK(options_.capacity > 0);
  ARBOR_CHECK_MSG(options_.transport.workers >= 1,
                  "a process group needs at least one worker");
  ARBOR_CHECK_MSG(!options_.transport.in_process(),
                  "the in-process transport has no process group");
  for (std::size_t w = 0; w < workers(); ++w) worker_ids_.push_back(w);
  try {
    // Mesh bring-up on the driver lane: fork/exec + hellos + peer mesh +
    // readiness barrier for tcp, channel plumbing for loopback.
    trace::Span span = trace::Tracer::global().span(
        "driver", options_.transport.kind == mpc::TransportConfig::Kind::kTcp
                      ? "mesh bring-up tcp"
                      : "mesh bring-up loopback");
    if (options_.transport.kind == mpc::TransportConfig::Kind::kLoopback)
      spawn_loopback();
    else
      spawn_tcp();
  } catch (...) {
    teardown();
    throw;
  }
  // Spawn counter: pooled clusters (MpcContext's internal sort pool) exist
  // to keep this from incrementing once per sort.
  auto& tracer = trace::Tracer::global();
  if (tracer.metrics_on()) tracer.metrics().add("net.worker_groups_spawned", 1);
}

ProcessGroup::~ProcessGroup() {
  if (!down_ && hub_) {
    for (std::size_t w = 0; w < workers(); ++w) {
      try {
        hub_->send(w, FrameType::kShutdown, {});
      } catch (...) {
        // Already gone; teardown reaps it regardless.
      }
    }
  }
  teardown();
}

pid_t ProcessGroup::worker_pid(std::size_t rank) const {
  ARBOR_CHECK(rank < pids_.size());
  return pids_[rank];
}

void ProcessGroup::spawn_loopback() {
  const std::size_t W = workers();
  hub_ = std::make_unique<FrameHub>(W);
  pids_.assign(W, 0);

  std::vector<WorkerWiring> wirings(W);
  for (std::size_t w = 0; w < W; ++w) {
    wirings[w].rank = w;
    wirings[w].workers = W;
    wirings[w].machines = options_.machines;
    wirings[w].capacity = options_.capacity;
    wirings[w].worker_threads = options_.transport.worker_threads;
    wirings[w].trace = options_.trace;
    wirings[w].checked = options_.checked;
    wirings[w].hub = std::make_unique<FrameHub>(W + 1);
  }
  for (std::size_t w = 0; w < W; ++w) {
    auto [driver_end, worker_end] = loopback_pair();
    hub_->attach(w, std::move(driver_end));
    wirings[w].hub->attach(driver_source(W), std::move(worker_end));
  }
  for (std::size_t a = 0; a < W; ++a) {
    for (std::size_t b = a + 1; b < W; ++b) {
      auto [end_a, end_b] = loopback_pair();
      wirings[a].hub->attach(b, std::move(end_a));
      wirings[b].hub->attach(a, std::move(end_b));
    }
  }
  for (std::size_t w = 0; w < W; ++w) {
    threads_.emplace_back(
        [wiring = std::move(wirings[w])]() mutable {
          run_worker(std::move(wiring));
        });
  }
}

void ProcessGroup::spawn_tcp() {
  const std::size_t W = workers();
  const std::string binary = resolve_worker_binary(options_.worker_binary);
  TcpListener listener;
  const std::string port_arg = std::to_string(listener.port());

  pids_.assign(W, 0);
  for (std::size_t w = 0; w < W; ++w) {
    const std::string rank_arg = std::to_string(w);
    const pid_t pid = ::fork();
    ARBOR_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: nothing but exec (the parent may hold locks fork does not
      // replicate safely — exec resets the world).
      ::execl(binary.c_str(), binary.c_str(), "--connect", port_arg.c_str(),
              "--rank", rank_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    pids_[w] = pid;
  }

  std::vector<std::unique_ptr<Conn>> conns(W);
  std::vector<std::uint16_t> ports(W, 0);
  for (std::size_t n = 0; n < W; ++n) {
    std::unique_ptr<Conn> conn = listener.accept(kConnectTimeoutMs);
    if (!conn)
      throw TransportError("a worker did not dial in within " +
                           std::to_string(kConnectTimeoutMs / 1000) +
                           "s (" + std::to_string(n) + " of " +
                           std::to_string(W) + " connected)");
    Frame hello;
    if (!conn->recv(hello))
      throw TransportError("worker connection closed before its hello");
    ARBOR_CHECK_MSG(hello.type == FrameType::kHello,
                    std::string("expected hello frame, got ") +
                        frame_type_name(hello.type));
    WireReader reader(hello.payload, "hello");
    ARBOR_CHECK_MSG(reader.word() == kProtocolVersion,
                    "protocol version mismatch between driver and worker");
    const auto rank = static_cast<std::size_t>(reader.word());
    const auto port = static_cast<std::uint16_t>(reader.word());
    reader.expect_end();
    ARBOR_CHECK_MSG(rank < W && !conns[rank],
                    "worker hello from unexpected rank " +
                        std::to_string(rank));
    conns[rank] = std::move(conn);
    ports[rank] = port;
  }

  for (std::size_t w = 0; w < W; ++w) {
    std::vector<Word> config{kProtocolVersion,
                             static_cast<Word>(options_.machines),
                             static_cast<Word>(options_.capacity),
                             static_cast<Word>(W), static_cast<Word>(w),
                             static_cast<Word>(
                                 options_.transport.worker_threads),
                             static_cast<Word>(options_.trace),
                             static_cast<Word>(options_.checked ? 1 : 0)};
    for (std::uint16_t p : ports) config.push_back(p);
    conns[w]->send(FrameType::kConfig, config);
  }

  hub_ = std::make_unique<FrameHub>(W);
  for (std::size_t w = 0; w < W; ++w) hub_->attach(w, std::move(conns[w]));
  hub_->collect(worker_ids_, FrameType::kReady, [&](const Event& event) {
    teardown();
    throw TransportError(describe_worker(event.source, options_.machines, W) +
                         " failed during mesh setup: " +
                         (event.closed ? event.error : "unexpected frame"));
  });
}

void ProcessGroup::teardown() noexcept {
  if (down_) return;
  down_ = true;
  if (hub_) hub_->shutdown_all();
  for (std::thread& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
  for (pid_t pid : pids_) {
    if (pid <= 0) continue;
    int status = 0;
    bool reaped = false;
    // Grace period for an orderly exit, then SIGKILL — a test must never
    // leave zombies or stragglers behind.
    for (int spins = 0; spins < 400; ++spins) {
      const pid_t got = ::waitpid(pid, &status, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
    }
  }
  pids_.clear();
}

void ProcessGroup::handle_oob(const Event& event, std::size_t round) {
  if (event.source == kNoSource) {
    // A fabric-wide stall, attributable to no specific worker.
    teardown();
    throw TransportError("no worker produced a frame in round " +
                         std::to_string(round) + ": " + event.error);
  }
  const std::string who =
      describe_worker(event.source, options_.machines, workers());
  // Decode before teardown so the error text survives the hub.
  if (!event.closed && event.frame.type == FrameType::kError) {
    WireReader reader(event.frame.payload, "error");
    const Word kind = reader.word();
    if (kind == 2) {
      // A surviving worker relayed a peer's death. The lost worker's OWN
      // last words may still be in flight on its socket (a cap violation
      // sends kError before the connection closes, but cross-socket
      // arrival order is a race) — give them a grace window, because
      // "machine 2 exceeded send capacity" beats "peer hung up" as a
      // diagnosis. Then blame the worker that actually died, naming its
      // machine block and the round.
      const auto lost = static_cast<std::size_t>(reader.word());
      const std::string detail = reader.str();
      if (lost < workers()) {
        std::optional<Event> own =
            hub_->next_event_from(lost, kLastWordsGrace);
        if (own && !own->closed && own->frame.type == FrameType::kError)
          handle_oob(*own, round);
      }
      teardown();
      throw TransportError(
          "lost " + describe_worker(lost, options_.machines, workers()) +
          " in round " + std::to_string(round) + ": " + detail +
          " (reported by " + who + ")");
    }
    const std::string text = reader.str();
    teardown();
    if (kind == 0) throw InvariantError(who + ": " + text);
    throw TransportError(who + ": " + text);
  }
  if (event.closed) {
    // The closure (or a failed send to the worker) may have raced ahead
    // of the worker's own final kError frame still queued in the hub — a
    // worker that hits a cap violation reports it and THEN closes, and a
    // driver-side send can trip on the closed channel before the report
    // is read. Give the worker's queued last words the same grace window
    // the peer-relay path grants, because "machine X exceeded send
    // capacity" beats "hung up" as a diagnosis; recurse only on an
    // actual kError frame so a bare closure cannot loop.
    const std::optional<Event> last = hub_->next_event_from(
        event.source, kLastWordsGrace);
    if (last && !last->closed && last->frame.type == FrameType::kError)
      handle_oob(*last, round);
    teardown();
    throw TransportError("lost " + who + " in round " + std::to_string(round) +
                         ": " + event.error);
  }
  teardown();
  throw TransportError(std::string("unexpected ") +
                       frame_type_name(event.frame.type) + " frame from " +
                       who + " in round " + std::to_string(round));
}

void ProcessGroup::send_or_fail(std::size_t w, FrameType type,
                                std::span<const Word> payload,
                                std::size_t round) {
  try {
    hub_->send(w, type, payload);
  } catch (const TransportError& e) {
    Event event;
    event.source = w;
    event.closed = true;
    event.error = e.what();
    handle_oob(event, round);
  }
}

engine::ProgramStats ProcessGroup::run(engine::RoundState& state,
                                       std::size_t capacity,
                                       std::size_t first_round_index,
                                       const engine::RoundProgram& program,
                                       const engine::RoundHook& on_round) {
  ARBOR_CHECK_MSG(!down_, "process group is down");
  ARBOR_CHECK_MSG(program.remote, "program has no RemoteSpec");
  ARBOR_CHECK_MSG(!program.steps.empty(), "RoundProgram has no steps");
  const engine::RemoteSpec& spec = *program.remote;
  const std::size_t machines = options_.machines;
  ARBOR_CHECK_MSG(state.num_machines() == machines,
                  "state machine count does not match the process group");
  ARBOR_CHECK_MSG(capacity == options_.capacity,
                  "capacity does not match the process group");
  ARBOR_CHECK_MSG(spec.inputs.empty() || spec.inputs.size() == machines,
                  "RemoteSpec inputs must cover every machine (or none)");
  ARBOR_CHECK_MSG(!program.continue_fn || spec.has_vote,
                  "program \"" + spec.name +
                      "\" declares repeat_while but its RemoteSpec has no "
                      "vote protocol");
  ARBOR_CHECK_MSG(!spec.has_output || spec.output_sink,
                  "RemoteSpec has_output without an output_sink");
  ARBOR_CHECK_MSG(!spec.has_vote || spec.continue_with_votes,
                  "RemoteSpec has_vote without continue_with_votes");

  const std::size_t W = workers();
  std::size_t executed = 0;  // rounds committed, this program
  const auto oob = [&](const Event& event) {
    handle_oob(event, first_round_index + executed);
  };

  trace::Tracer& tracer = trace::Tracer::global();
  trace::Span program_span = tracer.span("driver", "program " + spec.name);

  // Scatter the spec with each block's inputs and current inbox contents.
  trace::Span scatter_span = tracer.span("driver", "scatter " + spec.name);
  for (std::size_t w = 0; w < W; ++w) {
    const auto [begin, end] = machine_block(machines, W, w);
    ProgramFrame frame;
    frame.first_round = first_round_index;
    frame.steps = program.steps.size();
    frame.max_passes = program.max_passes;
    frame.has_output = spec.has_output;
    frame.has_vote = spec.has_vote;
    frame.name = spec.name;
    frame.scalars = spec.scalars;
    frame.inputs.resize(end - begin);
    frame.preinbox.resize(end - begin);
    for (std::size_t m = begin; m < end; ++m) {
      if (!spec.inputs.empty()) frame.inputs[m - begin] = spec.inputs[m];
      const engine::InboxView inbox = state.inbox(m);
      frame.preinbox[m - begin].reserve(inbox.size());
      for (const engine::MessageView& msg : inbox)
        frame.preinbox[m - begin].emplace_back(msg.begin(), msg.end());
    }
    send_or_fail(w, FrameType::kProgram, encode_program_frame(frame),
                 first_round_index);
  }
  scatter_span.end();

  round_fingerprints_.clear();
  std::size_t passes = 0;
  for (bool more = true; more;) {
    for (std::size_t step = 0; step < program.steps.size(); ++step) {
      const std::string& label = program.steps[step].name;
      const std::int64_t round_t0 = tracer.metrics_on() ? trace::now_ns() : 0;
      trace::Span round_span = tracer.span("driver", "round " + label);
      const std::vector<Frame> stats_frames =
          hub_->collect(worker_ids_, FrameType::kRoundStats, oob);
      engine::RoundStats stats;
      std::uint64_t fp = util::mix64(0x726e6470);  // "rndp"
      std::size_t machine = 0;
      for (std::size_t w = 0; w < W; ++w) {
        WireReader reader(stats_frames[w].payload, "round-stats");
        ARBOR_CHECK_MSG(reader.word() == executed,
                        "round stats out of order from worker " +
                            std::to_string(w));
        stats.max_sent = std::max(
            stats.max_sent, static_cast<std::size_t>(reader.word()));
        stats.max_received = std::max(
            stats.max_received, static_cast<std::size_t>(reader.word()));
        const auto [begin, end] = machine_block(machines, W, w);
        ARBOR_CHECK_MSG(reader.word() == end - begin,
                        "round stats block size mismatch from worker " +
                            std::to_string(w));
        for (std::size_t m = begin; m < end; ++m, ++machine) {
          fp = util::hash_combine(fp, m);
          fp = util::hash_combine(fp, reader.word());
        }
        reader.expect_end();
      }
      ARBOR_CHECK(machine == machines);
      round_fingerprints_.push_back(fp);

      // Commit: the round's caps are validated on the workers and its
      // stats reduced exactly; charge the ledger before anything later
      // can fail, like the in-process scheduler does.
      ++executed;
      if (on_round) on_round(stats);
      const std::vector<Word> ack{static_cast<Word>(executed - 1)};
      for (std::size_t w = 0; w < W; ++w)
        send_or_fail(w, FrameType::kRoundAck, ack,
                     first_round_index + executed);
      round_span.end();
      if (tracer.metrics_on()) {
        const double us =
            static_cast<double>(trace::now_ns() - round_t0) / 1000.0;
        tracer.metrics().observe("round_us", us);
        tracer.metrics().observe("round_us." + label, us);
      }
    }
    ++passes;
    if (!spec.has_vote) break;

    const std::vector<Frame> ballots =
        hub_->collect(worker_ids_, FrameType::kVote, oob);
    Word total = 0;
    for (std::size_t w = 0; w < W; ++w) {
      WireReader reader(ballots[w].payload, "vote");
      ARBOR_CHECK_MSG(reader.word() == passes,
                      "vote out of order from worker " + std::to_string(w));
      total += reader.word();
      reader.expect_end();
    }
    more = spec.continue_with_votes(passes, total) &&
           passes < program.max_passes;
    const std::vector<Word> decision{static_cast<Word>(passes),
                                     more ? Word{1} : Word{0}};
    for (std::size_t w = 0; w < W; ++w)
      send_or_fail(w, FrameType::kPassDecision, decision,
                   first_round_index + executed);
  }

  if (spec.has_output) {
    const std::vector<Frame> outputs =
        hub_->collect(worker_ids_, FrameType::kOutputs, oob);
    for (std::size_t w = 0; w < W; ++w) {
      WireReader reader(outputs[w].payload, "outputs");
      const auto [begin, end] = machine_block(machines, W, w);
      for (std::size_t m = begin; m < end; ++m)
        spec.output_sink(m, reader.words(reader.count()));
      reader.expect_end();
    }
  }

  // Write the workers' final inboxes back so post-program reads (and the
  // next program's preinbox scatter) see exactly what in-process
  // execution would have left behind.
  const std::vector<Frame> dumps =
      hub_->collect(worker_ids_, FrameType::kInboxDump, oob);
  for (std::size_t w = 0; w < W; ++w) {
    WireReader reader(dumps[w].payload, "inbox-dump");
    const auto [begin, end] = machine_block(machines, W, w);
    for (std::size_t m = begin; m < end; ++m) {
      const std::size_t num_msgs = reader.count();
      if (state.is_flat) {
        state.scatter_active = false;  // write-back restores the flat form
        engine::Inbox& inbox = state.flat_inboxes[m];
        inbox.clear();
        for (std::size_t i = 0; i < num_msgs; ++i)
          inbox.append(reader.words(reader.count()));
      } else {
        auto& inbox = state.nested_inboxes[m];
        inbox.clear();
        inbox.reserve(num_msgs);
        for (std::size_t i = 0; i < num_msgs; ++i) {
          const std::span<const Word> msg = reader.words(reader.count());
          inbox.emplace_back(msg.begin(), msg.end());
        }
      }
    }
    reader.expect_end();
  }

  // Telemetry last, absorbed in rank order (collect() indexes by source),
  // so the merged metrics report is deterministic. Worker rank r gets
  // process lane r+1 in the trace; the driver is lane 0.
  if (options_.trace != trace::Mode::kOff) {
    trace::Span span = tracer.span("driver", "collect telemetry");
    const std::vector<Frame> blobs =
        hub_->collect(worker_ids_, FrameType::kTelemetry, oob);
    for (std::size_t w = 0; w < W; ++w) {
      const TelemetryFrame telemetry = decode_telemetry_frame(blobs[w].payload);
      ARBOR_CHECK_MSG(telemetry.rank == w,
                      "telemetry frame claims rank " +
                          std::to_string(telemetry.rank) + ", expected " +
                          std::to_string(w));
      tracer.absorb(telemetry.blob, w + 1);
    }
  }

  ++programs_run_;
  engine::ProgramStats out;
  out.rounds = executed;
  out.passes = passes;
  out.overlapped = 0;  // lockstep rounds; overlap is an in-process detail
  return out;
}

engine::ProgramStats MultiProcessBackend::run_program(
    engine::RoundState& state, std::size_t capacity,
    std::size_t first_round_index, const engine::RoundProgram& program,
    const engine::RoundHook& on_round) {
  return group_.run(state, capacity, first_round_index, program, on_round);
}

std::unique_ptr<MultiProcessBackend> make_multiprocess_backend(
    const mpc::ClusterConfig& config) {
  ARBOR_CHECK_MSG(!config.transport.in_process(),
                  "in-process transport needs no backend");
  GroupOptions options;
  options.transport = config.transport;
  options.machines = config.num_machines;
  options.capacity = config.words_per_machine;
  options.trace = config.trace.mode;
  options.checked = config.execution.check;
  return std::make_unique<MultiProcessBackend>(options);
}

}  // namespace arbor::net
