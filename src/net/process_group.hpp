// Driver runtime of the multi-process backend.
//
// A ProcessGroup owns a fleet of worker runtimes — in-process threads
// (loopback transport) or arbor-worker OS processes dialed in over
// 127.0.0.1 TCP — each serving a contiguous block of the cluster's
// machines. run() executes one distributable RoundProgram across them in
// lockstep: the spec and each block's inputs (plus current inbox
// contents) are scattered, every round the workers' traffic stats and
// per-machine inbox fingerprints are reduced here (the ledger hook fires
// with exactly the totals the in-process scheduler would charge), pass
// barriers reduce worker votes through RemoteSpec::continue_with_votes,
// and after the final round output slabs flow into the spec's sink and
// the workers' final inboxes are written back into the driver's
// RoundState — so post-program inbox reads, fingerprints, and ledger
// totals are bit-identical to in-process execution.
//
// Failure is a first-class outcome: a relayed InvariantError (cap
// violation, bad frame) rethrows with its original type naming the
// machine; a dead connection raises a TransportError naming the lost
// worker, its machine block, and the round; either way the whole group is
// torn down — connections closed, processes reaped (SIGKILL after a grace
// period), threads joined — before the exception leaves run().
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "mpc/config.hpp"
#include "net/transport.hpp"

namespace arbor::net {

struct GroupOptions {
  mpc::TransportConfig transport;  ///< kind + workers + worker threads
  std::size_t machines = 0;
  std::size_t capacity = 0;
  /// arbor-worker binary for the tcp transport. Empty: $ARBOR_WORKER_BIN,
  /// then "arbor-worker" next to the running executable.
  std::string worker_binary;
  /// Group trace mode: carried to every worker (config frame / loopback
  /// wiring) so workers record and ship telemetry, and gates the driver's
  /// own spans and its rank-ordered telemetry collection.
  trace::Mode trace = trace::Mode::kOff;
  /// Checked execution (ExecutionPolicy::check): carried to every worker
  /// so each block's compute runs under a check::Monitor; violations come
  /// back as relayed InvariantErrors naming the step and machines.
  bool checked = false;
};

class ProcessGroup {
 public:
  explicit ProcessGroup(GroupOptions options);
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  std::size_t workers() const noexcept { return options_.transport.workers; }
  /// OS pid of a tcp worker (0 for loopback threads) — test seam for
  /// killing a worker mid-program.
  pid_t worker_pid(std::size_t rank) const;

  /// Execute one program carrying a RemoteSpec (engine/program.hpp).
  engine::ProgramStats run(engine::RoundState& state, std::size_t capacity,
                           std::size_t first_round_index,
                           const engine::RoundProgram& program,
                           const engine::RoundHook& on_round);

  /// Reduced per-round cluster fingerprints of the last run() — one word
  /// per executed round, identical across loopback and any tcp width.
  const std::vector<std::uint64_t>& round_fingerprints() const noexcept {
    return round_fingerprints_;
  }
  std::size_t programs_run() const noexcept { return programs_run_; }

 private:
  void spawn_loopback();
  void spawn_tcp();
  void teardown() noexcept;
  [[noreturn]] void handle_oob(const Event& event, std::size_t round);
  /// send() that maps a transport failure to "lost worker w" through
  /// handle_oob (teardown + named error) instead of letting a raw
  /// "socket send failed" escape run() with the group still up.
  void send_or_fail(std::size_t w, FrameType type,
                    std::span<const Word> payload, std::size_t round);

  GroupOptions options_;
  std::unique_ptr<FrameHub> hub_;
  std::vector<std::size_t> worker_ids_;  ///< 0..W-1, for collect()
  std::vector<pid_t> pids_;              ///< tcp children (0 = loopback)
  std::vector<std::thread> threads_;     ///< loopback workers
  std::vector<std::uint64_t> round_fingerprints_;
  std::size_t programs_run_ = 0;
  bool down_ = false;
};

/// engine::ProgramBackend adapter: installed on a Cluster's engine so
/// Engine::run_program routes distributable programs through the group.
class MultiProcessBackend final : public engine::ProgramBackend {
 public:
  explicit MultiProcessBackend(GroupOptions options) : group_(options) {}

  engine::ProgramStats run_program(engine::RoundState& state,
                                   std::size_t capacity,
                                   std::size_t first_round_index,
                                   const engine::RoundProgram& program,
                                   const engine::RoundHook& on_round) override;

  ProcessGroup& group() noexcept { return group_; }

 private:
  ProcessGroup group_;
};

/// Backend for a cluster config whose transport is loopback or tcp.
std::unique_ptr<MultiProcessBackend> make_multiprocess_backend(
    const mpc::ClusterConfig& config);

}  // namespace arbor::net
