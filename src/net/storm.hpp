// The routing storm as a distributable RoundProgram.
//
// Every machine scatters `batch` one-word messages from its slab to
// hashed destinations each round — the send/route/deliver soak the engine
// benches measure (bench/engine_storm.hpp) and the natural smoke workload
// for the multi-process backend: deterministic for a given (slabs,
// rounds) under EVERY executor and transport, arbitrarily long (the
// worker-failure tests need a program that outlives a kill), and dense
// enough that every worker talks to every other worker every round.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/program.hpp"
#include "engine/types.hpp"

namespace arbor::net {

class Registry;

/// Machine-owned state of a storm; the program's steps only read it.
struct StormState {
  std::vector<std::vector<engine::Word>> slabs;  ///< per machine
  std::size_t machines = 0;
  std::size_t batch = 0;   ///< messages per machine per round
  std::size_t rounds = 0;  ///< steps in the program
};

/// `rounds` machine-independent scatter steps over `state` (shared so the
/// driver- and worker-side builds are the same code path). Message
/// content and destinations are bit-compatible with
/// bench::run_storm_program.
engine::RoundProgram make_storm_program(std::shared_ptr<StormState> state);

/// The same program with its RemoteSpec attached, ready for any backend:
/// scalars = {batch, rounds}, inputs = the slabs.
engine::RoundProgram make_distributable_storm_program(
    std::shared_ptr<StormState> state);

void register_storm_program(Registry& registry);

}  // namespace arbor::net
