// Named worker-side program factories.
//
// A RoundProgram's step functions are closures over driver state; they
// cannot cross a process boundary. What crosses instead is the program's
// RemoteSpec (engine/program.hpp): a registry NAME plus the serializable
// inputs. On the worker side, this registry maps the name to a factory
// that rebuilds the exact same program — same step count, same step
// bodies — over worker-local state initialized from the decoded inputs.
// Driver and worker therefore run one protocol implementation compiled
// into both binaries, parameterized by where its state lives; the
// protocol files (mpc/sample_sort.cpp, mpc/broadcast.cpp, ...) define
// both sides next to each other and register here.
//
// A factory receives only its worker's machine block share of the inputs
// but builds a program whose step functions are indexed by GLOBAL machine
// id — the worker runtime only ever invokes them for machines of its
// block, so factories typically allocate machine-indexed arrays full-size
// and fill the block entries.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/program.hpp"
#include "engine/types.hpp"

namespace arbor::net {

/// What a factory gets to rebuild its block's share of a program.
struct ProgramInputs {
  std::size_t machines = 0;     ///< global machine count
  std::size_t capacity = 0;     ///< per-machine word budget (S)
  std::size_t block_begin = 0;  ///< this worker's machines: [begin, end)
  std::size_t block_end = 0;
  std::vector<engine::Word> scalars;  ///< RemoteSpec::scalars, verbatim
  /// RemoteSpec::inputs for the block, indexed (machine - block_begin).
  std::vector<std::vector<engine::Word>> inputs;
};

/// A rebuilt program plus the worker-side halves of the spec's optional
/// contracts. `state` keeps whatever the closures capture alive.
struct WorkerProgram {
  engine::RoundProgram program;
  std::shared_ptr<void> state;
  /// Per-machine output slab extracted after the final round, shipped to
  /// the driver's RemoteSpec::output_sink. Null when has_output is false.
  std::function<std::vector<engine::Word>(std::size_t machine)> output;
  /// Per-machine pass-barrier vote, summed over the block and reduced at
  /// the driver (RemoteSpec::continue_with_votes). Null without votes.
  std::function<engine::Word(std::size_t machine)> vote;
  /// Pass-boundary state update, applied when the driver decides another
  /// pass runs (the worker-side half of a repeat_while counter).
  std::function<void()> on_continue;
};

using ProgramFactory = std::function<WorkerProgram(const ProgramInputs&)>;

class Registry {
 public:
  void add(std::string name, ProgramFactory factory);
  /// Throws InvariantError naming the program when it is not registered.
  const ProgramFactory& find(const std::string& name) const;
  std::vector<std::string> names() const;

  /// The process-wide registry with every built-in protocol registered
  /// (sample sorts, broadcast trees, bundle fetch, embedded peeling, the
  /// routing storm).
  static Registry& builtin();

 private:
  std::map<std::string, ProgramFactory> factories_;
};

}  // namespace arbor::net
