#include "net/storm.hpp"

#include <memory>
#include <span>
#include <utility>

#include "check/ownership.hpp"
#include "net/registry.hpp"
#include "obs/cost_model.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::net {

using engine::Word;

engine::RoundProgram make_storm_program(std::shared_ptr<StormState> state) {
  ARBOR_CHECK(state && state->machines > 0);
  ARBOR_CHECK(state->slabs.size() == state->machines);
  engine::RoundProgram program;
  for (std::size_t round = 0; round < state->rounds; ++round) {
    program.independent("net.storm.scatter", [state, round](
                                                 std::size_t m, const auto&,
                                                 engine::Sender& send) {
      const std::vector<Word>& slab = state->slabs[m];
      if (slab.empty()) return;
      for (std::size_t i = 0; i < state->batch; ++i) {
        const Word w = slab[(round * state->batch + i) % slab.size()];
        const std::size_t dst =
            util::hash_words(13, w, round) % state->machines;
        send.send(dst, std::span<const Word>(&w, 1));
      }
    });
  }
  // The steps only read the slabs, but declaring them lets checked runs
  // prove exactly that — any write would be a named violation.
  auto own = std::make_shared<check::Ownership>();
  own->slabs("slabs", &state->slabs).keep_alive(state);
  program.owned(std::move(own));

  // Each machine scatters `batch` one-word messages; destinations are
  // hashed, so the worst-case concentration is every machine's batch
  // landing on one receiver — p*batch words, the exact adversarial bound.
  auto cost = std::make_shared<obs::CostModel>("net.storm");
  cost->bound("net.storm.scatter", state->machines * state->batch,
              state->rounds,
              "p*batch (hashed destinations; worst-case all batches "
              "concentrate on one machine)");
  program.costed(std::move(cost));
  return program;
}

engine::RoundProgram make_distributable_storm_program(
    std::shared_ptr<StormState> state) {
  engine::RoundProgram program = make_storm_program(state);
  engine::RemoteSpec spec;
  spec.name = "net.storm";
  spec.scalars = {static_cast<Word>(state->batch),
                  static_cast<Word>(state->rounds)};
  spec.inputs = state->slabs;
  program.distributable(std::move(spec));
  return program;
}

void register_storm_program(Registry& registry) {
  registry.add("net.storm", [](const ProgramInputs& in) {
    ARBOR_CHECK_MSG(in.scalars.size() == 2, "net.storm expects 2 scalars");
    auto state = std::make_shared<StormState>();
    state->machines = in.machines;
    state->batch = static_cast<std::size_t>(in.scalars[0]);
    state->rounds = static_cast<std::size_t>(in.scalars[1]);
    state->slabs.resize(in.machines);
    for (std::size_t m = in.block_begin; m < in.block_end; ++m)
      state->slabs[m] = in.inputs[m - in.block_begin];
    WorkerProgram out;
    out.program = make_storm_program(state);
    out.state = state;
    return out;
  });
}

}  // namespace arbor::net
