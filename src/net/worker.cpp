#include "net/worker.hpp"

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "check/monitor.hpp"
#include "engine/outbox.hpp"
#include "engine/thread_pool.hpp"
#include "net/registry.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace arbor::net {

namespace {

/// Driver asked the group to wind down (or its connection ended).
struct ShutdownSignal {};

/// A peer worker's connection ended mid-protocol.
struct PeerLost {
  std::size_t rank;
  std::string detail;
};

/// kError payload: [kind, ...]. Kind selects the exception type the
/// driver rethrows, so a simulated machine's InvariantError keeps its
/// type across the wire while fabric failures surface as TransportError.
/// Peer loss is structured ([kind, lost_rank, text]) instead of prose:
/// whichever of "a surviving worker relayed the loss" and "the driver saw
/// the closure itself" wins the race, the driver can blame the worker
/// that actually died.
constexpr Word kErrorKindInvariant = 0;
constexpr Word kErrorKindTransport = 1;
constexpr Word kErrorKindPeerLost = 2;

void send_error(FrameHub& hub, std::size_t driver, Word kind,
                const std::string& text) {
  std::vector<Word> payload{kind};
  put_str(payload, text);
  try {
    hub.send(driver, FrameType::kError, payload);
  } catch (...) {
    // The driver is gone too; nothing left to report to.
  }
}

void send_peer_lost(FrameHub& hub, std::size_t driver, std::size_t lost,
                    const std::string& detail) {
  std::vector<Word> payload{kErrorKindPeerLost, static_cast<Word>(lost)};
  put_str(payload, detail);
  try {
    hub.send(driver, FrameType::kError, payload);
  } catch (...) {
  }
}

}  // namespace

void worker_log(std::size_t rank, std::string_view text) {
  std::string line =
      "[worker:" + std::to_string(rank) + "] " + std::string(text) + "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

std::uint64_t fingerprint_inbox(const engine::Inbox& inbox) {
  std::uint64_t h = util::mix64(0x6e6574);  // "net"
  for (std::size_t i = 0; i < inbox.message_count(); ++i) {
    const std::span<const Word> msg = inbox.message(i);
    h = util::hash_combine(h, msg.size());
    for (Word w : msg) h = util::hash_combine(h, w);
  }
  return h;
}

namespace {

class WorkerRuntime {
 public:
  explicit WorkerRuntime(WorkerWiring& wiring)
      : w_(wiring),
        driver_(driver_source(w_.workers)),
        block_(machine_block(w_.machines, w_.workers, w_.rank)),
        inboxes_(w_.machines),
        outboxes_(w_.machines) {
    for (std::size_t q = 0; q < w_.workers; ++q)
      if (q != w_.rank) peers_.push_back(q);
    if (w_.worker_threads > 1) pool_.emplace(w_.worker_threads);
    tracer_.set_mode(w_.trace);
  }

  void serve() {
    for (;;) {
      const Frame frame =
          w_.hub->expect(driver_, FrameType::kProgram, oob());
      run_program(decode_program_frame(frame.payload, block_size()));
    }
  }

 private:
  std::size_t block_size() const { return block_.second - block_.first; }

  FrameHub::OobHandler oob() {
    return [this](const Event& event) {
      if (event.source == kNoSource)
        throw TransportError(event.error.empty() ? "wait interrupted"
                                                 : event.error);
      if (event.source == driver_) {
        if (event.closed || event.frame.type == FrameType::kShutdown)
          throw ShutdownSignal{};
        throw TransportError(
            std::string("unexpected ") + frame_type_name(event.frame.type) +
            " frame from the driver");
      }
      if (event.closed) throw PeerLost{event.source, event.error};
      throw TransportError(std::string("unexpected ") +
                           frame_type_name(event.frame.type) +
                           " frame from worker " +
                           std::to_string(event.source));
    };
  }

  void compute_block(const engine::ProgramStep& step, check::Monitor* monitor,
                     engine::FetchCache* fetch_cache) {
    const engine::FetchContext fetch{fetch_cache,
                                     engine::fetch_step_salt(step.name),
                                     &step.name, w_.checked};
    if (monitor) {
      // Checked compute is single-threaded by design: the Monitor's
      // probe/replay machinery IS the schedule, so the pool stays idle.
      monitor->run_step(
          step, block_.first, block_.second,
          [this](std::size_t m) { return engine::InboxView(inboxes_[m]); },
          outboxes_, fetch);
      return;
    }
    const auto body = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t m = block_.first + i;
        outboxes_[m].clear();
        engine::Sender sender(m, w_.capacity, w_.machines, outboxes_[m],
                              fetch);
        step.fn(m, engine::InboxView(inboxes_[m]), sender);
      }
    };
    if (pool_)
      pool_->run_blocks(block_size(), body);
    else
      body(0, block_size());
  }

  /// One round's exchange + cap check + delivery; returns (max_sent,
  /// max_received) over the block. `step_name` feeds the receive-cap error
  /// so it reads identically to the in-process scheduler's.
  std::pair<std::size_t, std::size_t> exchange(std::size_t local_round,
                                               std::size_t global_round,
                                               const std::string& step_name) {
    const bool metrics = tracer_.metrics_on();
    const std::int64_t serialize_t0 = metrics ? trace::now_ns() : 0;
    std::vector<std::vector<Word>> peer_payloads;
    std::vector<Word> self_frame;
    std::size_t sent_words = 0;
    {
      trace::Span span = tracer_.span("net", "serialize " + step_name);
      peer_payloads.reserve(peers_.size());
      for (std::size_t q : peers_) {
        const auto [qb, qe] = machine_block(w_.machines, w_.workers, q);
        peer_payloads.push_back(encode_outbox_frame(local_round, w_.rank,
                                                    outboxes_, block_.first,
                                                    block_.second, qb, qe));
        sent_words += peer_payloads.back().size();
      }
      self_frame =
          encode_outbox_frame(local_round, w_.rank, outboxes_, block_.first,
                              block_.second, block_.first, block_.second);
    }
    const std::int64_t send_t0 = metrics ? trace::now_ns() : 0;
    {
      trace::Span span = tracer_.span("net", "send " + step_name);
      for (std::size_t i = 0; i < peers_.size(); ++i) {
        const std::size_t q = peers_[i];
        try {
          w_.hub->send(q, FrameType::kOutbox, peer_payloads[i]);
        } catch (const TransportError& e) {
          // A failed send means the PEER is gone (EPIPE races ahead of the
          // reader thread's closure event) — blame q, not ourselves, so the
          // driver reports the worker that actually died.
          throw PeerLost{q, e.what()};
        }
      }
    }
    peer_payloads.clear();
    const std::int64_t wait_t0 = metrics ? trace::now_ns() : 0;
    trace::Span wait_span = tracer_.span("net", "wait " + step_name);
    const std::vector<Frame> peer_frames =
        w_.hub->collect(peers_, FrameType::kOutbox, oob());
    wait_span.end();
    const std::int64_t deliver_t0 = metrics ? trace::now_ns() : 0;
    trace::Span deliver_span = tracer_.span("net", "deliver " + step_name);

    // Count tables first (source rank ascending), so every receive cap is
    // checked before any message payload is deserialized.
    std::vector<OutboxFrameView> views;
    views.reserve(w_.workers);
    std::size_t peer_index = 0;
    for (std::size_t q = 0; q < w_.workers; ++q) {
      const std::span<const Word> payload =
          q == w_.rank ? std::span<const Word>(self_frame)
                       : std::span<const Word>(peer_frames[peer_index].payload);
      if (q != w_.rank) ++peer_index;
      views.push_back(decode_outbox_counts(payload, block_size()));
      ARBOR_CHECK_MSG(views.back().src_rank == q,
                      "outbox frame claims source rank " +
                          std::to_string(views.back().src_rank) +
                          ", expected " + std::to_string(q));
      ARBOR_CHECK_MSG(views.back().round == local_round,
                      "outbox frame for round " +
                          std::to_string(views.back().round) +
                          " arrived in round " + std::to_string(local_round));
    }

    std::size_t max_received = 0;
    for (std::size_t i = 0; i < block_size(); ++i) {
      std::size_t total = 0;
      for (const OutboxFrameView& view : views) total += view.dst_words[i];
      ARBOR_CHECK_MSG(total <= w_.capacity,
                      "machine " + std::to_string(block_.first + i) +
                          " exceeded receive capacity: " +
                          std::to_string(total) + " > " +
                          std::to_string(w_.capacity) + " words in round " +
                          std::to_string(global_round) +
                          engine::step_name_suffix(step_name));
      max_received = std::max(max_received, total);
    }

    for (std::size_t m = block_.first; m < block_.second; ++m)
      inboxes_[m].clear();
    for (OutboxFrameView& view : views)
      deliver_outbox_msgs(view, inboxes_, block_.first, block_.second);

    // Sent volume is the sum of message lengths, not the arena size — the
    // same accounting the in-process scheduler's route phase uses, so
    // ledger totals agree even for senders that alias arena payloads.
    std::size_t max_sent = 0;
    for (std::size_t m = block_.first; m < block_.second; ++m) {
      std::size_t sent = 0;
      for (const engine::Outbox::Msg& msg : outboxes_[m].msgs)
        sent += msg.length;
      max_sent = std::max(max_sent, sent);
    }
    deliver_span.end();
    if (metrics) {
      const std::int64_t done = trace::now_ns();
      trace::MetricsRegistry& reg = tracer_.metrics();
      reg.add("net.sent_words." + step_name, sent_words);
      reg.add("net.sent_frames." + step_name, peers_.size());
      reg.observe("net.serialize_us." + step_name,
                  static_cast<double>(send_t0 - serialize_t0) / 1000.0);
      reg.observe("net.send_us." + step_name,
                  static_cast<double>(wait_t0 - send_t0) / 1000.0);
      reg.observe("net.wait_us." + step_name,
                  static_cast<double>(deliver_t0 - wait_t0) / 1000.0);
      reg.observe("net.deliver_us." + step_name,
                  static_cast<double>(done - deliver_t0) / 1000.0);
    }
    return {max_sent, max_received};
  }

  void run_program(ProgramFrame frame) {
    const ProgramFactory& factory = Registry::builtin().find(frame.name);
    ProgramInputs inputs;
    inputs.machines = w_.machines;
    inputs.capacity = w_.capacity;
    inputs.block_begin = block_.first;
    inputs.block_end = block_.second;
    inputs.scalars = frame.scalars;
    inputs.inputs = std::move(frame.inputs);
    WorkerProgram wp = factory(inputs);
    ARBOR_CHECK_MSG(
        wp.program.steps.size() == frame.steps,
        "registry program \"" + frame.name + "\" rebuilt with " +
            std::to_string(wp.program.steps.size()) +
            " steps, the driver's program has " + std::to_string(frame.steps));
    ARBOR_CHECK_MSG(!frame.has_output || wp.output,
                    "registry program \"" + frame.name +
                        "\" has no output extractor but the driver expects "
                        "output slabs");
    ARBOR_CHECK_MSG(!frame.has_vote || wp.vote,
                    "registry program \"" + frame.name +
                        "\" has no vote function but the driver expects "
                        "pass votes");

    for (std::size_t m = block_.first; m < block_.second; ++m) {
      inboxes_[m].clear();
      for (const std::vector<Word>& msg : frame.preinbox[m - block_.first])
        inboxes_[m].append(msg);
    }

    // Checked execution: one Monitor per program, built from the rebuilt
    // program's Ownership declaration. RaceErrors it throws are
    // InvariantErrors, so run_worker's relay ships them to the driver
    // with the step/machine naming intact.
    std::unique_ptr<check::Monitor> monitor;
    if (w_.checked)
      monitor =
          std::make_unique<check::Monitor>(wp.program, w_.capacity,
                                           w_.machines);

    // Programs opt into the delegate-style read cache (the factory read the
    // flag from its scalars); reset per program so entries never outlive
    // the run that built them.
    engine::FetchCache* fetch_cache =
        wp.program.fetch_cache ? &fetch_cache_ : nullptr;
    if (fetch_cache) fetch_cache->reset(w_.machines);

    trace::Span program_span = tracer_.span("net", "program " + frame.name);
    std::size_t executed = 0;  // rounds completed in this program
    std::size_t passes = 0;
    for (bool more = true; more;) {
      for (const engine::ProgramStep& step : wp.program.steps) {
        const std::int64_t round_t0 =
            tracer_.metrics_on() ? trace::now_ns() : 0;
        {
          trace::Span span = tracer_.span("net", "compute " + step.name);
          compute_block(step, monitor.get(), fetch_cache);
        }
        const auto [max_sent, max_received] =
            exchange(executed, frame.first_round + executed, step.name);

        std::vector<Word> stats{static_cast<Word>(executed),
                                static_cast<Word>(max_sent),
                                static_cast<Word>(max_received),
                                static_cast<Word>(block_size())};
        for (std::size_t m = block_.first; m < block_.second; ++m)
          stats.push_back(fingerprint_inbox(inboxes_[m]));
        w_.hub->send(driver_, FrameType::kRoundStats, stats);

        const Frame ack =
            w_.hub->expect(driver_, FrameType::kRoundAck, oob());
        WireReader reader(ack.payload, "round-ack");
        ARBOR_CHECK_MSG(reader.word() == executed,
                        "round ack out of order");
        reader.expect_end();
        ++executed;
        if (tracer_.metrics_on()) {
          // "net." prefix: the driver's merged registry keeps the plain
          // "round_us" histogram for its own per-round latency, so worker
          // samples must not fold into it.
          const double us =
              static_cast<double>(trace::now_ns() - round_t0) / 1000.0;
          tracer_.metrics().observe("net.round_us", us);
          tracer_.metrics().observe("net.round_us." + step.name, us);
        }
      }
      ++passes;
      if (!frame.has_vote) break;

      Word vote = 0;
      for (std::size_t m = block_.first; m < block_.second; ++m)
        vote += wp.vote(m);
      const std::vector<Word> ballot{static_cast<Word>(passes), vote};
      w_.hub->send(driver_, FrameType::kVote, ballot);
      const Frame decision =
          w_.hub->expect(driver_, FrameType::kPassDecision, oob());
      WireReader reader(decision.payload, "pass-decision");
      ARBOR_CHECK_MSG(reader.word() == passes, "pass decision out of order");
      more = reader.word() != 0;
      reader.expect_end();
      if (more && wp.on_continue) {
        if (monitor) {
          const auto before = monitor->hashes();
          wp.on_continue();
          monitor->expect_continue_clean(before,
                                         "pass continuation (on_continue)");
        } else {
          wp.on_continue();
        }
      }
    }

    if (fetch_cache && tracer_.metrics_on()) {
      const std::size_t hits = fetch_cache->total_hits();
      if (hits > 0)
        tracer_.metrics().add("engine.fetch_cache_hits",
                              static_cast<std::uint64_t>(hits));
    }

    if (frame.has_output) {
      std::vector<Word> payload;
      for (std::size_t m = block_.first; m < block_.second; ++m) {
        const std::vector<Word> slab = wp.output(m);
        payload.push_back(static_cast<Word>(slab.size()));
        payload.insert(payload.end(), slab.begin(), slab.end());
      }
      w_.hub->send(driver_, FrameType::kOutputs, payload);
    }
    w_.hub->send(driver_, FrameType::kInboxDump,
                 encode_inbox_dump(inboxes_, block_.first, block_.second));

    if (w_.trace != trace::Mode::kOff) {
      // Close the program span before draining so it ships with THIS
      // program's blob; the driver collects telemetry right after the
      // inbox dumps, in rank order.
      program_span.end();
      w_.hub->send(driver_, FrameType::kTelemetry,
                   encode_telemetry_frame(w_.rank, tracer_.drain_telemetry()));
    }
  }

  WorkerWiring& w_;
  const std::size_t driver_;
  const std::pair<std::size_t, std::size_t> block_;
  std::vector<std::size_t> peers_;
  std::vector<engine::Inbox> inboxes_;
  std::vector<engine::Outbox> outboxes_;
  std::optional<engine::ThreadPool> pool_;
  /// Per-program delegate-style read cache (engine/fetch_cache.hpp),
  /// mirroring the in-process scheduler's.
  engine::FetchCache fetch_cache_;
  /// Runtime-local tracer (NOT the process-global one): loopback runtimes
  /// share the driver's address space, so a per-runtime instance keeps
  /// worker spans out of the driver's buffers until they arrive the same
  /// way tcp workers' do — as a kTelemetry frame.
  trace::Tracer tracer_;
};

}  // namespace

void run_worker(WorkerWiring wiring) {
  ARBOR_CHECK(wiring.hub && wiring.workers > 0 &&
              wiring.rank < wiring.workers);
  const std::size_t driver = driver_source(wiring.workers);
  try {
    WorkerRuntime runtime(wiring);
    runtime.serve();
  } catch (const ShutdownSignal&) {
    // Orderly teardown.
  } catch (const PeerLost& lost) {
    // Log before reporting: the driver tears the group down on receipt,
    // and the log line must already be on stderr when it does.
    worker_log(wiring.rank,
               "lost worker " + std::to_string(lost.rank) + ": " + lost.detail);
    send_peer_lost(*wiring.hub, driver, lost.rank, lost.detail);
  } catch (const InvariantError& e) {
    // Relayed to the driver with its type intact; no stderr echo — the
    // driver rethrows it with full context.
    send_error(*wiring.hub, driver, kErrorKindInvariant, e.what());
  } catch (const std::exception& e) {
    worker_log(wiring.rank, e.what());
    send_error(*wiring.hub, driver, kErrorKindTransport, e.what());
  }
  wiring.hub->shutdown_all();
}

int tcp_worker_main(std::uint16_t port, std::size_t rank) {
  try {
    std::unique_ptr<Conn> driver = tcp_connect(port);
    TcpListener listener;
    {
      std::vector<Word> hello{kProtocolVersion, static_cast<Word>(rank),
                              static_cast<Word>(listener.port())};
      driver->send(FrameType::kHello, hello);
    }

    Frame config;
    if (!driver->recv(config))
      throw TransportError("driver closed before sending the config");
    ARBOR_CHECK_MSG(config.type == FrameType::kConfig,
                    std::string("expected config frame, got ") +
                        frame_type_name(config.type));
    WireReader reader(config.payload, "config");
    ARBOR_CHECK_MSG(reader.word() == kProtocolVersion,
                    "protocol version mismatch between driver and worker");
    WorkerWiring wiring;
    wiring.rank = rank;
    wiring.machines = static_cast<std::size_t>(reader.word());
    wiring.capacity = static_cast<std::size_t>(reader.word());
    wiring.workers = static_cast<std::size_t>(reader.word());
    ARBOR_CHECK_MSG(reader.word() == rank, "config addressed to another rank");
    wiring.worker_threads = static_cast<std::size_t>(reader.word());
    const Word trace_word = reader.word();
    ARBOR_CHECK_MSG(trace_word <= static_cast<Word>(trace::Mode::kFull),
                    "config frame carries an unknown trace mode " +
                        std::to_string(trace_word));
    wiring.trace = static_cast<trace::Mode>(trace_word);
    wiring.checked = reader.word() != 0;
    std::vector<std::uint16_t> ports(wiring.workers);
    for (std::uint16_t& p : ports)
      p = static_cast<std::uint16_t>(reader.word());
    reader.expect_end();
    ARBOR_CHECK(rank < wiring.workers);

    // Mesh: dial every lower rank, accept every higher one (identified by
    // the hello each connection opens with).
    std::vector<std::unique_ptr<Conn>> peer_conns(wiring.workers);
    for (std::size_t q = 0; q < rank; ++q) {
      peer_conns[q] = tcp_connect(ports[q]);
      const std::vector<Word> hello{kProtocolVersion, static_cast<Word>(rank),
                                    0};
      peer_conns[q]->send(FrameType::kHello, hello);
    }
    for (std::size_t n = rank + 1; n < wiring.workers; ++n) {
      std::unique_ptr<Conn> conn = listener.accept();
      Frame hello;
      if (!conn->recv(hello))
        throw TransportError("peer closed before sending its hello");
      ARBOR_CHECK(hello.type == FrameType::kHello);
      WireReader hr(hello.payload, "hello");
      ARBOR_CHECK(hr.word() == kProtocolVersion);
      const auto q = static_cast<std::size_t>(hr.word());
      ARBOR_CHECK_MSG(q > rank && q < wiring.workers && !peer_conns[q],
                      "peer hello from unexpected rank " + std::to_string(q));
      peer_conns[q] = std::move(conn);
    }
    driver->send(FrameType::kReady, {});

    wiring.hub = std::make_unique<FrameHub>(wiring.workers + 1);
    for (std::size_t q = 0; q < wiring.workers; ++q)
      if (q != rank) wiring.hub->attach(q, std::move(peer_conns[q]));
    wiring.hub->attach(driver_source(wiring.workers), std::move(driver));
    run_worker(std::move(wiring));
    return 0;
  } catch (const std::exception& e) {
    worker_log(rank, e.what());
    return 1;
  }
}

}  // namespace arbor::net
