#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "util/assert.hpp"

namespace arbor::net {

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kConfig: return "config";
    case FrameType::kReady: return "ready";
    case FrameType::kProgram: return "program";
    case FrameType::kOutbox: return "outbox";
    case FrameType::kRoundStats: return "round-stats";
    case FrameType::kRoundAck: return "round-ack";
    case FrameType::kVote: return "vote";
    case FrameType::kPassDecision: return "pass-decision";
    case FrameType::kOutputs: return "outputs";
    case FrameType::kInboxDump: return "inbox-dump";
    case FrameType::kError: return "error";
    case FrameType::kShutdown: return "shutdown";
    case FrameType::kTelemetry: return "telemetry";
  }
  return "invalid";
}

namespace {

bool known_frame_type(Word type) {
  return type >= static_cast<Word>(FrameType::kHello) &&
         type <= static_cast<Word>(FrameType::kTelemetry);
}

}  // namespace

std::array<Word, 3> encode_frame_header(FrameType type,
                                        std::size_t payload_words) {
  ARBOR_CHECK_MSG(payload_words <= kMaxFramePayloadWords,
                  "oversized frame: " + std::to_string(payload_words) +
                      " payload words exceed the " +
                      std::to_string(kMaxFramePayloadWords) + "-word limit");
  return {kFrameMagic, static_cast<Word>(type),
          static_cast<Word>(payload_words)};
}

FrameHeader decode_frame_header(std::span<const Word, 3> header) {
  ARBOR_CHECK_MSG(header[0] == kFrameMagic,
                  "bad frame magic: got " + std::to_string(header[0]));
  ARBOR_CHECK_MSG(known_frame_type(header[1]),
                  "unknown frame type " + std::to_string(header[1]));
  ARBOR_CHECK_MSG(header[2] <= kMaxFramePayloadWords,
                  "oversized frame: " + std::to_string(header[2]) +
                      " payload words exceed the " +
                      std::to_string(kMaxFramePayloadWords) + "-word limit");
  return {static_cast<FrameType>(header[1]),
          static_cast<std::size_t>(header[2])};
}

// ---------------------------------------------------------------- reader

void WireReader::fail(const char* defect) const {
  throw InvariantError(std::string(defect) + " " + std::string(what_) +
                       " frame (offset " + std::to_string(pos_) + " of " +
                       std::to_string(data_.size()) + " words)");
}

Word WireReader::word() {
  if (pos_ >= data_.size()) fail("truncated");
  return data_[pos_++];
}

std::span<const Word> WireReader::words(std::size_t n) {
  if (n > data_.size() - pos_) fail("truncated");
  const std::span<const Word> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::size_t WireReader::count() {
  const Word v = word();
  if (v > data_.size() - pos_) fail("truncated");
  return static_cast<std::size_t>(v);
}

std::string WireReader::str() {
  const Word bytes = word();
  const std::size_t packed = (static_cast<std::size_t>(bytes) + 7) / 8;
  const std::span<const Word> raw = words(packed);
  std::string out(static_cast<std::size_t>(bytes), '\0');
  if (bytes > 0) std::memcpy(out.data(), raw.data(), out.size());
  return out;
}

void WireReader::expect_end() const {
  if (pos_ != data_.size()) fail("oversized");
}

void put_str(std::vector<Word>& out, std::string_view s) {
  out.push_back(static_cast<Word>(s.size()));
  const std::size_t packed = (s.size() + 7) / 8;
  const std::size_t base = out.size();
  out.resize(base + packed, 0);
  if (!s.empty()) std::memcpy(out.data() + base, s.data(), s.size());
}

// ------------------------------------------------------- outbox frames

std::vector<Word> encode_outbox_frame(std::size_t round, std::size_t src_rank,
                                      std::span<const engine::Outbox> outboxes,
                                      std::size_t src_begin,
                                      std::size_t src_end,
                                      std::size_t dst_begin,
                                      std::size_t dst_end) {
  ARBOR_CHECK(src_end <= outboxes.size() && src_begin <= src_end);
  ARBOR_CHECK(dst_begin <= dst_end);
  const std::size_t block = dst_end - dst_begin;

  std::vector<Word> out;
  out.push_back(static_cast<Word>(round));
  out.push_back(static_cast<Word>(src_rank));
  out.push_back(static_cast<Word>(block));
  const std::size_t counts_at = out.size();
  out.resize(counts_at + block, 0);
  const std::size_t num_msgs_at = out.size();
  out.push_back(0);

  Word num_msgs = 0;
  for (std::size_t src = src_begin; src < src_end; ++src) {
    const engine::Outbox& box = outboxes[src];
    for (const engine::Outbox::Msg& msg : box.msgs) {
      if (msg.dst < dst_begin || msg.dst >= dst_end) continue;
      out[counts_at + (msg.dst - dst_begin)] += static_cast<Word>(msg.length);
      out.push_back(static_cast<Word>(msg.dst));
      out.push_back(static_cast<Word>(msg.length));
      const std::span<const Word> payload = box.payload(msg);
      out.insert(out.end(), payload.begin(), payload.end());
      ++num_msgs;
    }
  }
  out[num_msgs_at] = num_msgs;
  return out;
}

OutboxFrameView decode_outbox_counts(std::span<const Word> payload,
                                     std::size_t dst_block_size) {
  WireReader reader(payload, "outbox");
  const auto round = static_cast<std::size_t>(reader.word());
  const auto src_rank = static_cast<std::size_t>(reader.word());
  const auto block = static_cast<std::size_t>(reader.word());
  ARBOR_CHECK_MSG(block == dst_block_size,
                  "outbox frame addresses a block of " + std::to_string(block) +
                      " machines, receiver holds " +
                      std::to_string(dst_block_size));
  std::vector<std::size_t> dst_words(block);
  for (std::size_t i = 0; i < block; ++i)
    dst_words[i] = static_cast<std::size_t>(reader.word());
  return {round, src_rank, std::move(dst_words), reader};
}

void deliver_outbox_msgs(OutboxFrameView& view,
                         std::span<engine::Inbox> inboxes,
                         std::size_t dst_begin, std::size_t dst_end) {
  WireReader& reader = view.msgs;
  const std::size_t num_msgs = reader.count();
  std::vector<std::size_t> seen(dst_end - dst_begin, 0);
  for (std::size_t i = 0; i < num_msgs; ++i) {
    const auto dst = static_cast<std::size_t>(reader.word());
    ARBOR_CHECK_MSG(dst >= dst_begin && dst < dst_end,
                    "outbox frame message for machine " + std::to_string(dst) +
                        " outside the receiver's block");
    const std::size_t length = reader.count();
    seen[dst - dst_begin] += length;
    ARBOR_CHECK_MSG(seen[dst - dst_begin] <= view.dst_words[dst - dst_begin],
                    "outbox frame payload exceeds its count table for "
                    "machine " +
                        std::to_string(dst));
    inboxes[dst].append(reader.words(length));
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    ARBOR_CHECK_MSG(seen[i] == view.dst_words[i],
                    "outbox frame payload short of its count table for "
                    "machine " +
                        std::to_string(dst_begin + i));
  reader.expect_end();
}

// -------------------------------------------------- inbox dumps / slabs

std::vector<Word> encode_inbox_dump(std::span<const engine::Inbox> inboxes,
                                    std::size_t begin, std::size_t end) {
  std::vector<Word> out;
  for (std::size_t m = begin; m < end; ++m) {
    const engine::Inbox& box = inboxes[m];
    out.push_back(static_cast<Word>(box.message_count()));
    for (std::size_t i = 0; i < box.message_count(); ++i) {
      const std::span<const Word> msg = box.message(i);
      out.push_back(static_cast<Word>(msg.size()));
      out.insert(out.end(), msg.begin(), msg.end());
    }
  }
  return out;
}

std::vector<Word> encode_slab_block(
    const std::vector<std::vector<Word>>& slabs, std::size_t begin,
    std::size_t end) {
  ARBOR_CHECK(end <= slabs.size() && begin <= end);
  std::vector<Word> out;
  for (std::size_t m = begin; m < end; ++m) {
    out.push_back(static_cast<Word>(slabs[m].size()));
    out.insert(out.end(), slabs[m].begin(), slabs[m].end());
  }
  return out;
}

// ------------------------------------------------------- program frames

std::vector<Word> encode_program_frame(const ProgramFrame& frame) {
  ARBOR_CHECK(frame.inputs.size() == frame.preinbox.size());
  std::vector<Word> out;
  out.push_back(static_cast<Word>(frame.first_round));
  out.push_back(static_cast<Word>(frame.steps));
  out.push_back(static_cast<Word>(frame.max_passes));
  out.push_back((frame.has_output ? 1u : 0u) | (frame.has_vote ? 2u : 0u));
  put_str(out, frame.name);
  out.push_back(static_cast<Word>(frame.scalars.size()));
  out.insert(out.end(), frame.scalars.begin(), frame.scalars.end());
  for (std::size_t i = 0; i < frame.inputs.size(); ++i) {
    out.push_back(static_cast<Word>(frame.inputs[i].size()));
    out.insert(out.end(), frame.inputs[i].begin(), frame.inputs[i].end());
    out.push_back(static_cast<Word>(frame.preinbox[i].size()));
    for (const std::vector<Word>& msg : frame.preinbox[i]) {
      out.push_back(static_cast<Word>(msg.size()));
      out.insert(out.end(), msg.begin(), msg.end());
    }
  }
  return out;
}

ProgramFrame decode_program_frame(std::span<const Word> payload,
                                  std::size_t block_size) {
  WireReader reader(payload, "program");
  ProgramFrame frame;
  frame.first_round = static_cast<std::size_t>(reader.word());
  frame.steps = static_cast<std::size_t>(reader.word());
  frame.max_passes = static_cast<std::size_t>(reader.word());
  const Word flags = reader.word();
  frame.has_output = (flags & 1u) != 0;
  frame.has_vote = (flags & 2u) != 0;
  frame.name = reader.str();
  const std::size_t num_scalars = reader.count();
  const std::span<const Word> scalars = reader.words(num_scalars);
  frame.scalars.assign(scalars.begin(), scalars.end());
  frame.inputs.resize(block_size);
  frame.preinbox.resize(block_size);
  for (std::size_t i = 0; i < block_size; ++i) {
    const std::size_t input_len = reader.count();
    const std::span<const Word> input = reader.words(input_len);
    frame.inputs[i].assign(input.begin(), input.end());
    const std::size_t num_msgs = reader.count();
    frame.preinbox[i].resize(num_msgs);
    for (std::size_t j = 0; j < num_msgs; ++j) {
      const std::size_t len = reader.count();
      const std::span<const Word> msg = reader.words(len);
      frame.preinbox[i][j].assign(msg.begin(), msg.end());
    }
  }
  reader.expect_end();
  return frame;
}

// ----------------------------------------------------- telemetry frames

namespace {

Word double_bits(double value) { return std::bit_cast<Word>(value); }
double bits_double(Word bits) { return std::bit_cast<double>(bits); }

}  // namespace

std::vector<Word> encode_telemetry_frame(std::size_t rank,
                                         const trace::TelemetryBlob& blob) {
  std::vector<Word> out;
  out.push_back(static_cast<Word>(rank));
  out.push_back(static_cast<Word>(blob.counters.size()));
  for (const auto& [name, value] : blob.counters) {
    put_str(out, name);
    out.push_back(value);
  }
  out.push_back(static_cast<Word>(blob.histograms.size()));
  for (const trace::HistogramSnapshot& hist : blob.histograms) {
    put_str(out, hist.name);
    out.push_back(hist.count);
    out.push_back(double_bits(hist.sum));
    out.push_back(static_cast<Word>(hist.samples.size()));
    for (double sample : hist.samples) out.push_back(double_bits(sample));
  }
  out.push_back(static_cast<Word>(blob.spans.size()));
  for (const trace::TelemetrySpan& span : blob.spans) {
    put_str(out, span.name);
    put_str(out, span.category);
    out.push_back(span.tid);
    out.push_back(static_cast<Word>(span.start_ns));
    out.push_back(static_cast<Word>(span.dur_ns));
  }
  return out;
}

TelemetryFrame decode_telemetry_frame(std::span<const Word> payload) {
  WireReader reader(payload, "telemetry");
  TelemetryFrame frame;
  frame.rank = static_cast<std::size_t>(reader.word());
  const std::size_t num_counters = reader.count();
  frame.blob.counters.reserve(num_counters);
  for (std::size_t i = 0; i < num_counters; ++i) {
    std::string name = reader.str();
    const Word value = reader.word();
    frame.blob.counters.emplace_back(std::move(name), value);
  }
  const std::size_t num_hists = reader.count();
  frame.blob.histograms.resize(num_hists);
  for (trace::HistogramSnapshot& hist : frame.blob.histograms) {
    hist.name = reader.str();
    hist.count = reader.word();
    hist.sum = bits_double(reader.word());
    const std::size_t num_samples = reader.count();
    hist.samples.reserve(num_samples);
    for (std::size_t i = 0; i < num_samples; ++i)
      hist.samples.push_back(bits_double(reader.word()));
  }
  const std::size_t num_spans = reader.count();
  frame.blob.spans.resize(num_spans);
  for (trace::TelemetrySpan& span : frame.blob.spans) {
    span.name = reader.str();
    span.category = reader.str();
    span.tid = reader.word();
    span.start_ns = static_cast<std::int64_t>(reader.word());
    span.dur_ns = static_cast<std::int64_t>(reader.word());
  }
  reader.expect_end();
  return frame;
}

}  // namespace arbor::net
