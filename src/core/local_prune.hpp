// Algorithm 1: LocalPrune — recursively remove the k heaviest subtrees.
//
// Semantics (paper, Algorithm 1):
//   * if the root has at most k children, return the single-node tree {r}
//     (all children are dropped);
//   * otherwise recursively prune every child's subtree, sort the pruned
//     subtrees by size descending, drop the k largest, and attach the rest.
// Guarantees exercised by tests:
//   * Claim 3.1 — each surviving node's missing-neighbor count grows by at
//     most k;
//   * Lemma 3.2 — if the root's vertex has a finite layer under a partial
//     layer assignment with out-degree d ≤ k, the pruned size is at most
//     NumPathsIn(map(root)).
// Runs locally on one machine; costs no MPC rounds.
#pragma once

#include <cstddef>

#include "core/tree_view.hpp"

namespace arbor::core {

/// Deterministic tie-breaking: subtrees of equal size are ordered by the
/// child's mapped vertex id, then by node id ("ties broken arbitrarily" in
/// the paper; fixing them makes runs reproducible).
TreeView local_prune(const TreeView& tree, std::size_t k);

}  // namespace arbor::core
