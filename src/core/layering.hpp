// (Partial) layer assignments — Definitions 2.1 & 2.2, Claim 2.3, Lemma 2.4.
//
// A partial layer assignment ℓ : V → [L] ∪ {∞} with out-degree d satisfies
// |{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}| ≤ d for every v with ℓ(v) ≠ ∞. Orienting edges
// toward the higher layer then bounds every assigned vertex's out-degree by
// d. We represent ∞ as kInfiniteLayer and layers as 1-based integers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace arbor::core {

using Layer = std::uint32_t;
inline constexpr Layer kInfiniteLayer = 0xffffffffu;

struct LayerAssignment {
  std::vector<Layer> layer;  ///< per vertex; kInfiniteLayer = ∞
  Layer num_layers = 0;      ///< L (finite layers are in [1, L])

  std::size_t assigned_count() const;
  bool is_complete() const;  ///< no vertex at ∞
};

/// Measured out-degree of the assignment: max over assigned v of
/// |{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}| (∞ counts as ≥ everything). Vertices at ∞
/// are exempt per Definition 2.1.
std::size_t assignment_outdegree(const graph::Graph& g,
                                 const LayerAssignment& assignment);

/// Definition 2.1 check: every finite layer is within [1, L] and the
/// out-degree bound d holds.
bool is_valid_partial_assignment(const graph::Graph& g,
                                 const LayerAssignment& assignment,
                                 std::size_t d);

/// Claim 2.3: pointwise minimum of two partial assignments (min(∞, x) = x)
/// is again a valid partial assignment with the same L and d.
LayerAssignment min_combine(const LayerAssignment& a,
                            const LayerAssignment& b);

/// |{v : ℓ(v) ≥ j}| for j = 1..L+1 (index 0 unused); ∞ counts as ≥ any j.
/// Used to verify the geometric decay property of Lemmas 3.13–3.15.
std::vector<std::size_t> tail_layer_counts(const LayerAssignment& assignment);

/// Definition 2.2: NumPathsIn(v) = number of strictly increasing paths
/// (w.r.t. ℓ) ending at v, computed by DP over layers; saturates at
/// UINT64_MAX instead of overflowing (Lemma 2.4 bounds it by d^L, which can
/// exceed 2^64 for adversarial inputs). Vertices at ∞ have count 0 (no
/// strictly increasing path may touch an ∞ vertex).
std::vector<std::uint64_t> num_paths_in(const graph::Graph& g,
                                        const LayerAssignment& assignment);

/// Mirror image: strictly increasing paths starting at v.
std::vector<std::uint64_t> num_paths_out(const graph::Graph& g,
                                         const LayerAssignment& assignment);

/// The reference complete layering ℓ_G from the proofs of Lemma 3.13 /
/// Theorem 1.1: repeatedly remove all vertices of remaining degree ≤ k,
/// layer = removal round. Requires k ≥ 2·avg-degree of every subgraph to
/// terminate in O(log n) rounds (callers pass k ≥ 4λ or the peeling stalls
/// and the result is partial, flagged by num_layers == 0 entries = ∞...
/// specifically unpeeled vertices are mapped to ∞).
LayerAssignment reference_peeling_layering(const graph::Graph& g,
                                           std::size_t k,
                                           std::size_t max_rounds = 4096);

}  // namespace arbor::core
