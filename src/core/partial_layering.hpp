// Algorithm 4: PartialLayerAssignment = ExponentiateAndLocalPrune
// + per-tree peeling (Algorithm 3) + min-projection onto the graph.
//
// Each vertex v computes a layer for every node of its tree T_v^{(s)} with
// budget a = (s+1)·k, and the graph-level assignment takes, for every
// vertex u, the minimum layer over all tree nodes (in anyone's tree)
// mapping to u — justified by Claim 2.3 (min of partial assignments is a
// partial assignment) and Lemma 3.10. Claim 3.12 then bounds the
// out-degree of the result by (s+1)·k, independent of which trees
// contributed. The min-projection is one aggregate-by-key (O(1) sorts) in
// MPC; Claim 3.11 gives O(s) rounds total.
#pragma once

#include <cstddef>
#include <vector>

#include "core/exponentiate.hpp"
#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct PartialLayeringParams {
  std::size_t budget = 256;  ///< B
  std::size_t prune_k = 4;   ///< k
  Layer num_layers = 4;      ///< L
  std::size_t steps = 4;     ///< s (Lemma 3.7 needs s > log2 L)
};

struct PartialLayeringResult {
  LayerAssignment assignment;
  /// a = (s+1)·k — the out-degree bound promised by Claim 3.12.
  std::size_t outdegree_bound = 0;
  std::size_t max_tree_nodes = 0;
};

PartialLayeringResult partial_layer_assignment(const graph::Graph& g,
                                               const PartialLayeringParams& p,
                                               mpc::MpcContext& ctx);

}  // namespace arbor::core
