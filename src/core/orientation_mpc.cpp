#include "core/orientation_mpc.hpp"

#include <algorithm>
#include <cmath>

#include "core/density_estimate.hpp"
#include "core/partitioning.hpp"
#include "graph/arboricity.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::core {

std::size_t estimate_density_parameter(const graph::Graph& g) {
  return std::max<std::size_t>(1, graph::degeneracy(g));
}

namespace {

/// Orient edge (u,v), u < v, by a layering: toward the strictly higher
/// layer, ties toward the higher id (so toward v). ∞ sorts above finite.
bool oriented_towards_v(Layer lu, Layer lv) { return lu <= lv; }

}  // namespace

MpcOrientationResult mpc_orient(const graph::Graph& g,
                                const OrientationParams& params,
                                mpc::MpcContext& ctx) {
  trace::Span stage_span = trace::Tracer::global().span("mpc", "orientation");
  const std::size_t n = g.num_vertices();
  std::size_t k = params.k;
  if (k == 0) {
    if (params.estimator == KEstimator::kParallelGuess) {
      k = estimate_density_mpc(g, ctx).k;
    } else {
      k = estimate_density_parameter(g);
      // The paper's guess-in-parallel costs an extra O(log n) global
      // factor; charge it so memory accounting doesn't flatter the oracle.
      const auto log_n = static_cast<std::size_t>(std::ceil(
          std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));
      ctx.charge(1, "orient.estimate_k");
      ctx.note_global_words((n + g.num_edges()) * log_n);
    }
  }

  MpcOrientationResult result{
      graph::Orientation(g, std::vector<bool>(g.num_edges(), true)),
      {}, 1, k, 0, {}};

  const double log_n =
      std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  const bool needs_partition =
      static_cast<double>(k) > params.high_k_factor * log_n;

  PipelineParams pipeline = params.pipeline;

  if (!needs_partition) {
    pipeline.k = std::max<std::size_t>(k, 1);
    CompleteLayeringResult layering = complete_layering(g, pipeline, ctx);
    result.outdegree_bound = layering.outdegree_bound;
    result.stats = layering.stats;

    const auto edges = g.edges();
    std::vector<bool> towards_v(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i)
      towards_v[i] = oriented_towards_v(layering.assignment.layer[edges[i].u],
                                        layering.assignment.layer[edges[i].v]);
    ctx.charge(1, "orient.finalize");
    result.orientation = graph::Orientation(g, std::move(towards_v));
    result.layering = std::move(layering.assignment);
    return result;
  }

  // ---- Lemma 2.1 path: random edge partition, per-part layering. ----
  util::SplitRng rng(params.seed);
  const std::size_t parts = partition_count(k, n);
  result.parts = parts;
  EdgePartition partition = random_edge_partition(g, parts, rng);
  ctx.charge(1, "orient.edge_partition");

  // Parts run in parallel: each gets a sub-ledger; rounds merge as max.
  // Sub-contexts share the parent's engine so every Level-0 cluster this
  // pipeline spawns reuses one worker pool.
  std::vector<LayerAssignment> part_layering(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    mpc::RoundLedger sub_ledger(ctx.config());
    mpc::MpcContext sub_ctx(ctx.config(), &sub_ledger, ctx.ensure_engine());
    PipelineParams part_pipeline = params.pipeline;
    // Each part has arboricity O(log n) whp (Lemma 2.1).
    part_pipeline.k = std::max<std::size_t>(
        1, estimate_density_parameter(partition.parts[p]));
    CompleteLayeringResult layering =
        complete_layering(partition.parts[p], part_pipeline, sub_ctx);
    result.outdegree_bound += layering.outdegree_bound;
    result.stats.phases =
        std::max(result.stats.phases, layering.stats.phases);
    result.stats.partial_iterations = std::max(
        result.stats.partial_iterations, layering.stats.partial_iterations);
    result.stats.escalations += layering.stats.escalations;
    result.stats.fallback_peel_rounds = std::max(
        result.stats.fallback_peel_rounds,
        layering.stats.fallback_peel_rounds);
    part_layering[p] = std::move(layering.assignment);
    if (ctx.ledger()) ctx.ledger()->absorb_parallel(sub_ledger);
  }

  const auto edges = g.edges();
  std::vector<bool> towards_v(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& layering = part_layering[partition.part_of_edge[i]];
    towards_v[i] = oriented_towards_v(layering.layer[edges[i].u],
                                      layering.layer[edges[i].v]);
  }
  ctx.charge(1, "orient.finalize");
  result.orientation = graph::Orientation(g, std::move(towards_v));
  result.layering = std::move(part_layering[0]);
  return result;
}

}  // namespace arbor::core
