// Algorithm 2: ExponentiateAndLocalPrune.
//
// Every vertex v maintains a rooted tree T_v with a valid mapping whose
// root maps to v, within a node budget B. Each of the s steps:
//  1. Local prune (Algorithm 1) with parameter k; a vertex whose pruned
//     tree exceeds √B nodes goes inactive (its tree stops expanding).
//  2. Graph exponentiation: every active v replaces the leaves at distance
//     exactly 2^{i-1} from its root that map to active vertices with those
//     vertices' pruned trees (Definition 2.5) — doubling the tree's reach.
// Invariants maintained (and unit-tested): the mapping stays valid
// (Claim 3.3) and |T_v| ≤ B (Claim 3.4). MPC cost: O(s) rounds with
// O(n^δ + B) local and O(nB + m) global memory (Claim 3.5); the tree
// shipping in step 2 is executed through the Lemma 4.1 bundle-fetch
// primitive so rounds and footprints are charged from real data volumes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tree_view.hpp"
#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct ExponentiateParams {
  std::size_t budget = 256;  ///< B — max tree nodes per vertex
  std::size_t prune_k = 4;   ///< k — subtrees dropped per node per prune
  std::size_t steps = 4;     ///< s — exponentiation steps
};

struct ExponentiateStepStats {
  std::size_t active_vertices = 0;
  std::size_t max_tree_nodes = 0;
  std::size_t total_tree_nodes = 0;
  std::size_t fetch_rounds = 0;
};

struct ExponentiateResult {
  std::vector<TreeView> trees;  ///< T_v^{(s)} per vertex
  std::vector<bool> active;     ///< activity after the final step
  std::vector<ExponentiateStepStats> per_step;
  std::size_t max_tree_nodes = 0;
};

ExponentiateResult exponentiate_and_local_prune(const graph::Graph& g,
                                                const ExponentiateParams& p,
                                                mpc::MpcContext& ctx);

}  // namespace arbor::core
