// Algorithm 3: PartialLayerAssignmentTree — peel a rooted tree view into
// layers.
//
// Given a tree T with valid mapping into G and a budget a, the peeling
// process assigns layer j to every still-unassigned tree node x whose
// unassigned-children count plus missing-neighbor count is at most a:
//     V_j = { x ∈ V_{≥j} : |children(x) ∩ V_{≥j}| + |Missing(x)| ≤ a }.
// Nodes never assigned within L iterations get ∞. Runs locally on one
// machine (the tree is a single vertex's bundle); costs no MPC rounds.
//
// Correctness anchors (tested): Lemma 3.8 — strictly monotonically
// reachable nodes satisfy ℓ_T(x) ≤ ℓ_G(map(x)) whenever a ≥ d + missing;
// Lemma 3.10 — the min-projection of ℓ_T onto G has out-degree ≤ a.
#pragma once

#include <cstddef>
#include <vector>

#include "core/layering.hpp"
#include "core/tree_view.hpp"
#include "graph/graph.hpp"

namespace arbor::core {

/// Per-tree-node layer assignment; kInfiniteLayer for ∞.
std::vector<Layer> partial_layer_assignment_tree(const graph::Graph& g,
                                                 const TreeView& tree,
                                                 std::size_t a, Layer L);

}  // namespace arbor::core
