#include "core/coreness_mpc.hpp"

#include <cmath>

#include "local/peeling.hpp"
#include "util/assert.hpp"

namespace arbor::core {

CorenessResult approximate_coreness(const graph::Graph& g, double epsilon,
                                    mpc::MpcContext& ctx,
                                    double rounds_factor) {
  ARBOR_CHECK(epsilon > 0.0);
  const std::size_t n = g.num_vertices();
  CorenessResult result;
  result.estimate.assign(n, 0);
  if (n == 0) return result;

  const auto rounds_budget = static_cast<std::size_t>(std::ceil(
                                 rounds_factor *
                                 std::log2(static_cast<double>(
                                     std::max<std::size_t>(n, 2))))) +
                             1;
  result.rounds_budget = rounds_budget;

  // Unassigned marker: will be overwritten by the first removing guess;
  // every vertex is removed at the guess with threshold ≥ max degree.
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> assigned(n, kUnset);
  std::size_t remaining = n;

  double guess_value = 1.0;
  std::size_t previous_guess = 0;
  while (remaining > 0) {
    const auto guess = static_cast<std::size_t>(std::ceil(guess_value));
    guess_value *= (1.0 + epsilon);
    if (guess == previous_guess) continue;  // ceil collision at small i
    previous_guess = guess;
    ++result.guesses;

    const local::PeelingResult peel =
        local::peel_by_threshold(g, 2 * guess, rounds_budget);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (assigned[v] == kUnset && peel.layer[v] != 0) {
        assigned[v] = static_cast<std::uint32_t>(guess);
        --remaining;
      }
    }
    ARBOR_CHECK_MSG(guess <= 2 * n, "coreness guesses failed to converge");
  }
  result.estimate = std::move(assigned);

  // All guesses share the round budget (parallel); global memory pays the
  // ×guesses replication factor.
  ctx.charge(rounds_budget, "coreness.parallel_guesses");
  ctx.note_global_words((n + 2 * g.num_edges()) * result.guesses);
  return result;
}

}  // namespace arbor::core
