// Rooted trees with valid mappings into a graph — Definitions 2.3–2.7.
//
// During graph exponentiation every vertex v maintains a rooted tree T_v
// whose nodes map to graph vertices (the root to v itself). The mapping is
// "valid" (Def 2.3) when every tree edge maps to a graph edge and the
// children of any tree node map to *distinct* graph vertices; a vertex of G
// may still appear many times across different branches — once per path
// that reaches it — which is exactly how the algorithm forces a tree-like
// view of a general graph's neighborhoods (paper §1.4).
//
// Supported operations mirror the paper's definitions: pruning (Def 2.4,
// implemented in core/local_prune), attachment of other trees at leaves
// (Def 2.5), missing-neighbor counts (Def 2.6), and strict monotone
// reachability w.r.t. a layer assignment (Def 2.7).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/layering.hpp"
#include "graph/graph.hpp"

namespace arbor::core {

class TreeView {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = 0xffffffffu;

  struct Node {
    graph::VertexId maps_to = 0;
    NodeId parent = kNoNode;
    std::uint32_t depth = 0;
    std::vector<NodeId> children;
  };

  /// Single-node tree whose root maps to v (the inactive-vertex initial
  /// tree of Algorithm 2).
  static TreeView single(graph::VertexId v);

  /// Star: root maps to v, one child per (distinct) neighbor — the active-
  /// vertex initial tree of Algorithm 2.
  static TreeView star(graph::VertexId v,
                       std::span<const graph::VertexId> neighbors);

  std::size_t size() const noexcept { return nodes_.size(); }
  NodeId root() const noexcept { return 0; }
  const Node& node(NodeId x) const { return nodes_.at(x); }
  graph::VertexId vertex_of(NodeId x) const { return nodes_.at(x).maps_to; }
  graph::VertexId root_vertex() const { return nodes_.front().maps_to; }
  std::uint32_t height() const noexcept;

  /// Leaves whose depth is exactly `depth` (Algorithm 2's attachment
  /// frontier at distance 2^{i-1}).
  std::vector<NodeId> leaves_at_depth(std::uint32_t depth) const;

  /// Definition 2.5: replace each given leaf x_i by a fresh copy of tree
  /// T_i, whose root must map to the same graph vertex as x_i. Leaves must
  /// be distinct. Returns the attached tree; `this` is unchanged.
  TreeView attach(
      std::span<const std::pair<NodeId, const TreeView*>> attachments) const;

  /// Definition 2.6: |Missing(x)| = |N_G(map(x)) \ {map(c) : c child of x}|.
  /// With a valid mapping the children map to distinct neighbors, so this
  /// equals deg_G(map(x)) - #children(x).
  std::size_t missing_count(const graph::Graph& g, NodeId x) const;

  /// Definition 2.3: full validation of the mapping against g (every tree
  /// edge is a graph edge; siblings map to distinct vertices). O(size·log).
  bool is_valid_mapping(const graph::Graph& g) const;

  /// Definition 2.7: per node, whether the path from the node up to the
  /// root has strictly increasing finite layers under `assignment`.
  std::vector<bool> monotonically_reachable(
      const LayerAssignment& assignment) const;

  /// Words needed to ship this tree as an MPC bundle: (maps_to, parent) per
  /// node plus a length header.
  std::size_t serialized_words() const noexcept { return 2 * size() + 1; }

  /// Wire format: [size, maps_to_0, parent_0, maps_to_1, parent_1, ...] in
  /// arena order (root first, parent-before-child). Exactly
  /// serialized_words() words — what Algorithm 2 ships through the
  /// Lemma 4.1 bundle fetch.
  std::vector<std::uint64_t> serialize() const;

  /// Inverse of serialize(); validates the arena invariants.
  static TreeView deserialize(std::span<const std::uint64_t> words);

  /// Internal consistency of the arena (parent/child/depth agreement);
  /// used by debug checks and tests.
  bool structurally_sound() const;

  /// Build from an explicit arena (testing and deserialization). Node 0
  /// must be the root; parents must precede children.
  static TreeView from_nodes(std::vector<Node> nodes);

 private:
  TreeView() = default;
  std::vector<Node> nodes_;  // preorder-ish: parent always before child
};

}  // namespace arbor::core
