#include "core/partitioning.hpp"

#include <cmath>

#include "graph/builder.hpp"
#include "util/assert.hpp"

namespace arbor::core {

std::size_t partition_count(std::size_t k, std::size_t n) {
  const double log_n = std::log2(static_cast<double>(std::max<std::size_t>(
      n, 2)));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(static_cast<double>(k) / log_n)));
}

EdgePartition random_edge_partition(const graph::Graph& g, std::size_t parts,
                                    util::SplitRng& rng) {
  ARBOR_CHECK(parts >= 1);
  EdgePartition result;
  result.part_of_edge.resize(g.num_edges());
  std::vector<graph::GraphBuilder> builders(
      parts, graph::GraphBuilder(g.num_vertices()));
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(parts));
    result.part_of_edge[i] = p;
    builders[p].add_edge(edges[i].u, edges[i].v);
  }
  result.parts.reserve(parts);
  for (auto& b : builders) result.parts.push_back(b.build_and_clear());
  return result;
}

VertexPartition random_vertex_partition(const graph::Graph& g,
                                        std::size_t parts,
                                        util::SplitRng& rng) {
  ARBOR_CHECK(parts >= 1);
  VertexPartition result;
  result.part_of_vertex.resize(g.num_vertices());
  std::vector<std::vector<graph::VertexId>> members(parts);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto p = static_cast<std::uint32_t>(rng.next_below(parts));
    result.part_of_vertex[v] = p;
    members[p].push_back(v);
  }
  result.parts.reserve(parts);
  result.to_original.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    auto sub = g.induced(members[p]);
    result.parts.push_back(std::move(sub.graph));
    result.to_original.push_back(std::move(sub.to_original));
  }
  return result;
}

}  // namespace arbor::core
