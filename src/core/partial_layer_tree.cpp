#include "core/partial_layer_tree.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::core {

std::vector<Layer> partial_layer_assignment_tree(const graph::Graph& g,
                                                 const TreeView& tree,
                                                 std::size_t a, Layer L) {
  const std::size_t n = tree.size();
  std::vector<Layer> layer(n, kInfiniteLayer);

  // |Missing(x)| is fixed throughout; unassigned-children counts shrink as
  // children get assigned.
  std::vector<std::size_t> missing(n);
  std::vector<std::size_t> unassigned_children(n);
  for (TreeView::NodeId x = 0; x < n; ++x) {
    missing[x] = tree.missing_count(g, x);
    unassigned_children[x] = tree.node(x).children.size();
  }

  std::vector<TreeView::NodeId> remaining(n);
  for (TreeView::NodeId x = 0; x < n; ++x) remaining[x] = x;

  std::vector<TreeView::NodeId> next_remaining;
  std::vector<TreeView::NodeId> assigned_now;
  for (Layer j = 1; j <= L && !remaining.empty(); ++j) {
    next_remaining.clear();
    assigned_now.clear();
    // Selection is synchronous: V_j is decided from the state at the start
    // of iteration j, so we first select, then update counters.
    for (TreeView::NodeId x : remaining) {
      if (unassigned_children[x] + missing[x] <= a)
        assigned_now.push_back(x);
      else
        next_remaining.push_back(x);
    }
    for (TreeView::NodeId x : assigned_now) {
      layer[x] = j;
      const TreeView::NodeId parent = tree.node(x).parent;
      if (parent != TreeView::kNoNode) {
        ARBOR_CHECK(unassigned_children[parent] > 0);
        --unassigned_children[parent];
      }
    }
    remaining.swap(next_remaining);
  }
  return layer;
}

}  // namespace arbor::core
