#include "core/coloring_mpc.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "core/density_estimate.hpp"
#include "core/orientation_mpc.hpp"
#include "core/partitioning.hpp"
#include "local/list_coloring.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace arbor::core {

namespace {

constexpr graph::Color kUncolored = 0xffffffffu;

/// Size (in tree-of-influence nodes) of v's cone: vertices reachable along
/// paths whose layers never decrease, restricted to layers in
/// [block_lo, block_hi], up to `radius` hops, plus the immediate boundary
/// neighbors in layers > block_hi (their colors are inputs to the replay).
std::size_t cone_size(const graph::Graph& g, const LayerAssignment& layering,
                      graph::VertexId start, Layer block_lo, Layer block_hi,
                      std::size_t radius) {
  std::unordered_set<graph::VertexId> seen{start};
  std::deque<std::pair<graph::VertexId, std::size_t>> queue{{start, 0}};
  std::size_t boundary = 0;
  while (!queue.empty()) {
    const auto [v, dist] = queue.front();
    queue.pop_front();
    if (dist == radius) continue;
    const Layer lv = layering.layer[v];
    for (graph::VertexId w : g.neighbors(v)) {
      const Layer lw = layering.layer[w];
      if (lw < lv) continue;  // influence flows along non-decreasing layers
      if (lw > block_hi) {
        ++boundary;  // colored input from a higher layer; one word of color
        continue;
      }
      if (lw < block_lo) continue;
      if (seen.insert(w).second) queue.emplace_back(w, dist + 1);
    }
  }
  return seen.size() + boundary;
}

struct LayerColoringOutcome {
  std::size_t local_rounds = 0;
};

/// Color the vertices of one layer given the committed colors of all
/// strictly higher layers. Palette: [palette_base, palette_base+C) minus
/// higher-layer neighbor colors. Writes into `colors`.
LayerColoringOutcome color_one_layer(
    const graph::Graph& g, const LayerAssignment& layering, Layer j,
    const std::vector<graph::VertexId>& members, graph::Color palette_base,
    std::size_t palette_count, const std::vector<std::uint64_t>& global_keys,
    const util::StatelessCoin& coin, std::size_t trials,
    std::vector<graph::Color>& colors) {
  LayerColoringOutcome outcome;
  if (members.empty()) return outcome;

  const auto sub = g.induced(members);
  std::vector<std::vector<graph::Color>> palettes(members.size());
  std::vector<std::uint64_t> keys(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const graph::VertexId v = sub.to_original[i];
    keys[i] = global_keys[v];
    std::unordered_set<graph::Color> forbidden;
    for (graph::VertexId w : g.neighbors(v)) {
      if (layering.layer[w] > j && colors[w] != kUncolored)
        forbidden.insert(colors[w]);
    }
    for (std::size_t c = 0; c < palette_count; ++c) {
      const auto color = static_cast<graph::Color>(palette_base + c);
      if (!forbidden.contains(color)) palettes[i].push_back(color);
    }
  }

  const local::ListColoringResult colored = local::list_color(
      sub.graph, keys, palettes, coin, /*phase_tag=*/j, /*max_rounds=*/trials);
  ARBOR_CHECK_MSG(colored.complete,
                  "layer list-coloring did not converge — raise trials");
  for (std::size_t i = 0; i < members.size(); ++i)
    colors[sub.to_original[i]] = colored.colors[i];
  outcome.local_rounds = colored.rounds;
  return outcome;
}

struct SinglePartResult {
  std::vector<graph::Color> colors;
  std::size_t palette_size = 0;
  std::size_t layering_outdegree = 0;
  std::size_t blocks = 0;
  std::size_t local_rounds_replayed = 0;
  std::size_t tail_mpc_rounds = 0;
  std::size_t max_sampled_cone_nodes = 0;
};

/// Color one low-arboricity (sub)graph. `global_keys[v]` gives the stable
/// coin identity of vertex v (original ids when g is an induced part).
SinglePartResult color_single_part(const graph::Graph& g,
                                   const ColoringParams& params,
                                   std::size_t k, graph::Color palette_base,
                                   const std::vector<std::uint64_t>&
                                       global_keys,
                                   mpc::MpcContext& ctx) {
  SinglePartResult result;
  const std::size_t n = g.num_vertices();
  result.colors.assign(n, kUncolored);
  if (n == 0) return result;

  // ---- Layering (Lemma 3.15). ----
  PipelineParams pipeline = params.pipeline;
  pipeline.k = std::max<std::size_t>(k, 1);
  const CompleteLayeringResult layering = complete_layering(g, pipeline, ctx);
  const std::size_t d = std::max<std::size_t>(
      1, assignment_outdegree(g, layering.assignment));
  ctx.charge(1, "color.measure_d");  // one aggregate to publish d
  result.layering_outdegree = d;

  const auto palette_count = static_cast<std::size_t>(
      std::ceil(params.palette_factor * static_cast<double>(d)));
  result.palette_size = palette_count;

  const util::StatelessCoin coin(params.seed);
  const Layer top = layering.assignment.num_layers;

  // Bucket vertices by layer once; layers are complete, so every vertex
  // lands in [1, top].
  std::vector<std::vector<graph::VertexId>> layer_members(top + 1);
  for (graph::VertexId v = 0; v < n; ++v) {
    const Layer lv = layering.assignment.layer[v];
    ARBOR_CHECK(lv >= 1 && lv <= top);
    layer_members[lv].push_back(v);
  }

  util::SplitRng sample_rng(params.seed ^ 0x5a3b1e50ULL);

  // ---- Blocked descent with directed exponentiation. ----
  Layer j = top;
  while (j > params.tail_threshold) {
    const auto width = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               params.block_fraction * static_cast<double>(j))));
    const Layer j_lo = static_cast<Layer>(
        std::max<std::size_t>(params.tail_threshold + 1,
                              j >= width ? j - width + 1 : 1));
    ++result.blocks;

    // Gather cost: exponentiation along outgoing edges to reach radius R.
    std::vector<graph::VertexId> block_members;
    std::size_t block_words = 0;
    for (Layer layer = j_lo; layer <= j; ++layer) {
      for (graph::VertexId v : layer_members[layer]) {
        block_members.push_back(v);
        block_words += 1 + g.degree(v);
      }
    }
    std::size_t block_local_rounds = 0;
    for (Layer layer = j; layer >= j_lo && layer >= 1; --layer) {
      const LayerColoringOutcome outcome = color_one_layer(
          g, layering.assignment, layer, layer_members[layer], palette_base,
          palette_count, global_keys, coin, params.trials_per_layer,
          result.colors);
      block_local_rounds += outcome.local_rounds;
    }
    result.local_rounds_replayed += block_local_rounds;

    // Influence radius actually realized by the replay: every LOCAL round
    // propagates one hop, plus one hop per layer hand-off.
    const std::size_t radius =
        block_local_rounds + (j - j_lo + 1);
    const std::size_t per_fetch =
        2 * ctx.sort_rounds(std::max<std::size_t>(block_words, 2)) + 1;
    const auto doublings = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(radius) + 1.0)));
    ctx.charge(std::max<std::size_t>(1, doublings) * per_fetch,
               "color.block_gather");

    // Cone gauge on a sample of block vertices.
    if (!block_members.empty()) {
      const std::size_t samples =
          std::min(params.cone_sample, block_members.size());
      for (std::size_t i = 0; i < samples; ++i) {
        const graph::VertexId v = block_members[static_cast<std::size_t>(
            sample_rng.next_below(block_members.size()))];
        const std::size_t cone =
            cone_size(g, layering.assignment, v, j_lo, j, radius);
        result.max_sampled_cone_nodes =
            std::max(result.max_sampled_cone_nodes, cone);
      }
      ctx.note_local_words(result.max_sampled_cone_nodes);
    }

    j = j_lo - 1;
  }

  // ---- Tail: direct LOCAL simulation, one MPC round per LOCAL round. ----
  for (Layer layer = j; layer >= 1; --layer) {
    const LayerColoringOutcome outcome = color_one_layer(
        g, layering.assignment, layer, layer_members[layer], palette_base,
        palette_count, global_keys, coin, params.trials_per_layer,
        result.colors);
    result.tail_mpc_rounds += outcome.local_rounds;
    ctx.charge(outcome.local_rounds, "color.tail");
  }

  for (graph::Color c : result.colors) ARBOR_CHECK(c != kUncolored);
  return result;
}

}  // namespace

MpcColoringResult mpc_color(const graph::Graph& g,
                            const ColoringParams& params,
                            mpc::MpcContext& ctx) {
  trace::Span stage_span = trace::Tracer::global().span("mpc", "coloring");
  const std::size_t n = g.num_vertices();
  MpcColoringResult result;
  result.colors.assign(n, kUncolored);
  if (n == 0) return result;

  std::size_t k = params.k;
  if (k == 0) {
    if (params.estimator == KEstimator::kParallelGuess) {
      k = estimate_density_mpc(g, ctx).k;
    } else {
      k = estimate_density_parameter(g);
      const auto log_n = static_cast<std::size_t>(std::ceil(
          std::log2(static_cast<double>(std::max<std::size_t>(n, 2)))));
      ctx.charge(1, "color.estimate_k");
      ctx.note_global_words((n + g.num_edges()) * log_n);
    }
  }
  result.k_used = k;

  std::vector<std::uint64_t> identity_keys(n);
  for (graph::VertexId v = 0; v < n; ++v) identity_keys[v] = v;

  const double log_n =
      std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  const bool needs_partition =
      static_cast<double>(k) > params.high_k_factor * log_n;

  if (!needs_partition) {
    SinglePartResult part = color_single_part(g, params, k,
                                              /*palette_base=*/0,
                                              identity_keys, ctx);
    result.colors = std::move(part.colors);
    result.palette_size = part.palette_size;
    result.layering_outdegree = part.layering_outdegree;
    result.blocks = part.blocks;
    result.local_rounds_replayed = part.local_rounds_replayed;
    result.tail_mpc_rounds = part.tail_mpc_rounds;
    result.max_sampled_cone_nodes = part.max_sampled_cone_nodes;
    return result;
  }

  // ---- Lemma 2.2 path: vertex partition, disjoint palettes. ----
  util::SplitRng rng(params.seed);
  const std::size_t parts = partition_count(k, n);
  result.parts = parts;
  VertexPartition partition = random_vertex_partition(g, parts, rng);
  ctx.charge(1, "color.vertex_partition");

  graph::Color palette_base = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const graph::Graph& part_graph = partition.parts[p];
    mpc::RoundLedger sub_ledger(ctx.config());
    // Shares the parent's worker pool (one engine per pipeline run).
    mpc::MpcContext sub_ctx(ctx.config(), &sub_ledger, ctx.ensure_engine());
    std::vector<std::uint64_t> part_keys(part_graph.num_vertices());
    for (graph::VertexId sv = 0; sv < part_graph.num_vertices(); ++sv)
      part_keys[sv] = partition.to_original[p][sv];
    const std::size_t part_k = std::max<std::size_t>(
        1, estimate_density_parameter(part_graph));
    SinglePartResult part = color_single_part(part_graph, params, part_k,
                                              palette_base, part_keys,
                                              sub_ctx);
    for (graph::VertexId sv = 0; sv < part_graph.num_vertices(); ++sv)
      result.colors[partition.to_original[p][sv]] = part.colors[sv];
    palette_base += static_cast<graph::Color>(part.palette_size);
    result.layering_outdegree =
        std::max(result.layering_outdegree, part.layering_outdegree);
    result.blocks = std::max(result.blocks, part.blocks);
    result.local_rounds_replayed =
        std::max(result.local_rounds_replayed, part.local_rounds_replayed);
    result.tail_mpc_rounds =
        std::max(result.tail_mpc_rounds, part.tail_mpc_rounds);
    result.max_sampled_cone_nodes =
        std::max(result.max_sampled_cone_nodes, part.max_sampled_cone_nodes);
    if (ctx.ledger()) ctx.ledger()->absorb_parallel(sub_ledger);
  }
  result.palette_size = palette_base;

  for (graph::Color c : result.colors) ARBOR_CHECK(c != kUncolored);
  return result;
}

}  // namespace arbor::core
