// Theorem 1.2: the end-to-end scalable-MPC coloring algorithm.
//
// Pipeline (paper §4):
//  1. if k = Θ(λ) exceeds Θ(log n), randomly partition the VERTICES into
//     ⌈k/log n⌉ parts (Lemma 2.2) and color each part with a disjoint
//     palette — parts run in parallel, cross-part edges are bichromatic for
//     free;
//  2. per part: compute the complete layering of Lemma 3.15 (out-degree
//     d = O(λ log log n)), then color layer by layer from the TOP (highest
//     layer first) with palette size 3d: a vertex avoids the committed
//     colors of its ≤ d higher-or-equal-layer neighbors and list-colors the
//     ≤ d-degree graph induced by its own layer (degree+1 list coloring,
//     palette slack 2d);
//  3. MPC speed-up: instead of paying one MPC round per LOCAL round, whole
//     BLOCKS of layers are colored at once. Each node in a block gathers —
//     via directed graph exponentiation along non-decreasing-layer edges
//     (the Lemma 4.1 primitive, O(log R) rounds for reach R) — everything
//     that can influence its color, then replays the LOCAL algorithm
//     locally. Replays agree across machines because all coins come from a
//     StatelessCoin keyed by (layer, vertex, trial) — see
//     local/list_coloring.hpp. Once the remaining top layer index falls
//     below the tail threshold (paper: Θ(log^{2.67} log n)), blocks stop
//     paying off and the LOCAL algorithm runs directly, one MPC round per
//     LOCAL round.
//
// Cone-size accounting: the influence cone of v is its reachable set along
// paths with non-decreasing layers, length ≤ block_width·(trials+1). We
// measure cones on a vertex sample per block (exact cones for every vertex
// would cost more than the coloring itself) and gauge the local-memory
// envelope from the sample maximum; E10 sweeps this.
#pragma once

#include <cstdint>
#include <vector>

#include "core/density_estimate.hpp"
#include "core/layering_pipeline.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct ColoringParams {
  std::size_t k = 0;  ///< density parameter; 0 → estimate per `estimator`
  KEstimator estimator = KEstimator::kDegeneracyOracle;
  PipelineParams pipeline = PipelineParams::practical(1);
  double palette_factor = 3.0;      ///< palette = ⌈f·d⌉ colors (paper: 3d)
  std::size_t trials_per_layer = 64;///< LOCAL round cap per layer
  double high_k_factor = 4.0;       ///< vertex partition when k > f·log2 n
  std::size_t tail_threshold = 4;   ///< direct LOCAL below this layer index
  double block_fraction = 0.25;     ///< block width ≈ max(1, f·j)
  std::size_t cone_sample = 64;     ///< cones measured per block
  std::uint64_t seed = 0xc0105ULL;
};

struct MpcColoringResult {
  std::vector<graph::Color> colors;
  std::size_t palette_size = 0;  ///< total palette budget across parts
  std::size_t parts = 1;
  std::size_t k_used = 0;
  std::size_t layering_outdegree = 0;  ///< measured d of the layering
  std::size_t blocks = 0;              ///< gather-and-replay phases
  std::size_t local_rounds_replayed = 0;  ///< LOCAL rounds inside cones
  std::size_t tail_mpc_rounds = 0;        ///< direct-simulation rounds
  std::size_t max_sampled_cone_nodes = 0;
};

MpcColoringResult mpc_color(const graph::Graph& g,
                            const ColoringParams& params,
                            mpc::MpcContext& ctx);

}  // namespace arbor::core
