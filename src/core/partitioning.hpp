// Random edge/vertex partitioning — Lemmas 2.1 and 2.2.
//
// Both lemmas reduce arboricity-k graphs to parts of arboricity O(log n)
// whp, by partitioning edges (for orientation) or vertices (for coloring)
// uniformly into L = ⌈k / log n⌉ parts. The proofs ride on a Chernoff bound
// over the out-edges of any fixed O(k)-out-degree orientation; the benches
// of E5 validate the concentration empirically via the exact arboricity
// oracle.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace arbor::core {

/// Lemma 2.1 part count: ⌈k / log2(n)⌉, at least 1.
std::size_t partition_count(std::size_t k, std::size_t n);

struct EdgePartition {
  /// Part index per edge of the source graph (aligned with g.edges()).
  std::vector<std::uint32_t> part_of_edge;
  /// One graph per part, on the full original vertex set (ids preserved).
  std::vector<graph::Graph> parts;
};

EdgePartition random_edge_partition(const graph::Graph& g, std::size_t parts,
                                    util::SplitRng& rng);

struct VertexPartition {
  std::vector<std::uint32_t> part_of_vertex;
  /// Induced subgraph per part, with the mapping back to original ids.
  std::vector<graph::Graph> parts;
  std::vector<std::vector<graph::VertexId>> to_original;
};

VertexPartition random_vertex_partition(const graph::Graph& g,
                                        std::size_t parts,
                                        util::SplitRng& rng);

}  // namespace arbor::core
