// The layering pipeline: Lemma 3.13 (one partial-layering shot),
// Lemma 3.14 (iterate on the unassigned residue), and Lemma 3.15
// (initial peeling + budget boosting) which yields the COMPLETE layer
// assignment behind Theorems 1.1 and 1.2:
//   1. out-degree ≤ O(k · log log n), and
//   2. geometric decay |{v : ℓ(v) ≥ j}| ≤ 0.5^{j-1}·n.
//
// Constants policy (DESIGN.md §6): every proof constant is a field of
// PipelineParams. `paper(k)` uses the literal formulas (B = k^100,
// L = ⌈0.1·log_k B⌉, s = ⌈10·log log n⌉, …) clamped to the local-memory
// cap; `practical(k)` uses constants tuned so experiment-scale graphs
// exercise the same mechanisms. Benches print which preset produced each
// row.
//
// Termination fallback (DESIGN.md §5.4): with practical constants a phase
// can fail to assign any vertex (the paper's constants provably exclude
// this). A stalled phase escalates — first doubling the pruning parameter,
// then running one explicit threshold-peel round (1 MPC round, threshold
// doubling until progress). Escalations are counted in the run stats and
// never weaken the measured out-degree: the bound reported is the max
// budget `a` actually used.
#pragma once

#include <cstddef>
#include <vector>

#include "core/layering.hpp"
#include "core/partial_layering.hpp"
#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct PipelineParams {
  std::size_t k = 1;  ///< density parameter; guarantees need k ≥ λ(G)

  double budget_exponent = 3.0;      ///< B = k^e   (paper: 100)
  std::size_t min_budget = 64;       ///< floor for B
  std::size_t budget_cap = 0;        ///< ceiling for B; 0 → machine words S
  double layer_fraction = 0.5;       ///< L = ⌈f·log_k B⌉   (paper: 0.1)
  double steps_loglog_factor = 1.0;  ///< s ≈ f·log2 log2 n (paper: 10)
  double peel_rounds_factor = 2.0;   ///< Stage-1 rounds = ⌈f·log2(k+1)⌉ (100)
  double boost_exponent = 2.0;       ///< B ← B^e between phases (paper: 100)
  std::size_t max_phases = 64;       ///< loop guards (paper: O(log log n))

  static PipelineParams practical(std::size_t k);
  static PipelineParams paper(std::size_t k);

  std::size_t derive_budget(std::size_t words_per_machine) const;
  Layer derive_layers(std::size_t budget) const;
  std::size_t derive_steps(std::size_t n, Layer layers) const;
};

struct LayeringRunStats {
  std::size_t phases = 0;            ///< Lemma 3.15 boosting phases
  std::size_t partial_iterations = 0;///< Lemma 3.14 inner iterations
  std::size_t fallback_peel_rounds = 0;
  std::size_t escalations = 0;
  std::size_t max_budget_used = 0;   ///< largest B across phases
};

struct PartialPipelineResult {
  LayerAssignment assignment;       ///< partial: unassigned stay at ∞
  std::size_t outdegree_bound = 0;  ///< max a over iterations
  LayeringRunStats stats;
};

struct CompleteLayeringResult {
  LayerAssignment assignment;  ///< complete: every vertex finite
  std::size_t outdegree_bound = 0;
  LayeringRunStats stats;
};

/// Lemma 3.13: one PartialLayerAssignment call with derived (B, L, s).
PartialLayeringResult run_partial_once(const graph::Graph& g,
                                       const PipelineParams& p,
                                       std::size_t budget,
                                       mpc::MpcContext& ctx);

/// Lemma 3.14: iterate Lemma 3.13 on the unassigned residue, offsetting
/// layers between iterations, until the residue is empty or the phase
/// budget of iterations is exhausted.
PartialPipelineResult run_partial_iterated(const graph::Graph& g,
                                           const PipelineParams& p,
                                           std::size_t budget,
                                           mpc::MpcContext& ctx);

/// Lemma 3.15: Stage-1 threshold peeling, then Lemma 3.14 phases with
/// budget boosting until every vertex is assigned. The result satisfies
/// the decay property (tested, not assumed) and out-degree ≤ the reported
/// bound (checked in debug builds).
CompleteLayeringResult complete_layering(const graph::Graph& g,
                                         const PipelineParams& p,
                                         mpc::MpcContext& ctx);

}  // namespace arbor::core
