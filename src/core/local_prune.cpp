#include "core/local_prune.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace arbor::core {

TreeView local_prune(const TreeView& tree, std::size_t k) {
  using NodeId = TreeView::NodeId;
  const std::size_t n = tree.size();

  // The recursion's decision at every node x depends only on the pruned
  // sizes of x's children, so we evaluate bottom-up. The arena invariant
  // (parent id < child id, established by TreeView's constructors and
  // attach()) makes a reverse scan a valid bottom-up order.
  std::vector<std::size_t> pruned_size(n, 1);
  std::vector<std::vector<NodeId>> kept_children(n);

  for (std::size_t i = n; i-- > 0;) {
    const auto x = static_cast<NodeId>(i);
    const auto& children = tree.node(x).children;
    for (NodeId c : children)
      ARBOR_CHECK_MSG(c > x, "arena order violated: child precedes parent");
    if (children.size() <= k) {
      // Rule 1: return the single-node tree — drop all children.
      pruned_size[x] = 1;
      continue;
    }
    // Rule 2: drop the k largest pruned child subtrees.
    std::vector<NodeId> order(children.begin(), children.end());
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      if (pruned_size[a] != pruned_size[b])
        return pruned_size[a] > pruned_size[b];
      if (tree.vertex_of(a) != tree.vertex_of(b))
        return tree.vertex_of(a) < tree.vertex_of(b);
      return a < b;
    });
    order.erase(order.begin(),
                order.begin() + static_cast<std::ptrdiff_t>(k));
    std::size_t total = 1;
    for (NodeId c : order) total += pruned_size[c];
    pruned_size[x] = total;
    kept_children[x] = std::move(order);
  }

  // Top-down: materialize the kept nodes into a fresh arena (preorder keeps
  // the parent-before-child invariant for downstream passes).
  std::vector<TreeView::Node> out;
  out.reserve(pruned_size[0]);
  // Stack of (source node, parent id in `out`).
  std::vector<std::pair<NodeId, NodeId>> stack{
      {tree.root(), TreeView::kNoNode}};
  while (!stack.empty()) {
    const auto [src, parent] = stack.back();
    stack.pop_back();
    const auto id = static_cast<NodeId>(out.size());
    const std::uint32_t depth =
        parent == TreeView::kNoNode ? 0 : out[parent].depth + 1;
    out.push_back(TreeView::Node{tree.vertex_of(src), parent, depth, {}});
    if (parent != TreeView::kNoNode) out[parent].children.push_back(id);
    // Push in reverse so children materialize in their kept order.
    for (auto it = kept_children[src].rbegin();
         it != kept_children[src].rend(); ++it)
      stack.emplace_back(*it, id);
  }
  ARBOR_CHECK(out.size() == pruned_size[0]);
  return TreeView::from_nodes(std::move(out));
}

}  // namespace arbor::core
