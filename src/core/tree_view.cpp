#include "core/tree_view.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace arbor::core {

TreeView TreeView::single(graph::VertexId v) {
  TreeView t;
  t.nodes_.push_back(Node{v, kNoNode, 0, {}});
  return t;
}

TreeView TreeView::star(graph::VertexId v,
                        std::span<const graph::VertexId> neighbors) {
  TreeView t;
  t.nodes_.reserve(neighbors.size() + 1);
  t.nodes_.push_back(Node{v, kNoNode, 0, {}});
  for (graph::VertexId w : neighbors) {
    const auto id = static_cast<NodeId>(t.nodes_.size());
    t.nodes_.push_back(Node{w, 0, 1, {}});
    t.nodes_[0].children.push_back(id);
  }
  return t;
}

std::uint32_t TreeView::height() const noexcept {
  std::uint32_t h = 0;
  for (const Node& nd : nodes_) h = std::max(h, nd.depth);
  return h;
}

std::vector<TreeView::NodeId> TreeView::leaves_at_depth(
    std::uint32_t depth) const {
  std::vector<NodeId> out;
  for (NodeId x = 0; x < nodes_.size(); ++x)
    if (nodes_[x].depth == depth && nodes_[x].children.empty())
      out.push_back(x);
  return out;
}

TreeView TreeView::attach(
    std::span<const std::pair<NodeId, const TreeView*>> attachments) const {
  // Validate the preconditions of Definition 2.5.
  std::unordered_set<NodeId> leaf_set;
  for (const auto& [leaf, tree] : attachments) {
    ARBOR_CHECK_MSG(leaf < nodes_.size(), "attach: no such node");
    ARBOR_CHECK_MSG(nodes_[leaf].children.empty(), "attach: not a leaf");
    ARBOR_CHECK_MSG(leaf_set.insert(leaf).second,
                    "attach: duplicate leaf");
    ARBOR_CHECK_MSG(tree != nullptr && tree->size() >= 1,
                    "attach: empty replacement tree");
    ARBOR_CHECK_MSG(tree->root_vertex() == nodes_[leaf].maps_to,
                    "attach: replacement root maps to different vertex");
  }

  // Copy this tree, then splice each replacement under the leaf's parent.
  // The leaf itself is *replaced* by the replacement's root (same mapping),
  // so we reuse the leaf's slot for the root and append the rest.
  TreeView out;
  out.nodes_ = nodes_;
  for (const auto& [leaf, tree] : attachments) {
    const std::uint32_t base_depth = out.nodes_[leaf].depth;
    // Map replacement-node-id -> id in `out`.
    std::vector<NodeId> new_id(tree->size());
    new_id[0] = leaf;  // root reuses the leaf slot; parent/depth unchanged
    for (NodeId x = 1; x < tree->size(); ++x) {
      new_id[x] = static_cast<NodeId>(out.nodes_.size());
      const Node& src = tree->nodes_[x];
      out.nodes_.push_back(Node{src.maps_to, new_id[src.parent],
                                base_depth + src.depth, {}});
    }
    for (NodeId x = 1; x < tree->size(); ++x)
      out.nodes_[new_id[tree->nodes_[x].parent]].children.push_back(
          new_id[x]);
  }
  return out;
}

std::size_t TreeView::missing_count(const graph::Graph& g, NodeId x) const {
  const Node& nd = nodes_.at(x);
  const std::size_t deg = g.degree(nd.maps_to);
  ARBOR_CHECK_MSG(nd.children.size() <= deg,
                  "more children than graph neighbors — invalid mapping");
  return deg - nd.children.size();
}

bool TreeView::is_valid_mapping(const graph::Graph& g) const {
  std::unordered_set<std::uint64_t> sibling_guard;
  for (NodeId x = 0; x < nodes_.size(); ++x) {
    const Node& nd = nodes_[x];
    if (nd.maps_to >= g.num_vertices()) return false;
    if (nd.parent != kNoNode) {
      // Tree edge must map to a graph edge (Def 2.3 condition 1).
      if (!g.has_edge(nd.maps_to, nodes_[nd.parent].maps_to)) return false;
    }
    // Children of x must map to distinct vertices (condition 2).
    sibling_guard.clear();
    for (NodeId c : nd.children) {
      if (!sibling_guard.insert(nodes_[c].maps_to).second) return false;
    }
  }
  return true;
}

std::vector<bool> TreeView::monotonically_reachable(
    const LayerAssignment& assignment) const {
  // Walk top-down: a node is reachable iff its parent is reachable and the
  // layers strictly DECREASE going away from the root (Def 2.7 reads the
  // path from the node up to the root as strictly increasing).
  std::vector<bool> reachable(nodes_.size(), false);
  const auto layer_of = [&](NodeId x) {
    return assignment.layer.at(nodes_[x].maps_to);
  };
  if (!nodes_.empty())
    reachable[0] = layer_of(0) != kInfiniteLayer;
  for (NodeId x = 0; x < nodes_.size(); ++x) {
    if (!reachable[x]) continue;
    for (NodeId c : nodes_[x].children) {
      const Layer lc = layer_of(c);
      reachable[c] = lc != kInfiniteLayer && lc < layer_of(x);
    }
  }
  return reachable;
}

bool TreeView::structurally_sound() const {
  if (nodes_.empty()) return false;
  if (nodes_[0].parent != kNoNode || nodes_[0].depth != 0) return false;
  std::vector<std::size_t> child_seen(nodes_.size(), 0);
  for (NodeId x = 1; x < nodes_.size(); ++x) {
    const Node& nd = nodes_[x];
    if (nd.parent >= x) return false;  // arena invariant: parent before child
    if (nodes_[nd.parent].depth + 1 != nd.depth) return false;
    const auto& siblings = nodes_[nd.parent].children;
    if (std::find(siblings.begin(), siblings.end(), x) == siblings.end())
      return false;
    ++child_seen[nd.parent];
  }
  for (NodeId x = 0; x < nodes_.size(); ++x)
    if (child_seen[x] != nodes_[x].children.size()) return false;
  return true;
}

TreeView TreeView::from_nodes(std::vector<Node> nodes) {
  TreeView t;
  t.nodes_ = std::move(nodes);
  ARBOR_CHECK_MSG(t.structurally_sound(), "from_nodes: malformed arena");
  return t;
}

std::vector<std::uint64_t> TreeView::serialize() const {
  std::vector<std::uint64_t> words;
  words.reserve(serialized_words());
  words.push_back(size());
  for (const Node& nd : nodes_) {
    words.push_back(nd.maps_to);
    words.push_back(nd.parent);
  }
  return words;
}

TreeView TreeView::deserialize(std::span<const std::uint64_t> words) {
  ARBOR_CHECK_MSG(!words.empty(), "deserialize: empty payload");
  const auto count = static_cast<std::size_t>(words[0]);
  ARBOR_CHECK_MSG(words.size() == 2 * count + 1,
                  "deserialize: length mismatch");
  std::vector<Node> nodes(count);
  for (std::size_t x = 0; x < count; ++x) {
    nodes[x].maps_to = static_cast<graph::VertexId>(words[1 + 2 * x]);
    nodes[x].parent = static_cast<NodeId>(words[2 + 2 * x]);
  }
  // Rebuild children lists and depths from the parent pointers.
  for (NodeId x = 1; x < count; ++x) {
    ARBOR_CHECK_MSG(nodes[x].parent < x,
                    "deserialize: parent-before-child violated");
    nodes[x].depth = nodes[nodes[x].parent].depth + 1;
    nodes[nodes[x].parent].children.push_back(x);
  }
  return from_nodes(std::move(nodes));
}

}  // namespace arbor::core
