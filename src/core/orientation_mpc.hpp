// Theorem 1.1: the end-to-end scalable-MPC orientation algorithm.
//
// Pipeline (paper, proof of Theorem 1.1):
//  1. obtain k = Θ(λ): the paper assumes k ∈ [100λ, 200λ] is given (running
//     all O(log n) guesses in parallel costs only an extra log-factor of
//     global memory). We estimate k from the degeneracy oracle
//     (λ ≤ degeneracy ≤ 2λ-1) and charge that extra global factor —
//     DESIGN.md §3 records the substitution;
//  2. if k is small (≤ threshold·log n), run the Lemma 3.15 complete
//     layering directly and orient every edge toward the higher layer
//     (ties toward the higher id);
//  3. otherwise randomly partition the edges into ⌈k/log n⌉ parts
//     (Lemma 2.1), layer each part independently — in parallel, so rounds
//     count as the max over parts — and orient each edge by its own part's
//     layering. Out-degrees add across parts:
//     O(parts · log n · log log n) = O(λ log log n).
#pragma once

#include <cstdint>

#include "core/density_estimate.hpp"
#include "core/layering_pipeline.hpp"
#include "graph/graph.hpp"
#include "graph/orientation.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct OrientationParams {
  /// Density parameter; 0 → estimate per `estimator`.
  std::size_t k = 0;
  KEstimator estimator = KEstimator::kDegeneracyOracle;
  /// Template for the per-part layering (its k field is overwritten).
  PipelineParams pipeline = PipelineParams::practical(1);
  /// Edge-partition when k > high_k_factor · log2(n).
  double high_k_factor = 4.0;
  std::uint64_t seed = 0x0e1e57ULL;
};

struct MpcOrientationResult {
  graph::Orientation orientation;
  /// Complete layering of the single-part path; for the partitioned path,
  /// the layering of part 0 (per-part layerings are independent).
  LayerAssignment layering;
  std::size_t parts = 1;
  std::size_t k_used = 0;
  /// Sum over parts of the per-part layering out-degree bounds — the
  /// guaranteed max out-degree of the returned orientation.
  std::size_t outdegree_bound = 0;
  LayeringRunStats stats;
};

MpcOrientationResult mpc_orient(const graph::Graph& g,
                                const OrientationParams& params,
                                mpc::MpcContext& ctx);

/// The paper's k-estimate contract: some k ∈ [λ, 2λ] via the degeneracy
/// oracle (exposed for tests/benches that want the same estimate).
std::size_t estimate_density_parameter(const graph::Graph& g);

}  // namespace arbor::core
