#include "core/layering.hpp"

#include <algorithm>
#include <numeric>

#include "local/peeling.hpp"
#include "util/assert.hpp"

namespace arbor::core {

std::size_t LayerAssignment::assigned_count() const {
  std::size_t count = 0;
  for (Layer l : layer)
    if (l != kInfiniteLayer) ++count;
  return count;
}

bool LayerAssignment::is_complete() const {
  return assigned_count() == layer.size();
}

std::size_t assignment_outdegree(const graph::Graph& g,
                                 const LayerAssignment& assignment) {
  ARBOR_CHECK(assignment.layer.size() == g.num_vertices());
  std::size_t worst = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const Layer lv = assignment.layer[v];
    if (lv == kInfiniteLayer) continue;
    std::size_t count = 0;
    for (graph::VertexId u : g.neighbors(v))
      if (assignment.layer[u] >= lv) ++count;  // ∞ = 0xffff… sorts highest
    worst = std::max(worst, count);
  }
  return worst;
}

bool is_valid_partial_assignment(const graph::Graph& g,
                                 const LayerAssignment& assignment,
                                 std::size_t d) {
  if (assignment.layer.size() != g.num_vertices()) return false;
  for (Layer l : assignment.layer) {
    if (l == kInfiniteLayer) continue;
    if (l < 1 || l > assignment.num_layers) return false;
  }
  return assignment_outdegree(g, assignment) <= d;
}

LayerAssignment min_combine(const LayerAssignment& a,
                            const LayerAssignment& b) {
  ARBOR_CHECK(a.layer.size() == b.layer.size());
  LayerAssignment out;
  out.num_layers = std::max(a.num_layers, b.num_layers);
  out.layer.resize(a.layer.size());
  for (std::size_t i = 0; i < a.layer.size(); ++i)
    out.layer[i] = std::min(a.layer[i], b.layer[i]);  // ∞ is the max value
  return out;
}

std::vector<std::size_t> tail_layer_counts(const LayerAssignment& assignment) {
  const Layer l_max = assignment.num_layers;
  std::vector<std::size_t> tail(l_max + 2, 0);
  for (Layer l : assignment.layer) {
    const Layer effective = (l == kInfiniteLayer) ? l_max + 1 : l;
    // v contributes to every j ≤ effective; accumulate as histogram then
    // suffix-sum.
    ARBOR_CHECK(effective <= l_max + 1);
    ++tail[effective];
  }
  for (std::size_t j = tail.size() - 1; j >= 2; --j) tail[j - 1] += tail[j];
  return tail;  // tail[j] = |{v : ℓ(v) ≥ j}| for j in [1, L+1]
}

namespace {

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? ~std::uint64_t{0} : sum;
}

/// Shared DP: paths are strictly monotone in ℓ, so processing vertices
/// sorted by layer is a topological order. `incoming_smaller` selects the
/// NumPathsIn recurrence (sum over lower-layer neighbors) vs NumPathsOut
/// (sum over higher-layer neighbors, processed in reverse).
std::vector<std::uint64_t> count_paths(const graph::Graph& g,
                                       const LayerAssignment& assignment,
                                       bool incoming_smaller) {
  ARBOR_CHECK(assignment.layer.size() == g.num_vertices());
  std::vector<graph::VertexId> order;
  order.reserve(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (assignment.layer[v] != kInfiniteLayer) order.push_back(v);
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::VertexId a, graph::VertexId b) {
                     return assignment.layer[a] < assignment.layer[b];
                   });
  if (!incoming_smaller) std::reverse(order.begin(), order.end());

  std::vector<std::uint64_t> count(g.num_vertices(), 0);
  for (graph::VertexId v : order) {
    const Layer lv = assignment.layer[v];
    std::uint64_t total = 1;  // the single-vertex path
    for (graph::VertexId u : g.neighbors(v)) {
      const Layer lu = assignment.layer[u];
      if (lu == kInfiniteLayer) continue;
      const bool feeds = incoming_smaller ? (lu < lv) : (lu > lv);
      if (feeds) total = saturating_add(total, count[u]);
    }
    count[v] = total;
  }
  return count;
}

}  // namespace

std::vector<std::uint64_t> num_paths_in(const graph::Graph& g,
                                        const LayerAssignment& assignment) {
  return count_paths(g, assignment, /*incoming_smaller=*/true);
}

std::vector<std::uint64_t> num_paths_out(const graph::Graph& g,
                                         const LayerAssignment& assignment) {
  return count_paths(g, assignment, /*incoming_smaller=*/false);
}

LayerAssignment reference_peeling_layering(const graph::Graph& g,
                                           std::size_t k,
                                           std::size_t max_rounds) {
  const local::PeelingResult peel =
      local::peel_by_threshold(g, k, max_rounds);
  LayerAssignment out;
  out.num_layers = peel.num_layers;
  out.layer.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    out.layer[v] = peel.layer[v] == 0 ? kInfiniteLayer : peel.layer[v];
  return out;
}

}  // namespace arbor::core
