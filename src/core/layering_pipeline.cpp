#include "core/layering_pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace arbor::core {

namespace {

double log2_safe(double x) { return std::log2(std::max(x, 2.0)); }

/// Overflow-safe integer power with saturation at `cap`.
std::size_t pow_clamped(std::size_t base, double exponent, std::size_t cap) {
  const double value =
      std::pow(static_cast<double>(std::max<std::size_t>(base, 2)), exponent);
  if (!(value < static_cast<double>(cap))) return cap;
  return static_cast<std::size_t>(value);
}

}  // namespace

PipelineParams PipelineParams::practical(std::size_t k) {
  PipelineParams p;
  p.k = std::max<std::size_t>(k, 1);
  return p;
}

PipelineParams PipelineParams::paper(std::size_t k) {
  PipelineParams p;
  p.k = std::max<std::size_t>(k, 1);
  p.budget_exponent = 100.0;
  p.layer_fraction = 0.1;
  p.steps_loglog_factor = 10.0;
  p.peel_rounds_factor = 100.0;
  p.boost_exponent = 100.0;
  return p;
}

std::size_t PipelineParams::derive_budget(
    std::size_t words_per_machine) const {
  const std::size_t cap =
      budget_cap != 0 ? budget_cap
                      : std::max<std::size_t>(words_per_machine, min_budget);
  const std::size_t raw = pow_clamped(k, budget_exponent, cap);
  return std::clamp(raw, std::min(min_budget, cap), cap);
}

Layer PipelineParams::derive_layers(std::size_t budget) const {
  const double base = static_cast<double>(std::max<std::size_t>(k, 2));
  const double l =
      layer_fraction * std::log(static_cast<double>(std::max<std::size_t>(
                           budget, 2))) /
      std::log(base);
  return std::max<Layer>(1, static_cast<Layer>(std::ceil(l)));
}

std::size_t PipelineParams::derive_steps(std::size_t n, Layer layers) const {
  // Lemma 3.7 requires s > log2 L; the paper sets s = ⌈10·log log n⌉.
  const auto from_loglog = static_cast<std::size_t>(
      std::ceil(steps_loglog_factor *
                log2_safe(log2_safe(static_cast<double>(std::max<std::size_t>(
                    n, 4))))));
  const auto from_layers = static_cast<std::size_t>(
      std::floor(std::log2(static_cast<double>(std::max<Layer>(layers, 1))))) +
                           1;
  return std::max({from_loglog, from_layers, std::size_t{2}});
}

PartialLayeringResult run_partial_once(const graph::Graph& g,
                                       const PipelineParams& p,
                                       std::size_t budget,
                                       mpc::MpcContext& ctx) {
  PartialLayeringParams params;
  params.budget = std::max<std::size_t>(budget, 4);
  params.prune_k = std::max<std::size_t>(p.k, 1);
  params.num_layers = p.derive_layers(params.budget);
  params.steps = p.derive_steps(g.num_vertices(), params.num_layers);
  return partial_layer_assignment(g, params, ctx);
}

PartialPipelineResult run_partial_iterated(const graph::Graph& g,
                                           const PipelineParams& p,
                                           std::size_t budget,
                                           mpc::MpcContext& ctx) {
  trace::Span stage_span =
      trace::Tracer::global().span("mpc", "layering.partial_iterated");
  const std::size_t n = g.num_vertices();
  PartialPipelineResult result;
  result.assignment.layer.assign(n, kInfiniteLayer);
  result.assignment.num_layers = 0;

  // Unassigned residue, as original vertex ids.
  std::vector<graph::VertexId> residue(n);
  for (graph::VertexId v = 0; v < n; ++v) residue[v] = v;

  Layer offset = 0;
  PipelineParams current = p;
  for (std::size_t iter = 0; iter < p.max_phases && !residue.empty();
       ++iter) {
    ++result.stats.partial_iterations;
    const auto sub = g.induced(residue);
    const PartialLayeringResult partial =
        run_partial_once(sub.graph, current, budget, ctx);
    result.outdegree_bound =
        std::max(result.outdegree_bound, partial.outdegree_bound);

    std::vector<graph::VertexId> next_residue;
    for (graph::VertexId sv = 0; sv < sub.graph.num_vertices(); ++sv) {
      const Layer l = partial.assignment.layer[sv];
      if (l == kInfiniteLayer)
        next_residue.push_back(sub.to_original[sv]);
      else
        result.assignment.layer[sub.to_original[sv]] = offset + l;
    }
    offset += partial.assignment.num_layers;

    if (next_residue.size() == residue.size()) {
      // Stall: no vertex assigned. Escalate (DESIGN.md §5.4): double the
      // pruning parameter first; if the subgraph's min degree still beats
      // the budget, the caller's fallback peeling will clear it.
      ++result.stats.escalations;
      current.k = std::max<std::size_t>(current.k * 2, current.k + 1);
    }
    residue = std::move(next_residue);
  }

  result.assignment.num_layers = offset;
  return result;
}

CompleteLayeringResult complete_layering(const graph::Graph& g,
                                         const PipelineParams& p,
                                         mpc::MpcContext& ctx) {
  const std::size_t n = g.num_vertices();
  CompleteLayeringResult result;
  result.assignment.layer.assign(n, kInfiniteLayer);
  result.assignment.num_layers = 0;

  std::vector<std::size_t> live_degree(n);
  std::vector<bool> assigned(n, false);
  for (graph::VertexId v = 0; v < n; ++v) live_degree[v] = g.degree(v);
  std::size_t remaining = n;
  Layer offset = 0;

  // One synchronous threshold-peel round over the unassigned residue:
  // assigns layer `offset+1` to all residue vertices of residual degree
  // ≤ threshold. Charged as one MPC round (it is one LOCAL round simulated
  // directly). Returns the number of vertices assigned.
  const auto peel_round = [&](std::size_t threshold) -> std::size_t {
    std::vector<graph::VertexId> peeled;
    for (graph::VertexId v = 0; v < n; ++v)
      if (!assigned[v] && live_degree[v] <= threshold) peeled.push_back(v);
    if (peeled.empty()) return 0;
    ++offset;
    for (graph::VertexId v : peeled) {
      assigned[v] = true;
      result.assignment.layer[v] = offset;
    }
    for (graph::VertexId v : peeled)
      for (graph::VertexId w : g.neighbors(v))
        if (!assigned[w]) --live_degree[w];
    remaining -= peeled.size();
    ctx.charge(1, "layering.peel");
    return peeled.size();
  };

  // ---- Stage 1: initial peeling, ⌈f·log2(k+1)⌉ rounds at threshold k. ----
  const auto stage1_rounds = static_cast<std::size_t>(std::ceil(
      p.peel_rounds_factor *
      std::log2(static_cast<double>(p.k + 1) + 1.0)));
  for (std::size_t r = 0; r < stage1_rounds && remaining > 0; ++r) {
    ++result.stats.fallback_peel_rounds;  // Stage-1 peels counted here too
    peel_round(p.k);
  }

  // ---- Stage 2: Lemma 3.14 phases with budget boosting. ----
  std::size_t budget = p.derive_budget(ctx.config().words_per_machine);
  const std::size_t budget_cap =
      p.budget_cap != 0
          ? p.budget_cap
          : std::max<std::size_t>(ctx.config().words_per_machine,
                                  p.min_budget);
  std::size_t peel_threshold = std::max<std::size_t>(p.k, 1);

  for (std::size_t phase = 0; phase < p.max_phases && remaining > 0;
       ++phase) {
    ++result.stats.phases;
    result.stats.max_budget_used = std::max(result.stats.max_budget_used,
                                            budget);

    std::vector<graph::VertexId> residue;
    residue.reserve(remaining);
    for (graph::VertexId v = 0; v < n; ++v)
      if (!assigned[v]) residue.push_back(v);

    const auto sub = g.induced(residue);
    const PartialPipelineResult partial =
        run_partial_iterated(sub.graph, p, budget, ctx);
    result.outdegree_bound =
        std::max(result.outdegree_bound, partial.outdegree_bound);
    result.stats.partial_iterations += partial.stats.partial_iterations;
    result.stats.escalations += partial.stats.escalations;

    std::size_t newly_assigned = 0;
    for (graph::VertexId sv = 0; sv < sub.graph.num_vertices(); ++sv) {
      const Layer l = partial.assignment.layer[sv];
      if (l == kInfiniteLayer) continue;
      const graph::VertexId v = sub.to_original[sv];
      assigned[v] = true;
      result.assignment.layer[v] = offset + l;
      ++newly_assigned;
      // Keep residual degrees consistent for potential fallback peeling.
      for (graph::VertexId w : g.neighbors(v))
        if (!assigned[w]) --live_degree[w];
      --remaining;
    }
    offset += partial.assignment.num_layers;

    if (newly_assigned == 0 && remaining > 0) {
      // Stall fallback: explicit peel rounds, raising the threshold until
      // one makes progress. Terminates because the threshold eventually
      // reaches the max residual degree.
      ++result.stats.escalations;
      while (remaining > 0) {
        ++result.stats.fallback_peel_rounds;
        if (peel_round(peel_threshold) > 0) break;
        peel_threshold *= 2;
      }
    }

    budget = std::min(
        pow_clamped(budget, p.boost_exponent, budget_cap), budget_cap);
  }

  // Hard guarantee of completeness: exhaust any remainder with doubling
  // threshold peeling (only reachable when max_phases is set very low).
  while (remaining > 0) {
    ++result.stats.fallback_peel_rounds;
    if (peel_round(peel_threshold) == 0) peel_threshold *= 2;
  }

  result.assignment.num_layers = offset;
  ARBOR_CHECK(result.assignment.is_complete());
  // The orientation bound also covers fallback peel layers: a vertex peeled
  // at threshold t has at most t unassigned neighbors at that moment, i.e.
  // at most t neighbors in its own or later layers.
  result.outdegree_bound =
      std::max({result.outdegree_bound, peel_threshold, p.k});
  return result;
}

}  // namespace arbor::core
