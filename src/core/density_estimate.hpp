// MPC-native density-parameter estimation — the paper's preamble step.
//
// Theorem 1.1's proof opens with: "Using an extra O(log n) factor in the
// global memory, we can assume that we are given k with
// k ∈ [100λ(G), 200λ(G)]" — i.e. run the algorithm for every guess
// k = 2^i in parallel and keep the smallest guess that works (see also
// [Gha, Exercise 2.3]). This module implements that preamble concretely:
//
//   For each guess k* = 1, 2, 4, ... (all in parallel), run threshold
//   peeling at threshold f·k* for R = ⌈c·log2 n⌉ rounds. Since threshold
//   ≥ 4λ removes at least half of the remaining vertices per round, the
//   guess k* ≥ λ always completes; and any completing guess has
//   degeneracy ≤ f·k*, hence λ ≤ f·k*. The smallest completing guess k*
//   therefore satisfies λ/f ≤ k* ≤ 2λ, and k = f·k* ∈ [λ, 2f·λ] — a
//   constant-factor density estimate obtained in O(log n) PARALLEL rounds
//   (the guesses share the rounds; they multiply only the global memory,
//   which is the paper's "extra O(log n) factor").
//
// Note the O(log n) rounds: the estimate is NOT the bottleneck the paper
// is fighting (it is charged rounds = R once), but for the benches we
// also expose the degeneracy-oracle estimator which is free of that
// additive term; DESIGN.md §3 records both.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

/// How the end-to-end algorithms obtain k = Θ(λ) when not supplied.
enum class KEstimator {
  /// Sequential degeneracy oracle: k ∈ [λ, 2λ-1], charged as the paper's
  /// guess-in-parallel (1 round + ×log n global memory). The default.
  kDegeneracyOracle,
  /// The fully MPC-native parallel-guessing preamble below: k ∈ [λ, 8λ],
  /// costs its O(log n) round budget explicitly.
  kParallelGuess,
};

struct DensityEstimate {
  std::size_t k = 1;             ///< the estimate: λ ≤ k ≤ 2f·λ
  std::size_t smallest_guess = 1;  ///< k* — smallest completing power of 2
  std::size_t guesses = 0;       ///< parallel guesses executed
  std::size_t rounds_budget = 0;  ///< R
};

/// `threshold_factor` is f above (≥ 4 for the completion guarantee);
/// `rounds_factor` scales R = ⌈rounds_factor·log2 n⌉ + 1.
DensityEstimate estimate_density_mpc(const graph::Graph& g,
                                     mpc::MpcContext& ctx,
                                     double threshold_factor = 4.0,
                                     double rounds_factor = 1.0);

}  // namespace arbor::core
