#include "core/density_estimate.hpp"

#include <cmath>

#include "local/peeling.hpp"
#include "util/assert.hpp"

namespace arbor::core {

DensityEstimate estimate_density_mpc(const graph::Graph& g,
                                     mpc::MpcContext& ctx,
                                     double threshold_factor,
                                     double rounds_factor) {
  ARBOR_CHECK_MSG(threshold_factor >= 4.0,
                  "completion guarantee needs threshold >= 4*guess");
  const std::size_t n = g.num_vertices();
  DensityEstimate estimate;
  if (n == 0 || g.num_edges() == 0) {
    estimate.k = 1;
    estimate.rounds_budget = 1;
    ctx.charge(1, "density_estimate");
    return estimate;
  }

  const auto rounds_budget = static_cast<std::size_t>(std::ceil(
                                 rounds_factor *
                                 std::log2(static_cast<double>(n)))) +
                             1;
  estimate.rounds_budget = rounds_budget;

  // All guesses run in parallel on disjoint machine groups; the guess with
  // the largest threshold always completes (threshold ≥ max degree at
  // k* ≥ Δ), so the loop terminates. Rounds are charged ONCE (max over the
  // parallel runs = the budget); global memory gets the ×guesses factor.
  std::size_t guess = 1;
  for (;; guess *= 2) {
    ++estimate.guesses;
    const auto threshold = static_cast<std::size_t>(
        threshold_factor * static_cast<double>(guess));
    const local::PeelingResult peel =
        local::peel_by_threshold(g, threshold, rounds_budget);
    if (peel.complete) {
      estimate.smallest_guess = guess;
      break;
    }
    ARBOR_CHECK_MSG(guess < 2 * n, "density estimate failed to converge");
  }

  estimate.k = static_cast<std::size_t>(
      threshold_factor * static_cast<double>(estimate.smallest_guess));
  ctx.charge(rounds_budget, "density_estimate");
  ctx.note_global_words((n + 2 * g.num_edges()) * estimate.guesses);
  return estimate;
}

}  // namespace arbor::core
