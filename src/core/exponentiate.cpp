#include "core/exponentiate.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/local_prune.hpp"
#include "mpc/bundle_fetch.hpp"
#include "util/assert.hpp"

namespace arbor::core {

ExponentiateResult exponentiate_and_local_prune(const graph::Graph& g,
                                                const ExponentiateParams& p,
                                                mpc::MpcContext& ctx) {
  ARBOR_CHECK(p.budget >= 2);
  const std::size_t n = g.num_vertices();
  const auto sqrt_budget = static_cast<std::size_t>(
      std::floor(std::sqrt(static_cast<double>(p.budget))));

  ExponentiateResult result;
  result.trees.reserve(n);
  result.active.assign(n, false);

  // Initialization: star for vertices with degree < B, single node (and
  // inactive) otherwise.
  for (graph::VertexId v = 0; v < n; ++v) {
    if (g.degree(v) < p.budget) {
      result.trees.push_back(TreeView::star(v, g.neighbors(v)));
      result.active[v] = true;
    } else {
      result.trees.push_back(TreeView::single(v));
    }
  }
  ctx.charge(1, "exponentiate.init");

  for (std::size_t step = 1; step <= p.steps; ++step) {
    ExponentiateStepStats stats;

    // ---- Local prune phase (no communication). ----
    std::vector<TreeView> pruned;
    pruned.reserve(n);
    for (graph::VertexId v = 0; v < n; ++v) {
      pruned.push_back(local_prune(result.trees[v], p.prune_k));
      if (pruned.back().size() > sqrt_budget) result.active[v] = false;
    }

    // ---- Exponentiation / attachment phase. ----
    // Frontier leaves sit at distance exactly 2^{step-1}.
    const auto frontier_depth =
        static_cast<std::uint32_t>(std::size_t{1} << (step - 1));

    // Collect each active vertex's (distinct) attachment targets; ship the
    // pruned trees via the Lemma 4.1 primitive for honest round/memory
    // accounting, then attach from the in-memory trees.
    std::vector<std::vector<graph::VertexId>> requests(n);
    std::vector<std::vector<std::vector<TreeView::NodeId>>> leaf_groups(n);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!result.active[v]) continue;
      std::unordered_map<graph::VertexId, std::size_t> target_slot;
      for (TreeView::NodeId leaf : pruned[v].leaves_at_depth(frontier_depth)) {
        const graph::VertexId u = pruned[v].vertex_of(leaf);
        if (!result.active[u]) continue;  // only active vertices expand
        auto [it, inserted] =
            target_slot.emplace(u, requests[v].size());
        if (inserted) {
          requests[v].push_back(u);
          leaf_groups[v].emplace_back();
        }
        leaf_groups[v][it->second].push_back(leaf);
      }
    }

    // Ship the serialized pruned trees through the Lemma 4.1 primitive and
    // attach from the RECEIVED payloads — the attachment below never
    // touches pruned[u] directly, so the simulation's data flow matches
    // the distributed algorithm word-for-word.
    std::vector<std::vector<mpc::Word>> bundles(n);
    for (graph::VertexId v = 0; v < n; ++v)
      bundles[v] = pruned[v].serialize();
    const mpc::BundleFetchResult fetch =
        mpc::fetch_bundles(ctx, bundles, requests, "exponentiate.fetch");
    stats.fetch_rounds = fetch.stats.rounds_charged;

    for (graph::VertexId v = 0; v < n; ++v) {
      if (!result.active[v]) {
        result.trees[v] = std::move(pruned[v]);
        continue;
      }
      std::vector<TreeView> received;
      received.reserve(requests[v].size());
      for (const auto& payload : fetch.delivered[v])
        received.push_back(TreeView::deserialize(payload));
      std::vector<std::pair<TreeView::NodeId, const TreeView*>> attachments;
      for (std::size_t slot = 0; slot < requests[v].size(); ++slot) {
        for (TreeView::NodeId leaf : leaf_groups[v][slot])
          attachments.emplace_back(leaf, &received[slot]);
      }
      result.trees[v] = pruned[v].attach(attachments);
      // Claim 3.4: the budget holds by construction; enforce it.
      ARBOR_CHECK_MSG(result.trees[v].size() <= p.budget,
                      "tree exceeded budget B — Claim 3.4 violated");
      ARBOR_DCHECK(result.trees[v].is_valid_mapping(g));  // Claim 3.3
    }

    for (graph::VertexId v = 0; v < n; ++v) {
      const std::size_t sz = result.trees[v].size();
      stats.max_tree_nodes = std::max(stats.max_tree_nodes, sz);
      stats.total_tree_nodes += sz;
      if (result.active[v]) ++stats.active_vertices;
    }
    result.max_tree_nodes =
        std::max(result.max_tree_nodes, stats.max_tree_nodes);
    // Claim 3.5 accounting: every vertex's tree lives on its machine.
    ctx.note_global_words(2 * stats.total_tree_nodes + n);
    ctx.note_local_words(2 * stats.max_tree_nodes + 1);
    result.per_step.push_back(stats);
  }

  return result;
}

}  // namespace arbor::core
