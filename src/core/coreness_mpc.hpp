// Approximate core decomposition in MPC — the paper's footnote 2:
// "We comment that they state this more generally for coreness
//  decomposition, but that's done by simply running the algorithm for
//  every k = (1+ε)^i coreness/arboricity estimate in parallel."
//
// Implementation: for every guess c_i = ⌈(1+ε)^i⌉ (all guesses run in
// parallel — they share the rounds and multiply global memory, like the
// density-estimation preamble) run bounded threshold peeling at threshold
// 2·c_i for R = O(log n) rounds; a vertex's estimate is the smallest guess
// whose peel removes it. Guarantees:
//   * est(v) ≥ coreness(v)/2: if the threshold-2c peel removes v then v is
//     outside the (2c+1)-core, so coreness(v) ≤ 2c_i ≤ 2(1+ε)·est-ish;
//     more precisely coreness(v) ≤ 2·est(v).
//   * est(v) ≤ (1+ε)·coreness(v) whenever the threshold-2c peel converges
//     within R rounds for c ≥ coreness(v) (it removes everything outside
//     the (2c+1)-core; with threshold twice the core density at least a
//     constant fraction of the remainder peels per round).
// Net: a 2(1+ε)-approximation, measured against the exact oracle in the
// tests and in bench E11.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct CorenessResult {
  std::vector<std::uint32_t> estimate;  ///< per vertex
  std::size_t guesses = 0;
  std::size_t rounds_budget = 0;  ///< R (shared by the parallel guesses)
};

CorenessResult approximate_coreness(const graph::Graph& g, double epsilon,
                                    mpc::MpcContext& ctx,
                                    double rounds_factor = 2.0);

}  // namespace arbor::core
