#include "core/partial_layering.hpp"

#include <algorithm>

#include "core/partial_layer_tree.hpp"
#include "util/assert.hpp"

namespace arbor::core {

PartialLayeringResult partial_layer_assignment(
    const graph::Graph& g, const PartialLayeringParams& p,
    mpc::MpcContext& ctx) {
  ARBOR_CHECK_MSG(p.steps > 0 && (std::size_t{1} << p.steps) > p.num_layers,
                  "Lemma 3.7 requires s > log2(L)");
  const std::size_t n = g.num_vertices();

  ExponentiateParams exp_params;
  exp_params.budget = p.budget;
  exp_params.prune_k = p.prune_k;
  exp_params.steps = p.steps;
  ExponentiateResult trees = exponentiate_and_local_prune(g, exp_params, ctx);

  // Per-vertex local peeling of the tree view with a = (s+1)·k.
  const std::size_t a = (p.steps + 1) * p.prune_k;
  // (v, layer) contributions from every tree node, then min-by-key. Each
  // pair is 2 words; this is the Algorithm 4 final line in MPC form.
  std::vector<std::pair<graph::VertexId, Layer>> contributions;
  for (graph::VertexId v = 0; v < n; ++v) {
    const TreeView& tree = trees.trees[v];
    const std::vector<Layer> tree_layers =
        partial_layer_assignment_tree(g, tree, a, p.num_layers);
    for (TreeView::NodeId x = 0; x < tree.size(); ++x)
      contributions.emplace_back(tree.vertex_of(x), tree_layers[x]);
  }

  const auto combined = ctx.aggregate_by_key<graph::VertexId, Layer>(
      std::move(contributions),
      [](Layer lhs, Layer rhs) { return std::min(lhs, rhs); },
      /*words_per_item=*/2, "partial_layering.min_project");

  PartialLayeringResult result;
  result.outdegree_bound = a;
  result.max_tree_nodes = trees.max_tree_nodes;
  result.assignment.num_layers = p.num_layers;
  result.assignment.layer.assign(n, kInfiniteLayer);
  for (const auto& [v, layer] : combined) result.assignment.layer[v] = layer;

  // Claim 3.12 is a theorem, not an assumption — verify in debug builds.
  ARBOR_DCHECK(assignment_outdegree(g, result.assignment) <= a);
  return result;
}

}  // namespace arbor::core
