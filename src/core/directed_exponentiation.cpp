#include "core/directed_exponentiation.hpp"

#include <algorithm>
#include <unordered_map>

#include "mpc/bundle_fetch.hpp"
#include "util/assert.hpp"

namespace arbor::core {

namespace {

/// Distance-annotated reach set: vertex -> exact hop distance (≤ current
/// horizon). Kept sorted by vertex for deterministic wire format.
using ReachMap = std::vector<std::pair<graph::VertexId, std::uint32_t>>;

std::vector<mpc::Word> serialize_reach(const ReachMap& reach) {
  std::vector<mpc::Word> words;
  words.reserve(2 * reach.size());
  for (const auto& [v, d] : reach) {
    words.push_back(v);
    words.push_back(d);
  }
  return words;
}

}  // namespace

DirectedGatherResult directed_gather(const graph::Graph& g,
                                     const LayerAssignment& layering,
                                     const DirectedGatherParams& params,
                                     mpc::MpcContext& ctx) {
  ARBOR_CHECK(params.block_lo >= 1 && params.block_lo <= params.block_hi);
  ARBOR_CHECK(layering.layer.size() == g.num_vertices());
  const std::size_t n = g.num_vertices();

  DirectedGatherResult result;
  result.reachable.resize(n);
  result.overflowed.assign(n, false);

  const auto in_block = [&](graph::VertexId v) {
    const Layer l = layering.layer[v];
    return l >= params.block_lo && l <= params.block_hi &&
           l != kInfiniteLayer;
  };

  // Base maps: exact distances ≤ 1 (self + allowed influence neighbors).
  std::vector<ReachMap> reach(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!in_block(v)) continue;
    ReachMap& map = reach[v];
    map.emplace_back(v, 0);
    if (params.radius >= 1) {
      const Layer lv = layering.layer[v];
      for (graph::VertexId w : g.neighbors(v)) {
        const Layer lw = layering.layer[w];
        if (lw >= lv && lw <= params.block_hi && lw != kInfiniteLayer)
          map.emplace_back(w, 1);
      }
    }
    std::sort(map.begin(), map.end());
  }

  // Doubling with exact distances: composing two ≤h-bounded distance maps
  // by min-plus yields the exact ≤2h map, so after ⌈log2 radius⌉ fetches
  // every in-radius vertex carries its true hop count and the final filter
  // `dist ≤ radius` is exact for any radius, not just powers of two.
  std::size_t horizon = 1;
  while (horizon < params.radius) {
    ++result.doublings;
    std::vector<std::vector<graph::VertexId>> requests(n);
    std::vector<std::vector<mpc::Word>> bundles(n);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (!in_block(v)) continue;
      bundles[v] = serialize_reach(reach[v]);
      if (result.overflowed[v]) continue;
      requests[v].reserve(reach[v].size());
      for (const auto& [w, d] : reach[v]) requests[v].push_back(w);
    }
    const mpc::BundleFetchResult fetch =
        mpc::fetch_bundles(ctx, bundles, requests, "directed_gather.fetch");

    for (graph::VertexId v = 0; v < n; ++v) {
      if (requests[v].empty()) continue;
      std::unordered_map<graph::VertexId, std::uint32_t> best;
      best.reserve(reach[v].size() * 2);
      for (const auto& [w, d] : reach[v]) best.emplace(w, d);
      for (std::size_t slot = 0; slot < requests[v].size(); ++slot) {
        const std::uint32_t via = reach[v][slot].second;
        const auto& payload = fetch.delivered[v][slot];
        ARBOR_CHECK(payload.size() % 2 == 0);
        for (std::size_t i = 0; i < payload.size(); i += 2) {
          const auto x = static_cast<graph::VertexId>(payload[i]);
          const auto dx = static_cast<std::uint32_t>(payload[i + 1]);
          const std::uint32_t total = via + dx;
          if (total > params.radius) continue;
          auto [it, inserted] = best.emplace(x, total);
          if (!inserted && total < it->second) it->second = total;
        }
      }
      ReachMap merged(best.begin(), best.end());
      std::sort(merged.begin(), merged.end());
      reach[v] = std::move(merged);
      if (params.max_set_words != 0 &&
          2 * reach[v].size() > params.max_set_words)
        result.overflowed[v] = true;
    }
    horizon *= 2;
  }

  for (graph::VertexId v = 0; v < n; ++v) {
    auto& out = result.reachable[v];
    out.reserve(reach[v].size());
    for (const auto& [w, d] : reach[v])
      if (d <= params.radius) out.push_back(w);
    result.max_set_size = std::max(result.max_set_size, out.size());
  }
  return result;
}

}  // namespace arbor::core
