// Directed graph exponentiation along non-decreasing-layer edges — the
// gather step of the coloring algorithm (§4; see [LU21, Definition 3.3]
// for the lower-level description the paper defers to).
//
// Given a layer assignment, the influence edges for the block [lo, hi] are
// v → w for w ∈ N(v) with ℓ(v) ≤ ℓ(w) ≤ hi (within-layer edges count in
// both directions; edges toward layers > hi terminate at a boundary
// record whose color is an input). Each doubling iteration makes every
// block vertex learn the reach-sets of everything it currently reaches —
// one Lemma 4.1 bundle fetch — so radius R is covered in ⌈log2 R⌉+1
// fetches. Vertices whose set exceeds `max_set_words` overflow: they stop
// expanding and are reported, mirroring the local-memory constraint
// (E10/EXPERIMENTS.md discusses when that happens at practical n).
//
// core/coloring_mpc.cpp charges this gather analytically (and measures
// cones by sampling); this module is the executable counterpart used by
// tests and the E10 bench machinery to validate those charges.
#pragma once

#include <cstddef>
#include <vector>

#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "mpc/primitives.hpp"

namespace arbor::core {

struct DirectedGatherParams {
  Layer block_lo = 1;
  Layer block_hi = 1;
  std::size_t radius = 1;
  /// Per-vertex reach-set capacity (the machine's words); 0 = unlimited.
  std::size_t max_set_words = 0;
};

struct DirectedGatherResult {
  /// For every graph vertex in the block: the sorted set of block vertices
  /// reachable along non-decreasing-layer paths of length ≤ radius
  /// (includes the vertex itself). Empty for vertices outside the block.
  std::vector<std::vector<graph::VertexId>> reachable;
  std::vector<bool> overflowed;  ///< set exceeded max_set_words
  std::size_t doublings = 0;     ///< fetch iterations executed
  std::size_t max_set_size = 0;
};

DirectedGatherResult directed_gather(const graph::Graph& g,
                                     const LayerAssignment& layering,
                                     const DirectedGatherParams& params,
                                     mpc::MpcContext& ctx);

}  // namespace arbor::core
