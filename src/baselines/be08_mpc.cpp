#include "baselines/be08_mpc.hpp"

#include <cmath>

#include "core/orientation_mpc.hpp"
#include "local/peeling.hpp"
#include "util/assert.hpp"

namespace arbor::baselines {

Be08Result be08_orient(const graph::Graph& g, std::size_t k, double epsilon,
                       mpc::MpcContext& ctx) {
  if (k == 0) k = core::estimate_density_parameter(g);
  const local::PeelingResult peel = local::be08_h_partition(g, k, epsilon);

  Be08Result result{
      graph::Orientation(g, std::vector<bool>(g.num_edges(), true)),
      {},
      peel.rounds,
      // Must match be08_h_partition's actual peel threshold (ceil).
      static_cast<std::size_t>(
          std::ceil((2.0 + epsilon) * static_cast<double>(k)))};

  // One MPC round per LOCAL round (the peel predicate is a 1-hop rule).
  ctx.charge(peel.rounds, "be08.peel");
  ctx.note_balanced(2 * g.num_edges() + g.num_vertices());

  result.layering.num_layers = peel.num_layers;
  result.layering.layer.assign(g.num_vertices(), core::kInfiniteLayer);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (peel.layer[v] != 0) result.layering.layer[v] = peel.layer[v];

  result.orientation = graph::orient_by_layers(
      g, result.layering.layer, core::kInfiniteLayer);
  ctx.charge(1, "be08.finalize");
  return result;
}

}  // namespace arbor::baselines
