// Baseline C: sequential quality references (no MPC model).
//
// These give the quality yardsticks the MPC algorithms are compared
// against in the benches: degeneracy-order orientation (max out-degree =
// degeneracy ≤ 2λ-1) and degeneracy greedy coloring (≤ degeneracy+1
// colors). Also exposes the sequential H-partition used as ℓ_G in the
// paper's analysis.
#pragma once

#include <cstddef>

#include "core/layering.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/orientation.hpp"

namespace arbor::baselines {

struct SequentialReference {
  std::size_t degeneracy = 0;
  std::size_t orientation_outdegree = 0;  ///< == degeneracy
  std::size_t coloring_colors = 0;        ///< ≤ degeneracy + 1
};

/// Compute both references (single pass over the bucket-queue peeling).
SequentialReference sequential_reference(const graph::Graph& g);

/// The proof-side reference layering ℓ_G: peel threshold-k rounds
/// sequentially (same as core::reference_peeling_layering, re-exported
/// here so benches can name the baseline explicitly).
core::LayerAssignment sequential_h_partition(const graph::Graph& g,
                                             std::size_t k);

}  // namespace arbor::baselines
