// Baseline A: the Barenboim–Elkin LOCAL peeling algorithm simulated
// round-per-round in MPC.
//
// This is the Θ(log n)-round comparator the paper's introduction starts
// from: each LOCAL peel round (remove everything of degree ≤ (2+ε)k) is one
// MPC round when simulated directly. Out-degree quality is the best of the
// three MPC algorithms compared in E1/E2 — (2+ε)λ — but the round count
// grows with log n rather than poly(log log n).
#pragma once

#include <cstddef>

#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "graph/orientation.hpp"
#include "mpc/primitives.hpp"

namespace arbor::baselines {

struct Be08Result {
  graph::Orientation orientation;
  core::LayerAssignment layering;
  std::size_t mpc_rounds = 0;  ///< == LOCAL peel rounds
  std::size_t threshold = 0;   ///< (2+ε)·k
};

/// k must satisfy k ≥ λ(G) (pass 0 to use the degeneracy estimate).
Be08Result be08_orient(const graph::Graph& g, std::size_t k, double epsilon,
                       mpc::MpcContext& ctx);

}  // namespace arbor::baselines
