#include "baselines/glm19.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "core/orientation_mpc.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace arbor::baselines {

namespace {

/// Size of v's T'-hop neighborhood restricted to vertices below `cap`
/// residual degree (the sparsified subgraph a phase gathers).
std::size_t sparsified_ball_size(const graph::Graph& g,
                                 const std::vector<std::size_t>& degree,
                                 const std::vector<bool>& removed,
                                 graph::VertexId start, std::size_t cap,
                                 std::size_t hops) {
  std::unordered_set<graph::VertexId> seen{start};
  std::deque<std::pair<graph::VertexId, std::size_t>> queue{{start, 0}};
  while (!queue.empty()) {
    const auto [v, dist] = queue.front();
    queue.pop_front();
    if (dist == hops) continue;
    for (graph::VertexId w : g.neighbors(v)) {
      if (removed[w] || degree[w] > cap) continue;
      if (seen.insert(w).second) queue.emplace_back(w, dist + 1);
    }
  }
  return seen.size();
}

}  // namespace

Glm19Result glm19_orient(const graph::Graph& g, std::size_t k, double epsilon,
                         mpc::MpcContext& ctx) {
  if (k == 0) k = core::estimate_density_parameter(g);
  const std::size_t n = g.num_vertices();
  const auto threshold = static_cast<std::size_t>(
      std::ceil((2.0 + epsilon) * static_cast<double>(std::max<std::size_t>(
                                      k, 1))));

  const double log_n =
      std::log2(static_cast<double>(std::max<std::size_t>(n, 2)));
  const auto phase_length = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(std::sqrt(log_n))));

  Glm19Result result{
      graph::Orientation(g, std::vector<bool>(g.num_edges(), true)),
      {}, 0, 0, phase_length, 0, 0};

  std::vector<std::size_t> degree(n);
  std::vector<bool> removed(n, false);
  std::vector<std::uint32_t> layer(n, 0);
  for (graph::VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);
  std::size_t remaining = n;
  std::uint32_t round = 0;
  util::SplitRng rng(0x61a19ULL);

  // Neighborhoods gathered in a phase live in the degree ≤ threshold·2^{T'}
  // sparsified subgraph.
  const double cap_raw = static_cast<double>(threshold) *
                         std::pow(2.0, static_cast<double>(phase_length));
  const auto degree_cap = static_cast<std::size_t>(
      std::min(cap_raw, static_cast<double>(n)));

  while (remaining > 0) {
    ++result.phases;

    // Memory gauge: sample a few low-degree vertices' balls before running
    // the phase (what one machine would gather).
    std::vector<graph::VertexId> low;
    for (graph::VertexId v = 0; v < n && low.size() < 4096; ++v)
      if (!removed[v] && degree[v] <= degree_cap) low.push_back(v);
    for (std::size_t i = 0; i < std::min<std::size_t>(16, low.size()); ++i) {
      const graph::VertexId v =
          low[static_cast<std::size_t>(rng.next_below(low.size()))];
      result.max_sampled_neighborhood = std::max(
          result.max_sampled_neighborhood,
          sparsified_ball_size(g, degree, removed, v, degree_cap,
                               phase_length));
    }

    // Simulate T' peel rounds locally (after one gather).
    bool progressed = false;
    for (std::size_t t = 0; t < phase_length && remaining > 0; ++t) {
      ++round;
      ++result.local_rounds;
      std::vector<graph::VertexId> peeled;
      for (graph::VertexId v = 0; v < n; ++v)
        if (!removed[v] && degree[v] <= threshold) peeled.push_back(v);
      if (peeled.empty()) break;
      progressed = true;
      for (graph::VertexId v : peeled) {
        removed[v] = true;
        layer[v] = round;
      }
      for (graph::VertexId v : peeled)
        for (graph::VertexId w : g.neighbors(v))
          if (!removed[w]) --degree[w];
      remaining -= peeled.size();
    }
    ARBOR_CHECK_MSG(progressed,
                    "GLM19 peeling stalled: threshold below arboricity?");

    // Phase cost: gather T'-hop neighborhoods by exponentiation —
    // ⌈log2(T'+1)⌉ doubling rounds.
    const auto gather_rounds = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               std::log2(static_cast<double>(phase_length + 1)))));
    ctx.charge(gather_rounds, "glm19.phase_gather");
    result.mpc_rounds += gather_rounds;
  }

  ctx.note_balanced(2 * g.num_edges() + n);

  result.layering.num_layers = round;
  result.layering.layer.assign(n, core::kInfiniteLayer);
  for (graph::VertexId v = 0; v < n; ++v)
    if (layer[v] != 0) result.layering.layer[v] = layer[v];
  result.orientation =
      graph::orient_by_layers(g, result.layering.layer, core::kInfiniteLayer);
  ctx.charge(1, "glm19.finalize");
  ++result.mpc_rounds;
  return result;
}

}  // namespace arbor::baselines
