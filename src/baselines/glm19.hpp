// Baseline B: the Ghaffari–Lattanzi–Mitrovic [GLM19] sparsification-based
// orientation — the Θ̃(√log n)-round state of the art this paper breaks.
//
// Shape-faithful reimplementation (DESIGN.md §3): the T = Θ(log n) LOCAL
// peel rounds are grouped into phases of T' = Θ(√log n) rounds. Within a
// phase, only vertices whose degree is below threshold·2^{T'} can be peeled
// (the "relevant" sparsified subgraph); their T'-hop neighborhoods in that
// subgraph have size 2^{O(T')} ≤ n^δ and are gathered by graph
// exponentiation in O(log T') MPC rounds, after which the whole phase is
// simulated locally. Total: (T/T')·O(log T') = Õ(√log n) MPC rounds.
// We execute the peeling semantics exactly and charge that round formula,
// recording the measured neighborhood-size gauge that justifies it.
#pragma once

#include <cstddef>

#include "core/layering.hpp"
#include "graph/graph.hpp"
#include "graph/orientation.hpp"
#include "mpc/primitives.hpp"

namespace arbor::baselines {

struct Glm19Result {
  graph::Orientation orientation;
  core::LayerAssignment layering;
  std::size_t mpc_rounds = 0;
  std::size_t phases = 0;
  std::size_t phase_length = 0;  ///< T'
  std::size_t local_rounds = 0;  ///< underlying LOCAL peel rounds
  std::size_t max_sampled_neighborhood = 0;
};

Glm19Result glm19_orient(const graph::Graph& g, std::size_t k, double epsilon,
                         mpc::MpcContext& ctx);

}  // namespace arbor::baselines
