#include "baselines/sequential.hpp"

#include "graph/arboricity.hpp"

namespace arbor::baselines {

SequentialReference sequential_reference(const graph::Graph& g) {
  SequentialReference ref;
  ref.degeneracy = graph::degeneracy(g);
  ref.orientation_outdegree =
      graph::orient_by_degeneracy(g).max_outdegree(g);
  const auto coloring = graph::degeneracy_coloring(g);
  ref.coloring_colors = graph::check_coloring(g, coloring).colors_used;
  return ref;
}

core::LayerAssignment sequential_h_partition(const graph::Graph& g,
                                             std::size_t k) {
  return core::reference_peeling_layering(g, k);
}

}  // namespace arbor::baselines
