// ProgramVerifier: static analysis of a RoundProgram + RemoteSpec before
// any round executes.
//
// Every rule here names a failure that today (or before this layer) only
// surfaced mid-run, far from its cause — a null output_sink dying inside
// the gather loop, a vote mismatch aborting at the first pass barrier, an
// anonymous step making a tcp worker's cap violation unattributable. The
// verifier front-loads all of them: Cluster::run_program calls
// verify_program() before the first compute phase, so a malformed program
// fails with a VerifyError quoting the step and field while the stack
// still points at the caller that built it.
//
// Shallow rules need only the program object. Deep rules (VerifyContext
// with a registry) additionally rebuild the program through its
// registered worker-side factory — the exact code path every remote
// worker runs — and cross-check the rebuilt shape (step count, kinds,
// names, output/vote halves) against the driver-side declaration, so a
// protocol whose two sides drifted apart is caught on the driver before
// a worker process ever spawns.
#pragma once

#include <cstddef>
#include <string>

#include "engine/program.hpp"
#include "util/assert.hpp"

namespace arbor::net {
class Registry;
}  // namespace arbor::net

namespace arbor::check {

/// A program that violates its declared contracts. Subtype of
/// InvariantError: the same class of failure as a cap violation, caught
/// earlier.
class VerifyError : public InvariantError {
 public:
  explicit VerifyError(const std::string& what) : InvariantError(what) {}
};

/// What the verifier knows about the run the program is headed into.
struct VerifyContext {
  std::size_t machines = 0;  ///< M
  std::size_t capacity = 0;  ///< S, the per-machine word budget
  /// Non-null enables deep verification: the spec's factory is looked up
  /// and the rebuilt program's shape cross-checked. Null keeps the
  /// verifier purely static (always-on path).
  const net::Registry* registry = nullptr;
};

/// Throws VerifyError ("program verifier: ...", quoting step and field) on
/// the first violated rule; returns normally for a well-formed program.
void verify_program(const engine::RoundProgram& program,
                    const VerifyContext& context);

}  // namespace arbor::check
