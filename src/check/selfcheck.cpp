#include "check/selfcheck.hpp"

#include <memory>
#include <vector>

#include "check/monitor.hpp"
#include "check/ownership.hpp"
#include "net/registry.hpp"
#include "obs/cost_model.hpp"
#include "util/assert.hpp"

namespace arbor::check {
namespace {

struct SelfCheckState {
  std::size_t machines = 0;
  std::vector<engine::Word> slots;
};

std::shared_ptr<SelfCheckState> make_state(std::size_t machines) {
  auto st = std::make_shared<SelfCheckState>();
  st->machines = machines;
  st->slots.assign(machines, 0);
  return st;
}

std::shared_ptr<Ownership> slots_ownership(
    const std::shared_ptr<SelfCheckState>& st) {
  auto own = std::make_shared<Ownership>();
  own->elems("slots", &st->slots).keep_alive(st);
  return own;
}

engine::RoundProgram build_cross_write(std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.independent("check.cross_write.step",
                      [st](std::size_t m, const engine::InboxView&,
                           engine::Sender&) {
                        // The violation: machine m writes its successor's
                        // slot.
                        st->slots[(m + 1) % st->machines] =
                            static_cast<engine::Word>(m + 1);
                      });
  program.owned(slots_ownership(st));
  // The check.* programs are adversarial fixtures, not protocols with
  // analytic claims — exempted from the CostModel requirement by name.
  program.exempt_cost();
  return program;
}

engine::RoundProgram build_order_dependent(
    std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.independent(
      "check.order_dependent.step",
      [st](std::size_t m, const engine::InboxView&, engine::Sender& send) {
        st->slots[m] = static_cast<engine::Word>(m + 1);
        // The violation: reads the predecessor's slot, whose value depends
        // on whether the predecessor's invocation ran yet — writes are
        // clean, so only the adversarial-order replay can see it.
        const engine::Word peek =
            st->slots[(m + st->machines - 1) % st->machines];
        send.send(m, std::vector<engine::Word>{peek});
      });
  program.owned(slots_ownership(st));
  program.exempt_cost();
  return program;
}

engine::RoundProgram build_shared_accumulator(
    std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.barrier("check.shared_accumulator.step",
                  [st](std::size_t m, const engine::InboxView&,
                       engine::Sender&) {
                    owned_span(m, {st->slots.data() + m, 1});
                    // The violation: every machine accumulates into
                    // machine 0's slot.
                    st->slots[0] += static_cast<engine::Word>(m + 1);
                  });
  program.exempt_cost();
  return program;
}

engine::RoundProgram build_continue_mutation(
    std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.independent(
      "check.continue_mutation.step",
      [st](std::size_t m, const engine::InboxView&, engine::Sender& send) {
        send.send(m, std::vector<engine::Word>{st->slots[m]});
      });
  program.owned(slots_ownership(st));
  program.exempt_cost();
  return program;
}

engine::RoundProgram build_underdeclared(std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.independent(
      "check.underdeclared.step",
      [st](std::size_t m, const engine::InboxView&, engine::Sender& send) {
        // Contract-clean: writes nothing shared and sends only to itself —
        // but moves 8 words against the single word its CostModel declares,
        // so the post-run bound audit (not the race monitor) must reject it.
        send.send(m, std::vector<engine::Word>(
                         8, static_cast<engine::Word>(m + 1)));
      });
  program.owned(slots_ownership(st));
  auto cost = std::make_shared<obs::CostModel>("check.underdeclared");
  cost->bound("check.underdeclared.step", 1, 1,
              "1 word/machine (deliberately under-declared)");
  program.costed(std::move(cost));
  return program;
}

engine::RoundProgram build_stale_fetch_cache(
    std::shared_ptr<SelfCheckState> st) {
  engine::RoundProgram program;
  program.barrier(
      "check.stale_fetch_cache.step",
      [st](std::size_t m, const engine::InboxView&, engine::Sender& send) {
        const auto build = [st, m](std::vector<engine::Word>& out) {
          out.push_back(st->slots[m]);
        };
        send.send_fetched(m, /*key=*/7, /*epoch=*/0, build);
        // The violation: mutate the state the build reads WITHOUT bumping
        // the epoch — the second fetch serves the stale cached payload,
        // and checked execution's verifying rebuild must reject it.
        st->slots[m] += 1;
        send.send_fetched(m, /*key=*/7, /*epoch=*/0, build);
      });
  program.owned(slots_ownership(st));
  program.cached_fetches();
  program.exempt_cost();
  return program;
}

void attach_spec(engine::RoundProgram& program, const char* name) {
  engine::RemoteSpec spec;
  spec.name = name;
  program.distributable(std::move(spec));
}

}  // namespace

engine::RoundProgram make_cross_write_selfcheck(std::size_t machines) {
  engine::RoundProgram program = build_cross_write(make_state(machines));
  attach_spec(program, "check.cross_write");
  return program;
}

engine::RoundProgram make_order_dependent_selfcheck(std::size_t machines) {
  engine::RoundProgram program = build_order_dependent(make_state(machines));
  attach_spec(program, "check.order_dependent");
  return program;
}

engine::RoundProgram make_shared_accumulator_selfcheck(std::size_t machines) {
  engine::RoundProgram program =
      build_shared_accumulator(make_state(machines));
  attach_spec(program, "check.shared_accumulator");
  return program;
}

engine::RoundProgram make_underdeclared_selfcheck(std::size_t machines) {
  engine::RoundProgram program = build_underdeclared(make_state(machines));
  attach_spec(program, "check.underdeclared");
  return program;
}

engine::RoundProgram make_stale_fetch_cache_selfcheck(std::size_t machines) {
  engine::RoundProgram program = build_stale_fetch_cache(make_state(machines));
  attach_spec(program, "check.stale_fetch_cache");
  return program;
}

engine::RoundProgram make_continue_mutation_selfcheck(std::size_t machines) {
  auto st = make_state(machines);
  engine::RoundProgram program = build_continue_mutation(st);
  program.repeat_while(
      [st](std::size_t passes) {
        // The violation: mutates state the independent step reads, between
        // passes.
        st->slots[0] += 1;
        return passes < 2;
      },
      4);
  engine::RemoteSpec spec;
  spec.name = "check.continue_mutation";
  spec.has_vote = true;
  spec.continue_with_votes = [](std::size_t passes, engine::Word) {
    return passes < 2;
  };
  program.distributable(std::move(spec));
  return program;
}

void register_selfcheck_programs(net::Registry& registry) {
  registry.add("check.cross_write", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_cross_write(st);
    out.state = st;
    return out;
  });
  registry.add("check.order_dependent", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_order_dependent(st);
    out.state = st;
    return out;
  });
  registry.add("check.shared_accumulator", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_shared_accumulator(st);
    out.state = st;
    return out;
  });
  registry.add("check.underdeclared", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_underdeclared(st);
    out.state = st;
    return out;
  });
  registry.add("check.stale_fetch_cache", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_stale_fetch_cache(st);
    out.state = st;
    return out;
  });
  registry.add("check.continue_mutation", [](const net::ProgramInputs& in) {
    auto st = make_state(in.machines);
    net::WorkerProgram out;
    out.program = build_continue_mutation(st);
    out.state = st;
    out.vote = [](std::size_t) { return engine::Word{0}; };
    out.on_continue = [st] { st->slots[0] += 1; };
    return out;
  });
}

}  // namespace arbor::check
