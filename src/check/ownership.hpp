// Ownership registration for checked execution (src/check/README.md).
//
// The StepFn concurrency contract and the machine-independent contract
// (engine/program.hpp) are phrased in terms of "state owned by machine m" —
// but the scheduler cannot see which slots of a protocol's state belong to
// which machine. An Ownership object closes that gap: a protocol builder
// declares its mutable per-machine state as named FAMILIES, each mapping a
// machine id to the slice of a container that machine owns. The checked
// executor (monitor.hpp) then content-hashes every slice around every step
// invocation: a slice that changes while a DIFFERENT machine's invocation
// runs is a cross-machine write, named by family, writer, owner, and
// address range.
//
// Families are declared by pointer into protocol state the program's step
// closures already keep alive (the builders capture the state shared_ptr);
// keep_alive() pins it explicitly so an Ownership outliving its program
// copy stays valid. Registration is declaration only — zero cost until a
// checked run actually hashes the slices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/hashing.hpp"

namespace arbor::check {

/// One named piece of mutable per-machine state. All callables are total
/// over machine ids [0, machines): a machine that owns nothing in the
/// family hashes to a constant.
struct Family {
  std::string name;
  /// Content hash of machine m's slice (order- and size-sensitive).
  std::function<std::uint64_t(std::size_t m)> hash;
  /// Human-readable location of machine m's slice for error messages,
  /// e.g. "holds[3] @ [0x5594f1c0, 0x5594f200)".
  std::function<std::string(std::size_t m)> describe;
  /// Copy the whole family out / back in, so the checked executor can
  /// replay a step under a second machine order without double-applying
  /// its writes.
  std::function<std::shared_ptr<void>()> snapshot;
  std::function<void(const std::shared_ptr<void>&)> restore;
};

namespace detail {

template <typename T>
std::uint64_t hash_span(const T* data, std::size_t count) {
  std::uint64_t h = util::mix64(0x6f776e);  // "own"
  h = util::hash_combine(h, count);
  for (std::size_t i = 0; i < count; ++i)
    h = util::hash_combine(h, static_cast<std::uint64_t>(data[i]));
  return h;
}

template <typename T>
std::string describe_span(const std::string& name, std::size_t m,
                          const T* data, std::size_t count) {
  std::ostringstream os;
  os << name << "[" << m << "] @ ["
     << static_cast<const void*>(data) << ", "
     << static_cast<const void*>(data + count) << ")";
  return os.str();
}

}  // namespace detail

/// The ownership declaration a RoundProgram carries (program.hpp holds a
/// shared_ptr so driver- and worker-side rebuilds share the declaration
/// code path exactly like the step closures do).
class Ownership {
 public:
  /// vector-of-vectors indexed by machine: (*v)[m] is owned by machine m
  /// (BroadcastState::holds, SortState::slabs/result/fine, ...).
  template <typename T>
  Ownership& slabs(std::string name, std::vector<std::vector<T>>* v) {
    Family f;
    f.name = name;
    f.hash = [v](std::size_t m) {
      if (m >= v->size()) return detail::hash_span<T>(nullptr, 0);
      std::uint64_t h = detail::hash_span((*v)[m].data(), (*v)[m].size());
      return h;
    };
    f.describe = [name, v](std::size_t m) {
      if (m >= v->size()) return name + "[" + std::to_string(m) + "] (empty)";
      return detail::describe_span(name, m, (*v)[m].data(), (*v)[m].size());
    };
    f.snapshot = [v]() -> std::shared_ptr<void> {
      return std::make_shared<std::vector<std::vector<T>>>(*v);
    };
    f.restore = [v](const std::shared_ptr<void>& snap) {
      *v = *std::static_pointer_cast<std::vector<std::vector<T>>>(snap);
    };
    families_.push_back(std::move(f));
    return *this;
  }

  /// Flat vector with element m owned by machine m (ConvergeState::partial,
  /// BroadcastState::has, PeelState::peeled_now).
  template <typename T>
  Ownership& elems(std::string name, std::vector<T>* v) {
    Family f;
    f.name = name;
    f.hash = [v](std::size_t m) {
      if (m >= v->size()) return detail::hash_span<T>(nullptr, 0);
      return detail::hash_span(v->data() + m, 1);
    };
    f.describe = [name, v](std::size_t m) {
      if (m >= v->size()) return name + "[" + std::to_string(m) + "] (empty)";
      return detail::describe_span(name, m, v->data() + m, 1);
    };
    f.snapshot = [v]() -> std::shared_ptr<void> {
      return std::make_shared<std::vector<T>>(*v);
    };
    f.restore = [v](const std::shared_ptr<void>& snap) {
      *v = *std::static_pointer_cast<std::vector<T>>(snap);
    };
    families_.push_back(std::move(f));
    return *this;
  }

  /// Flat vector partitioned into contiguous per-machine ranges:
  /// range_of(m) -> [lo, hi) owned by machine m (PeelState::degree/layer
  /// under vertex_range). `range_of` must be pure.
  template <typename T>
  Ownership& range(std::string name, std::vector<T>* v,
                   std::function<std::pair<std::size_t, std::size_t>(
                       std::size_t)> range_of) {
    Family f;
    f.name = name;
    f.hash = [v, range_of](std::size_t m) {
      const auto [lo, hi] = range_of(m);
      if (lo >= hi || hi > v->size()) return detail::hash_span<T>(nullptr, 0);
      return detail::hash_span(v->data() + lo, hi - lo);
    };
    f.describe = [name, v, range_of](std::size_t m) {
      const auto [lo, hi] = range_of(m);
      if (lo >= hi || hi > v->size())
        return name + "[" + std::to_string(m) + "] (empty range)";
      return detail::describe_span(name, m, v->data() + lo, hi - lo);
    };
    f.snapshot = [v]() -> std::shared_ptr<void> {
      return std::make_shared<std::vector<T>>(*v);
    };
    f.restore = [v](const std::shared_ptr<void>& snap) {
      *v = *std::static_pointer_cast<std::vector<T>>(snap);
    };
    families_.push_back(std::move(f));
    return *this;
  }

  /// Doubly-nested container with per-entry owners: (*v)[i] (a vector of
  /// slabs) is owned by machine owner_of(i) (FetchState::delivered under
  /// the requester block mapping). `owner_of` must be pure.
  template <typename T>
  Ownership& nested(std::string name,
                    std::vector<std::vector<std::vector<T>>>* v,
                    std::function<std::size_t(std::size_t)> owner_of) {
    Family f;
    f.name = name;
    f.hash = [v, owner_of](std::size_t m) {
      std::uint64_t h = util::mix64(0x6f776e32);
      for (std::size_t i = 0; i < v->size(); ++i) {
        if (owner_of(i) != m) continue;
        h = util::hash_combine(h, i);
        h = util::hash_combine(h, (*v)[i].size());
        for (const std::vector<T>& slab : (*v)[i])
          h = util::hash_combine(h, detail::hash_span(slab.data(),
                                                      slab.size()));
      }
      return h;
    };
    f.describe = [name](std::size_t m) {
      return name + " entries owned by machine " + std::to_string(m);
    };
    f.snapshot = [v]() -> std::shared_ptr<void> {
      return std::make_shared<std::vector<std::vector<std::vector<T>>>>(*v);
    };
    f.restore = [v](const std::shared_ptr<void>& snap) {
      *v = *std::static_pointer_cast<std::vector<std::vector<std::vector<T>>>>(
          snap);
    };
    families_.push_back(std::move(f));
    return *this;
  }

  /// Pin the protocol state the family pointers refer into, so the
  /// Ownership is valid even if it outlives the program's step closures.
  Ownership& keep_alive(std::shared_ptr<void> state) {
    pinned_.push_back(std::move(state));
    return *this;
  }

  const std::vector<Family>& families() const noexcept { return families_; }

 private:
  std::vector<Family> families_;
  std::vector<std::shared_ptr<void>> pinned_;
};

}  // namespace arbor::check
