// Deliberately-broken RoundPrograms that checked execution must catch.
//
// The model-race detector is itself code; these programs are its ground
// truth. Each one violates exactly one contract from engine/program.hpp —
// a cross-machine write, a mis-tagged machine-independent step, a shared
// accumulator behind owned_span(), a continue callback mutating state an
// independent step reads — and tests/check_test.cpp asserts every backend
// ({in-process, loopback, tcp}) rejects it with a RaceError naming the
// step and the machines involved. They are registered in
// net::Registry::builtin() under "check.*" names so the stock
// arbor-worker binary can rebuild them: the negative tests exercise the
// same worker code path real protocols use, not a test-only registry.
#pragma once

#include <cstddef>

#include "engine/program.hpp"

namespace arbor::net {
class Registry;
}  // namespace arbor::net

namespace arbor::check {

/// "check.cross_write": a machine-independent step where machine m writes
/// slots[(m+1) % M] — a cross-machine write, caught by the ownership
/// write check on every invocation.
engine::RoundProgram make_cross_write_selfcheck(std::size_t machines);

/// "check.order_dependent": each machine writes its own slot but SENDS its
/// predecessor's — legal writes, illegal read. Tagged machine-independent,
/// so the adversarial-order replay sees different sends and rejects the
/// tag.
engine::RoundProgram make_order_dependent_selfcheck(std::size_t machines);

/// "check.shared_accumulator": machines register their own slot via
/// owned_span() then all add into slots[0] — the classic shared
/// accumulator the StepFn contract bans. A barrier step: the write check
/// applies to every step kind, not just independent ones.
engine::RoundProgram make_shared_accumulator_selfcheck(std::size_t machines);

/// "check.underdeclared": a contract-CLEAN program (no race, no ownership
/// violation) whose CostModel declares 1 word/machine while the step sends
/// 8 — ground truth for the post-run bound audit: checked execution must
/// reject it with a VerifyError naming "bound audit" on every backend.
engine::RoundProgram make_underdeclared_selfcheck(std::size_t machines);

/// "check.stale_fetch_cache": a barrier step that fetches a payload built
/// from slots[m], mutates slots[m] WITHOUT bumping the fetch epoch, then
/// fetches again under the same (key, epoch) — the second fetch is served
/// from the cache, and checked execution's verifying rebuild must reject
/// the stale entry by name (an InvariantError naming the step and the
/// epoch) on every backend.
engine::RoundProgram make_stale_fetch_cache_selfcheck(std::size_t machines);

/// "check.continue_mutation": a clean machine-independent step that reads
/// slots[m], plus a repeat_while callback that mutates slots[0] between
/// passes — exactly the "global aggregates updated between rounds" the
/// machine-independent contract forbids the step to depend on.
engine::RoundProgram make_continue_mutation_selfcheck(std::size_t machines);

/// Register the worker-side factories for all of the above.
void register_selfcheck_programs(net::Registry& registry);

}  // namespace arbor::check
