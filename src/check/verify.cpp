#include "check/verify.hpp"

#include <map>
#include <sstream>

#include "net/registry.hpp"
#include "obs/cost_model.hpp"

namespace arbor::check {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw VerifyError("program verifier: " + what);
}

const char* kind_name(engine::StepKind kind) {
  return kind == engine::StepKind::kMachineIndependent ? "machine-independent"
                                                       : "barrier";
}

std::string quoted(const std::string& name) { return "\"" + name + "\""; }

/// Shallow rules: the program object alone.
void verify_steps(const engine::RoundProgram& program) {
  if (program.steps.empty()) fail("program has no steps");

  // A step NAME is a ledger label; reusing one across steps is legal and
  // deliberate (sample sort charges every tree level to the same label).
  // What a name must not do is flip kind: the scheduler picks the fused
  // vs strict phase sequence per step, and a label that is sometimes
  // independent and sometimes a barrier makes every per-label diagnostic
  // (ledger peaks, round_us histograms, cap violations) ambiguous about
  // which schedule produced it.
  std::map<std::string, engine::StepKind> kinds;
  for (std::size_t i = 0; i < program.steps.size(); ++i) {
    const engine::ProgramStep& step = program.steps[i];
    if (!step.fn)
      fail("step " + std::to_string(i) + " (" + quoted(step.name) +
           ") has a null step function");
    if (step.name.empty())
      fail("step " + std::to_string(i) + " has an empty name");
    // The default label carries no identity claim — two anonymous steps
    // of different kinds are fine (only DISTRIBUTABLE programs must name
    // everything, enforced in verify_spec).
    if (step.name == engine::kDefaultStepName) continue;
    const auto [it, inserted] = kinds.emplace(step.name, step.kind);
    if (!inserted && it->second != step.kind)
      fail("step name " + quoted(step.name) + " is declared both " +
           kind_name(it->second) + " and " + kind_name(step.kind));
  }

  if (!program.continue_fn && program.max_passes != 1)
    fail("max_passes is " + std::to_string(program.max_passes) +
         " but there is no continue callback (use repeat_while)");
  if (program.continue_fn && program.max_passes == 0)
    fail("repeat_while with max_passes 0: the first pass always executes, "
         "so a zero bound cannot be honored (guard the run_program call)");
}

/// RemoteSpec completeness: the declared flags and the callbacks they
/// promise must agree, in both directions, before the spec ships anywhere.
void verify_spec(const engine::RoundProgram& program,
                 const VerifyContext& context) {
  const engine::RemoteSpec& spec = *program.remote;
  if (spec.name.empty()) fail("RemoteSpec has an empty registry name");

  for (std::size_t i = 0; i < program.steps.size(); ++i)
    if (program.steps[i].name == engine::kDefaultStepName)
      fail("program " + quoted(spec.name) + ": step " + std::to_string(i) +
           " is unnamed; every step of a distributable program must be "
           "named so worker-side diagnostics stay attributable");

  if (spec.has_output && !spec.output_sink)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field has_output is true but output_sink is null");
  if (!spec.has_output && spec.output_sink)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field output_sink is set but has_output is false");
  if (spec.has_vote && !spec.continue_with_votes)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field has_vote is true but continue_with_votes is "
         "null");
  if (!spec.has_vote && spec.continue_with_votes)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field continue_with_votes is set but has_vote is "
         "false");
  if (program.continue_fn && !spec.has_vote)
    fail("program " + quoted(spec.name) +
         ": declares repeat_while but RemoteSpec field has_vote is false "
         "(workers cannot evaluate the driver's continue callback)");

  if (!spec.inputs.empty() && spec.inputs.size() != context.machines)
    fail("program " + quoted(spec.name) + ": RemoteSpec field inputs has " +
         std::to_string(spec.inputs.size()) + " slabs for " +
         std::to_string(context.machines) +
         " machines (cover every machine or none)");
  for (std::size_t m = 0; m < spec.inputs.size(); ++m)
    if (spec.inputs[m].size() > context.capacity)
      fail("program " + quoted(spec.name) + ": input slab for machine " +
           std::to_string(m) + " holds " +
           std::to_string(spec.inputs[m].size()) +
           " words, over the per-machine budget S = " +
           std::to_string(context.capacity));

  // Distributable programs carry the paper's per-round claims as data: a
  // registered protocol must declare its analytic CostModel (or opt out by
  // name — reserved for the adversarial check.* self-checks). The model's
  // labels and the program's step labels must agree in both directions,
  // or the post-run bound audit would silently skip steps.
  if (!program.cost && !program.cost_exempt)
    fail("program " + quoted(spec.name) +
         ": no CostModel declared; attach the analytic bounds with "
         "costed(...) or opt out explicitly with exempt_cost()");
  if (program.cost) {
    for (const engine::ProgramStep& step : program.steps)
      if (program.cost->find(step.name) == nullptr)
        fail("program " + quoted(spec.name) + ": step " + quoted(step.name) +
             " has no declared bound in CostModel " +
             quoted(program.cost->name()));
    for (const obs::StepBound& bound : program.cost->bounds()) {
      bool matched = false;
      for (const engine::ProgramStep& step : program.steps)
        if (step.name == bound.label) {
          matched = true;
          break;
        }
      if (!matched)
        fail("program " + quoted(spec.name) + ": CostModel " +
             quoted(program.cost->name()) + " declares a bound for " +
             quoted(bound.label) + ", which names no step");
    }
  }
}

/// Deep rule: rebuild through the registered factory (the code path every
/// worker runs) and cross-check the rebuilt shape against the driver's.
void verify_rebuild(const engine::RoundProgram& program,
                    const VerifyContext& context) {
  const engine::RemoteSpec& spec = *program.remote;
  const net::ProgramFactory& factory = context.registry->find(spec.name);

  net::ProgramInputs inputs;
  inputs.machines = context.machines;
  inputs.capacity = context.capacity;
  inputs.block_begin = 0;
  inputs.block_end = context.machines;
  inputs.scalars = spec.scalars;
  inputs.inputs = spec.inputs;
  if (inputs.inputs.empty())
    inputs.inputs.resize(context.machines);  // workers decode empty slabs

  net::WorkerProgram rebuilt;
  try {
    rebuilt = factory(inputs);
  } catch (const VerifyError&) {
    throw;
  } catch (const std::exception& e) {
    fail("program " + quoted(spec.name) +
         ": worker-side factory rejected the spec's scalars/inputs: " +
         e.what());
  }

  if (rebuilt.program.steps.size() != program.steps.size())
    fail("program " + quoted(spec.name) + ": driver declares " +
         std::to_string(program.steps.size()) +
         " steps but the registered factory rebuilds " +
         std::to_string(rebuilt.program.steps.size()));
  for (std::size_t i = 0; i < program.steps.size(); ++i) {
    const engine::ProgramStep& d = program.steps[i];
    const engine::ProgramStep& w = rebuilt.program.steps[i];
    if (d.name != w.name)
      fail("program " + quoted(spec.name) + ": step " + std::to_string(i) +
           " is named " + quoted(d.name) + " on the driver but " +
           quoted(w.name) + " in the factory rebuild");
    if (d.kind != w.kind)
      fail("program " + quoted(spec.name) + ": step " + quoted(d.name) +
           " is " + kind_name(d.kind) + " on the driver but " +
           kind_name(w.kind) + " in the factory rebuild");
  }
  if (spec.has_output && !rebuilt.output)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field has_output is true but the factory rebuild "
         "supplies no output function");
  if (spec.has_vote && !rebuilt.vote)
    fail("program " + quoted(spec.name) +
         ": RemoteSpec field has_vote is true but the factory rebuild "
         "supplies no vote function");
  // max_passes intentionally not compared: workers take it from the
  // ProgramFrame, so factories do not (and need not) redeclare it.
}

}  // namespace

void verify_program(const engine::RoundProgram& program,
                    const VerifyContext& context) {
  verify_steps(program);
  if (program.remote) verify_spec(program, context);
  if (program.remote && context.registry) verify_rebuild(program, context);
}

}  // namespace arbor::check
