// Model-race detector: checked execution of RoundProgram steps.
//
// ExecutionPolicy::checked() routes every compute phase through a Monitor
// instead of the parallel block loop. The Monitor executes the step twice
// for machine-independent steps — once in DESCENDING machine order into
// scratch outboxes (the adversarial schedule), once in ASCENDING order
// into the real outboxes (the reference schedule the serial executor
// uses) — with registered state snapshotted and restored in between, and
// raises a deterministic RaceError when:
//
//   * any invocation changes a state slice owned by a DIFFERENT machine
//     (cross-machine write — violates the StepFn concurrency contract),
//   * a machine's sends or post-step state differ between the two orders
//     (cross-machine read inside a kMachineIndependent step — the tag
//     promised order independence and the replay disproved it),
//   * a continue callback writes machine-owned state while the program
//     contains independent steps (the callback's writes are exactly the
//     "global aggregates updated between rounds" the contract bans).
//
// Barrier steps run once (cross-machine reads are legal there) but keep
// the per-invocation write check. Everything is single-threaded and
// deterministic, so violations reproduce bit-identically in tier-1 with
// no sanitizer or thread schedule involved.
//
// State is visible to the Monitor two ways: families declared up front on
// the program (ownership.hpp) and spans registered dynamically from
// inside a running step via owned_span() below. When no checked run is
// active, owned_span is one relaxed atomic load and a branch — the same
// zero-cost-when-off discipline trace::Tracer::mode() uses
// (bench_engine_scaling A/Bs it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "check/ownership.hpp"
#include "engine/inbox.hpp"
#include "engine/outbox.hpp"
#include "engine/program.hpp"
#include "util/assert.hpp"

namespace arbor::check {

/// A checked-execution violation. Subtype of InvariantError so the
/// multi-process error relay (worker -> kError -> driver rethrow) carries
/// it across the wire like any other simulated-machine invariant.
class RaceError : public InvariantError {
 public:
  explicit RaceError(const std::string& what) : InvariantError(what) {}
};

/// Register `span` as owned by `machine` with the checked run active on
/// this thread, if any — a no-op (one relaxed load + branch) otherwise.
/// Call it from inside a step function (before mutating the span) for
/// state that is not declared as an Ownership family up front.
void owned_span(std::size_t machine, std::span<engine::Word> span);

/// One program execution's shadow state. Built per run_program call from
/// the program's Ownership declaration; drives every step of that program.
class Monitor {
 public:
  Monitor(const engine::RoundProgram& program, std::size_t capacity,
          std::size_t num_machines);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Execute `step` for machines [begin, end) under checking. `inbox_of`
  /// yields a machine's delivered inbox; `out` is the real outbox bank,
  /// indexed by absolute machine id (out[m] is cleared and written for
  /// every m in the range, exactly like the unchecked compute phase).
  /// `fetch` is forwarded into every Sender — the executor passes
  /// verify=true so each cache hit is rebuilt and stale entries are
  /// rejected deterministically.
  void run_step(const engine::ProgramStep& step, std::size_t begin,
                std::size_t end,
                const std::function<engine::InboxView(std::size_t)>& inbox_of,
                std::vector<engine::Outbox>& out,
                const engine::FetchContext& fetch = {});

  /// Guard a continue callback / pass hook: capture hashes() before
  /// invoking it, then expect_continue_clean(before) after. Raises only
  /// when the program has machine-independent steps (barrier-only
  /// programs may legally maintain shared pass state in the callback).
  std::vector<std::uint64_t> hashes() const;
  void expect_continue_clean(const std::vector<std::uint64_t>& before,
                             const std::string& what) const;

  /// Dynamic registration target of owned_span() (active runs only).
  void note_span(std::size_t machine, engine::Word* data, std::size_t count);

 private:
  struct DynSpan {
    std::size_t machine = 0;
    engine::Word* data = nullptr;
    std::size_t count = 0;
    std::vector<engine::Word> registered_content;  ///< restore target
  };

  std::size_t slot_count() const;
  std::uint64_t slot_hash(std::size_t slot) const;
  std::string slot_describe(std::size_t slot) const;
  std::size_t slot_owner(std::size_t slot) const;
  void hash_all(std::vector<std::uint64_t>& into) const;
  void check_writes(const std::vector<std::uint64_t>& before,
                    std::size_t writer, const engine::ProgramStep& step);
  void snapshot_families();
  void restore_families();

  std::shared_ptr<const Ownership> ownership_;  ///< may be null
  std::size_t capacity_ = 0;
  std::size_t num_machines_ = 0;
  bool has_independent_ = false;
  std::string independent_step_;  ///< name of the first independent step
  std::vector<DynSpan> dyn_spans_;
  std::vector<std::shared_ptr<void>> family_snaps_;
  std::vector<std::vector<engine::Word>> dyn_snaps_;  ///< step-start content
  std::size_t dyn_snap_count_ = 0;
  std::vector<engine::Outbox> probe_out_;  ///< adversarial-order outboxes
  // Scratch hash buffers reused across invocations.
  std::vector<std::uint64_t> pre_, post_, probe_state_, real_state_;
};

}  // namespace arbor::check
