#include "check/monitor.hpp"

#include <atomic>
#include <sstream>
#include <utility>

#include "util/hashing.hpp"

namespace arbor::check {
namespace {

std::atomic<int> g_active_monitors{0};
thread_local Monitor* tl_monitor = nullptr;

/// Scopes owned_span() registration to the thread driving a checked step.
class ThreadMonitorScope {
 public:
  explicit ThreadMonitorScope(Monitor* m) : prev_(tl_monitor) {
    tl_monitor = m;
  }
  ~ThreadMonitorScope() { tl_monitor = prev_; }
  ThreadMonitorScope(const ThreadMonitorScope&) = delete;
  ThreadMonitorScope& operator=(const ThreadMonitorScope&) = delete;

 private:
  Monitor* prev_;
};

std::uint64_t outbox_fingerprint(const engine::Outbox& out) {
  std::uint64_t h = util::mix64(0x6f7574);  // "out"
  h = util::hash_combine(h, out.msgs.size());
  for (const engine::Outbox::Msg& m : out.msgs) {
    h = util::hash_combine(h, m.dst);
    h = util::hash_combine(h, m.length);
    for (engine::Word w : out.payload(m)) h = util::hash_combine(h, w);
  }
  return h;
}

std::string quoted(const std::string& name) { return "\"" + name + "\""; }

}  // namespace

void owned_span(std::size_t machine, std::span<engine::Word> span) {
  // Fast gate: one relaxed load and a branch when no checked run exists
  // anywhere in the process (the tracer's zero-cost-off discipline).
  if (g_active_monitors.load(std::memory_order_relaxed) == 0) return;
  if (Monitor* m = tl_monitor) m->note_span(machine, span.data(), span.size());
}

Monitor::Monitor(const engine::RoundProgram& program, std::size_t capacity,
                 std::size_t num_machines)
    : ownership_(program.ownership),
      capacity_(capacity),
      num_machines_(num_machines) {
  for (const engine::ProgramStep& step : program.steps) {
    if (step.kind == engine::StepKind::kMachineIndependent) {
      has_independent_ = true;
      independent_step_ = step.name;
      break;
    }
  }
  g_active_monitors.fetch_add(1, std::memory_order_relaxed);
}

Monitor::~Monitor() {
  g_active_monitors.fetch_sub(1, std::memory_order_relaxed);
}

void Monitor::note_span(std::size_t machine, engine::Word* data,
                        std::size_t count) {
  for (const DynSpan& s : dyn_spans_)
    if (s.data == data && s.count == count) return;
  DynSpan span;
  span.machine = machine;
  span.data = data;
  span.count = count;
  span.registered_content.assign(data, data + count);
  dyn_spans_.push_back(std::move(span));
}

std::size_t Monitor::slot_count() const {
  const std::size_t fam = ownership_ ? ownership_->families().size() : 0;
  return fam * num_machines_ + dyn_spans_.size();
}

std::uint64_t Monitor::slot_hash(std::size_t slot) const {
  const std::size_t fam = ownership_ ? ownership_->families().size() : 0;
  if (slot < fam * num_machines_)
    return ownership_->families()[slot / num_machines_].hash(slot %
                                                             num_machines_);
  const DynSpan& s = dyn_spans_[slot - fam * num_machines_];
  return detail::hash_span(s.data, s.count);
}

std::size_t Monitor::slot_owner(std::size_t slot) const {
  const std::size_t fam = ownership_ ? ownership_->families().size() : 0;
  if (slot < fam * num_machines_) return slot % num_machines_;
  return dyn_spans_[slot - fam * num_machines_].machine;
}

std::string Monitor::slot_describe(std::size_t slot) const {
  const std::size_t fam = ownership_ ? ownership_->families().size() : 0;
  if (slot < fam * num_machines_)
    return ownership_->families()[slot / num_machines_].describe(
        slot % num_machines_);
  const DynSpan& s = dyn_spans_[slot - fam * num_machines_];
  return detail::describe_span("owned_span", s.machine, s.data, s.count);
}

void Monitor::hash_all(std::vector<std::uint64_t>& into) const {
  const std::size_t n = slot_count();
  into.resize(n);
  for (std::size_t i = 0; i < n; ++i) into[i] = slot_hash(i);
}

void Monitor::check_writes(const std::vector<std::uint64_t>& before,
                           std::size_t writer,
                           const engine::ProgramStep& step) {
  hash_all(post_);
  // Spans registered DURING this invocation appended past before.size();
  // they have no pre-image to compare (the contract is "register before
  // mutating"), so only the common prefix is checkable.
  for (std::size_t slot = 0; slot < before.size(); ++slot) {
    if (post_[slot] == before[slot]) continue;
    const std::size_t owner = slot_owner(slot);
    if (owner == writer) continue;
    std::ostringstream os;
    os << "checked execution: step " << quoted(step.name) << ": machine "
       << writer << " wrote state owned by machine " << owner << " ("
       << slot_describe(slot) << ")";
    throw RaceError(os.str());
  }
}

void Monitor::snapshot_families() {
  family_snaps_.clear();
  if (ownership_)
    for (const Family& f : ownership_->families())
      family_snaps_.push_back(f.snapshot());
  dyn_snap_count_ = dyn_spans_.size();
  dyn_snaps_.resize(dyn_snap_count_);
  for (std::size_t i = 0; i < dyn_snap_count_; ++i)
    dyn_snaps_[i].assign(dyn_spans_[i].data,
                         dyn_spans_[i].data + dyn_spans_[i].count);
}

void Monitor::restore_families() {
  if (ownership_) {
    const std::vector<Family>& families = ownership_->families();
    for (std::size_t i = 0; i < family_snaps_.size(); ++i)
      families[i].restore(family_snaps_[i]);
  }
  for (std::size_t i = 0; i < dyn_spans_.size(); ++i) {
    // Spans known before the probe restore to their step-start content;
    // spans first registered inside the probe restore to their
    // at-registration content (their owner had not yet mutated them).
    const std::vector<engine::Word>& src =
        i < dyn_snap_count_ ? dyn_snaps_[i] : dyn_spans_[i].registered_content;
    std::copy(src.begin(), src.end(), dyn_spans_[i].data);
  }
}

void Monitor::run_step(
    const engine::ProgramStep& step, std::size_t begin, std::size_t end,
    const std::function<engine::InboxView(std::size_t)>& inbox_of,
    std::vector<engine::Outbox>& out, const engine::FetchContext& fetch) {
  ThreadMonitorScope scope(this);
  const bool probe =
      step.kind == engine::StepKind::kMachineIndependent && end - begin > 1;

  if (probe) {
    snapshot_families();
    if (probe_out_.size() < out.size()) probe_out_.resize(out.size());
    // Adversarial schedule: descending machine order. Any machine that
    // reads a peer's state sees it in a different phase than under the
    // ascending reference order below, so the fingerprints diverge.
    for (std::size_t m = end; m-- > begin;) {
      hash_all(pre_);
      probe_out_[m].clear();
      engine::Sender sender(m, capacity_, num_machines_, probe_out_[m], fetch);
      step.fn(m, inbox_of(m), sender);
      check_writes(pre_, m, step);
    }
    hash_all(probe_state_);
    restore_families();
  }

  // Reference schedule: ascending order into the real outboxes — the order
  // the serial executor uses, so checked runs stay bit-identical to it.
  for (std::size_t m = begin; m < end; ++m) {
    hash_all(pre_);
    out[m].clear();
    engine::Sender sender(m, capacity_, num_machines_, out[m], fetch);
    step.fn(m, inbox_of(m), sender);
    check_writes(pre_, m, step);
    if (probe &&
        outbox_fingerprint(out[m]) != outbox_fingerprint(probe_out_[m])) {
      std::ostringstream os;
      os << "checked execution: step " << quoted(step.name)
         << " is tagged machine-independent but machine " << m
         << "'s sends depend on machine execution order";
      throw RaceError(os.str());
    }
  }

  if (probe) {
    hash_all(real_state_);
    const std::size_t n = std::min(probe_state_.size(), real_state_.size());
    for (std::size_t slot = 0; slot < n; ++slot) {
      if (real_state_[slot] == probe_state_[slot]) continue;
      std::ostringstream os;
      os << "checked execution: step " << quoted(step.name)
         << " is tagged machine-independent but state owned by machine "
         << slot_owner(slot) << " (" << slot_describe(slot)
         << ") depends on machine execution order";
      throw RaceError(os.str());
    }
  }
}

std::vector<std::uint64_t> Monitor::hashes() const {
  std::vector<std::uint64_t> h;
  hash_all(h);
  return h;
}

void Monitor::expect_continue_clean(const std::vector<std::uint64_t>& before,
                                    const std::string& what) const {
  // Barrier-only programs may legally maintain shared pass state in their
  // continue callback (peeling's round counter); only programs with
  // machine-independent steps promise the callback stays out of the state
  // those steps read.
  if (!has_independent_) return;
  std::vector<std::uint64_t> after;
  hash_all(after);
  const std::size_t n = std::min(before.size(), after.size());
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (after[slot] == before[slot]) continue;
    std::ostringstream os;
    os << "checked execution: " << what << " mutated state owned by machine "
       << slot_owner(slot) << " (" << slot_describe(slot)
       << ") while the program has machine-independent step "
       << quoted(independent_step_);
    throw RaceError(os.str());
  }
}

}  // namespace arbor::check
