#include "obs/cost_model.hpp"

namespace arbor::obs {
namespace {

std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  for (std::size_t v = 1; v < n; v <<= 1) ++bits;
  return bits;
}

}  // namespace

std::shared_ptr<const CostModel> pipeline_cost_model(std::size_t n) {
  // Every analytic stage charges O(log n) rounds in the practical presets
  // (peel loops, guess schedules, doubling fetches); constant-round stages
  // (partitions, finalize) satisfy the same bound trivially. The constant
  // is deliberately loose — the audit exists to catch asymptotic drift
  // (a stage quietly turning Θ(n)), not to tune c.
  const std::size_t log_n = ceil_log2(n < 2 ? 2 : n) + 1;
  const std::size_t log_rounds = 32 * log_n;
  auto model = std::make_shared<CostModel>("pipeline");
  const char* labels[] = {
      "layering.peel",     "color.measure_d",    "color.tail",
      "color.estimate_k",  "color.vertex_partition",
      "color.block_gather", "coreness.parallel_guesses",
      "density_estimate",  "exponentiate.init",  "exponentiate.fetch",
      "orient.estimate_k", "orient.finalize",    "orient.edge_partition",
  };
  for (const char* label : labels)
    model->bound(label, kWordsCapacity, log_rounds,
                 "<= S words/round, <= 32*(ceil(log2 n)+1) rounds");
  return model;
}

}  // namespace arbor::obs
