#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "check/verify.hpp"
#include "trace/trace.hpp"

namespace arbor::obs {
namespace {

/// Headroom reported when a compute-only bound (0 declared words) moved
/// words anyway: effectively infinite, clamped so the JSON stays finite.
constexpr double kHeadroomClamp = 1e9;

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out += buf;
}

void append_label_json(std::string& out, const LabelReport& label) {
  out += "{\"label\":";
  append_json_string(out, label.label);
  out += ",\"rounds\":" + std::to_string(label.rounds);
  out += ",\"peak_words\":" + std::to_string(label.peak_words);
  out += ",\"total_words\":" + std::to_string(label.total_words);
  out += ",\"bounded\":";
  out += label.bounded ? "true" : "false";
  if (label.bounded) {
    out += ",\"bound_words\":" + std::to_string(label.bound_words);
    out += ",\"bound_rounds\":" + std::to_string(label.bound_rounds);
    out += ",\"bound_headroom\":";
    append_double(out, label.headroom);
    out += ",\"formula\":";
    append_json_string(out, label.formula);
  }
  out += '}';
}

void append_labels_json(std::string& out,
                        const std::vector<LabelReport>& labels) {
  out += "[";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ',';
    append_label_json(out, labels[i]);
  }
  out += "]";
}

double headroom_of(std::size_t peak, std::size_t bound_words) {
  if (bound_words != 0)
    return static_cast<double>(peak) / static_cast<double>(bound_words);
  return peak == 0 ? 0.0 : kHeadroomClamp;
}

std::string violation_message(const RunReport& report,
                              const LabelReport& label) {
  std::string msg = "bound audit: program \"" + report.program + "\" step \"" +
                    label.label + "\": ";
  if (label.peak_words > label.bound_words) {
    msg += "measured peak " + std::to_string(label.peak_words) +
           " words/machine exceeds declared bound " +
           std::to_string(label.bound_words);
  } else {
    msg += "measured " + std::to_string(label.rounds) +
           " rounds exceed declared bound " +
           std::to_string(label.bound_rounds);
  }
  msg += " (declared: " + label.formula + ")";
  return msg;
}

}  // namespace

std::string RunReport::structural_json() const {
  std::string out = "{\"program\":";
  append_json_string(out, program);
  out += ",\"machines\":" + std::to_string(machines);
  out += ",\"capacity\":" + std::to_string(capacity);
  out += ",\"labels\":";
  append_labels_json(out, labels);
  out += '}';
  return out;
}

void RunReport::append_json(std::string& out) const {
  out += "{\"program\":";
  append_json_string(out, program);
  out += ",\"backend\":";
  append_json_string(out, backend);
  out += ",\"machines\":" + std::to_string(machines);
  out += ",\"capacity\":" + std::to_string(capacity);
  out += ",\"arena_words\":" + std::to_string(arena_words);
  out += ",\"labels\":";
  append_labels_json(out, labels);
  out += '}';
}

std::string program_name(const engine::RoundProgram& program) {
  if (program.cost) return program.cost->name();
  if (program.remote) return program.remote->name;
  if (!program.steps.empty()) return program.steps.front().name;
  return "empty";
}

RunReport make_run_report(std::string program, std::string backend,
                          std::size_t machines, std::size_t capacity,
                          std::size_t arena_words,
                          std::vector<LabelUsage> usage,
                          const CostModel* cost) {
  RunReport report;
  report.program = std::move(program);
  report.backend = std::move(backend);
  report.machines = machines;
  report.capacity = capacity;
  report.arena_words = arena_words;
  report.labels.reserve(usage.size());
  for (LabelUsage& u : usage) {
    LabelReport label;
    label.label = std::move(u.label);
    label.rounds = u.rounds;
    label.peak_words = u.peak_words;
    label.total_words = u.total_words;
    if (const StepBound* bound = cost ? cost->find(label.label) : nullptr) {
      label.bounded = true;
      label.bound_words = resolve_words(*bound, capacity);
      label.bound_rounds = bound->rounds;
      label.formula = bound->formula;
      label.headroom = headroom_of(label.peak_words, label.bound_words);
    }
    report.labels.push_back(std::move(label));
  }
  return report;
}

std::size_t enforce_bounds(const RunReport& report, bool checked) {
  std::size_t violations = 0;
  const LabelReport* first = nullptr;
  for (const LabelReport& label : report.labels) {
    if (!label.violates_bound()) continue;
    ++violations;
    if (first == nullptr) first = &label;
  }
  if (violations == 0) return 0;
  if (checked) throw check::VerifyError(violation_message(report, *first));
  trace::Tracer::global().metrics().add("obs.bound_violations", violations);
  return violations;
}

std::vector<std::string> audit_ledger_bounds(
    const std::map<std::string, std::size_t>& rounds_by_label,
    const std::map<std::string, std::size_t>& peak_by_label,
    const CostModel& model, std::size_t capacity) {
  std::vector<std::string> violations;
  for (const StepBound& bound : model.bounds()) {
    const std::size_t bound_words = resolve_words(bound, capacity);
    const auto rounds_it = rounds_by_label.find(bound.label);
    if (rounds_it != rounds_by_label.end() && bound.rounds != 0 &&
        rounds_it->second > bound.rounds)
      violations.push_back("label \"" + bound.label + "\": " +
                           std::to_string(rounds_it->second) +
                           " rounds exceed declared " +
                           std::to_string(bound.rounds) + " (" +
                           bound.formula + ")");
    const auto peak_it = peak_by_label.find(bound.label);
    if (peak_it != peak_by_label.end() && peak_it->second > bound_words)
      violations.push_back("label \"" + bound.label + "\": peak " +
                           std::to_string(peak_it->second) +
                           " words/machine exceeds declared " +
                           std::to_string(bound_words) + " (" + bound.formula +
                           ")");
  }
  return violations;
}

ReportLog& ReportLog::global() {
  static ReportLog log;
  return log;
}

void ReportLog::record(RunReport report) {
  std::lock_guard lock(mu_);
  for (RunReport& existing : reports_) {
    if (existing.program == report.program) {
      existing = std::move(report);
      return;
    }
  }
  reports_.push_back(std::move(report));
}

std::optional<RunReport> ReportLog::last(std::string_view program) const {
  std::lock_guard lock(mu_);
  for (const RunReport& report : reports_)
    if (report.program == program) return report;
  return std::nullopt;
}

std::vector<RunReport> ReportLog::snapshot() const {
  std::lock_guard lock(mu_);
  return reports_;
}

void ReportLog::clear() {
  std::lock_guard lock(mu_);
  reports_.clear();
}

void ReportLog::write_json_file(const std::string& path) const {
  std::string out = "{\n\"arbor_report\":1,\n\"reports\":[";
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < reports_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      reports_[i].append_json(out);
    }
  }
  out += "\n],\n\"metrics\":{\"counters\":{";
  trace::Tracer& tracer = trace::Tracer::global();
  bool first = true;
  for (const auto& [name, value] : tracer.metrics().counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    append_json_string(out, name);
    out += ':' + std::to_string(value);
  }
  out += "},\n\"histograms\":{";
  first = true;
  for (const trace::HistogramSnapshot& snap : tracer.metrics().histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    std::vector<double> sorted = snap.samples;
    std::sort(sorted.begin(), sorted.end());
    append_json_string(out, snap.name);
    out += ":{\"count\":" + std::to_string(snap.count);
    out += ",\"sum\":";
    append_double(out, snap.sum);
    out += ",\"dropped\":" + std::to_string(snap.dropped());
    out += ",\"p50\":";
    append_double(out, trace::percentile(sorted, 50.0));
    out += ",\"p95\":";
    append_double(out, trace::percentile(sorted, 95.0));
    out += ",\"p99\":";
    append_double(out, trace::percentile(sorted, 99.0));
    out += '}';
  }
  out += "}},\n\"workers\":[";
  first = true;
  for (const trace::WorkerNote& note : tracer.worker_notes()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"pid\":" + std::to_string(note.pid);
    out += ",\"spans\":" + std::to_string(note.spans);
    out += ",\"counters\":" + std::to_string(note.counters);
    out += ",\"last_span\":";
    append_json_string(out, note.last_span);
    out += ",\"last_end_ns\":" + std::to_string(note.last_end_ns) + '}';
  }
  out += "\n]}\n";
  std::ofstream os(path);
  os << out;
}

}  // namespace arbor::obs
