#include "obs/watchdog.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>

#include "trace/trace.hpp"
#include "util/env_knob.hpp"

namespace arbor::obs {
namespace {

/// Trailing rounds the median is computed over.
constexpr std::size_t kRecentRounds = 32;

/// Driver spans quoted in a stall dump.
constexpr std::size_t kDumpSpans = 8;

double strict_factor(std::string_view digits, std::string_view what,
                     std::string_view value) {
  double factor = 0.0;
  const auto [end, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), factor);
  if (ec != std::errc{} || end != digits.data() + digits.size())
    util::reject_knob(what, value, "stall factor is not a number");
  if (factor < 1.0)
    util::reject_knob(what, value, "stall factor must be >= 1");
  return factor;
}

/// Everything a stall dump quotes, copied out under the watchdog lock so
/// the actual stderr writes (and Tracer calls) run unlocked.
struct StallInfo {
  std::string program;
  std::string label;
  std::size_t round = 0;
  double elapsed_ms = 0.0;
  double median_ms = 0.0;
  double threshold_ms = 0.0;
  double factor = 0.0;
};

void dump_stall(const StallInfo& stall) {
  std::fprintf(stderr,
               "[watchdog][driver] stall: program \"%s\" step \"%s\" round "
               "%zu has run %.1f ms (trailing median %.1f ms, threshold "
               "%.1f ms, factor %.1f)\n",
               stall.program.c_str(), stall.label.c_str(), stall.round,
               stall.elapsed_ms, stall.median_ms, stall.threshold_ms,
               stall.factor);
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.metrics().add("obs.watchdog.stalls", 1);
  const std::int64_t now = trace::now_ns();
  for (const trace::TelemetrySpan& span : tracer.recent_spans(kDumpSpans))
    std::fprintf(stderr,
                 "[watchdog][driver] recent span: %s/%s tid=%llu dur=%.3f ms "
                 "ended %.1f ms ago\n",
                 span.category.c_str(), span.name.c_str(),
                 static_cast<unsigned long long>(span.tid),
                 static_cast<double>(span.dur_ns) / 1e6,
                 static_cast<double>(now - span.start_ns - span.dur_ns) / 1e6);
  const std::vector<trace::WorkerNote> notes = tracer.worker_notes();
  if (notes.empty()) {
    std::fprintf(stderr,
                 "[watchdog][driver] no worker telemetry absorbed yet "
                 "(in-process run, or no worker has reached a program end)\n");
    return;
  }
  for (const trace::WorkerNote& note : notes)
    std::fprintf(stderr,
                 "[watchdog][worker %llu] last seen: %llu spans shipped, "
                 "%llu counters, latest span \"%s\" ended %.1f ms ago\n",
                 static_cast<unsigned long long>(note.pid == 0 ? 0
                                                               : note.pid - 1),
                 static_cast<unsigned long long>(note.spans),
                 static_cast<unsigned long long>(note.counters),
                 note.last_span.c_str(),
                 static_cast<double>(now - note.last_end_ns) / 1e6);
}

}  // namespace

WatchdogConfig parse_watchdog_flag(std::string_view value,
                                   std::string_view what) {
  const auto [head, arg] = util::split_knob(value);
  WatchdogConfig cfg;
  if (head == "off") {
    if (arg) util::reject_knob(what, value, "the off mode takes no arguments");
    return cfg;
  }
  if (head != "on")
    util::reject_knob(what, value,
                      "not a watchdog mode (use off or on[:factor[:floor_ms]])");
  cfg.enabled = true;
  if (!arg) return cfg;
  const auto [factor_digits, floor_digits] = util::split_knob(*arg);
  cfg.factor = strict_factor(factor_digits, what, value);
  if (floor_digits)
    cfg.floor_ms = static_cast<std::uint64_t>(util::parse_count_knob(
        *floor_digits, "stall floor (ms)", 1, 1u << 30, what, value));
  return cfg;
}

WatchdogConfig watchdog_env_default() {
  static const WatchdogConfig value = [] {
    const auto env = util::env_knob("ARBOR_WATCHDOG");
    if (!env) return WatchdogConfig{};
    return parse_watchdog_flag(*env, "ARBOR_WATCHDOG");
  }();
  return value;
}

Watchdog::Watchdog() {
  // Touch the global tracer first so it outlives this watchdog: stall
  // dumps read it from the monitor thread, which must be joined (in our
  // destructor) while the tracer is still alive.
  trace::Tracer::global();
}

Watchdog::~Watchdog() { stop_thread(); }

Watchdog& Watchdog::global() {
  static Watchdog* dog = [] {
    static Watchdog instance;
    instance.configure(watchdog_env_default());
    return &instance;
  }();
  return *dog;
}

void Watchdog::configure(WatchdogConfig config) {
  stop_thread();
  {
    std::lock_guard lock(mu_);
    config_ = config;
  }
  enabled_.store(config.enabled, std::memory_order_relaxed);
  if (config.enabled) start_thread();
}

WatchdogConfig Watchdog::config() const {
  std::lock_guard lock(mu_);
  return config_;
}

void Watchdog::start_thread() {
  std::lock_guard lock(mu_);
  if (monitor_.joinable()) return;
  stop_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Watchdog::stop_thread() {
  {
    std::lock_guard lock(mu_);
    if (!monitor_.joinable()) return;
    stop_ = true;
  }
  cv_.notify_all();
  monitor_.join();
  std::lock_guard lock(mu_);
  stop_ = false;
  monitor_ = std::thread();
}

void Watchdog::begin_program(const engine::RoundProgram& program,
                             std::string name) {
  std::lock_guard lock(mu_);
  active_ = true;
  program_ = std::move(name);
  labels_.clear();
  labels_.reserve(program.steps.size());
  for (const engine::ProgramStep& step : program.steps)
    labels_.push_back(step.name);
  round_index_ = 0;
  round_start_ns_ = trace::now_ns();
  flagged_ = false;
  recent_ms_.clear();
  recent_next_ = 0;
}

void Watchdog::end_program() {
  std::lock_guard lock(mu_);
  active_ = false;
}

void Watchdog::commit_round() {
  std::lock_guard lock(mu_);
  const std::int64_t now = trace::now_ns();
  const double dur_ms = static_cast<double>(now - round_start_ns_) / 1e6;
  if (recent_ms_.size() < kRecentRounds) {
    recent_ms_.push_back(dur_ms);
  } else {
    recent_ms_[recent_next_] = dur_ms;
    recent_next_ = (recent_next_ + 1) % kRecentRounds;
  }
  ++round_index_;
  round_start_ns_ = now;
  flagged_ = false;
}

void Watchdog::monitor_loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    const auto poll = std::chrono::milliseconds(
        std::max<std::uint64_t>(10, config_.floor_ms / 4));
    cv_.wait_for(lock, poll);
    if (stop_) break;
    if (!active_ || flagged_) continue;
    const double elapsed_ms =
        static_cast<double>(trace::now_ns() - round_start_ns_) / 1e6;
    std::vector<double> sorted = recent_ms_;
    std::sort(sorted.begin(), sorted.end());
    const double median_ms =
        sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
    const double threshold_ms =
        std::max(static_cast<double>(config_.floor_ms),
                 config_.factor * median_ms);
    if (elapsed_ms <= threshold_ms) continue;
    flagged_ = true;
    stalls_.fetch_add(1, std::memory_order_relaxed);
    StallInfo stall;
    stall.program = program_;
    stall.label =
        labels_.empty() ? "?" : labels_[round_index_ % labels_.size()];
    stall.round = round_index_;
    stall.elapsed_ms = elapsed_ms;
    stall.median_ms = median_ms;
    stall.threshold_ms = threshold_ms;
    stall.factor = config_.factor;
    lock.unlock();
    dump_stall(stall);
    lock.lock();
  }
}

Watchdog::ProgramScope::ProgramScope(Watchdog& dog,
                                     const engine::RoundProgram& program,
                                     std::string name) {
  if (!dog.enabled()) return;
  dog_ = &dog;
  dog_->begin_program(program, std::move(name));
}

Watchdog::ProgramScope::~ProgramScope() {
  if (dog_ != nullptr) dog_->end_program();
}

void Watchdog::ProgramScope::round_committed() {
  if (dog_ != nullptr) dog_->commit_round();
}

}  // namespace arbor::obs
