// Structured RunReports: one machine-readable document per executed
// RoundProgram, joining the per-label round/traffic aggregates with the
// program's declared CostModel (bound headroom per label), plus a global
// keep-last-per-program log that tools/arbor_report renders and diffs.
//
// The per-label aggregates come from Cluster::run_program's commit hook,
// which fires once per committed round on every backend with bit-identical
// RoundStats — so a report's structural fields (rounds, peaks, totals,
// bounds, headroom) are identical across {serial, parallel} policies and
// {in-process, loopback, tcp} transports. structural_json() serializes
// exactly that transport-independent subset; the full document adds the
// backend name and arena high-water marks, and ReportLog::write_json_file
// additionally joins the MetricsRegistry snapshot and per-worker telemetry.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/program.hpp"
#include "obs/cost_model.hpp"

namespace arbor::obs {

/// Per-label usage accumulated by the run_program commit hook.
struct LabelUsage {
  std::string label;
  std::size_t rounds = 0;
  std::size_t peak_words = 0;   ///< max over rounds of max_traffic()
  std::size_t total_words = 0;  ///< sum over rounds of max_traffic()
};

/// One label's measured usage joined with its declared bound.
struct LabelReport {
  std::string label;
  std::size_t rounds = 0;
  std::size_t peak_words = 0;
  std::size_t total_words = 0;
  bool bounded = false;         ///< the program's CostModel covers this label
  std::size_t bound_words = 0;  ///< declared peak, resolved against capacity
  std::size_t bound_rounds = 0; ///< declared round cap; 0 = unchecked
  std::string formula;
  /// peak_words / bound_words; a compute-only bound (0 words) that moved
  /// words reports an effectively infinite headroom (clamped for JSON).
  double headroom = 0.0;

  bool violates_bound() const noexcept {
    return bounded && (peak_words > bound_words ||
                       (bound_rounds != 0 && rounds > bound_rounds));
  }
};

/// The report for one executed program.
struct RunReport {
  std::string program;
  std::string backend;
  std::size_t machines = 0;
  std::size_t capacity = 0;
  /// High-water words retained in the cluster's inbox/outbox arenas after
  /// the run (capacity, not size — what the pool actually holds).
  std::size_t arena_words = 0;
  std::vector<LabelReport> labels;

  /// The transport/policy-independent subset, for determinism checks and
  /// baseline diffs: program, machines, capacity, and every label's
  /// rounds/peaks/bounds/headroom — no backend, no arena, no timing.
  std::string structural_json() const;
  /// Full single-report JSON object (structural fields + backend + arena).
  void append_json(std::string& out) const;
};

/// Name a program reports under: its CostModel's name when declared, else
/// its RemoteSpec registry key, else the first step's label.
std::string program_name(const engine::RoundProgram& program);

/// Join hook aggregates with the declared model into a RunReport.
RunReport make_run_report(std::string program, std::string backend,
                          std::size_t machines, std::size_t capacity,
                          std::size_t arena_words,
                          std::vector<LabelUsage> usage,
                          const CostModel* cost);

/// Audit a report against its (already joined) bounds. Any label with
/// headroom > 1.0 — or more rounds than declared — raises a named
/// check::VerifyError ("bound audit: ...") when `checked`, and bumps the
/// obs.bound_violations counter otherwise. Returns the violation count.
std::size_t enforce_bounds(const RunReport& report, bool checked);

/// Audit a RoundLedger's per-label maps (the analytic pipeline charges)
/// against a CostModel: labels absent from the model are ignored; returns
/// one human-readable violation line per exceeded bound (empty = clean).
std::vector<std::string> audit_ledger_bounds(
    const std::map<std::string, std::size_t>& rounds_by_label,
    const std::map<std::string, std::size_t>& peak_by_label,
    const CostModel& model, std::size_t capacity);

/// Process-global log of the most recent RunReport per program name
/// (bounded memory: a pooled bench running thousands of internal sorts
/// keeps one entry per distinct program, in first-seen order).
class ReportLog {
 public:
  static ReportLog& global();

  void record(RunReport report);
  std::optional<RunReport> last(std::string_view program) const;
  std::vector<RunReport> snapshot() const;
  void clear();

  /// Write the full observatory document: every logged report, the
  /// MetricsRegistry snapshot (counters + histograms with dropped-sample
  /// counts), and each absorbed worker's last-seen telemetry.
  void write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<RunReport> reports_;
};

}  // namespace arbor::obs
