// Declared analytic cost models for RoundPrograms and pipeline stages.
//
// The paper states its guarantees per round: O(√p·s) words/machine for a
// splitter round, slab traffic ≤ S, O(log n)-style round counts. A CostModel
// carries those closed forms next to the program that implements them, as a
// list of per-step-label bounds. Cluster::run_program audits every finished
// run against the attached model (see obs/report.hpp): a measured peak above
// the declared words/machine bound — headroom > 1.0 — is a named VerifyError
// under ExecutionPolicy::checked() and a warning counter otherwise.
//
// Bounds are declared at program-build time, where (p, s, kw) are in scope,
// so the formulas live in the protocol files (sample_sort.cpp, broadcast.cpp,
// ...) rather than in a central table that would drift from the code.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace arbor::obs {

/// Sentinel for StepBound::words: "bounded only by the model's per-machine
/// memory S" — resolved against the cluster capacity at audit time, so
/// builders that cannot see S (worker-side factories) can still declare the
/// data-movement rounds honestly.
inline constexpr std::size_t kWordsCapacity = static_cast<std::size_t>(-1);

struct StepBound {
  std::string label;
  /// Declared peak words/machine for any single round charged under `label`
  /// (max of sent and received). 0 means compute-only: the audit requires
  /// the step to move no words at all. kWordsCapacity means "≤ S".
  std::size_t words = 0;
  /// Declared maximum number of rounds charged under `label` per program
  /// run; 0 leaves the round count unchecked (data-dependent trip counts
  /// declare it where the driver knows the cap, e.g. repeat_while limits).
  std::size_t rounds = 0;
  /// Human-readable closed form quoted in reports and violation messages,
  /// e.g. "r*s*kw, r=⌈√p⌉".
  std::string formula;
};

/// Resolve a declared words bound against the cluster capacity S.
inline std::size_t resolve_words(const StepBound& bound,
                                 std::size_t capacity) noexcept {
  return bound.words == kWordsCapacity ? capacity : bound.words;
}

/// The analytic cost model of one program: a name (quoted in audits and
/// RunReports) plus one StepBound per step label.
class CostModel {
 public:
  explicit CostModel(std::string name) : name_(std::move(name)) {}

  CostModel& bound(std::string label, std::size_t words, std::size_t rounds,
                   std::string formula) {
    bounds_.push_back(
        StepBound{std::move(label), words, rounds, std::move(formula)});
    return *this;
  }

  const std::string& name() const noexcept { return name_; }
  const std::vector<StepBound>& bounds() const noexcept { return bounds_; }

  const StepBound* find(std::string_view label) const noexcept {
    for (const StepBound& b : bounds_)
      if (b.label == label) return &b;
    return nullptr;
  }

 private:
  std::string name_;
  std::vector<StepBound> bounds_;
};

/// Round bounds for the analytic layering/coloring/orientation pipeline
/// stage labels MpcContext::charge attributes (layering.peel, color.*,
/// orient.*, coreness.parallel_guesses, density_estimate, exponentiate.*).
/// Each stage is O(log n) rounds with per-round traffic within the model's
/// S cap; audit a pipeline ledger against it with audit_ledger_bounds.
std::shared_ptr<const CostModel> pipeline_cost_model(std::size_t n);

}  // namespace arbor::obs
