// Driver-side stall watchdog: a monitor thread that flags any round
// running longer than k× the trailing-median round time.
//
// Distributed rounds hang for reasons the driver cannot see from inside the
// blocked recv — a worker wedged in a syscall, a lost frame, a peer
// swapping. The watchdog gives the operator a signal before the transport's
// own failure detection (or the operator's patience) times out: when a
// round exceeds max(floor_ms, factor × median of the last rounds), it dumps
// the stalled program/step/round, the driver's most recent spans, and every
// absorbed worker's last-seen telemetry to stderr, each line rank-prefixed
// ("[watchdog][driver]", "[watchdog][worker 0]"). One dump per round — a
// slow round is flagged once, not spammed.
//
// OFF by default; the knob is strictly parsed from ARBOR_WATCHDOG:
//
//   ARBOR_WATCHDOG=off | on[:factor[:floor_ms]]     (default factor 8,
//                                                    floor 100 ms)
//
// Cost when disabled: Cluster::run_program constructs a no-op ProgramScope
// (one relaxed atomic load); no thread exists.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/program.hpp"

namespace arbor::obs {

struct WatchdogConfig {
  bool enabled = false;
  double factor = 8.0;        ///< stall threshold multiple of the median
  std::uint64_t floor_ms = 100;  ///< never flag rounds shorter than this

  friend bool operator==(const WatchdogConfig&,
                         const WatchdogConfig&) = default;
};

/// Strict parse of "off|on[:factor[:floor_ms]]" (ARBOR_WATCHDOG); unknown
/// values are rejected by name with the canonical knob message shape.
WatchdogConfig parse_watchdog_flag(std::string_view value,
                                   std::string_view what);

/// Process-wide default, read once from the ARBOR_WATCHDOG variable.
WatchdogConfig watchdog_env_default();

class Watchdog {
 public:
  /// The process-wide watchdog, configured from ARBOR_WATCHDOG on first
  /// touch. Cluster::run_program scopes every program through it.
  static Watchdog& global();

  Watchdog();
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Swap the config; starts the monitor thread when enabling, stops it
  /// when disabling (tests toggle this directly).
  void configure(WatchdogConfig config);
  WatchdogConfig config() const;
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Rounds flagged as stalled since process start (monotonic).
  std::uint64_t stalls_flagged() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

  /// RAII lifetime of one program under watch: construction arms the
  /// monitor with the program's name and step labels, round_committed()
  /// closes the running round's timer, destruction disarms. A no-op when
  /// the watchdog is disabled at construction.
  class ProgramScope {
   public:
    ProgramScope(Watchdog& dog, const engine::RoundProgram& program,
                 std::string name);
    ~ProgramScope();
    ProgramScope(const ProgramScope&) = delete;
    ProgramScope& operator=(const ProgramScope&) = delete;

    void round_committed();

   private:
    Watchdog* dog_ = nullptr;
  };

 private:
  void begin_program(const engine::RoundProgram& program, std::string name);
  void end_program();
  void commit_round();
  void monitor_loop();
  void start_thread();
  void stop_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> stalls_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  WatchdogConfig config_;
  bool stop_ = false;
  std::thread monitor_;

  // Armed-program state, all under mu_.
  bool active_ = false;
  std::string program_;
  std::vector<std::string> labels_;   ///< step labels, one per program round
  std::size_t round_index_ = 0;
  std::int64_t round_start_ns_ = 0;
  bool flagged_ = false;              ///< current round already dumped
  std::vector<double> recent_ms_;     ///< trailing round durations (ring)
  std::size_t recent_next_ = 0;
};

}  // namespace arbor::obs
