// Run tracing and metrics telemetry.
//
// Two instruments share this header:
//
//   * Tracer — wall-clock spans ("this thread spent [start, start+dur) in
//     engine.compute for step sample_sort.tree.up") collected into
//     per-thread buffers and serialized as Chrome trace-event JSON, the
//     format Perfetto / chrome://tracing render directly. Spans carry a
//     category (engine / net / mpc / driver), a name (the ProgramStep
//     label wherever one exists, so trace rows line up with ledger rows),
//     a process lane (driver = pid 0, worker rank r = pid r+1) and a
//     thread lane.
//   * MetricsRegistry — named monotonic counters (words / frames per step
//     label) and histograms (round latency, serialize / send / frame-wait
//     / deliver durations) with exact count+sum and nearest-rank
//     p50/p95/p99 over retained samples.
//
// net/ workers drain both into a TelemetryBlob at program end and ship it
// to the driver as a kTelemetry frame (net/wire.hpp); the driver absorbs
// blobs in rank order into the global tracer, so the merged metrics
// report is deterministic and one trace file shows driver and worker
// lanes on one comparable clock (steady_clock is CLOCK_MONOTONIC —
// system-wide on Linux, and the transport is localhost-only).
//
// Everything is gated on a Mode that is OFF by default: a disabled
// tracer's span() is one relaxed atomic load and a branch — no clock
// read, no string construction, no allocation — so instrumentation stays
// compiled in everywhere. The knob is ClusterConfig::trace, defaulting to
// the strictly-parsed ARBOR_TRACE environment variable:
//
//   ARBOR_TRACE=off | spans[:path] | full[:path]
//
// where `spans` records spans only, `full` adds metrics, and `path`
// overrides where the global tracer writes its trace file at process
// exit (default arbor-trace.json). Unknown values are rejected by name
// (util/env_knob.hpp). Enabling tracing never perturbs simulated
// execution: inbox fingerprints and ledger totals are bit-identical with
// tracing off or full (tests/trace_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arbor::trace {

enum class Mode : std::uint8_t {
  kOff = 0,    ///< null sink: span() is a branch, nothing is recorded
  kSpans = 1,  ///< record spans only
  kFull = 2,   ///< spans + metrics counters/histograms
};

const char* mode_name(Mode mode);

struct TraceConfig {
  Mode mode = Mode::kOff;
  /// Output file for the global tracer's exit flush; empty = default
  /// ("arbor-trace.json").
  std::string path;

  friend bool operator==(const TraceConfig&, const TraceConfig&) = default;
};

/// Strict parse of "off|spans|full[:path]" (ARBOR_TRACE): unknown modes,
/// an empty path after ':', or a path on "off" are rejected by name with
/// the canonical knob message shape.
TraceConfig parse_trace_flag(std::string_view value, std::string_view what);

/// Process-wide default for ClusterConfig::trace, read once from the
/// ARBOR_TRACE environment variable.
TraceConfig trace_env_default();

/// Monotonic nanoseconds (CLOCK_MONOTONIC): comparable across the
/// processes of one localhost run.
std::int64_t now_ns();

/// Nearest-rank percentile of an ascending-sorted sample, p in [0,100].
double percentile(std::span<const double> sorted, double p);

// ------------------------------------------------------------- metrics

/// Snapshot of one histogram for wire transfer / reporting.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;  ///< exact, even past the sample cap
  double sum = 0.0;         ///< exact, even past the sample cap
  std::vector<double> samples;  ///< first kMaxHistogramSamples observations

  /// Observations past the retained-sample cap: percentiles were computed
  /// over `samples` only, so a nonzero dropped() flags them as truncated.
  std::uint64_t dropped() const noexcept {
    return count > samples.size() ? count - samples.size() : 0;
  }
};

/// Observations kept per histogram for percentile estimation; count and
/// sum stay exact beyond it (keep-first is deterministic, reservoir
/// sampling would not be).
inline constexpr std::size_t kMaxHistogramSamples = std::size_t{1} << 16;

class MetricsRegistry {
 public:
  void add(std::string_view name, std::uint64_t delta);
  void observe(std::string_view name, double value);

  std::map<std::string, std::uint64_t> counters() const;
  std::vector<HistogramSnapshot> histograms() const;
  std::optional<std::uint64_t> counter(std::string_view name) const;
  std::optional<HistogramSnapshot> histogram(std::string_view name) const;

  /// Fold shipped worker metrics in: counters sum, histogram snapshots
  /// append (callers merge in rank order, keeping reports deterministic).
  void merge(const std::vector<std::pair<std::string, std::uint64_t>>& counters,
             const std::vector<HistogramSnapshot>& histograms);

  /// Deterministic text report: counters then histograms, name-sorted,
  /// histograms with count/sum/p50/p95/p99.
  std::string report() const;

  void clear();
  bool empty() const;

 private:
  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> samples;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

// --------------------------------------------------------------- spans

/// One closed span, as stored in thread buffers and shipped over the wire.
struct TelemetrySpan {
  std::string name;
  std::string category;
  std::uint64_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Everything a worker ships to the driver at program end.
struct TelemetryBlob {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<HistogramSnapshot> histograms;
  std::vector<TelemetrySpan> spans;

  bool empty() const noexcept {
    return counters.empty() && histograms.empty() && spans.empty();
  }
};

/// What the driver last saw from one absorbed worker: retained by
/// Tracer::absorb so the stall watchdog (obs/watchdog.hpp) can dump each
/// worker's last-seen telemetry when a round hangs.
struct WorkerNote {
  std::uint64_t pid = 0;        ///< process lane (worker rank r = pid r+1)
  std::uint64_t spans = 0;      ///< spans absorbed from this worker, total
  std::uint64_t counters = 0;   ///< distinct counters in its last blob
  std::string last_span;        ///< name of the latest-ending span shipped
  std::int64_t last_end_ns = 0; ///< that span's end time (driver clock base)
};

class Tracer;

/// RAII span: closes (records stop time) on destruction or end(). A
/// default-constructed Span is the null sink disabled tracing returns.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void end();
  bool active() const noexcept { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* category, std::string name,
       std::int64_t start_ns)
      : tracer_(tracer),
        category_(category),
        name_(std::move(name)),
        start_ns_(start_ns) {}

  Tracer* tracer_ = nullptr;
  const char* category_ = "";
  std::string name_;
  std::int64_t start_ns_ = 0;
};

class Tracer {
 public:
  Tracer();
  explicit Tracer(TraceConfig config, bool flush_at_exit = false);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer: configured once from ARBOR_TRACE, raised by
  /// Cluster configs, flushed to its configured path at process exit.
  static Tracer& global();

  Mode mode() const noexcept { return mode_.load(std::memory_order_relaxed); }
  void set_mode(Mode mode) noexcept {
    mode_.store(mode, std::memory_order_relaxed);
  }
  /// Never lowers: several clusters in one process may disagree and "some
  /// component wants tracing" must win.
  void raise_mode(Mode mode) noexcept;
  void set_path(std::string path);
  std::string path() const;

  /// The null-sink branch: everything below answers these before touching
  /// a clock or a buffer.
  bool spans_on() const noexcept { return mode() != Mode::kOff; }
  bool metrics_on() const noexcept {
    return mode() == Mode::kFull ||
           metrics_forced_.load(std::memory_order_relaxed);
  }
  /// Benches opt into metrics without span overhead or a trace file.
  void force_metrics(bool on) noexcept {
    metrics_forced_.store(on, std::memory_order_relaxed);
  }

  /// Open a span on the calling thread's buffer; inert when disabled
  /// (`name` is not even copied).
  Span span(const char* category, std::string_view name) {
    if (!spans_on()) return Span();
    return Span(this, category, std::string(name), now_ns());
  }

  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Move every recorded span and metric out (worker side, program end).
  TelemetryBlob drain_telemetry();
  /// Fold a worker's blob in under its process lane (driver side; callers
  /// absorb in rank order).
  void absorb(const TelemetryBlob& blob, std::uint64_t pid);

  /// Recorded spans, local + absorbed (tests).
  std::size_t span_count() const;
  /// Last-seen telemetry per absorbed worker, pid-ascending (watchdog dump).
  std::vector<WorkerNote> worker_notes() const;
  /// The most recently closed local (driver-side) spans, latest first, at
  /// most `max` — the in-flight state a stall dump quotes.
  std::vector<TelemetrySpan> recent_spans(std::size_t max) const;
  /// Drop all spans and metrics (tests, bench row isolation).
  void clear();

  // ------------------------------------------------- chrome trace output
  /// {"traceEvents": [...], "metrics": {...}}: complete spans (ph "X",
  /// microsecond timestamps rebased to the earliest event), process-name
  /// metadata per lane, and the metrics registry's counters/percentiles.
  void write_chrome_trace(std::ostream& os) const;
  /// write_chrome_trace to `path`; false (no throw) on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;
  /// Exit flush: write the configured path if any span was recorded.
  void flush();

 private:
  friend class Span;

  struct ThreadBuffer {
    std::mutex mu;  ///< owner thread appends; drain/write contend briefly
    std::uint64_t tid = 0;
    std::vector<TelemetrySpan> spans;
  };
  struct ForeignSpan {
    TelemetrySpan span;
    std::uint64_t pid = 0;
  };

  void record(const char* category, std::string&& name, std::int64_t start_ns,
              std::int64_t dur_ns);
  ThreadBuffer& local_buffer();

  const std::uint64_t serial_;  ///< never reused; keys thread-local caches
  std::atomic<Mode> mode_{Mode::kOff};
  std::atomic<bool> metrics_forced_{false};
  bool flush_at_exit_ = false;

  mutable std::mutex registry_mu_;  ///< guards buffers_, foreign_, path_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<ForeignSpan> foreign_;
  std::map<std::uint64_t, WorkerNote> worker_notes_;
  std::string path_;
  MetricsRegistry metrics_;
};

/// Test helper: override a tracer's mode for a scope, restoring on exit.
class ScopedMode {
 public:
  ScopedMode(Tracer& tracer, Mode mode)
      : tracer_(tracer), saved_(tracer.mode()) {
    tracer_.set_mode(mode);
  }
  ~ScopedMode() { tracer_.set_mode(saved_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Tracer& tracer_;
  Mode saved_;
};

}  // namespace arbor::trace
