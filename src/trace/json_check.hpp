// Minimal JSON syntax checker for validating emitted trace files.
//
// This is a validator, not a parser: it walks the grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) and reports the
// first defect with its byte offset. Enough to assert "the trace writer
// emitted well-formed JSON a viewer will load" in tests and in
// tools/trace_validate.cpp without pulling a JSON library into the build.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace arbor::trace {

struct JsonCheckResult {
  bool ok = false;
  std::size_t offset = 0;  ///< byte offset of the defect when !ok
  std::string error;       ///< empty when ok
};

/// Validate that `text` is exactly one JSON value (plus whitespace).
JsonCheckResult check_json(std::string_view text);

}  // namespace arbor::trace
