// Minimal JSON syntax checker for validating emitted trace files.
//
// This is a validator, not a parser: it walks the grammar (objects,
// arrays, strings with escapes, numbers, true/false/null) and reports the
// first defect with its byte offset. Enough to assert "the trace writer
// emitted well-formed JSON a viewer will load" in tests and in
// tools/trace_validate.cpp without pulling a JSON library into the build.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace arbor::trace {

struct JsonCheckResult {
  bool ok = false;
  std::size_t offset = 0;  ///< byte offset of the defect when !ok
  std::string error;       ///< empty when ok
};

/// Validate that `text` is exactly one JSON value (plus whitespace).
JsonCheckResult check_json(std::string_view text);

/// Parsed JSON value — the DOM behind tools/arbor_report's structural
/// diff. Object members keep document order (the writers emit
/// deterministic documents, so order is meaningful in a diff).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key`, or nullptr (objects only).
  const JsonValue* find(std::string_view key) const;
};

struct JsonParseResult {
  bool ok = false;
  std::size_t offset = 0;  ///< byte offset of the defect when !ok
  std::string error;       ///< empty when ok
  JsonValue value;
};

/// Parse exactly one JSON value (plus whitespace) into a JsonValue tree.
/// Same grammar and limits as check_json.
JsonParseResult parse_json(std::string_view text);

}  // namespace arbor::trace
