#include "trace/json_check.hpp"

#include <cctype>

namespace arbor::trace {

namespace {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  JsonCheckResult run() {
    skip_ws();
    if (!value()) return result_;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      return result_;
    }
    return {true, 0, ""};
  }

 private:
  bool fail(const std::string& error) {
    if (result_.error.empty()) result_ = {false, pos_, error};
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("bad unicode escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return fail("raw control character in string");
      }
      ++pos_;
    }
    if (eof()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("bad number");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    struct Depth {
      std::size_t& d;
      ~Depth() { --d; }
    } depth_guard{depth_};
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' in object");
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  JsonCheckResult result_{false, 0, ""};
};

}  // namespace

JsonCheckResult check_json(std::string_view text) { return Checker(text).run(); }

}  // namespace arbor::trace
