#include "trace/json_check.hpp"

#include <cctype>
#include <cstdlib>

namespace arbor::trace {

namespace {

class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  JsonCheckResult run() {
    skip_ws();
    if (!value()) return result_;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      return result_;
    }
    return {true, 0, ""};
  }

 private:
  bool fail(const std::string& error) {
    if (result_.error.empty()) result_ = {false, pos_, error};
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("bad unicode escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return fail("raw control character in string");
      }
      ++pos_;
    }
    if (eof()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("bad number");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool value() {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    struct Depth {
      std::size_t& d;
      ~Depth() { --d; }
    } depth_guard{depth_};
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' in object");
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  JsonCheckResult result_{false, 0, ""};
};

// The parser mirrors the checker's grammar walk but builds the tree; the
// two stay separate because the checker is hot-path-adjacent (trace-smoke
// validates multi-megabyte traces) and must not pay for tree allocation.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult out;
    skip_ws();
    if (!value(out.value)) {
      out.offset = result_.offset;
      out.error = result_.error;
      return out;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      out.offset = pos_;
      out.error = "trailing characters after value";
      return out;
    }
    out.ok = true;
    return out;
  }

 private:
  bool fail(const std::string& error) {
    if (result_.error.empty()) result_ = {false, pos_, error};
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool string(std::string& out) {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = peek();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos_;
              if (eof() ||
                  !std::isxdigit(static_cast<unsigned char>(peek())))
                return fail("bad unicode escape");
              const char h = peek();
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            append_utf8(out, code);
            break;
          }
          default: return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(peek()) < 0x20) {
        return fail("raw control character in string");
      } else {
        out.push_back(peek());
      }
      ++pos_;
    }
    if (eof()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("bad number");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad number exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number =
        std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                    nullptr);
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    struct Depth {
      std::size_t& d;
      ~Depth() { --d; }
    } depth_guard{depth_};
    skip_ws();
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':' in object");
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  JsonCheckResult result_{false, 0, ""};
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, member] : object)
    if (name == key) return &member;
  return nullptr;
}

JsonCheckResult check_json(std::string_view text) { return Checker(text).run(); }

JsonParseResult parse_json(std::string_view text) { return Parser(text).run(); }

}  // namespace arbor::trace
