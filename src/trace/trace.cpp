#include "trace/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/env_knob.hpp"

namespace arbor::trace {

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kSpans: return "spans";
    case Mode::kFull: return "full";
  }
  return "invalid";
}

TraceConfig parse_trace_flag(std::string_view value, std::string_view what) {
  const auto [head, arg] = util::split_knob(value);
  TraceConfig cfg;
  if (head == "off") {
    cfg.mode = Mode::kOff;
    if (arg) util::reject_knob(what, value, "the off mode takes no trace path");
    return cfg;
  } else if (head == "spans") {
    cfg.mode = Mode::kSpans;
  } else if (head == "full") {
    cfg.mode = Mode::kFull;
  } else {
    util::reject_knob(what, value,
                      "not a trace mode (use off, spans[:path], or "
                      "full[:path])");
  }
  if (arg) {
    // "full:" is a truncated "full:path" — strict means strict.
    if (arg->empty()) util::reject_knob(what, value, "trace path is empty");
    cfg.path = std::string(*arg);
  }
  return cfg;
}

TraceConfig trace_env_default() {
  static const TraceConfig value = [] {
    const auto env = util::env_knob("ARBOR_TRACE");
    if (!env) return TraceConfig{};
    return parse_trace_flag(*env, "ARBOR_TRACE");
  }();
  return value;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  // Nearest rank: ceil(p/100 * N), 1-based.
  const double rank = p / 100.0 * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(rank);
  if (static_cast<double>(index) < rank) ++index;  // ceil
  if (index == 0) index = 1;
  if (index > sorted.size()) index = sorted.size();
  return sorted[index - 1];
}

// ------------------------------------------------------------- metrics

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard lock(mu_);
  counters_[std::string(name)] += delta;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard lock(mu_);
  Histogram& hist = histograms_[std::string(name)];
  ++hist.count;
  hist.sum += value;
  if (hist.samples.size() < kMaxHistogramSamples) hist.samples.push_back(value);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

std::vector<HistogramSnapshot> MetricsRegistry::histograms() const {
  std::lock_guard lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_)
    out.push_back({name, hist.count, hist.sum, hist.samples});
  return out;
}

std::optional<std::uint64_t> MetricsRegistry::counter(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(std::string(name));
  if (it == counters_.end()) return std::nullopt;
  return it->second;
}

std::optional<HistogramSnapshot> MetricsRegistry::histogram(
    std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(std::string(name));
  if (it == histograms_.end()) return std::nullopt;
  return HistogramSnapshot{it->first, it->second.count, it->second.sum,
                           it->second.samples};
}

void MetricsRegistry::merge(
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<HistogramSnapshot>& histograms) {
  std::lock_guard lock(mu_);
  for (const auto& [name, value] : counters) counters_[name] += value;
  for (const HistogramSnapshot& snap : histograms) {
    Histogram& hist = histograms_[snap.name];
    hist.count += snap.count;
    hist.sum += snap.sum;
    for (double v : snap.samples) {
      if (hist.samples.size() >= kMaxHistogramSamples) break;
      hist.samples.push_back(v);
    }
  }
}

std::string MetricsRegistry::report() const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, value] : counters_)
    os << name << " = " << value << "\n";
  for (const auto& [name, hist] : histograms_) {
    std::vector<double> sorted = hist.samples;
    std::sort(sorted.begin(), sorted.end());
    const std::uint64_t dropped =
        hist.count > hist.samples.size() ? hist.count - hist.samples.size() : 0;
    char line[200];
    std::snprintf(line, sizeof(line),
                  " count=%" PRIu64 " sum=%.3f p50=%.3f p95=%.3f p99=%.3f"
                  " dropped=%" PRIu64,
                  hist.count, hist.sum, percentile(sorted, 50.0),
                  percentile(sorted, 95.0), percentile(sorted, 99.0), dropped);
    os << name << line << "\n";
  }
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  histograms_.clear();
}

bool MetricsRegistry::empty() const {
  std::lock_guard lock(mu_);
  return counters_.empty() && histograms_.empty();
}

// --------------------------------------------------------------- spans

void Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->record(category_, std::move(name_), start_ns_,
                 now_ns() - start_ns_);
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    category_ = other.category_;
    name_ = std::move(other.name_);
    start_ns_ = other.start_ns_;
    other.tracer_ = nullptr;
  }
  return *this;
}

namespace {

std::uint64_t next_tracer_serial() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t thread_tid() {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// One-entry thread-local buffer cache. Keyed by the tracer's serial —
/// serials are never reused, so a stale entry for a destroyed tracer can
/// never be matched (and therefore never dereferenced).
struct BufferCache {
  std::uint64_t serial = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

}  // namespace

Tracer::Tracer() : serial_(next_tracer_serial()) {}

Tracer::Tracer(TraceConfig config, bool flush_at_exit)
    : serial_(next_tracer_serial()), flush_at_exit_(flush_at_exit) {
  mode_.store(config.mode, std::memory_order_relaxed);
  path_ = std::move(config.path);
}

Tracer::~Tracer() {
  if (flush_at_exit_) flush();
}

Tracer& Tracer::global() {
  // Function-local static: configured from ARBOR_TRACE on first touch,
  // destroyed (and flushed) at process exit.
  static Tracer tracer(trace_env_default(), /*flush_at_exit=*/true);
  return tracer;
}

void Tracer::raise_mode(Mode mode) noexcept {
  Mode cur = mode_.load(std::memory_order_relaxed);
  while (static_cast<std::uint8_t>(mode) > static_cast<std::uint8_t>(cur) &&
         !mode_.compare_exchange_weak(cur, mode, std::memory_order_relaxed)) {
  }
}

void Tracer::set_path(std::string path) {
  std::lock_guard lock(registry_mu_);
  path_ = std::move(path);
}

std::string Tracer::path() const {
  std::lock_guard lock(registry_mu_);
  return path_;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (t_buffer_cache.serial == serial_ && t_buffer_cache.buffer != nullptr)
    return *static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
  const std::uint64_t tid = thread_tid();
  std::lock_guard lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    if (buffer->tid == tid) {
      t_buffer_cache = {serial_, buffer.get()};
      return *buffer;
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = tid;
  t_buffer_cache = {serial_, buffers_.back().get()};
  return *buffers_.back();
}

void Tracer::record(const char* category, std::string&& name,
                    std::int64_t start_ns, std::int64_t dur_ns) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard lock(buffer.mu);  // uncontended except during drains
  buffer.spans.push_back(
      {std::move(name), category, buffer.tid, start_ns, dur_ns});
}

TelemetryBlob Tracer::drain_telemetry() {
  TelemetryBlob blob;
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard buf_lock(buffer->mu);
      blob.spans.insert(blob.spans.end(),
                        std::make_move_iterator(buffer->spans.begin()),
                        std::make_move_iterator(buffer->spans.end()));
      buffer->spans.clear();
    }
  }
  const std::map<std::string, std::uint64_t> counters = metrics_.counters();
  blob.counters.assign(counters.begin(), counters.end());
  blob.histograms = metrics_.histograms();
  metrics_.clear();
  return blob;
}

void Tracer::absorb(const TelemetryBlob& blob, std::uint64_t pid) {
  {
    std::lock_guard lock(registry_mu_);
    foreign_.reserve(foreign_.size() + blob.spans.size());
    for (const TelemetrySpan& span : blob.spans)
      foreign_.push_back({span, pid});
    // Last-seen note per worker lane, for the stall watchdog's dump.
    WorkerNote& note = worker_notes_[pid];
    note.pid = pid;
    note.spans += blob.spans.size();
    note.counters = blob.counters.size();
    for (const TelemetrySpan& span : blob.spans) {
      const std::int64_t end_ns = span.start_ns + span.dur_ns;
      if (end_ns >= note.last_end_ns) {
        note.last_end_ns = end_ns;
        note.last_span = span.name;
      }
    }
  }
  metrics_.merge(blob.counters, blob.histograms);
}

std::vector<WorkerNote> Tracer::worker_notes() const {
  std::lock_guard lock(registry_mu_);
  std::vector<WorkerNote> notes;
  notes.reserve(worker_notes_.size());
  for (const auto& [pid, note] : worker_notes_) notes.push_back(note);
  return notes;
}

std::vector<TelemetrySpan> Tracer::recent_spans(std::size_t max) const {
  std::vector<TelemetrySpan> spans;
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard buf_lock(buffer->mu);
      const std::size_t take =
          buffer->spans.size() < max ? buffer->spans.size() : max;
      spans.insert(spans.end(), buffer->spans.end() - take,
                   buffer->spans.end());
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TelemetrySpan& a, const TelemetrySpan& b) {
                     return a.start_ns + a.dur_ns > b.start_ns + b.dur_ns;
                   });
  if (spans.size() > max) spans.resize(max);
  return spans;
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(registry_mu_);
  std::size_t n = foreign_.size();
  for (const auto& buffer : buffers_) {
    std::lock_guard buf_lock(buffer->mu);
    n += buffer->spans.size();
  }
  return n;
}

void Tracer::clear() {
  {
    std::lock_guard lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard buf_lock(buffer->mu);
      buffer->spans.clear();
    }
    foreign_.clear();
    worker_notes_.clear();
  }
  metrics_.clear();
}

// ----------------------------------------------------- chrome trace output

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_fixed3(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  os << buf;
}

struct FlatEvent {
  const TelemetrySpan* span;
  std::uint64_t pid;
};

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::vector<FlatEvent> events;
  std::lock_guard lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard buf_lock(buffer->mu);
    // Safe to hold pointers across the unlock below: buffers_ and span
    // vectors are not mutated while registry_mu_ is held by us and the
    // owning threads are quiescent during a write (driver writes after
    // programs end).
    for (const TelemetrySpan& span : buffer->spans)
      events.push_back({&span, 0});
  }
  for (const ForeignSpan& foreign : foreign_)
    events.push_back({&foreign.span, foreign.pid});

  std::stable_sort(events.begin(), events.end(),
                   [](const FlatEvent& a, const FlatEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.span->tid != b.span->tid)
                       return a.span->tid < b.span->tid;
                     return a.span->start_ns < b.span->start_ns;
                   });

  std::int64_t base_ns = 0;
  for (const FlatEvent& e : events)
    if (base_ns == 0 || e.span->start_ns < base_ns) base_ns = e.span->start_ns;

  std::vector<std::uint64_t> pids;
  for (const FlatEvent& e : events) pids.push_back(e.pid);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());

  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::uint64_t pid : pids) {
    if (!first) os << ",";
    first = false;
    const std::string label =
        pid == 0 ? "driver" : "worker " + std::to_string(pid - 1);
    os << "\n{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":";
    write_json_string(os, label);
    os << "}}";
  }
  for (const FlatEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, e.span->name);
    os << ",\"cat\":";
    write_json_string(os, e.span->category);
    os << ",\"ph\":\"X\",\"ts\":";
    write_fixed3(os, static_cast<double>(e.span->start_ns - base_ns) / 1000.0);
    os << ",\"dur\":";
    write_fixed3(os, static_cast<double>(e.span->dur_ns) / 1000.0);
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.span->tid << "}";
  }
  os << "\n],\n\"metrics\":{\"counters\":{";
  first = true;
  for (const auto& [name, value] : metrics_.counters()) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_json_string(os, name);
    os << ":" << value;
  }
  os << "},\n\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& snap : metrics_.histograms()) {
    if (!first) os << ",";
    first = false;
    std::vector<double> sorted = snap.samples;
    std::sort(sorted.begin(), sorted.end());
    os << "\n";
    write_json_string(os, snap.name);
    os << ":{\"count\":" << snap.count << ",\"sum\":";
    write_fixed3(os, snap.sum);
    os << ",\"p50\":";
    write_fixed3(os, percentile(sorted, 50.0));
    os << ",\"p95\":";
    write_fixed3(os, percentile(sorted, 95.0));
    os << ",\"p99\":";
    write_fixed3(os, percentile(sorted, 99.0));
    os << ",\"dropped\":" << snap.dropped() << "}";
  }
  os << "}}}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  os.flush();
  return static_cast<bool>(os);
}

void Tracer::flush() {
  if (!spans_on()) return;
  if (span_count() == 0 && metrics_.empty()) return;
  std::string path;
  {
    std::lock_guard lock(registry_mu_);
    path = path_.empty() ? "arbor-trace.json" : path_;
  }
  write_chrome_trace_file(path);  // best effort: exit path, never throws
}

}  // namespace arbor::trace
