// E5 (Table-3 analog): Lemmas 2.1 and 2.2 — random edge/vertex
// partitioning into ⌈k/log n⌉ parts reduces per-part arboricity to
// O(log n) whp.
//
// Workloads are dense planted graphs whose arboricity far exceeds log n.
// The table reports the max degeneracy over parts (an upper bound on the
// part's arboricity) against the c·log n envelope, over several seeds.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/partitioning.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E5: random partitioning (Lemmas 2.1/2.2)",
      "claim: every part has arboricity O(log n) whp. max_part_degen "
      "aggregates 5 seeds; envelope = 4*log2(n).");
  bench::Table table({"workload", "n", "lambda~", "parts", "kind",
                      "max_part_degen", "envelope", "ok"});

  struct Case {
    const char* name;
    std::size_t n, background, clique;
  };
  const Case cases[] = {
      {"planted_64", 1 << 12, 8 << 12, 64},
      {"planted_128", 1 << 13, 8 << 13, 128},
      {"dense_gnp", 1 << 10, 0, 0},  // G(n, p = 64/n) → lambda ≈ 32
  };

  for (const Case& c : cases) {
    util::SplitRng seed_rng(42);
    std::size_t lambda_est = 0;
    util::Accumulator edge_worst, vertex_worst;
    std::size_t parts = 0;
    for (int seed = 0; seed < 5; ++seed) {
      util::SplitRng rng = seed_rng.split(static_cast<std::uint64_t>(seed));
      graph::Graph g =
          c.clique > 0
              ? graph::planted_clique(c.n, c.background, c.clique, rng)
              : graph::gnp(c.n, 64.0 / static_cast<double>(c.n), rng);
      lambda_est = graph::degeneracy(g);
      parts = core::partition_count(lambda_est, c.n);

      const auto ep = core::random_edge_partition(g, parts, rng);
      std::size_t worst_e = 0;
      for (const auto& part : ep.parts)
        worst_e = std::max(worst_e, graph::degeneracy(part));
      edge_worst.add(static_cast<double>(worst_e));

      const auto vp = core::random_vertex_partition(g, parts, rng);
      std::size_t worst_v = 0;
      for (const auto& part : vp.parts)
        worst_v = std::max(worst_v, graph::degeneracy(part));
      vertex_worst.add(static_cast<double>(worst_v));
    }
    const double envelope = 4.0 * std::log2(static_cast<double>(c.n));
    table.add_row({c.name, bench::fmt(c.n), bench::fmt(lambda_est),
                   bench::fmt(parts), "edge (L2.1)",
                   bench::fmt(edge_worst.max(), 0), bench::fmt(envelope, 1),
                   edge_worst.max() <= envelope ? "yes" : "NO"});
    table.add_row({c.name, bench::fmt(c.n), bench::fmt(lambda_est),
                   bench::fmt(parts), "vertex (L2.2)",
                   bench::fmt(vertex_worst.max(), 0),
                   bench::fmt(envelope, 1),
                   vertex_worst.max() <= envelope ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
