// E1 (Figure-1 analog): MPC round complexity vs instance size for the three
// orientation algorithms, on the hard instance for threshold peeling (the
// slow-peeling chain, one forced peel level per Θ(log n)) and on
// Barabási–Albert graphs (a natural family whose peel depth grows with n).
//
// Paper claim (Theorems 1.1 vs §1.2 state of the art): ours runs in
// poly(log log n) rounds, GLM19 in Θ̃(√log n), BE08 in Θ(log n). Expected
// shape: BE08 rounds grow by one per chain level; GLM19 grows
// sub-linearly in levels; ours stays near-flat (only the log log n step
// count moves).
//
// All three runs of a row share one cluster shape (S = n^δ of that row's
// instance) so the comparison within a row is at equal hardware.
#include <cstdio>

#include "baselines/be08_mpc.hpp"
#include "baselines/glm19.hpp"
#include "bench_util.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace arbor;

void chain_table() {
  bench::banner("E1a: rounds vs n — slow-peeling chain (hard instance)",
                "claim: BE08 = Θ(log n) [one round per level], GLM19 = "
                "Θ̃(√log n), ours = poly(log log n) [near-flat]. preset: "
                "PipelineParams::practical");
  bench::Table table({"levels", "n", "m", "lambda", "ours_rounds",
                      "glm19_rounds", "be08_rounds", "ours_outdeg",
                      "be08_outdeg"});
  util::SplitRng rng(1);
  for (std::size_t levels = 4; levels <= 13; levels += 3) {
    const auto chain = graph::slow_peeling_chain(levels, 10, rng);
    const graph::Graph& g = chain.graph;

    auto ours = bench::Run::for_graph(g);
    core::OrientationParams params;
    params.k = chain.lambda;
    const auto ours_result = core::mpc_orient(g, params, *ours.ctx);

    auto be = bench::Run::with_config(ours.config);
    const auto be_result =
        baselines::be08_orient(g, chain.lambda, 0.2, *be.ctx);

    auto glm = bench::Run::with_config(ours.config);
    const auto glm_result =
        baselines::glm19_orient(g, chain.lambda, 0.2, *glm.ctx);

    table.add_row({bench::fmt(levels), bench::fmt(g.num_vertices()),
                   bench::fmt(g.num_edges()), bench::fmt(chain.lambda),
                   bench::fmt(ours.ledger->total_rounds()),
                   bench::fmt(glm.ledger->total_rounds()),
                   bench::fmt(be.ledger->total_rounds()),
                   bench::fmt(ours_result.orientation.max_outdegree(g)),
                   bench::fmt(be_result.orientation.max_outdegree(g))});
  }
  table.print();
}

void natural_table() {
  bench::banner("E1b: rounds vs n — Barabási–Albert(3) (natural family)",
                "peel depth grows slowly with n here; same algorithms, "
                "auto-estimated k.");
  bench::Table table({"n", "m", "ours_rounds", "glm19_rounds", "be08_rounds",
                      "ours_outdeg", "be08_outdeg"});
  util::SplitRng rng(2);
  for (std::size_t lg = 10; lg <= 18; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    const graph::Graph g = graph::barabasi_albert(n, 3, rng);

    auto ours = bench::Run::for_graph(g);
    const auto ours_result = core::mpc_orient(g, {}, *ours.ctx);

    auto be = bench::Run::with_config(ours.config);
    const auto be_result = baselines::be08_orient(g, 0, 0.2, *be.ctx);

    auto glm = bench::Run::with_config(ours.config);
    (void)baselines::glm19_orient(g, 0, 0.2, *glm.ctx);

    table.add_row({bench::fmt(n), bench::fmt(g.num_edges()),
                   bench::fmt(ours.ledger->total_rounds()),
                   bench::fmt(glm.ledger->total_rounds()),
                   bench::fmt(be.ledger->total_rounds()),
                   bench::fmt(ours_result.orientation.max_outdegree(g)),
                   bench::fmt(be_result.orientation.max_outdegree(g))});
  }
  table.print();
}

}  // namespace

int main() {
  chain_table();
  natural_table();
  return 0;
}
