// E8 (Figure-4 analog): Lemma 2.4 path counting.
//
// Claims: Σ_v NumPathsIn(v) = Σ_v NumPathsOut(v) ≤ n·d^L, and (via
// Markov, as used in Lemma 3.13) the fraction of vertices with
// NumPathsIn > √B is at most d^L/√B. The table sweeps the reference
// peeling threshold d on G(n, 4n): larger d gives fewer layers but
// heavier per-layer fan-in.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/layering.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E8: strictly-increasing path counts (Lemma 2.4)",
      "claim: sum NumPathsIn = sum NumPathsOut <= n*d^L; "
      "frac(NumPathsIn > sqrt(B)) <= d^L/sqrt(B) for B = d^6.");
  bench::Table table({"d", "L", "sum_in(=sum_out)", "bound n*d^L",
                      "identity_ok", "sqrtB", "frac_heavy",
                      "markov_bound"});

  util::SplitRng rng(8);
  const std::size_t n = 1 << 12;
  const graph::Graph g = graph::gnm(n, 4 * n, rng);

  for (std::size_t d : {8u, 12u, 16u, 24u}) {
    const core::LayerAssignment ell =
        core::reference_peeling_layering(g, d);
    if (!ell.is_complete()) continue;
    const auto in = core::num_paths_in(g, ell);
    const auto out = core::num_paths_out(g, ell);
    long double sum_in = 0, sum_out = 0;
    for (std::size_t v = 0; v < n; ++v) {
      sum_in += static_cast<long double>(in[v]);
      sum_out += static_cast<long double>(out[v]);
    }
    const long double bound =
        static_cast<long double>(n) *
        std::pow(static_cast<long double>(d),
                 static_cast<long double>(ell.num_layers));
    const double sqrt_b = std::pow(static_cast<double>(d), 3.0);  // √(d^6)
    std::size_t heavy = 0;
    for (std::size_t v = 0; v < n; ++v)
      if (static_cast<double>(in[v]) > sqrt_b) ++heavy;
    const double frac = static_cast<double>(heavy) / static_cast<double>(n);
    const double markov = std::min(
        1.0, static_cast<double>(bound / static_cast<long double>(n)) /
                 sqrt_b);
    table.add_row({bench::fmt(d), bench::fmt(ell.num_layers),
                   bench::fmt(static_cast<double>(sum_in), 0),
                   bench::fmt(static_cast<double>(bound), 0),
                   sum_in == sum_out && sum_in <= bound ? "yes" : "NO",
                   bench::fmt(sqrt_b, 0), bench::fmt(frac, 4),
                   bench::fmt(markov, 4)});
  }
  table.print();
  return 0;
}
