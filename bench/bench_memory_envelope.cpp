// E6 (Table-4 analog): the memory envelope of the orientation pipeline.
//
// Paper claims (Theorem 1.1, Claims 3.5/3.11): local memory O(n^δ + B)
// per machine and global memory Õ(m + n) words. We sweep δ and report the
// ledger's peaks against S = n^δ and against c·(m+n)·log n; `violations`
// counts ledger events where a machine exceeded S.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E6: memory envelope vs delta",
      "claim: peak_local <= S + B; peak_global <= O((m+n) log n). budget "
      "capped at S/4 (as Lemma 3.13 requires B <= n^{delta/100}, scaled).");
  bench::Table table({"delta", "S", "machines", "peak_local", "local_ok",
                      "peak_global", "global_env", "global_ok",
                      "violations", "rounds"});

  util::SplitRng rng(6);
  const std::size_t n = 1 << 14;
  const graph::Graph g = graph::gnm(n, 4 * n, rng);
  const double log_n = std::log2(static_cast<double>(n));

  for (double delta : {0.3, 0.5, 0.7, 0.9}) {
    auto run = bench::Run::for_graph(g, delta);
    core::OrientationParams params;
    params.pipeline.budget_cap =
        std::max<std::size_t>(run.config.words_per_machine / 4, 16);
    (void)core::mpc_orient(g, params, *run.ctx);

    const std::size_t local_envelope =
        run.config.words_per_machine + params.pipeline.budget_cap;
    const auto global_envelope = static_cast<std::size_t>(
        8.0 * static_cast<double>(g.num_vertices() + g.num_edges()) * log_n);
    table.add_row(
        {bench::fmt(delta, 1), bench::fmt(run.config.words_per_machine),
         bench::fmt(run.config.num_machines),
         bench::fmt(run.ledger->peak_local_words()),
         run.ledger->peak_local_words() <= local_envelope ? "yes" : "NO",
         bench::fmt(run.ledger->peak_global_words()),
         bench::fmt(global_envelope),
         run.ledger->peak_global_words() <= global_envelope ? "yes" : "NO",
         bench::fmt(run.ledger->local_violations()),
         bench::fmt(run.ledger->total_rounds())});
  }
  table.print();
  return 0;
}
