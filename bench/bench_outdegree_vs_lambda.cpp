// E2 (Table-1 analog): orientation quality vs arboricity.
//
// Paper claim (Theorem 1.1): max out-degree O(λ log log n). Baselines:
// BE08 gives (2+ε)λ, the degeneracy orientation gives ≤ 2λ-1, and λ itself
// lower-bounds every orientation. Expected shape: ours tracks
// c·λ·log log n for a small c; the ratio column should stay roughly flat
// across λ.
#include <cmath>
#include <cstdio>

#include "baselines/be08_mpc.hpp"
#include "baselines/sequential.hpp"
#include "bench_util.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  const std::size_t n = 1 << 15;
  const double loglog = std::log2(std::log2(static_cast<double>(n)));

  bench::banner(
      "E2: max out-degree vs lambda — forest unions, n = 2^15",
      "claim: ours = O(lambda loglog n); BE08 = (2+eps)lambda; degeneracy "
      "<= 2 lambda - 1; lower bound = lambda. ratio = ours /"
      " (lambda*loglog n).");
  bench::Table table({"lambda", "ours_outdeg", "ours_bound", "be08_outdeg",
                      "degeneracy", "ours_rounds", "be08_rounds", "ratio"});

  util::SplitRng rng(7);
  for (std::size_t lambda : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const graph::Graph g = graph::forest_union(n, lambda, rng);

    auto ours = bench::Run::for_graph(g);
    const auto ours_result = core::mpc_orient(g, {}, *ours.ctx);
    const std::size_t ours_deg = ours_result.orientation.max_outdegree(g);

    auto be = bench::Run::with_config(ours.config);
    const auto be_result = baselines::be08_orient(g, 0, 0.2, *be.ctx);

    const auto ref = baselines::sequential_reference(g);

    table.add_row(
        {bench::fmt(lambda), bench::fmt(ours_deg),
         bench::fmt(ours_result.outdegree_bound),
         bench::fmt(be_result.orientation.max_outdegree(g)),
         bench::fmt(ref.degeneracy),
         bench::fmt(ours.ledger->total_rounds()),
         bench::fmt(be.ledger->total_rounds()),
         bench::fmt(static_cast<double>(ours_deg) /
                    (static_cast<double>(lambda) * loglog))});
  }
  table.print();
  return 0;
}
