// Shared routing-storm workload for the engine measurement binaries
// (bench_engine_scaling, engine_throughput).
//
// Every machine scatters one-word messages from its slab to hashed
// destinations each round, so the measurement is dominated by the engine's
// send/route/deliver path. The workload is deterministic for a given
// (slabs, rounds) regardless of ExecutionPolicy, and the inbox fingerprint
// lets callers assert that executors agree bit-for-bit.
//
// NOTE: step functions run concurrently under a parallel policy — the storm
// therefore computes its words-moved total outside the lambda instead of
// mutating shared state from it.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cluster.hpp"
#include "mpc/ledger.hpp"
#include "net/storm.hpp"
#include "util/hashing.hpp"

namespace arbor::bench {

/// Checksum of every machine's inbox contents, message boundaries included.
inline std::uint64_t inbox_fingerprint(const mpc::Cluster& cluster) {
  std::uint64_t h = util::mix64(3);
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& msg : cluster.inbox(m)) {
      h = util::hash_combine(h, msg.size());
      for (mpc::Word w : msg) h = util::hash_combine(h, w);
    }
    h = util::hash_combine(h, m);
  }
  return h;
}

/// Partition each edge's endpoint words round-robin across machines.
inline std::vector<std::vector<mpc::Word>> edge_slabs(
    const graph::Graph& g, std::size_t machines) {
  std::vector<std::vector<mpc::Word>> slabs(machines);
  std::size_t cursor = 0;
  for (const auto& e : g.edges()) {
    slabs[cursor % machines].push_back(e.u);
    slabs[cursor % machines].push_back(e.v);
    ++cursor;
  }
  return slabs;
}

struct StormOutcome {
  double secs = 0;
  std::size_t rounds = 0;
  std::size_t words_moved = 0;
  std::size_t ledger_rounds = 0;
  std::size_t peak_traffic = 0;
  std::size_t engine_width = 1;  ///< actual worker width (after hw clamp)
  std::size_t overlapped = 0;    ///< rounds fused by the async scheduler
  std::uint64_t fingerprint = 0;
};

/// Run `rounds` storm rounds on a cluster built from `cfg` (including its
/// ExecutionPolicy); each non-empty machine sends words_per_machine/8
/// one-word messages per round.
inline StormOutcome run_storm(const std::vector<std::vector<mpc::Word>>& slabs,
                              mpc::ClusterConfig cfg, std::size_t rounds) {
  const std::size_t machines = cfg.num_machines;
  const std::size_t batch = cfg.words_per_machine / 8;
  mpc::RoundLedger ledger(cfg);
  mpc::Cluster cluster(cfg, &ledger);
  StormOutcome out;
  std::size_t active_machines = 0;
  for (const auto& slab : slabs)
    if (!slab.empty()) ++active_machines;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    cluster.run_round([&](std::size_t m, const auto&, mpc::Sender& send) {
      const auto& slab = slabs[m];
      if (slab.empty()) return;
      for (std::size_t i = 0; i < batch; ++i) {
        const mpc::Word w = slab[(round * batch + i) % slab.size()];
        const std::size_t dst = util::hash_words(13, w, round) % machines;
        send.send(dst, std::span<const mpc::Word>(&w, 1));
      }
    });
  }
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  out.words_moved = rounds * batch * active_machines;
  out.engine_width = cluster.engine().worker_threads();
  out.rounds = cluster.rounds_executed();
  out.ledger_rounds = ledger.total_rounds();
  out.peak_traffic = ledger.peak_round_traffic();
  out.fingerprint = inbox_fingerprint(cluster);
  return out;
}

/// The same storm declared as ONE RoundProgram of `rounds` machine-
/// independent steps instead of `rounds` imperative run_round calls. The
/// messages are identical (each step depends only on the immutable slabs
/// and its round index), so fingerprints and ledger totals must match
/// run_storm exactly — but here the scheduler may fuse every delivery with
/// the next round's compute, which is what bench_engine_scaling A/Bs via
/// ExecutionPolicy::async_rounds. The program is the shared
/// net::make_storm_program build; on a cluster whose config selects the
/// loopback/tcp transport it ships with its RemoteSpec and executes
/// across the worker group instead (the "multiprocess" bench rows).
inline StormOutcome run_storm_program(
    const std::vector<std::vector<mpc::Word>>& slabs, mpc::ClusterConfig cfg,
    std::size_t rounds) {
  const std::size_t machines = cfg.num_machines;
  const std::size_t batch = cfg.words_per_machine / 8;
  mpc::RoundLedger ledger(cfg);
  mpc::Cluster cluster(cfg, &ledger);
  StormOutcome out;
  std::size_t active_machines = 0;
  for (const auto& slab : slabs)
    if (!slab.empty()) ++active_machines;

  auto st = std::make_shared<net::StormState>();
  st->slabs = slabs;
  st->machines = machines;
  st->batch = batch;
  st->rounds = rounds;
  const mpc::RoundProgram program =
      cluster.distributed() ? net::make_distributable_storm_program(st)
                            : net::make_storm_program(st);

  const auto start = std::chrono::steady_clock::now();
  const auto stats = cluster.run_program(program);
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
  out.words_moved = rounds * batch * active_machines;
  out.engine_width = cluster.engine().worker_threads();
  out.rounds = cluster.rounds_executed();
  out.ledger_rounds = ledger.total_rounds();
  out.peak_traffic = ledger.peak_round_traffic();
  out.overlapped = stats.overlapped;
  out.fingerprint = inbox_fingerprint(cluster);
  return out;
}

}  // namespace arbor::bench
