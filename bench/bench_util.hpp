// Shared helpers for the experiment benches (E1..E10): fixed-width table
// printing and cluster-context construction, so every bench binary prints
// rows in the same format EXPERIMENTS.md quotes.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"

namespace arbor::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c)
      rule += std::string(width[c] + 2, '-') + (c + 1 < width.size() ? "+" : "");
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(std::size_t v) { return std::to_string(v); }
inline std::string fmt(std::uint32_t v) { return std::to_string(v); }
inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Owning (config, ledger, engine, context) bundle for one algorithm run.
/// The engine is shared by every Level-0 cluster the run spawns
/// (`mpc::Cluster(cfg, ledger, run.ctx->engine())`), so a bench selects
/// serial vs parallel execution in exactly one place.
struct Run {
  mpc::ClusterConfig config;
  std::unique_ptr<mpc::RoundLedger> ledger;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<mpc::MpcContext> ctx;

  static Run for_graph(const graph::Graph& g, double delta = 0.6,
                       mpc::ExecutionPolicy policy = {}) {
    mpc::ClusterConfig cfg = mpc::ClusterConfig::for_problem(
        g.num_vertices(), g.num_edges(), delta);
    cfg.execution = policy;
    return with_config(cfg);
  }

  static Run with_config(const mpc::ClusterConfig& cfg) {
    Run r;
    r.config = cfg;
    r.ledger = std::make_unique<mpc::RoundLedger>(cfg);
    r.engine = std::make_unique<engine::Engine>(cfg.execution);
    r.ctx = std::make_unique<mpc::MpcContext>(cfg, r.ledger.get(),
                                              r.engine.get());
    return r;
  }
};

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace arbor::bench
