// Shared helpers for the experiment benches (E1..E10): fixed-width table
// printing, machine-readable JSON reports (--json out.json), and
// cluster-context construction, so every bench binary prints rows in the
// same format EXPERIMENTS.md quotes and emits results the perf trajectory
// can diff.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "trace/trace.hpp"

namespace arbor::bench {

// ------------------------------------------------------------ percentiles

/// Nearest-rank p50/p95/p99 of a sample set (bench timings, trace
/// histograms): ONE implementation, shared with the trace report
/// (trace::percentile), so bench tables and BENCH_*.json quote the same
/// numbers the telemetry does.
struct Percentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

inline Percentiles percentiles(std::vector<double> values) {
  Percentiles out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.p50 = trace::percentile(values, 50.0);
  out.p95 = trace::percentile(values, 95.0);
  out.p99 = trace::percentile(values, 99.0);
  return out;
}

/// Percentiles of a trace histogram by name from the global registry
/// (empty Percentiles when it was never observed).
inline Percentiles metric_percentiles(const std::string& name) {
  const auto hist = trace::Tracer::global().metrics().histogram(name);
  return hist ? percentiles(hist->samples) : Percentiles{};
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    print_row(headers_, width);
    std::string rule;
    for (std::size_t c = 0; c < width.size(); ++c)
      rule += std::string(width[c] + 2, '-') + (c + 1 < width.size() ? "+" : "");
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row, width);
  }

 private:
  static void print_row(const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& width) {
    std::string line;
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(width[c] - cell.size() + 1, ' ');
      if (c + 1 < width.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(std::size_t v) { return std::to_string(v); }
inline std::string fmt(std::uint32_t v) { return std::to_string(v); }
inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// ------------------------------------------------- machine-readable output

/// Flat JSON report: top-level metadata plus an array of row objects, all
/// insertion-ordered. Values are stored pre-rendered, so the emitter stays
/// a dumb string concatenator.
///
///   JsonReport report("engine_scaling");
///   report.meta("machines", machines);
///   auto& row = report.row();
///   row.set("executor", "parallel(8)").set("ms", secs * 1e3);
///   report.write_file("BENCH_engine_scaling.json");
class JsonReport {
 public:
  class Object {
   public:
    Object& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Object& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    Object& set(const std::string& key, double value) {
      fields_.emplace_back(key, fmt(value, 6));
      return *this;
    }
    Object& set(const std::string& key, std::size_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Object& set(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Object& set(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

    std::string render() const {
      std::string out = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += quote(fields_[i].first) + ": " + fields_[i].second;
      }
      return out + "}";
    }

   private:
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
      }
      return out + "\"";
    }

    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Every report records the hardware thread count up front: the same
  /// bench row means something different on a 1-core CI box than on a
  /// 32-core workstation, and the perf trajectory diffs across machines
  /// and backends.
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {
    meta_.set("hardware_threads",
              static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }

  template <typename T>
  JsonReport& meta(const std::string& key, T value) {
    meta_.set(key, value);
    return *this;
  }

  /// Append a row; the reference stays valid until the next row() call
  /// returns (rows are stored by value in a vector).
  Object& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  std::string render() const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n  \"meta\": " +
                      meta_.render() + ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out += "    " + rows_[i].render() + (i + 1 < rows_.size() ? ",\n" : "\n");
    return out + "  ]\n}\n";
  }

  /// Write the report; prints where it went (or why it could not). Every
  /// report is stamped with the effective ARBOR_* knobs and the
  /// trace/metrics summary first, so BENCH_*.json trajectories always say
  /// which environment they ran under and carry round-latency percentiles
  /// when available.
  bool write_file(const std::string& path) {
    stamp_env_knobs();
    stamp_trace_summary();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = render();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("json report: %s\n", path.c_str());
    return true;
  }

 private:
  /// Effective ARBOR_* knob block: which transport, Level-1 sort path, and
  /// route-aggregation setting the run executed under (the trace mode rides
  /// in stamp_trace_summary). Stamped into EVERY report uniformly so a
  /// trajectory diff never has to guess the environment.
  void stamp_env_knobs();

  /// Trace/metrics summary block: the global tracer's mode plus the
  /// "round_us" histogram's count, dropped-sample tally, and p50/p95/p99
  /// when metrics were on (ARBOR_TRACE=full or force_metrics) at any point
  /// in the run.
  void stamp_trace_summary() {
    trace::Tracer& tracer = trace::Tracer::global();
    meta_.set("trace_mode", trace::mode_name(tracer.mode()));
    const auto hist = tracer.metrics().histogram("round_us");
    if (!hist) return;
    const Percentiles p = percentiles(hist->samples);
    meta_.set("round_us_count", static_cast<std::size_t>(hist->count));
    meta_.set("round_us_dropped", static_cast<std::size_t>(hist->dropped()));
    meta_.set("round_us_p50", p.p50);
    meta_.set("round_us_p95", p.p95);
    meta_.set("round_us_p99", p.p99);
  }

  std::string bench_;
  Object meta_;
  std::vector<Object> rows_;
};

/// Shared classification of the sample sort's per-label ledger traffic
/// peaks (RoundLedger::peak_traffic_by_label) into splitter rounds vs.
/// data-movement rounds, so every bench's coordinator-vs-tree A/B rows
/// report "splitter_peak_words" under ONE rule: route and bucket-sort
/// rounds move data, everything else (sample/up/pick/splitters/down) is
/// splitter agreement.
struct SplitterPeaks {
  std::size_t splitter = 0;
  std::size_t route = 0;
};
inline SplitterPeaks classify_sort_peaks(
    const std::map<std::string, std::size_t>& peaks_by_label) {
  SplitterPeaks out;
  for (const auto& [label, peak] : peaks_by_label) {
    if (label.find(".route") != std::string::npos ||
        label.find(".sort") != std::string::npos)
      out.route = std::max(out.route, peak);
    else
      out.splitter = std::max(out.splitter, peak);
  }
  return out;
}

/// Canonical `backend` tag for JSON rows: which executor a cluster config
/// actually runs its programs on — "serial"/"parallel" in-process, or
/// "multiprocess" behind the src/net/ transport — so BENCH_*.json
/// trajectories stay comparable across backends.
inline const char* backend_name(const mpc::ClusterConfig& cfg) {
  if (!cfg.transport.in_process()) return "multiprocess";
  return cfg.execution.is_parallel() ? "parallel" : "serial";
}

/// Canonical transport tag for knob stamps and bench labels:
/// "inprocess", "loopback:N", "tcp:N".
inline std::string transport_name(const mpc::TransportConfig& t) {
  switch (t.kind) {
    case mpc::TransportConfig::Kind::kLoopback:
      return "loopback:" + std::to_string(t.workers);
    case mpc::TransportConfig::Kind::kTcp:
      return "tcp:" + std::to_string(t.workers);
    case mpc::TransportConfig::Kind::kInProcess:
      break;
  }
  return "inprocess";
}

inline void JsonReport::stamp_env_knobs() {
  meta_.set("transport_knob", transport_name(mpc::transport_env_default()));
  meta_.set("distributed_level1_knob", mpc::distributed_level1_env_default());
  meta_.set("route_aggregation_knob", mpc::route_aggregation_env_default());
}

/// Extract `FLAG PATH` (or `FLAG=PATH`) from argv, compacting argv so the
/// benches' positional parsing is unaffected. Returns `fallback` when the
/// flag is absent; an empty fallback means "no output".
inline std::string take_path_flag(int& argc, char** argv, const char* flag,
                                  std::string fallback = {}) {
  const std::size_t flag_len = std::strlen(flag);
  std::string path = std::move(fallback);
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 < argc)
        path = argv[++i];
      else  // consume the bare flag instead of leaking it as a positional
        std::fprintf(stderr, "warning: %s needs a path, ignoring\n", flag);
    } else if (std::strncmp(argv[i], flag, flag_len) == 0 &&
               argv[i][flag_len] == '=') {
      path = argv[i] + flag_len + 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// `--json PATH`: where to write the BENCH_*.json report.
inline std::string take_json_flag(int& argc, char** argv,
                                  std::string fallback = {}) {
  return take_path_flag(argc, argv, "--json", std::move(fallback));
}

/// `--report PATH`: where to write the observatory RunReport log
/// (obs::ReportLog::write_json_file) after the bench's programs ran.
inline std::string take_report_flag(int& argc, char** argv,
                                    std::string fallback = {}) {
  return take_path_flag(argc, argv, "--report", std::move(fallback));
}

/// Owning (config, ledger, engine, context) bundle for one algorithm run.
/// The engine is shared by every Level-0 cluster the run spawns
/// (`mpc::Cluster(cfg, ledger, run.ctx->engine())`), so a bench selects
/// serial vs parallel execution in exactly one place.
struct Run {
  mpc::ClusterConfig config;
  std::unique_ptr<mpc::RoundLedger> ledger;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<mpc::MpcContext> ctx;

  static Run for_graph(const graph::Graph& g, double delta = 0.6,
                       mpc::ExecutionPolicy policy = {}) {
    mpc::ClusterConfig cfg = mpc::ClusterConfig::for_problem(
        g.num_vertices(), g.num_edges(), delta);
    cfg.execution = policy;
    return with_config(cfg);
  }

  static Run with_config(const mpc::ClusterConfig& cfg) {
    Run r;
    r.config = cfg;
    r.ledger = std::make_unique<mpc::RoundLedger>(cfg);
    r.engine = std::make_unique<engine::Engine>(cfg.execution);
    r.ctx = std::make_unique<mpc::MpcContext>(cfg, r.ledger.get(),
                                              r.engine.get());
    return r;
  }
};

inline void banner(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace arbor::bench
