// E11 (Table-6 analog): approximate core decomposition — the paper's
// footnote-2 generalization ("run the algorithm for every k = (1+ε)^i
// estimate in parallel").
//
// Claim: est(v) sandwiches the exact coreness within a 2(1+ε)-ish factor,
// with ROUNDS shared across all guesses (one parallel budget) and global
// memory paying the ×guesses factor. The table sweeps ε and reports the
// measured approximation-ratio distribution against the exact oracle.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/coreness_mpc.hpp"
#include "graph/coreness.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E11: approximate coreness vs exact (paper footnote 2)",
      "ratio = estimate / max(coreness,1) over vertices with coreness >= 2;"
      " rounds are ONE shared budget for all parallel guesses.");
  bench::Table table({"workload", "eps", "guesses", "rounds", "ratio_med",
                      "ratio_p95", "ratio_max", "lower_ok"});

  util::SplitRng rng(11);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back(
      {"planted_24", graph::planted_clique(1 << 12, 2 << 12, 24, rng)});
  cases.push_back({"ba_4", graph::barabasi_albert(1 << 13, 4, rng)});
  cases.push_back({"gnm_6n", graph::gnm(1 << 12, 6 << 12, rng)});

  for (auto& c : cases) {
    const auto exact = graph::exact_coreness(c.g);
    for (double eps : {1.0, 0.5, 0.25}) {
      auto run = bench::Run::for_graph(c.g);
      const auto approx = core::approximate_coreness(c.g, eps, *run.ctx);

      std::vector<double> ratios;
      bool lower_ok = true;
      for (graph::VertexId v = 0; v < c.g.num_vertices(); ++v) {
        if (exact[v] >= 2)
          ratios.push_back(static_cast<double>(approx.estimate[v]) /
                           static_cast<double>(exact[v]));
        // Soundness: coreness(v) <= 2 * estimate(v) always.
        if (exact[v] > 2 * approx.estimate[v]) lower_ok = false;
      }
      const auto summary = util::summarize(std::move(ratios));
      table.add_row({c.name, bench::fmt(eps, 2),
                     bench::fmt(approx.guesses),
                     bench::fmt(run.ledger->total_rounds()),
                     bench::fmt(summary.median), bench::fmt(summary.p95),
                     bench::fmt(summary.max), lower_ok ? "yes" : "NO"});
    }
  }
  table.print();
  return 0;
}
