// E7 (Figure-3 analog): ablation of the pruning parameter k and budget B.
//
// Mechanism under test (Lemma 3.2 / Lemma 3.7 / Lemma 3.9): a single
// PartialLayerAssignment shot assigns exactly the vertices whose pruned
// tree views stay within √B, and its out-degree bound is a = (s+1)·k.
// Sweeping k/λ and the budget exponent shows the trade-off the paper
// navigates: larger k assigns more per shot but costs proportionally more
// out-degree; larger B admits more path-heavy vertices per shot.
#include <cstdio>

#include "bench_util.hpp"
#include "core/layering_pipeline.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E7: ablation — pruning parameter k and budget B (one partial shot)",
      "assigned fraction and out-degree bound of a single Lemma 3.13 shot "
      "on G(n, 4n), n = 2^13, lambda~ = degeneracy = reported below.");
  util::SplitRng rng(7);
  const std::size_t n = 1 << 13;
  const graph::Graph g = graph::gnm(n, 4 * n, rng);

  bench::Table table({"k_mult", "budget_exp", "B", "L", "s", "a_bound",
                      "assigned_frac", "max_tree", "rounds"});
  const std::size_t lambda_est = core::estimate_density_parameter(g);
  std::printf("lambda~ (degeneracy) = %zu\n\n", lambda_est);

  for (double k_mult : {0.5, 1.0, 2.0, 4.0}) {
    for (double budget_exp : {2.0, 3.0, 4.0}) {
      const auto k = std::max<std::size_t>(
          1, static_cast<std::size_t>(k_mult *
                                      static_cast<double>(lambda_est)));
      core::PipelineParams params = core::PipelineParams::practical(k);
      params.budget_exponent = budget_exp;

      auto run = bench::Run::for_graph(g);
      const std::size_t budget =
          params.derive_budget(run.config.words_per_machine);
      const auto result =
          core::run_partial_once(g, params, budget, *run.ctx);

      const double frac =
          static_cast<double>(result.assignment.assigned_count()) /
          static_cast<double>(n);
      table.add_row(
          {bench::fmt(k_mult, 1), bench::fmt(budget_exp, 1),
           bench::fmt(budget), bench::fmt(result.assignment.num_layers),
           bench::fmt(params.derive_steps(n,
                                          result.assignment.num_layers)),
           bench::fmt(result.outdegree_bound), bench::fmt(frac),
           bench::fmt(result.max_tree_nodes),
           bench::fmt(run.ledger->total_rounds())});
    }
  }
  table.print();
  return 0;
}
