// E4 (Table-2 analog): coloring quality vs arboricity.
//
// Paper claim (Theorem 1.2): proper coloring with O(λ log log n) colors in
// poly(log log n) rounds. Baselines: degeneracy-greedy uses ≤ 2λ colors
// (sequential), and any Δ-parameterized algorithm would need up to Δ+1 —
// the star row shows the gap the paper's introduction highlights.
#include <cmath>
#include <cstdio>

#include "baselines/sequential.hpp"
#include "bench_util.hpp"
#include "core/coloring_mpc.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace arbor;

void row(bench::Table& table, const char* name, const graph::Graph& g) {
  auto run = bench::Run::for_graph(g);
  const auto result = core::mpc_color(g, {}, *run.ctx);
  const auto check = graph::check_coloring(g, result.colors);
  const auto ref = baselines::sequential_reference(g);
  const double loglog =
      std::log2(std::log2(static_cast<double>(g.num_vertices())));

  table.add_row(
      {name, bench::fmt(g.num_vertices()),
       bench::fmt(g.max_degree()), bench::fmt(ref.degeneracy),
       bench::fmt(result.palette_size), bench::fmt(check.colors_used),
       bench::fmt(ref.coloring_colors),
       check.proper ? "yes" : "NO",
       bench::fmt(run.ledger->total_rounds()),
       bench::fmt(static_cast<double>(result.palette_size) /
                  (static_cast<double>(
                       std::max<std::size_t>(ref.degeneracy, 1)) *
                   loglog))});
}

}  // namespace

int main() {
  using namespace arbor;
  bench::banner(
      "E4: colors vs lambda",
      "claim: palette = O(lambda loglog n), always proper; compare "
      "degeneracy-greedy (sequential, <= degeneracy+1 colors) and Delta+1 "
      "(the max_degree column). ratio = palette/(degeneracy*loglog n).");
  bench::Table table({"family", "n", "max_deg", "degeneracy", "palette",
                      "colors_used", "greedy_colors", "proper", "rounds",
                      "ratio"});
  util::SplitRng rng(4);
  const std::size_t n = 1 << 14;
  for (std::size_t lambda : {1u, 2u, 4u, 8u, 16u}) {
    const graph::Graph g = graph::forest_union(n, lambda, rng);
    const std::string name = "forest_union_" + std::to_string(lambda);
    row(table, name.c_str(), g);
  }
  row(table, "star", graph::star(n));  // Delta = n-1, lambda = 1
  row(table, "gnm_4n", graph::gnm(n, 4 * n, rng));
  row(table, "ba_3", graph::barabasi_albert(n, 3, rng));
  row(table, "grid", graph::grid(128, 128));
  table.print();
  return 0;
}
