// E-engine: round throughput of the execution engine vs. thread count,
// and of the async RoundProgram scheduler vs. strict three-phase rounds.
//
// Workload: the shared routing storm (bench/engine_storm.hpp) over a
// paper-shaped cluster built for a generator graph with >= 1M edges, run
// two ways per executor: imperatively (one run_round call per round — the
// pre-program dataflow, never overlapped) and as one RoundProgram of
// machine-independent steps (the scheduler may fuse every delivery with
// the next round's compute; async on/off is A/B'd at each thread count).
// Every configuration must produce bit-identical inbox fingerprints and
// identical ledger round/word totals; the bench aborts if any executor
// disagrees.
//
// Results are also written as machine-readable JSON (default
// BENCH_engine_scaling.json, override with --json PATH) to seed the perf
// trajectory.
//
//   ./bench_engine_scaling [n] [m] [rounds] [--json out.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine_storm.hpp"
#include "graph/generators.hpp"
#include "mpc/cluster.hpp"
#include "mpc/ledger.hpp"
#include "mpc/sample_sort.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using arbor::bench::StormOutcome;
  using arbor::mpc::ClusterConfig;
  using arbor::mpc::ExecutionPolicy;

  const std::string json_path =
      arbor::bench::take_json_flag(argc, argv, "BENCH_engine_scaling.json");
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 18);
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : (1u << 20);
  const std::size_t rounds =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 6;

  arbor::bench::banner(
      "E-engine: round throughput vs. thread count and scheduler mode",
      "Claim: the flat-buffer parallel engine sustains >= 2x the round "
      "throughput of the serial reference executor at 8 threads, and the "
      "async RoundProgram scheduler adds further throughput over strict "
      "three-phase rounds — with bit-identical inboxes and identical "
      "ledger totals in every mode.");

  arbor::util::SplitRng rng(7);
  const arbor::graph::Graph g = arbor::graph::gnm(n, m, rng);
  std::printf("graph: n=%zu m=%zu  (hardware threads: %u)\n\n",
              g.num_vertices(), g.num_edges(),
              std::thread::hardware_concurrency());

  const ClusterConfig base =
      ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.7);
  const auto slabs = arbor::bench::edge_slabs(g, base.num_machines);
  std::printf("cluster: M=%zu machines, S=%zu words, %zu rounds/config\n\n",
              base.num_machines, base.words_per_machine, rounds);

  struct Config {
    const char* name;
    ExecutionPolicy policy;
    bool program;  ///< run as one RoundProgram instead of run_round calls
    arbor::mpc::TransportConfig transport{};  ///< multiprocess backend rows
  };
  const Config configs[] = {
      {"serial", ExecutionPolicy::serial(), false},
      {"serial/program", ExecutionPolicy::serial(), true},
      {"parallel(1)", ExecutionPolicy::parallel(1), false},
      {"parallel(2)", ExecutionPolicy::parallel(2), false},
      {"parallel(4)", ExecutionPolicy::parallel(4), false},
      {"parallel(8)", ExecutionPolicy::parallel(8), false},
      {"parallel(4)/strict", ExecutionPolicy::parallel(4).with_async(false),
       true},
      {"parallel(4)/async", ExecutionPolicy::parallel(4).with_async(true),
       true},
      {"parallel(8)/strict", ExecutionPolicy::parallel(8).with_async(false),
       true},
      {"parallel(8)/async", ExecutionPolicy::parallel(8).with_async(true),
       true},
      // The storm as a distributed program across worker runtimes behind
      // the src/net/ transport — same fingerprints and ledger totals, real
      // address-space isolation (tcp = separate OS processes + sockets).
      {"multiprocess(loopback:2)", ExecutionPolicy::serial(), true,
       arbor::mpc::TransportConfig::loopback(2)},
      {"multiprocess(tcp:2)", ExecutionPolicy::serial(), true,
       arbor::mpc::TransportConfig::tcp(2)},
  };

  arbor::bench::JsonReport report("engine_scaling");
  // hardware_threads is stamped by the JsonReport constructor.
  report.meta("n", g.num_vertices())
      .meta("m", g.num_edges())
      .meta("machines", base.num_machines)
      .meta("words_per_machine", base.words_per_machine)
      .meta("rounds", rounds);

  // Metrics without spans or a trace file: every row's round-latency
  // percentiles come from the same "round_us" histogram the telemetry
  // report quotes. Cleared per row so percentiles are per-configuration.
  arbor::trace::Tracer& tracer = arbor::trace::Tracer::global();
  tracer.force_metrics(true);

  arbor::bench::Table table({"executor", "ms", "rounds/s", "Mwords/s",
                             "speedup", "overlapped", "fingerprint"});
  StormOutcome serial_out;
  double speedup_at_8 = 0;
  double async_vs_strict_at_8 = 0;
  double strict8_secs = 0;
  for (const Config& config : configs) {
    ClusterConfig cfg = base;
    cfg.execution = config.policy;
    cfg.transport = config.transport;
    tracer.metrics().clear();
    StormOutcome out;
    try {
      out = config.program ? arbor::bench::run_storm_program(slabs, cfg, rounds)
                           : arbor::bench::run_storm(slabs, cfg, rounds);
    } catch (const std::exception& e) {
      // A multiprocess row needs the arbor-worker binary next to this one;
      // skip (loudly) rather than fail the whole sweep without it.
      std::fprintf(stderr, "skipping %s: %s\n", config.name, e.what());
      continue;
    }
    const bool is_reference =
        !config.program && config.policy.mode == ExecutionPolicy::Mode::kSerial;
    if (is_reference) {
      serial_out = out;
    } else {
      if (out.fingerprint != serial_out.fingerprint ||
          out.ledger_rounds != serial_out.ledger_rounds ||
          out.peak_traffic != serial_out.peak_traffic) {
        std::fprintf(stderr,
                     "FATAL: %s disagrees with serial executor "
                     "(fingerprint/ledger mismatch)\n",
                     config.name);
        return 1;
      }
      if (!config.program && config.policy.threads == 8)
        speedup_at_8 = serial_out.secs / out.secs;
      if (config.program && config.policy.threads == 8) {
        if (config.policy.async_rounds)
          async_vs_strict_at_8 = strict8_secs / out.secs;
        else
          strict8_secs = out.secs;
      }
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(out.fingerprint));
    const double speedup = serial_out.secs / out.secs;
    table.add_row({config.name, arbor::bench::fmt(out.secs * 1e3, 1),
                   arbor::bench::fmt(out.rounds / out.secs, 1),
                   arbor::bench::fmt(out.words_moved / out.secs / 1e6, 2),
                   arbor::bench::fmt(speedup, 2),
                   arbor::bench::fmt(out.overlapped), fp});
    const arbor::bench::Percentiles lat =
        arbor::bench::metric_percentiles("round_us");
    report.row()
        .set("executor", config.name)
        .set("backend", arbor::bench::backend_name(cfg))
        .set("workers", cfg.transport.in_process()
                            ? std::size_t{0}
                            : cfg.transport.workers)
        .set("mode", config.program ? "program" : "imperative")
        .set("threads", config.policy.effective_threads())
        .set("async", config.policy.async_rounds && config.program)
        .set("ms", out.secs * 1e3)
        .set("rounds_per_sec", out.rounds / out.secs)
        .set("mwords_per_sec", out.words_moved / out.secs / 1e6)
        .set("speedup_vs_serial", speedup)
        .set("overlapped_rounds", out.overlapped)
        .set("peak_traffic", out.peak_traffic)
        .set("fingerprint", std::string(fp))
        .set("round_us_p50", lat.p50)
        .set("round_us_p95", lat.p95)
        .set("round_us_p99", lat.p99);
  }
  table.print();

  std::printf("\nspeedup at 8 threads vs serial: %.2fx (target >= 2x on "
              "multicore hardware)\n",
              speedup_at_8);
  std::printf("async vs strict scheduler at parallel(8): %.2fx\n",
              async_vs_strict_at_8);
  report.meta("speedup_at_8", speedup_at_8);
  report.meta("async_vs_strict_at_8", async_vs_strict_at_8);

  // -------- splitter strategy A/B: the word sample sort program at
  // several cluster widths, coordinator vs. splitter relay tree. The
  // interesting column is the splitter rounds' per-machine traffic peak
  // (the ledger's per-label peaks): Θ(p·s)+Θ(p²) at the coordinator,
  // O(√p·s) in the tree.
  {
    using arbor::mpc::SplitterStrategy;
    using arbor::mpc::Word;
    const std::size_t samples = 32;
    arbor::bench::Table ab({"machines", "variant", "ms", "rounds",
                            "splitter_peak_w"});
    for (const std::size_t machines : {64u, 256u}) {
      const auto word_slabs = [&] {
        arbor::util::SplitRng sort_rng(31);
        std::vector<std::vector<Word>> slabs(machines);
        for (auto& slab : slabs)
          for (int i = 0; i < 256; ++i)
            slab.push_back(sort_rng.next_below(1u << 30));
        return slabs;
      }();
      std::size_t total = 0;
      for (const auto& slab : word_slabs) total += slab.size();
      ClusterConfig sort_cfg{machines,
                             2 * total + machines * (samples + 1) +
                                 machines * machines};
      std::vector<Word> reference;
      for (const SplitterStrategy strategy :
           {SplitterStrategy::kCoordinator, SplitterStrategy::kTree}) {
        const bool is_tree = strategy == SplitterStrategy::kTree;
        arbor::mpc::RoundLedger ledger(sort_cfg);
        arbor::mpc::Cluster cluster(sort_cfg, &ledger);
        const auto start = std::chrono::steady_clock::now();
        const arbor::mpc::SampleSortResult sorted =
            sample_sort(cluster, word_slabs, samples, strategy);
        const auto stop = std::chrono::steady_clock::now();
        std::vector<Word> flat;
        for (const auto& slab : sorted.slabs)
          flat.insert(flat.end(), slab.begin(), slab.end());
        if (!is_tree) {
          reference = std::move(flat);
        } else if (flat != reference) {
          std::fprintf(stderr,
                       "FATAL: splitter strategies disagree at "
                       "machines=%zu\n",
                       machines);
          return 1;
        }
        const std::size_t splitter_peak =
            arbor::bench::classify_sort_peaks(ledger.peak_traffic_by_label())
                .splitter;
        const double secs =
            std::chrono::duration<double>(stop - start).count();
        const char* variant = is_tree ? "tree" : "coordinator";
        ab.add_row({arbor::bench::fmt(machines), variant,
                    arbor::bench::fmt(secs * 1e3, 1),
                    arbor::bench::fmt(sorted.rounds),
                    arbor::bench::fmt(splitter_peak)});
        report.row()
            .set("section", "splitter_ab")
            .set("backend", "serial")
            .set("variant", variant)
            .set("machines", machines)
            .set("words", total)
            .set("ms", secs * 1e3)
            .set("rounds", sorted.rounds)
            .set("splitter_peak_words", splitter_peak);
      }
    }
    std::printf("\nsplitter strategy A/B (word sort, 256 words/machine):\n");
    ab.print();
  }

  // -------- checked-execution A/B: ExecutionPolicy::check must be
  // zero-cost when off. The storm program now declares Ownership families
  // (src/check/ownership.hpp) and the scheduler gained a per-step check
  // branch; with check=false none of that may cost anything. Min-of-3
  // per side against the same serial fingerprint.
  {
    const auto min_storm_secs = [&](const ClusterConfig& cfg) {
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        const StormOutcome out =
            arbor::bench::run_storm_program(slabs, cfg, rounds);
        if (out.fingerprint != serial_out.fingerprint) {
          std::fprintf(stderr,
                       "FATAL: checked-off A/B run disagrees with the "
                       "serial executor\n");
          std::exit(1);
        }
        best = std::min(best, out.secs);
      }
      return best;
    };
    ClusterConfig base_cfg = base;
    base_cfg.execution = ExecutionPolicy::parallel(4);
    ClusterConfig off_cfg = base;
    off_cfg.execution = ExecutionPolicy::parallel(4).with_check(false);
    const double base_secs = min_storm_secs(base_cfg);
    const double off_secs = min_storm_secs(off_cfg);
    const double ratio = base_secs / off_secs;
    std::printf("\nchecked-off A/B at parallel(4): baseline %.1f ms, "
                "check=false %.1f ms, ratio %.3f (target >= 0.97)\n",
                base_secs * 1e3, off_secs * 1e3, ratio);
    report.row()
        .set("section", "checked_ab")
        .set("backend", "engine")
        .set("variant", "baseline")
        .set("threads", std::size_t{4})
        .set("ms", base_secs * 1e3);
    report.row()
        .set("section", "checked_ab")
        .set("backend", "engine")
        .set("variant", "check_off")
        .set("threads", std::size_t{4})
        .set("ms", off_secs * 1e3);
    report.meta("checked_off_ratio", ratio);
  }

  if (!json_path.empty()) report.write_file(json_path);
  return 0;
}
