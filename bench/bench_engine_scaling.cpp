// E-engine: round throughput of the execution engine vs. thread count.
//
// Workload: the shared routing storm (bench/engine_storm.hpp) over a
// paper-shaped cluster built for a generator graph with >= 1M edges. Every
// configuration must produce bit-identical inbox fingerprints and identical
// ledger round/word totals; the bench aborts if any executor disagrees.
//
//   ./bench_engine_scaling [n] [m] [rounds]
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "engine_storm.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using arbor::bench::StormOutcome;
  using arbor::mpc::ClusterConfig;
  using arbor::mpc::ExecutionPolicy;

  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : (1u << 18);
  const std::size_t m = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                 : (1u << 20);
  const std::size_t rounds =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 6;

  arbor::bench::banner(
      "E-engine: round throughput vs. thread count",
      "Claim: the flat-buffer parallel engine sustains >= 2x the round "
      "throughput of the serial reference executor at 8 threads, with "
      "bit-identical inboxes and identical ledger totals.");

  arbor::util::SplitRng rng(7);
  const arbor::graph::Graph g = arbor::graph::gnm(n, m, rng);
  std::printf("graph: n=%zu m=%zu  (hardware threads: %u)\n\n",
              g.num_vertices(), g.num_edges(),
              std::thread::hardware_concurrency());

  const ClusterConfig base =
      ClusterConfig::for_problem(g.num_vertices(), g.num_edges(), 0.7);
  const auto slabs = arbor::bench::edge_slabs(g, base.num_machines);
  std::printf("cluster: M=%zu machines, S=%zu words, %zu rounds/config\n\n",
              base.num_machines, base.words_per_machine, rounds);

  struct Config {
    const char* name;
    ExecutionPolicy policy;
  };
  const Config configs[] = {
      {"serial", ExecutionPolicy::serial()},
      {"parallel(1)", ExecutionPolicy::parallel(1)},
      {"parallel(2)", ExecutionPolicy::parallel(2)},
      {"parallel(4)", ExecutionPolicy::parallel(4)},
      {"parallel(8)", ExecutionPolicy::parallel(8)},
  };

  arbor::bench::Table table({"executor", "ms", "rounds/s", "Mwords/s",
                             "speedup", "peak_traffic", "fingerprint"});
  StormOutcome serial_out;
  double speedup_at_8 = 0;
  for (const Config& config : configs) {
    ClusterConfig cfg = base;
    cfg.execution = config.policy;
    const StormOutcome out = arbor::bench::run_storm(slabs, cfg, rounds);
    if (config.policy.mode == ExecutionPolicy::Mode::kSerial) {
      serial_out = out;
    } else {
      if (out.fingerprint != serial_out.fingerprint ||
          out.ledger_rounds != serial_out.ledger_rounds ||
          out.peak_traffic != serial_out.peak_traffic) {
        std::fprintf(stderr,
                     "FATAL: %s disagrees with serial executor "
                     "(fingerprint/ledger mismatch)\n",
                     config.name);
        return 1;
      }
      if (config.policy.threads == 8)
        speedup_at_8 = serial_out.secs / out.secs;
    }
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(out.fingerprint));
    table.add_row({config.name, arbor::bench::fmt(out.secs * 1e3, 1),
                   arbor::bench::fmt(out.rounds / out.secs, 1),
                   arbor::bench::fmt(out.words_moved / out.secs / 1e6, 2),
                   arbor::bench::fmt(serial_out.secs / out.secs, 2),
                   arbor::bench::fmt(out.peak_traffic), fp});
  }
  table.print();

  std::printf("\nspeedup at 8 threads vs serial: %.2fx (target >= 2x on "
              "multicore hardware)\n",
              speedup_at_8);
  return 0;
}
