// Microbenchmarks (google-benchmark) for the computational kernels:
// LocalPrune, tree attachment, the full exponentiation step, degeneracy
// peeling, list coloring, and the exact densest-subgraph oracle. These are
// wall-clock numbers for the simulator itself (the paper's claims are
// about MPC rounds, covered by E1..E10); they document what a user pays to
// run the reproduction.
#include <benchmark/benchmark.h>

#include "core/exponentiate.hpp"
#include "core/local_prune.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "local/list_coloring.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace {

using namespace arbor;

graph::Graph bench_graph(std::size_t n) {
  util::SplitRng rng(123);
  return graph::gnm(n, 4 * n, rng);
}

void BM_LocalPrune(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = bench_graph(n);
  // A depth-2 tree at the max-degree vertex (the heaviest realistic input).
  graph::VertexId center = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(center)) center = v;
  core::TreeView tree = core::TreeView::star(center, g.neighbors(center));
  {
    std::vector<core::TreeView> stars;
    std::vector<std::pair<core::TreeView::NodeId, const core::TreeView*>>
        attachments;
    const auto leaves = tree.leaves_at_depth(1);
    stars.reserve(leaves.size());
    for (auto leaf : leaves)
      stars.push_back(core::TreeView::star(tree.vertex_of(leaf),
                                           g.neighbors(tree.vertex_of(leaf))));
    for (std::size_t i = 0; i < leaves.size(); ++i)
      attachments.emplace_back(leaves[i], &stars[i]);
    tree = tree.attach(attachments);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::local_prune(tree, 4));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tree.size()));
}
BENCHMARK(BM_LocalPrune)->Arg(1 << 10)->Arg(1 << 14);

void BM_ExponentiateStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = bench_graph(n);
  const mpc::ClusterConfig cfg{64, 4096};
  for (auto _ : state) {
    mpc::RoundLedger ledger(cfg);
    mpc::MpcContext ctx(cfg, &ledger);
    core::ExponentiateParams p{/*budget=*/64, /*prune_k=*/4, /*steps=*/2};
    benchmark::DoNotOptimize(core::exponentiate_and_local_prune(g, p, ctx));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExponentiateStep)->Arg(1 << 10)->Arg(1 << 12);

void BM_Degeneracy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = bench_graph(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::degeneracy(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_Degeneracy)->Arg(1 << 12)->Arg(1 << 16);

void BM_ListColoring(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = bench_graph(n);
  std::vector<std::uint64_t> keys(n);
  for (std::size_t v = 0; v < n; ++v) keys[v] = v;
  std::vector<graph::Color> palette(g.max_degree() + 1);
  for (std::size_t c = 0; c < palette.size(); ++c)
    palette[c] = static_cast<graph::Color>(c);
  const std::vector<std::vector<graph::Color>> palettes(n, palette);
  const util::StatelessCoin coin(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::list_color(g, keys, palettes, coin, state.iterations()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ListColoring)->Arg(1 << 10)->Arg(1 << 14);

void BM_ExactDensestSubgraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::SplitRng rng(5);
  const graph::Graph g = graph::planted_clique(n, 2 * n, 24, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::exact_densest_subgraph(g));
  }
}
BENCHMARK(BM_ExactDensestSubgraph)->Arg(1 << 8)->Arg(1 << 10);

}  // namespace

BENCHMARK_MAIN();
