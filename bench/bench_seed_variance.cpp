// E12 (robustness table): seed sensitivity of the randomized components.
//
// The paper's guarantees are "with high probability"; this table measures
// how much the realized quality moves across seeds — out-degree, palette
// size, and rounds over 9 seeds per workload. Tight spreads justify the
// single-seed tables of E1-E4; it also re-validates properness on every
// run (a seed-dependent correctness bug would surface here).
#include <cstdio>

#include "bench_util.hpp"
#include "core/coloring_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E12: seed variance of quality and rounds (9 seeds per row)",
      "whp claims in practice: spread of out-degree / palette / rounds "
      "across seeds; any improper coloring would print NO.");
  bench::Table table({"workload", "metric", "min", "median", "max",
                      "all_proper"});

  util::SplitRng rng(12);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"forest_union_4", graph::forest_union(1 << 13, 4, rng)});
  cases.push_back({"gnm_4n", graph::gnm(1 << 13, 4 << 13, rng)});
  cases.push_back({"clique_160", graph::clique(160)});

  for (auto& c : cases) {
    util::Accumulator outdeg, palette, orient_rounds, color_rounds;
    bool all_proper = true;
    for (std::uint64_t seed = 1; seed <= 9; ++seed) {
      auto orun = bench::Run::for_graph(c.g);
      core::OrientationParams op;
      op.seed = seed;
      const auto orient = core::mpc_orient(c.g, op, *orun.ctx);
      outdeg.add(static_cast<double>(
          orient.orientation.max_outdegree(c.g)));
      orient_rounds.add(static_cast<double>(orun.ledger->total_rounds()));

      auto crun = bench::Run::for_graph(c.g);
      core::ColoringParams cp;
      cp.seed = seed;
      const auto color = core::mpc_color(c.g, cp, *crun.ctx);
      palette.add(static_cast<double>(color.palette_size));
      color_rounds.add(static_cast<double>(crun.ledger->total_rounds()));
      all_proper = all_proper &&
                   graph::check_coloring(c.g, color.colors).proper;
    }
    const auto add = [&](const char* metric, const util::Accumulator& acc) {
      table.add_row({c.name, metric, bench::fmt(acc.min(), 0),
                     bench::fmt(acc.mean(), 1), bench::fmt(acc.max(), 0),
                     all_proper ? "yes" : "NO"});
    };
    add("orient_outdeg", outdeg);
    add("palette", palette);
    add("orient_rounds", orient_rounds);
    add("color_rounds", color_rounds);
  }
  table.print();
  return 0;
}
