// E-level1: Level-1 record sort — central stable_sort vs. the engine-backed
// distributed sample sort behind ClusterConfig::distributed_level1.
//
// Workload: sort N (key, payload) records by key through
// MpcContext::sort_items_by_key, once on the central reference path and
// once per execution policy on the distributed path. Every configuration
// must produce the bit-identical permutation (stability included — keys are
// drawn from a small range so ties dominate) and identical ledger totals;
// the bench aborts on any disagreement.
//
//   ./bench_level1_sort [records] [key_range] [repeats]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "util/rng.hpp"

namespace {

using arbor::mpc::ClusterConfig;
using arbor::mpc::ExecutionPolicy;
using arbor::mpc::MpcContext;
using arbor::mpc::RoundLedger;

using Record = std::pair<std::uint64_t, std::uint64_t>;  // (key, payload)

struct Outcome {
  std::vector<Record> sorted;
  double secs = 0;
  std::size_t ledger_rounds = 0;
};

Outcome run_sort(const std::vector<Record>& input, ClusterConfig cfg,
                 std::size_t repeats) {
  Outcome out;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  double best = 1e300;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    std::vector<Record> items = input;
    const auto start = std::chrono::steady_clock::now();
    ctx.sort_items_by_key(
        items, [](const Record& r) { return r.first; }, 2, "bench.sort");
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
    out.sorted = std::move(items);
  }
  out.secs = best;
  out.ledger_rounds = ledger.total_rounds();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;
  const std::size_t key_range =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (records / 16 + 1);
  const std::size_t repeats =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  arbor::bench::banner(
      "E-level1: central stable_sort vs. engine-backed record sample sort",
      "Claim: the distributed Level-1 sort reaches >= 1.5x central "
      "throughput at parallel(8) on a 1M-record input (multicore "
      "hardware; reported regardless), bit-identical output and ledger.");

  arbor::util::SplitRng rng(17);
  std::vector<Record> input;
  input.reserve(records);
  for (std::size_t i = 0; i < records; ++i)
    input.emplace_back(rng.next_below(key_range), i);

  // A paper-shaped cluster big enough to hold 2 words per record.
  const ClusterConfig base =
      ClusterConfig::for_problem(records, records, 0.5);
  std::printf("records=%zu key_range=%zu repeats=%zu  cluster: M=%zu "
              "S=%zu  (hardware threads: %u)\n\n",
              records, key_range, repeats, base.num_machines,
              base.words_per_machine, std::thread::hardware_concurrency());

  struct Config {
    const char* name;
    bool distributed;
    ExecutionPolicy policy;
  };
  const Config configs[] = {
      {"central", false, ExecutionPolicy::serial()},
      {"dist/serial", true, ExecutionPolicy::serial()},
      {"dist/parallel(2)", true, ExecutionPolicy::parallel(2)},
      {"dist/parallel(4)", true, ExecutionPolicy::parallel(4)},
      {"dist/parallel(8)", true, ExecutionPolicy::parallel(8)},
  };

  arbor::bench::Table table(
      {"path", "ms", "Mrec/s", "speedup", "ledger_rounds"});
  Outcome central;
  double speedup_at_8 = 0;
  for (const Config& config : configs) {
    ClusterConfig cfg = base;
    cfg.distributed_level1 = config.distributed;
    cfg.execution = config.policy;
    const Outcome out = run_sort(input, cfg, repeats);
    if (!config.distributed) {
      central = out;
    } else {
      if (out.sorted != central.sorted ||
          out.ledger_rounds != central.ledger_rounds) {
        std::fprintf(stderr,
                     "FATAL: %s disagrees with the central path "
                     "(output/ledger mismatch)\n",
                     config.name);
        return 1;
      }
      if (config.policy.threads == 8) speedup_at_8 = central.secs / out.secs;
    }
    table.add_row({config.name, arbor::bench::fmt(out.secs * 1e3, 1),
                   arbor::bench::fmt(records / out.secs / 1e6, 2),
                   arbor::bench::fmt(central.secs / out.secs, 2),
                   arbor::bench::fmt(out.ledger_rounds)});
  }
  table.print();

  std::printf("\nspeedup at parallel(8) vs central: %.2fx (target >= 1.5x "
              "on multicore hardware)\n",
              speedup_at_8);
  return 0;
}
