// E-level1: Level-1 record sort — central stable_sort vs. the engine-backed
// distributed sample sort behind ClusterConfig::distributed_level1, plus a
// coordinator-vs-tree splitter strategy A/B on the raw record sort.
//
// Workload 1 (Level-1): sort N (key, payload) records by key through
// MpcContext::sort_items_by_key, once on the central reference path and
// once per execution policy on the distributed path. Every configuration
// must produce the bit-identical permutation (stability included — keys are
// drawn from a small range so ties dominate) and identical ledger totals;
// the bench aborts on any disagreement.
//
// The distributed rows A/B the bulk route (ClusterConfig::
// route_aggregation, ARBOR_ROUTE_AGGREGATION): "dist/serial/no-agg" runs
// the per-record fallback, every other distributed row the aggregated
// path. Metrics are forced on so each row also reports the p50 of the
// sort's route rounds (round_us.sample_sort.tree.route), the hot path the
// aggregation targets.
//
// Workload 2 (splitter A/B): the raw sample_sort_records at several
// cluster widths, coordinator vs. splitter-tree strategy. Reports wall
// time and the ledger's per-label traffic peaks — the coordinator's
// splitter rounds pool Θ(p·s) and broadcast Θ(p²) words at machine 0,
// the tree's stay O(√p·s) — and aborts if the two strategies disagree on
// the sorted output.
//
// Results are also written as machine-readable JSON (default
// BENCH_level1_sort.json, override with --json PATH) with backend +
// variant fields, to seed the perf trajectory. --report PATH additionally
// writes the observatory RunReport log (per-label traffic vs. declared
// analytic bounds) for scripts/check.sh --report's regression gate.
//
//   ./bench_level1_sort [records] [key_range] [repeats] [--json out.json]
//                       [--report report.json]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "mpc/cluster.hpp"
#include "mpc/config.hpp"
#include "mpc/ledger.hpp"
#include "mpc/primitives.hpp"
#include "mpc/sample_sort.hpp"
#include "obs/report.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace {

using arbor::mpc::ClusterConfig;
using arbor::mpc::ExecutionPolicy;
using arbor::mpc::MpcContext;
using arbor::mpc::RoundLedger;
using arbor::mpc::SplitterStrategy;
using arbor::mpc::Word;

/// Histogram samples observed after `skip` (a snapshot of the sample
/// count taken before a run), so each bench row reports only its own
/// rounds' latencies.
std::vector<double> samples_since(const std::string& name, std::size_t skip) {
  const auto hist = arbor::trace::Tracer::global().metrics().histogram(name);
  if (!hist || hist->samples.size() <= skip) return {};
  return {hist->samples.begin() + static_cast<std::ptrdiff_t>(skip),
          hist->samples.end()};
}

std::size_t sample_count(const std::string& name) {
  const auto hist = arbor::trace::Tracer::global().metrics().histogram(name);
  return hist ? hist->samples.size() : 0;
}

using Record = std::pair<std::uint64_t, std::uint64_t>;  // (key, payload)

struct Outcome {
  std::vector<Record> sorted;
  double secs = 0;
  std::size_t ledger_rounds = 0;
};

Outcome run_sort(const std::vector<Record>& input, ClusterConfig cfg,
                 std::size_t repeats) {
  Outcome out;
  RoundLedger ledger(cfg);
  MpcContext ctx(cfg, &ledger);
  double best = 1e300;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    std::vector<Record> items = input;
    const auto start = std::chrono::steady_clock::now();
    ctx.sort_items_by_key(
        items, [](const Record& r) { return r.first; }, 2, "bench.sort");
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
    out.sorted = std::move(items);
  }
  out.secs = best;
  out.ledger_rounds = ledger.total_rounds();
  return out;
}

/// One raw record sort at `machines` wide, under `strategy`. Returns the
/// flattened sorted output plus the splitter/route traffic peaks.
struct StrategyOutcome {
  std::vector<Word> flat;
  double secs = 0;
  std::size_t rounds = 0;
  std::size_t splitter_peak = 0;  ///< max traffic over the splitter rounds
  std::size_t route_peak = 0;     ///< max traffic over the route rounds
};

StrategyOutcome run_strategy(const std::vector<std::vector<Word>>& slabs,
                             std::size_t machines, std::size_t samples,
                             SplitterStrategy strategy, std::size_t repeats) {
  // Capacity wide enough for EITHER strategy (the coordinator needs its
  // quadratic broadcast term; giving both the same roof keeps this a speed
  // A/B — the S-cap contrast is asserted by the tests).
  std::size_t total = 0;
  for (const auto& slab : slabs) total += slab.size();
  ClusterConfig cfg{machines,
                    2 * total + machines * (samples + 1) * 2 +
                        machines * machines * 2};
  StrategyOutcome out;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    RoundLedger ledger(cfg);
    arbor::mpc::Cluster cluster(cfg, &ledger);
    auto input = slabs;
    const auto start = std::chrono::steady_clock::now();
    const arbor::mpc::RecordSortResult result = sample_sort_records(
        cluster, std::move(input), 2, 2, samples, strategy);
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || secs < out.secs) out.secs = secs;
    out.rounds = result.rounds;
    out.flat.clear();
    for (const auto& slab : result.slabs)
      out.flat.insert(out.flat.end(), slab.begin(), slab.end());
    const arbor::bench::SplitterPeaks peaks =
        arbor::bench::classify_sort_peaks(ledger.peak_traffic_by_label());
    out.splitter_peak = peaks.splitter;
    out.route_peak = peaks.route;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      arbor::bench::take_json_flag(argc, argv, "BENCH_level1_sort.json");
  const std::string report_path = arbor::bench::take_report_flag(argc, argv);
  const std::size_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1'000'000;
  const std::size_t key_range =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (records / 16 + 1);
  const std::size_t repeats =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  arbor::bench::banner(
      "E-level1: central stable_sort vs. engine-backed record sample sort",
      "Claim: the distributed Level-1 sort reaches >= 1.5x central "
      "throughput at parallel(8) on a 1M-record input (multicore "
      "hardware; reported regardless), bit-identical output and ledger; "
      "the splitter-tree strategy removes the coordinator's Θ(p·s) "
      "splitter hot-spot at every cluster width.");

  arbor::util::SplitRng rng(17);
  std::vector<Record> input;
  input.reserve(records);
  for (std::size_t i = 0; i < records; ++i)
    input.emplace_back(rng.next_below(key_range), i);

  // A paper-shaped cluster big enough to hold 2 words per record.
  const ClusterConfig base =
      ClusterConfig::for_problem(records, records, 0.5);
  std::printf("records=%zu key_range=%zu repeats=%zu  cluster: M=%zu "
              "S=%zu  (hardware threads: %u)\n\n",
              records, key_range, repeats, base.num_machines,
              base.words_per_machine, std::thread::hardware_concurrency());

  // Metrics on for the whole run: each row's route-round latency p50 comes
  // from the round_us.sample_sort.tree.route histogram the scheduler
  // observes (purely observational — outputs stay bit-identical).
  arbor::trace::Tracer::global().force_metrics(true);
  const std::string kRouteHist = "round_us.sample_sort.tree.route";

  arbor::bench::JsonReport report("level1_sort");
  report.meta("records", records)
      .meta("key_range", key_range)
      .meta("repeats", repeats)
      .meta("machines", base.num_machines)
      .meta("words_per_machine", base.words_per_machine);
  // The effective ARBOR_* knobs are stamped uniformly by write_file.

  struct Config {
    const char* name;
    bool distributed;
    bool aggregate;
    bool merge;
    ExecutionPolicy policy;
  };
  const Config configs[] = {
      {"central", false, true, true, ExecutionPolicy::serial()},
      {"dist/serial/no-agg", true, false, true, ExecutionPolicy::serial()},
      {"dist/serial/no-merge", true, true, false, ExecutionPolicy::serial()},
      {"dist/serial", true, true, true, ExecutionPolicy::serial()},
      {"dist/parallel(2)", true, true, true, ExecutionPolicy::parallel(2)},
      {"dist/parallel(4)", true, true, true, ExecutionPolicy::parallel(4)},
      {"dist/parallel(8)", true, true, true, ExecutionPolicy::parallel(8)},
  };

  arbor::bench::Table table({"path", "ms", "Mrec/s", "speedup",
                             "route_p50_us", "ledger_rounds"});
  Outcome central;
  double speedup_at_8 = 0;
  double route_p50_agg = 0, route_p50_noagg = 0;
  double route_p50_par8 = 0;
  double merge_secs = 0, no_merge_secs = 0;
  for (const Config& config : configs) {
    ClusterConfig cfg = base;
    cfg.distributed_level1 = config.distributed;
    cfg.route_aggregation = config.aggregate;
    cfg.merge_path = config.merge;
    cfg.execution = config.policy;
    const std::size_t route_skip = sample_count(kRouteHist);
    const Outcome out = run_sort(input, cfg, repeats);
    const arbor::bench::Percentiles route_us =
        arbor::bench::percentiles(samples_since(kRouteHist, route_skip));
    if (!config.distributed) {
      central = out;
    } else if (out.sorted != central.sorted ||
               out.ledger_rounds != central.ledger_rounds) {
      std::fprintf(stderr,
                   "FATAL: %s disagrees with the central path "
                   "(output/ledger mismatch)\n",
                   config.name);
      return 1;
    }
    // Row-name lookups, never positional: the config table is reordered
    // freely without silently zeroing the headline numbers.
    if (std::strcmp(config.name, "dist/parallel(8)") == 0) {
      speedup_at_8 = central.secs / out.secs;
      route_p50_par8 = route_us.p50;
    }
    if (std::strcmp(config.name, "dist/serial") == 0) {
      route_p50_agg = route_us.p50;
      merge_secs = out.secs;
    }
    if (std::strcmp(config.name, "dist/serial/no-agg") == 0)
      route_p50_noagg = route_us.p50;
    if (std::strcmp(config.name, "dist/serial/no-merge") == 0)
      no_merge_secs = out.secs;
    table.add_row({config.name, arbor::bench::fmt(out.secs * 1e3, 1),
                   arbor::bench::fmt(records / out.secs / 1e6, 2),
                   arbor::bench::fmt(central.secs / out.secs, 2),
                   arbor::bench::fmt(route_us.p50, 1),
                   arbor::bench::fmt(out.ledger_rounds)});
    report.row()
        .set("section", "level1")
        .set("path", config.name)
        .set("backend", config.distributed ? "distributed" : "central")
        .set("variant", "level1")
        .set("threads", config.policy.effective_threads())
        .set("route_aggregation", config.aggregate)
        .set("merge_path", config.merge)
        .set("ms", out.secs * 1e3)
        .set("mrec_per_sec", records / out.secs / 1e6)
        .set("speedup_vs_central", central.secs / out.secs)
        .set("route_us_p50", route_us.p50)
        .set("route_us_p95", route_us.p95)
        .set("ledger_rounds", out.ledger_rounds);
  }
  table.print();

  std::printf("\nspeedup at parallel(8) vs central: %.2fx (target >= 1.5x "
              "on multicore hardware)\n",
              speedup_at_8);
  std::printf("route round p50: %.1fus aggregated vs %.1fus per-record "
              "(%.2fx)\n",
              route_p50_agg, route_p50_noagg,
              route_p50_agg > 0 ? route_p50_noagg / route_p50_agg : 0.0);
  // Parallel zero-copy scatter: the route rounds used to fall back to the
  // serial fused path under parallel policies; the staged direct scatter
  // must keep their p50 within ~1.2x of strict-serial.
  std::printf("route round p50 at parallel(8): %.1fus (%.2fx of serial)\n",
              route_p50_par8,
              route_p50_agg > 0 ? route_p50_par8 / route_p50_agg : 0.0);
  // Merge path: k-way merges of already-sorted inbox runs vs. the
  // wholesale re-sort baseline, same route, same output.
  const double merge_speedup =
      merge_secs > 0 ? no_merge_secs / merge_secs : 0.0;
  std::printf("merge path dist/serial: %.1fms merged vs %.1fms re-sort "
              "(%.2fx, target >= 1.25x)\n\n",
              merge_secs * 1e3, no_merge_secs * 1e3, merge_speedup);
  report.meta("speedup_at_8", speedup_at_8)
      .meta("route_us_p50_agg", route_p50_agg)
      .meta("route_us_p50_noagg", route_p50_noagg)
      .meta("route_us_p50_parallel8", route_p50_par8)
      .meta("merge_path_speedup", merge_speedup);

  // ---------------- coordinator vs. splitter tree at several widths
  const std::size_t ab_records = std::min<std::size_t>(records, 200'000);
  const std::size_t samples = 32;
  arbor::bench::Table ab({"machines", "variant", "ms", "rounds",
                          "splitter_peak_w", "route_peak_w", "speedup"});
  for (const std::size_t machines : {64u, 256u, 512u}) {
    std::vector<std::vector<Word>> slabs(machines);
    const std::size_t per = (ab_records + machines - 1) / machines;
    arbor::util::SplitRng ab_rng(23);
    std::size_t idx = 0;
    for (auto& slab : slabs) {
      const std::size_t count = std::min(per, ab_records - idx);
      slab.reserve(count * 2);
      for (std::size_t i = 0; i < count; ++i, ++idx) {
        slab.push_back(ab_rng.next_below(key_range));
        slab.push_back(idx);
      }
      if (idx >= ab_records) break;
    }

    StrategyOutcome coordinator;
    for (const SplitterStrategy strategy :
         {SplitterStrategy::kCoordinator, SplitterStrategy::kTree}) {
      const bool is_tree = strategy == SplitterStrategy::kTree;
      const StrategyOutcome out =
          run_strategy(slabs, machines, samples, strategy, repeats);
      if (!is_tree) {
        coordinator = out;
      } else if (out.flat != coordinator.flat) {
        std::fprintf(stderr,
                     "FATAL: tree and coordinator sorts disagree at "
                     "machines=%zu\n",
                     machines);
        return 1;
      }
      const char* variant = is_tree ? "tree" : "coordinator";
      ab.add_row({arbor::bench::fmt(machines), variant,
                  arbor::bench::fmt(out.secs * 1e3, 1),
                  arbor::bench::fmt(out.rounds),
                  arbor::bench::fmt(out.splitter_peak),
                  arbor::bench::fmt(out.route_peak),
                  arbor::bench::fmt(coordinator.secs / out.secs, 2)});
      report.row()
          .set("section", "splitter_ab")
          .set("backend", "serial")
          .set("variant", variant)
          .set("machines", machines)
          .set("records", ab_records)
          .set("samples_per_machine", samples)
          .set("ms", out.secs * 1e3)
          .set("rounds", out.rounds)
          .set("splitter_peak_words", out.splitter_peak)
          .set("route_peak_words", out.route_peak)
          .set("speedup_vs_coordinator", coordinator.secs / out.secs);
    }
  }
  std::printf("splitter strategy A/B (%zu records, %zu samples/machine):\n",
              ab_records, samples);
  ab.print();

  if (!json_path.empty()) report.write_file(json_path);
  if (!report_path.empty())
    arbor::obs::ReportLog::global().write_json_file(report_path);
  return 0;
}
