// E9 (Table-5 analog): Theorem 1.1/1.2 end-to-end at high arboricity —
// the Lemma 2.1/2.2 partition paths.
//
// When k = Θ(λ) exceeds Θ(log n) the algorithms randomly partition into
// ⌈k/log n⌉ parts and run per-part layering in parallel. The table checks
// that rounds stay flat in λ (parts run in parallel; rounds merge as max)
// while out-degree/palette grow linearly in λ as promised.
#include <cstdio>

#include "bench_util.hpp"
#include "core/coloring_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  bench::banner(
      "E9: high-arboricity path (random partitioning engaged)",
      "claim: rounds ~flat in lambda (parts in parallel), out-degree and "
      "palette O(lambda loglog n); coloring always proper.");
  bench::Table table({"workload", "n", "lambda~", "parts", "orient_rounds",
                      "orient_outdeg", "color_rounds", "palette",
                      "proper"});

  util::SplitRng rng(9);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"clique_192", graph::clique(192)});
  cases.push_back({"clique_384", graph::clique(384)});
  cases.push_back(
      {"planted_192", graph::planted_clique(1 << 12, 4 << 12, 192, rng)});
  cases.push_back(
      {"bipartite_256", graph::complete_bipartite(256, 256)});

  for (auto& c : cases) {
    const std::size_t lambda_est = core::estimate_density_parameter(c.g);

    auto orient_run = bench::Run::for_graph(c.g);
    const auto orient = core::mpc_orient(c.g, {}, *orient_run.ctx);

    auto color_run = bench::Run::for_graph(c.g);
    const auto color = core::mpc_color(c.g, {}, *color_run.ctx);
    const auto check = graph::check_coloring(c.g, color.colors);

    table.add_row({c.name, bench::fmt(c.g.num_vertices()),
                   bench::fmt(lambda_est), bench::fmt(orient.parts),
                   bench::fmt(orient_run.ledger->total_rounds()),
                   bench::fmt(orient.orientation.max_outdegree(c.g)),
                   bench::fmt(color_run.ledger->total_rounds()),
                   bench::fmt(color.palette_size),
                   check.proper ? "yes" : "NO"});
  }
  table.print();
  return 0;
}
