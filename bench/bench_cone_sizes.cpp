// E10 (Figure-5 analog): cone sizes in the coloring simulation.
//
// Paper §4 calculation: with block width Θ(δ·j / log^{2.67} log n), every
// node's influence cone (reachable along non-decreasing-layer paths for
// the replayed LOCAL rounds) fits in n^δ words. We sweep n and the block
// fraction and report the max sampled cone against S = n^δ, plus the
// block/tail round split.
#include <cstdio>

#include "bench_util.hpp"
#include "core/coloring_mpc.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace arbor;
  const double delta = 0.6;
  bench::banner(
      "E10: coloring-simulation cone sizes vs local memory",
      "paper section 4 calculation: blocks of width w = Theta(delta*j / "
      "log^{2.67} log n) keep cones within S = n^delta. The paper_w column "
      "evaluates that formula at the top layer: at these n it is BELOW ONE "
      "LAYER, i.e. the paper itself predicts the block path only pays off "
      "at much larger n and the tail (direct) path should dominate. The "
      "cone_fits column confirms it: forcing blocks of >= 1 layer "
      "overshoots S, consistent with the formula — not a bug, the paper's "
      "own crossover.");
  bench::Table table({"n", "block_frac", "S", "paper_w", "max_cone",
                      "cone_fits", "blocks", "replayed_local",
                      "tail_rounds", "total_rounds", "proper"});

  util::SplitRng rng(10);
  for (std::size_t lg : {12u, 14u, 16u}) {
    const std::size_t n = std::size_t{1} << lg;
    const graph::Graph g = graph::gnm(n, 4 * n, rng);
    const double log_n = std::log2(static_cast<double>(n));
    const double loglog = std::log2(log_n);
    for (double frac : {0.125, 0.25, 0.5}) {
      auto run = bench::Run::for_graph(g, delta);
      core::ColoringParams params;
      params.block_fraction = frac;
      const auto result = core::mpc_color(g, params, *run.ctx);
      const auto check = graph::check_coloring(g, result.colors);
      // Paper block width at the top layer j ~ log2 n.
      const double paper_width =
          delta * log_n / std::pow(loglog, 2.67);
      table.add_row(
          {bench::fmt(n), bench::fmt(frac, 3),
           bench::fmt(run.config.words_per_machine),
           bench::fmt(paper_width, 2),
           bench::fmt(result.max_sampled_cone_nodes),
           result.max_sampled_cone_nodes <= run.config.words_per_machine
               ? "yes"
               : "no",
           bench::fmt(result.blocks),
           bench::fmt(result.local_rounds_replayed),
           bench::fmt(result.tail_mpc_rounds),
           bench::fmt(run.ledger->total_rounds()),
           check.proper ? "yes" : "NO"});
    }
  }
  table.print();
  std::printf(
      "\nNote: paper_w < 1 at every n above, so the paper's formula itself\n"
      "says one-layer blocks are already too wide for S = n^%.1f here; the\n"
      "crossover where blocked gathering fits sits at n >> 2^20. The cone\n"
      "measurements quantify the overshoot the formula predicts.\n",
      delta);
  return 0;
}
