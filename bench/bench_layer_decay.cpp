// E3 (Figure-2 analog): geometric layer decay of the complete layering.
//
// Paper claim (Lemma 3.15 property 2): |{v : ℓ(v) ≥ j}| ≤ 0.5^{j-1}·n.
// Multi-layer structure appears when many vertices have degree above the
// per-shot allowance a = (s+1)·k, so the workloads here are heavy-tailed:
// Barabási–Albert (power-law degrees), a star (one Δ = n-1 hub), and a
// planted clique. For reference the table also shows the decay of the
// proof's ℓ_G (threshold-peeling layering), which the lemma's argument
// piggybacks on. `ok` marks rows within the paper's 0.5^{j-1} envelope.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/layering_pipeline.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace arbor;

void print_decay(const char* label, const core::LayerAssignment& assignment,
                 std::size_t n) {
  const auto tail = core::tail_layer_counts(assignment);
  bench::Table table({"j", "tail_j", "0.5^{j-1}*n", "ratio_j", "ok"});
  for (std::size_t j = 1; j < tail.size() && tail[j] > 0 && j <= 20; ++j) {
    const double envelope = static_cast<double>(n) *
                            std::pow(0.5, static_cast<double>(j - 1));
    const double ratio =
        j >= 2 && tail[j - 1] > 0
            ? static_cast<double>(tail[j]) / static_cast<double>(tail[j - 1])
            : 1.0;
    table.add_row({bench::fmt(j), bench::fmt(tail[j]),
                   bench::fmt(envelope, 1), bench::fmt(ratio),
                   static_cast<double>(tail[j]) <= envelope + 1.0 ? "yes"
                                                                  : "NO"});
  }
  std::printf("%s\n", label);
  table.print();
  std::printf("\n");
}

void decay_for(const char* name, const graph::Graph& g) {
  const std::size_t k = core::estimate_density_parameter(g);

  auto run = bench::Run::for_graph(g);
  core::PipelineParams params = core::PipelineParams::practical(k);
  // Stage-1 peeling off: the decay of the exponentiation-based phases is
  // the mechanism under test.
  params.peel_rounds_factor = 0.0;
  const auto result = core::complete_layering(g, params, *run.ctx);

  std::printf("family=%s n=%zu m=%zu k=%zu layers=%u outdeg_bound=%zu "
              "measured_outdeg=%zu rounds=%zu\n",
              name, g.num_vertices(), g.num_edges(), k,
              result.assignment.num_layers, result.outdegree_bound,
              core::assignment_outdegree(g, result.assignment),
              run.ledger->total_rounds());
  print_decay("  pipeline layering (Lemma 3.15):", result.assignment,
              g.num_vertices());

  const core::LayerAssignment reference =
      core::reference_peeling_layering(g, 2 * k);
  if (reference.is_complete())
    print_decay("  reference peeling l_G (threshold 2k):", reference,
                g.num_vertices());
}

}  // namespace

int main() {
  using namespace arbor;
  bench::banner("E3: layer-tail decay |{v : l(v) >= j}| vs 0.5^{j-1} n",
                "claim (Lemma 3.15): geometric decay. preset: practical, "
                "Stage-1 peeling disabled, k = degeneracy estimate.");
  util::SplitRng rng(3);
  decay_for("ba_3", graph::barabasi_albert(1 << 15, 3, rng));
  decay_for("star", graph::star(1 << 15));
  decay_for("planted_clique",
            graph::planted_clique(1 << 13, 2 << 13, 48, rng));
  decay_for("ba_8", graph::barabasi_albert(1 << 14, 8, rng));
  return 0;
}
