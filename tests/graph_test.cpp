// Unit tests for the graph substrate: builder invariants, CSR accessors,
// induced subgraphs, edge-list I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/assert.hpp"

namespace arbor::graph {
namespace {

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate, reversed
  b.add_edge(2, 2);  // self loop
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), InvariantError);
}

TEST(GraphBuilder, BuildIsRepeatable) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
}

TEST(GraphBuilder, BuildAndClearEmptiesPending) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  (void)b.build_and_clear();
  EXPECT_EQ(b.num_pending_edges(), 0u);
  EXPECT_EQ(b.build().num_edges(), 0u);
}

TEST(Graph, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, DegreesAndNeighborsSorted) {
  GraphBuilder b(5);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  b.add_edge(0, 4);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(2), 1u);
  const auto ns = g.neighbors(0);
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ns.begin(), ns.end()));
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 4 / 5);
}

TEST(Graph, EdgesCanonicalAndSorted) {
  GraphBuilder b(4);
  b.add_edge(3, 1);
  b.add_edge(2, 0);
  const Graph g = b.build();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  const Graph g = from_edges(2, std::vector<Edge>{{0, 1}});
  EXPECT_FALSE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(7, 9));
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(0, 5);
  const Graph g = b.build();

  const std::vector<VertexId> pick{1, 2, 3};
  const auto sub = g.induced(pick);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // 1-2 and 2-3
  EXPECT_EQ(sub.to_original, pick);
  // New ids follow selection order: 0->1, 1->2, 2->3.
  EXPECT_TRUE(sub.graph.has_edge(0, 1));
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 2));
}

TEST(Graph, InducedRejectsDuplicates) {
  const Graph g = from_edges(3, std::vector<Edge>{{0, 1}});
  const std::vector<VertexId> pick{1, 1};
  EXPECT_THROW(g.induced(pick), InvariantError);
}

TEST(Graph, InducedEmptySelection) {
  const Graph g = from_edges(3, std::vector<Edge>{{0, 1}});
  const auto sub = g.induced(std::vector<VertexId>{});
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(GraphIo, RoundTrip) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 3);
  const Graph g = b.build();

  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
}

TEST(GraphIo, SkipsComments) {
  std::stringstream ss("# a comment\n3 1\n# another\n0 2\n");
  const Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream ss("nonsense\n");
  EXPECT_THROW(read_edge_list(ss), InvariantError);
}

TEST(GraphIo, RejectsCountMismatch) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), InvariantError);
}

}  // namespace
}  // namespace arbor::graph
