// Randomized property sweeps ("fuzz light"): for a grid of (family, seed)
// pairs, the end-to-end invariants must hold — orientation totality and
// bound domination, coloring properness, layer-assignment validity,
// ledger sanity, and determinism. These catch interaction bugs the
// per-module tests can miss, across a wider input distribution.
#include <gtest/gtest.h>

#include <memory>

#include "util/assert.hpp"
#include "core/coloring_mpc.hpp"
#include "core/layering_pipeline.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/builder.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor {
namespace {

using graph::Graph;

Graph make_family(int family, std::uint64_t seed) {
  util::SplitRng rng(seed);
  switch (family) {
    case 0:
      return graph::random_forest(400, rng);
    case 1:
      return graph::forest_union(300, 1 + seed % 6, rng);
    case 2:
      return graph::gnm(300, 300 * (1 + seed % 4), rng);
    case 3:
      return graph::barabasi_albert(300, 2 + seed % 3, rng);
    case 4:
      return graph::planted_clique(300, 500, 12 + (seed % 12), rng);
    case 5: {
      // Disjoint mixture: grid ⊔ star ⊔ cycle with cross noise.
      graph::GraphBuilder b(320);
      const Graph grid = graph::grid(10, 10);
      for (const auto& e : grid.edges()) b.add_edge(e.u, e.v);
      const Graph star = graph::star(100);
      for (const auto& e : star.edges())
        b.add_edge(e.u + 100, e.v + 100);
      const Graph cyc = graph::cycle(100);
      for (const auto& e : cyc.edges())
        b.add_edge(e.u + 200, e.v + 200);
      for (int i = 0; i < 40; ++i)
        b.add_edge(static_cast<graph::VertexId>(rng.next_below(320)),
                   static_cast<graph::VertexId>(rng.next_below(320)));
      return b.build();
    }
    default:
      return graph::gnp(300, 0.02, rng);
  }
}

class EndToEndSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EndToEndSweep, OrientationInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, seed);
  const auto cfg = mpc::ClusterConfig::for_problem(g.num_vertices(),
                                                   g.num_edges(), 0.6);
  mpc::RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger);
  core::OrientationParams params;
  params.seed = seed;
  const auto result = core::mpc_orient(g, params, ctx);

  // Totality: out-degrees sum to m.
  const auto out = result.orientation.outdegrees(g);
  std::size_t total = 0;
  for (std::size_t d : out) total += d;
  EXPECT_EQ(total, g.num_edges());
  // Bound domination.
  EXPECT_LE(result.orientation.max_outdegree(g), result.outdegree_bound);
  // Rounds and memory recorded.
  EXPECT_GT(ledger.total_rounds(), 0u);
  EXPECT_GT(ledger.peak_global_words(), 0u);
}

TEST_P(EndToEndSweep, ColoringInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, seed);
  const auto cfg = mpc::ClusterConfig::for_problem(g.num_vertices(),
                                                   g.num_edges(), 0.6);
  mpc::RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger);
  core::ColoringParams params;
  params.seed = seed ^ 0xc0ffee;
  const auto result = core::mpc_color(g, params, ctx);
  const auto check = graph::check_coloring(g, result.colors);
  EXPECT_TRUE(check.proper);
  EXPECT_LE(check.colors_used, std::max<std::size_t>(result.palette_size,
                                                     1));
}

TEST_P(EndToEndSweep, LayeringInvariants) {
  const auto [family, seed] = GetParam();
  const Graph g = make_family(family, seed);
  const auto cfg = mpc::ClusterConfig::for_problem(g.num_vertices(),
                                                   g.num_edges(), 0.6);
  mpc::RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger);
  const std::size_t k = core::estimate_density_parameter(g);
  const auto result =
      core::complete_layering(g, core::PipelineParams::practical(k), ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_LE(core::assignment_outdegree(g, result.assignment),
            result.outdegree_bound);
  // Tail counts are monotone.
  const auto tail = core::tail_layer_counts(result.assignment);
  for (std::size_t j = 2; j < tail.size(); ++j)
    EXPECT_LE(tail[j], tail[j - 1]);
}

INSTANTIATE_TEST_SUITE_P(
    Families, EndToEndSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(11ull, 22ull, 33ull)));

// Paper-preset smoke: the literal 100-laden constants, clamped, must still
// produce valid (if coarse) results on small graphs.
TEST(PaperPreset, PipelineStillValid) {
  util::SplitRng rng(1);
  const graph::Graph g = graph::forest_union(200, 2, rng);
  const auto cfg = mpc::ClusterConfig::for_problem(200, g.num_edges(), 0.6);
  mpc::RoundLedger ledger(cfg);
  mpc::MpcContext ctx(cfg, &ledger);
  const auto result =
      core::complete_layering(g, core::PipelineParams::paper(4), ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_LE(core::assignment_outdegree(g, result.assignment),
            result.outdegree_bound);
}

// Strict-ledger failure injection: a budget far above the machine size
// must trip the strict memory check, proving violations cannot pass
// silently when enforcement is on.
TEST(FailureInjection, StrictLedgerCatchesOversizedBudget) {
  util::SplitRng rng(2);
  const graph::Graph g = graph::gnm(500, 4000, rng);
  const mpc::ClusterConfig tiny{64, 64};  // 64-word machines
  mpc::RoundLedger ledger(tiny, /*strict=*/true);
  mpc::MpcContext ctx(tiny, &ledger);
  core::PipelineParams params = core::PipelineParams::practical(8);
  params.budget_cap = 4096;  // trees up to 4096 nodes >> 64-word machines
  params.peel_rounds_factor = 0.0;  // force the exponentiation path
  EXPECT_THROW(core::complete_layering(g, params, ctx),
               arbor::InvariantError);
}

TEST(FailureInjection, NonStrictLedgerRecordsViolationInstead) {
  util::SplitRng rng(2);
  const graph::Graph g = graph::gnm(500, 4000, rng);
  const mpc::ClusterConfig tiny{64, 64};
  mpc::RoundLedger ledger(tiny, /*strict=*/false);
  mpc::MpcContext ctx(tiny, &ledger);
  core::PipelineParams params = core::PipelineParams::practical(8);
  params.budget_cap = 4096;
  params.peel_rounds_factor = 0.0;
  const auto result = core::complete_layering(g, params, ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_GT(ledger.local_violations(), 0u);
}

}  // namespace
}  // namespace arbor
