// Unit tests for util: RNG determinism and splitting, stateless coins,
// hashing, statistics helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/env_knob.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace arbor::util {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);  // no collisions on consecutive keys
}

TEST(HashWords, OrderSensitive) {
  EXPECT_NE(hash_words(1, 2, 3), hash_words(1, 3, 2));
  EXPECT_EQ(hash_words(1, 2, 3), hash_words(1, 2, 3));
}

TEST(SplitRng, SameSeedSameStream) {
  SplitRng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitRng, DifferentSeedsDiffer) {
  SplitRng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(SplitRng, SplitIsIndependentOfParentConsumption) {
  SplitRng parent1(99);
  SplitRng child1 = parent1.split(5);
  const std::uint64_t first = child1.next();

  SplitRng parent2(99);
  SplitRng child2 = parent2.split(5);
  EXPECT_EQ(child2.next(), first);
}

TEST(SplitRng, NextBelowInRange) {
  SplitRng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(SplitRng, NextBelowZeroRejected) {
  SplitRng rng(3);
  EXPECT_THROW(rng.next_below(0), arbor::InvariantError);
}

TEST(SplitRng, NextBelowRoughlyUniform) {
  SplitRng rng(11);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i)
    ++buckets[static_cast<std::size_t>(rng.next_below(10))];
  for (int count : buckets) {
    EXPECT_GT(count, draws / 10 - 600);
    EXPECT_LT(count, draws / 10 + 600);
  }
}

TEST(SplitRng, DoubleInUnitInterval) {
  SplitRng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitRng, ShufflePreservesMultiset) {
  SplitRng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(StatelessCoin, PureFunctionOfKey) {
  StatelessCoin coin(123);
  EXPECT_EQ(coin.word(1, 2, 3), coin.word(1, 2, 3));
  EXPECT_NE(coin.word(1, 2, 3), coin.word(1, 2, 4));
  // Call order must not matter.
  StatelessCoin coin2(123);
  const auto later = coin2.word(9, 9, 9);
  EXPECT_EQ(coin.word(9, 9, 9), later);
}

TEST(StatelessCoin, BelowInRangeAndPure) {
  StatelessCoin coin(55);
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto v = coin.below(7, key);
    EXPECT_LT(v, 7u);
    EXPECT_EQ(v, coin.below(7, key));
  }
}

TEST(StatelessCoin, BernoulliMatchesProbability) {
  StatelessCoin coin(77);
  int heads = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i)
    heads += coin.bernoulli(0.3, static_cast<std::uint64_t>(i));
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.01);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Summary, QuantilesOfKnownSample) {
  const Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(Summary, EmptySample) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0.0);
}

TEST(LinearSlope, RecoversLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // slope 2
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(LinearSlope, RejectsDegenerateInput) {
  EXPECT_THROW(linear_slope({1.0}, {2.0}), arbor::InvariantError);
  EXPECT_THROW(linear_slope({1.0, 1.0}, {2.0, 3.0}), arbor::InvariantError);
}

// -------------------------------------------------------- env knobs

/// Run `fn`, assert it throws an InvariantError whose message contains
/// every fragment — the shared strict-knob contract (env_knob.hpp).
template <typename Fn>
void expect_knob_rejected(Fn fn, std::initializer_list<const char*> parts) {
  try {
    fn();
    FAIL() << "expected an InvariantError";
  } catch (const arbor::InvariantError& e) {
    const std::string what = e.what();
    for (const char* part : parts)
      EXPECT_NE(what.find(part), std::string::npos)
          << "missing \"" << part << "\" in: " << what;
  }
}

TEST(EnvKnob, RejectShapeIsCanonical) {
  expect_knob_rejected(
      [] { reject_knob("ARBOR_THING", "bogus", "not a thing"); },
      {"ARBOR_THING=\"bogus\": not a thing"});
}

TEST(EnvKnob, BoolKnobAcceptsTheEightSpellings) {
  for (const char* yes : {"1", "on", "true", "yes"})
    EXPECT_TRUE(parse_bool_knob(yes, "ARBOR_X")) << yes;
  for (const char* no : {"0", "off", "false", "no"})
    EXPECT_FALSE(parse_bool_knob(no, "ARBOR_X")) << no;
  // Strict: no case folding, no trimming, typos rejected by name.
  for (const char* bad : {"ture", "ON", " 1", "2", ""})
    expect_knob_rejected([&] { parse_bool_knob(bad, "ARBOR_X"); },
                         {"ARBOR_X=\"", "not a boolean flag"});
}

TEST(EnvKnob, SplitKnobKeepsEmptyArgumentsVisible) {
  const KnobParts plain = split_knob("full");
  EXPECT_EQ(plain.head, "full");
  EXPECT_FALSE(plain.arg.has_value());

  const KnobParts with_arg = split_knob("tcp:4");
  EXPECT_EQ(with_arg.head, "tcp");
  ASSERT_TRUE(with_arg.arg.has_value());
  EXPECT_EQ(*with_arg.arg, "4");

  // Only the FIRST colon splits: paths keep theirs.
  const KnobParts path = split_knob("full:/tmp/a:b.json");
  EXPECT_EQ(path.head, "full");
  EXPECT_EQ(*path.arg, "/tmp/a:b.json");

  // A trailing colon is a present-but-empty argument, not absence.
  const KnobParts trailing = split_knob("tcp:");
  EXPECT_EQ(trailing.head, "tcp");
  ASSERT_TRUE(trailing.arg.has_value());
  EXPECT_TRUE(trailing.arg->empty());
}

TEST(EnvKnob, CountKnobValidatesRangeByItemName) {
  EXPECT_EQ(parse_count_knob("4", "worker count", 1, 64, "ARBOR_TRANSPORT",
                             "tcp:4"),
            4u);
  expect_knob_rejected(
      [] {
        parse_count_knob("", "worker count", 1, 64, "ARBOR_TRANSPORT", "tcp:");
      },
      {"ARBOR_TRANSPORT=\"tcp:\"", "worker count is empty"});
  expect_knob_rejected(
      [] {
        parse_count_knob("x4", "worker count", 1, 64, "ARBOR_TRANSPORT",
                         "tcp:x4");
      },
      {"worker count is not a number"});
  expect_knob_rejected(
      [] {
        parse_count_knob("0", "worker count", 1, 64, "ARBOR_TRANSPORT",
                         "tcp:0");
      },
      {"worker count must be >= 1"});
  expect_knob_rejected(
      [] {
        parse_count_knob("65", "worker count", 1, 64, "ARBOR_TRANSPORT",
                         "tcp:65");
      },
      {"worker count out of range"});
}

TEST(EnvKnob, EnvKnobTreatsUnsetAndEmptyAlike) {
  ::unsetenv("ARBOR_UTIL_TEST_KNOB");
  EXPECT_FALSE(env_knob("ARBOR_UTIL_TEST_KNOB").has_value());
  ::setenv("ARBOR_UTIL_TEST_KNOB", "", 1);
  EXPECT_FALSE(env_knob("ARBOR_UTIL_TEST_KNOB").has_value());
  ::setenv("ARBOR_UTIL_TEST_KNOB", "v", 1);
  const auto got = env_knob("ARBOR_UTIL_TEST_KNOB");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "v");
  ::unsetenv("ARBOR_UTIL_TEST_KNOB");
}

}  // namespace
}  // namespace arbor::util
