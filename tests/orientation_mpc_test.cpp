// End-to-end tests for Theorem 1.1 (MPC orientation): validity, out-degree
// quality, the high-arboricity edge-partition path, and memory/round
// accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "baselines/be08_mpc.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

mpc::MpcContext make_ctx(const Graph& g, mpc::RoundLedger*& ledger_out,
                         double delta = 0.6) {
  const auto cfg = mpc::ClusterConfig::for_problem(
      g.num_vertices(), g.num_edges(), delta);
  static thread_local std::vector<std::unique_ptr<mpc::RoundLedger>> keep;
  keep.push_back(std::make_unique<mpc::RoundLedger>(cfg));
  ledger_out = keep.back().get();
  return mpc::MpcContext(cfg, ledger_out);
}

TEST(MpcOrient, OutdegreeWithinBoundOnForestUnions) {
  util::SplitRng rng(1);
  for (std::size_t lambda : {1u, 2u, 4u, 8u}) {
    const Graph g = graph::forest_union(800, lambda, rng);
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(g, ledger);
    const OrientationParams params;
    const MpcOrientationResult result = mpc_orient(g, params, ctx);
    const std::size_t measured = result.orientation.max_outdegree(g);
    EXPECT_LE(measured, result.outdegree_bound) << "λ=" << lambda;
    // O(λ log log n) with small constants.
    const double loglog =
        std::log2(std::log2(static_cast<double>(g.num_vertices())));
    EXPECT_LE(static_cast<double>(measured),
              24.0 * static_cast<double>(lambda) * loglog) << "λ=" << lambda;
  }
}

TEST(MpcOrient, EveryEdgeOrientedExactlyOnce) {
  util::SplitRng rng(2);
  const Graph g = graph::gnm(300, 900, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcOrientationResult result = mpc_orient(g, {}, ctx);
  // Sum of out-degrees equals m: every edge has exactly one tail.
  const auto out = result.orientation.outdegrees(g);
  std::size_t total = 0;
  for (std::size_t d : out) total += d;
  EXPECT_EQ(total, g.num_edges());
}

TEST(MpcOrient, SinglePartPathUsesCompleteLayering) {
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(400, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcOrientationResult result = mpc_orient(g, {}, ctx);
  EXPECT_EQ(result.parts, 1u);
  EXPECT_TRUE(result.layering.is_complete());
  // The orientation must agree with the layering rule.
  const auto edges = g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Layer lu = result.layering.layer[edges[i].u];
    const Layer lv = result.layering.layer[edges[i].v];
    EXPECT_EQ(result.orientation.oriented_towards_v(i), lu <= lv);
  }
}

TEST(MpcOrient, HighArboricityTakesPartitionPath) {
  // K_200: λ = 100 ≫ 4·log2(200) ≈ 31 → edge partitioning engages.
  const Graph g = graph::clique(200);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const MpcOrientationResult result = mpc_orient(g, {}, ctx);
  EXPECT_GT(result.parts, 1u);
  const std::size_t measured = result.orientation.max_outdegree(g);
  EXPECT_LE(measured, result.outdegree_bound);
  // Quality: within O(log log n) of λ with generous constant; λ(K_200)=100.
  EXPECT_LE(measured, 100u * 24u);
  // Must beat the trivial all-one-way orientation (out-degree 199).
  EXPECT_LT(measured, 199u);
}

TEST(MpcOrient, ExplicitKOverridesEstimate) {
  util::SplitRng rng(4);
  const Graph g = graph::forest_union(300, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  OrientationParams params;
  params.k = 6;
  const MpcOrientationResult result = mpc_orient(g, params, ctx);
  EXPECT_EQ(result.k_used, 6u);
  EXPECT_LE(result.orientation.max_outdegree(g), result.outdegree_bound);
}

TEST(MpcOrient, EstimateDensityParameterSandwich) {
  util::SplitRng rng(5);
  for (std::size_t lambda : {1u, 3u, 6u}) {
    const Graph g = graph::forest_union(400, lambda, rng);
    const std::size_t k = estimate_density_parameter(g);
    EXPECT_GE(k, std::max<std::size_t>(lambda / 2, 1));  // ≥ λ/2 loosely
    EXPECT_LE(k, 2 * lambda);                            // ≤ 2λ-1 exactly
  }
}

TEST(MpcOrient, FewerRoundsThanBe08AtScale) {
  util::SplitRng rng(6);
  const Graph g = graph::forest_union(1 << 15, 2, rng);

  mpc::RoundLedger* ours_ledger = nullptr;
  auto ours_ctx = make_ctx(g, ours_ledger);
  (void)mpc_orient(g, {}, ours_ctx);

  mpc::RoundLedger* be_ledger = nullptr;
  auto be_ctx = make_ctx(g, be_ledger);
  (void)baselines::be08_orient(g, 0, 0.2, be_ctx);

  // The headline: at this size our poly(log log n) round count should not
  // exceed BE08's Θ(log n)·(constant) — with practical constants we expect
  // the same order, so only assert we are not dramatically worse, and that
  // BE08 grows with log n while we stay sub-logarithmic (cross-checked in
  // the pipeline growth test and bench E1).
  EXPECT_LT(ours_ledger->total_rounds(),
            6 * be_ledger->total_rounds() + 200);
}

TEST(MpcOrient, MemoryEnvelopeRespected) {
  util::SplitRng rng(7);
  const Graph g = graph::forest_union(2000, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger, /*delta=*/0.7);
  OrientationParams params;
  // Keep the exponentiation budget within the machine size.
  params.pipeline.budget_cap = ctx.config().words_per_machine / 4;
  (void)mpc_orient(g, params, ctx);
  EXPECT_EQ(ledger->local_violations(), 0u)
      << "peak local " << ledger->peak_local_words() << " vs S="
      << ledger->config().words_per_machine;
}

TEST(MpcOrient, EmptyAndEdgelessGraphs) {
  mpc::RoundLedger* ledger = nullptr;
  const Graph g = graph::GraphBuilder(10).build();
  auto ctx = make_ctx(g, ledger);
  const MpcOrientationResult result = mpc_orient(g, {}, ctx);
  EXPECT_EQ(result.orientation.max_outdegree(g), 0u);
}

TEST(MpcOrient, DeterministicForFixedSeed) {
  util::SplitRng rng(8);
  const Graph g = graph::clique(150);  // partition path, uses the seed
  mpc::RoundLedger* l1 = nullptr;
  auto c1 = make_ctx(g, l1);
  const auto r1 = mpc_orient(g, {}, c1);
  mpc::RoundLedger* l2 = nullptr;
  auto c2 = make_ctx(g, l2);
  const auto r2 = mpc_orient(g, {}, c2);
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(r1.orientation.oriented_towards_v(i),
              r2.orientation.oriented_towards_v(i));
  EXPECT_EQ(l1->total_rounds(), l2->total_rounds());
}

}  // namespace
}  // namespace arbor::core
