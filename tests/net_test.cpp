// Tests for the multi-process transport backend (src/net/): wire-format
// round trips (fuzzed), strict env-override parsing, the transport
// determinism matrix — every distributable RoundProgram must produce
// bit-identical outputs, inbox fingerprints, and ledger totals across
// {in-process, loopback, 2- and 4-worker tcp} — and driver-side failure
// handling (relayed cap violations keep their type and machine name; a
// killed worker surfaces as a TransportError naming the lost worker and
// leaves no zombie processes).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <ranges>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "local/mpc_embedding.hpp"
#include "mpc/broadcast.hpp"
#include "mpc/bundle_fetch.hpp"
#include "mpc/cluster.hpp"
#include "mpc/sample_sort.hpp"
#include "net/process_group.hpp"
#include "net/registry.hpp"
#include "net/storm.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "util/assert.hpp"
#include "util/hashing.hpp"
#include "util/rng.hpp"

namespace arbor::net {
namespace {

using mpc::ClusterConfig;
using mpc::TransportConfig;

// ------------------------------------------------------------ wire fuzz

/// Reference delivery: what the frames must reproduce, in (source asc,
/// send order) per destination.
std::vector<engine::Inbox> reference_delivery(
    const std::vector<engine::Outbox>& outboxes, std::size_t machines) {
  std::vector<engine::Inbox> inboxes(machines);
  for (const engine::Outbox& out : outboxes)
    for (const engine::Outbox::Msg& msg : out.msgs)
      inboxes[msg.dst].append(out.payload(msg));
  return inboxes;
}

/// Random outbox bank: some machines silent, some sending empty payloads,
/// some multi-word records (width 3, as engine/records.hpp moves them),
/// one machine pinned at a max-cap slab when `max_cap` is set.
std::vector<engine::Outbox> random_bank(util::SplitRng& rng,
                                        std::size_t machines,
                                        std::size_t capacity, bool max_cap) {
  std::vector<engine::Outbox> outboxes(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    engine::Sender sender(m, capacity, machines, outboxes[m]);
    if (max_cap && m == 0) {
      // One message of exactly `capacity` words — the largest slab the
      // sender-side cap admits.
      std::vector<Word> slab(capacity, 0xC0FFEE);
      sender.send(rng.next_below(machines), slab);
      continue;
    }
    const std::size_t msgs = rng.next_below(5);
    for (std::size_t i = 0; i < msgs; ++i) {
      std::vector<Word> payload;
      switch (rng.next_below(3)) {
        case 0:  // empty slab
          break;
        case 1:  // single words
          payload.push_back(rng.next_below(1u << 20));
          break;
        default:  // whole multi-word records
          for (std::size_t r = 0; r <= rng.next_below(3); ++r) {
            payload.push_back(rng.next_below(16));  // key
            payload.push_back(rng.next_below(1u << 16));
            payload.push_back(m * 1000 + i);  // provenance word
          }
      }
      sender.send(rng.next_below(machines), payload);
    }
  }
  return outboxes;
}

TEST(WireFormat, OutboxFramesRoundTripBitIdentically) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::SplitRng rng(seed);
    const std::size_t machines = 1 + rng.next_below(6);
    const std::size_t workers = 1 + rng.next_below(4);
    const std::size_t capacity = 64 + rng.next_below(128);
    const auto outboxes =
        random_bank(rng, machines, capacity * machines, seed % 5 == 0);
    const auto expected = reference_delivery(outboxes, machines);

    // Carve the machines into worker blocks, ship every (src block, dst
    // block) pair as one frame, deliver in source-rank order.
    std::vector<engine::Inbox> inboxes(machines);
    for (std::size_t dst_rank = 0; dst_rank < workers; ++dst_rank) {
      const auto [db, de] = machine_block(machines, workers, dst_rank);
      for (std::size_t src_rank = 0; src_rank < workers; ++src_rank) {
        const auto [sb, se] = machine_block(machines, workers, src_rank);
        const std::vector<Word> payload = encode_outbox_frame(
            /*round=*/7, src_rank, outboxes, sb, se, db, de);
        OutboxFrameView view = decode_outbox_counts(payload, de - db);
        EXPECT_EQ(view.round, 7u);
        EXPECT_EQ(view.src_rank, src_rank);
        deliver_outbox_msgs(view, inboxes, db, de);
      }
    }
    for (std::size_t m = 0; m < machines; ++m) {
      ASSERT_EQ(inboxes[m].message_count(), expected[m].message_count())
          << "seed " << seed << " machine " << m;
      EXPECT_EQ(inboxes[m].words, expected[m].words)
          << "seed " << seed << " machine " << m;
      for (std::size_t i = 0; i < inboxes[m].message_count(); ++i)
        EXPECT_TRUE(std::ranges::equal(inboxes[m].message(i),
                                       expected[m].message(i)));
    }
  }
}

TEST(WireFormat, ProgramFramesRoundTrip) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::SplitRng rng(seed);
    ProgramFrame frame;
    frame.first_round = rng.next_below(100);
    frame.steps = 1 + rng.next_below(5);
    frame.max_passes = 1 + rng.next_below(50);
    frame.has_output = rng.next_below(2) == 1;
    frame.has_vote = rng.next_below(2) == 1;
    frame.name = seed % 2 ? "mpc.sample_sort" : "x";
    for (std::size_t i = 0; i < rng.next_below(4); ++i)
      frame.scalars.push_back(rng.next_below(1u << 30));
    const std::size_t block = 1 + rng.next_below(4);
    frame.inputs.resize(block);
    frame.preinbox.resize(block);
    for (std::size_t b = 0; b < block; ++b) {
      for (std::size_t i = 0; i < rng.next_below(6); ++i)
        frame.inputs[b].push_back(rng.next_below(1u << 20));
      for (std::size_t i = 0; i < rng.next_below(3); ++i)
        frame.preinbox[b].push_back(
            std::vector<Word>(rng.next_below(4), seed));
    }

    const std::vector<Word> payload = encode_program_frame(frame);
    const ProgramFrame back = decode_program_frame(payload, block);
    EXPECT_EQ(back.first_round, frame.first_round);
    EXPECT_EQ(back.steps, frame.steps);
    EXPECT_EQ(back.max_passes, frame.max_passes);
    EXPECT_EQ(back.has_output, frame.has_output);
    EXPECT_EQ(back.has_vote, frame.has_vote);
    EXPECT_EQ(back.name, frame.name);
    EXPECT_EQ(back.scalars, frame.scalars);
    EXPECT_EQ(back.inputs, frame.inputs);
    EXPECT_EQ(back.preinbox, frame.preinbox);
  }
}

/// Helper: expect an InvariantError whose message contains `needle`.
template <typename Fn>
void expect_rejected(const Fn& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected rejection naming \"" << needle << "\"";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(WireFormat, TruncatedAndOversizedFramesRejectedByName) {
  // Header defects.
  expect_rejected(
      [] {
        const std::array<Word, 3> bad{kFrameMagic + 1, 5, 0};
        decode_frame_header(bad);
      },
      "bad frame magic");
  expect_rejected(
      [] {
        const std::array<Word, 3> bad{kFrameMagic, 999, 0};
        decode_frame_header(bad);
      },
      "unknown frame type");
  expect_rejected(
      [] {
        const std::array<Word, 3> bad{kFrameMagic, 5,
                                      kMaxFramePayloadWords + 1};
        decode_frame_header(bad);
      },
      "oversized frame");
  expect_rejected([] { encode_frame_header(FrameType::kOutbox,
                                           kMaxFramePayloadWords + 7); },
                  "oversized frame");

  // Payload defects: a valid outbox frame, truncated at every prefix
  // length, must throw a named error — never read out of bounds or
  // deliver short.
  util::SplitRng rng(42);
  const auto outboxes = random_bank(rng, 4, 4096, true);
  const std::vector<Word> payload =
      encode_outbox_frame(0, 0, outboxes, 0, 4, 0, 4);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<Word> short_payload(payload.begin(),
                                          payload.begin() + cut);
    expect_rejected(
        [&] {
          std::vector<engine::Inbox> inboxes(4);
          OutboxFrameView view = decode_outbox_counts(short_payload, 4);
          deliver_outbox_msgs(view, inboxes, 0, 4);
        },
        "truncated outbox frame");
  }
  // Trailing junk the encoder never wrote.
  std::vector<Word> longer = payload;
  longer.push_back(0xDEAD);
  expect_rejected(
      [&] {
        std::vector<engine::Inbox> inboxes(4);
        OutboxFrameView view = decode_outbox_counts(longer, 4);
        deliver_outbox_msgs(view, inboxes, 0, 4);
      },
      "oversized outbox frame");

  // Truncated program frames, same treatment.
  ProgramFrame frame;
  frame.steps = 2;
  frame.name = "net.storm";
  frame.scalars = {3, 4};
  frame.inputs = {{1, 2, 3}};
  frame.preinbox = {{{5}, {6, 7}}};
  const std::vector<Word> program_payload = encode_program_frame(frame);
  for (std::size_t cut = 0; cut < program_payload.size(); ++cut) {
    const std::vector<Word> short_payload(program_payload.begin(),
                                          program_payload.begin() + cut);
    expect_rejected([&] { decode_program_frame(short_payload, 1); },
                    "truncated program frame");
  }
}

TEST(WireFormat, TelemetryFrameRoundTripsAndRejectsDefectsByName) {
  trace::TelemetryBlob blob;
  blob.counters = {{"net.sent_words.sort", 4096}, {"net.sent_frames.sort", 8}};
  trace::HistogramSnapshot hist;
  hist.name = "net.round_us";
  hist.count = 3;
  hist.sum = 6.5;
  hist.samples = {1.0, 2.25, 3.25};
  blob.histograms = {hist};
  blob.spans = {{"compute sort", "net", 7, 1000, 250},
                {"send sort", "net", 7, 1300, 40}};

  const std::vector<Word> payload = encode_telemetry_frame(3, blob);
  const TelemetryFrame decoded = decode_telemetry_frame(payload);
  EXPECT_EQ(decoded.rank, 3u);
  ASSERT_EQ(decoded.blob.counters.size(), 2u);
  EXPECT_EQ(decoded.blob.counters[0].first, "net.sent_words.sort");
  EXPECT_EQ(decoded.blob.counters[0].second, 4096u);
  ASSERT_EQ(decoded.blob.histograms.size(), 1u);
  EXPECT_EQ(decoded.blob.histograms[0].name, "net.round_us");
  EXPECT_EQ(decoded.blob.histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(decoded.blob.histograms[0].sum, 6.5);
  EXPECT_EQ(decoded.blob.histograms[0].samples, hist.samples);
  ASSERT_EQ(decoded.blob.spans.size(), 2u);
  EXPECT_EQ(decoded.blob.spans[0].name, "compute sort");
  EXPECT_EQ(decoded.blob.spans[0].category, "net");
  EXPECT_EQ(decoded.blob.spans[0].tid, 7u);
  EXPECT_EQ(decoded.blob.spans[0].start_ns, 1000);
  EXPECT_EQ(decoded.blob.spans[0].dur_ns, 250);

  // Same fuzz treatment as every other frame: every truncation prefix is
  // rejected by name, as is trailing junk.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<Word> short_payload(payload.begin(),
                                          payload.begin() + cut);
    expect_rejected([&] { decode_telemetry_frame(short_payload); },
                    "truncated telemetry frame");
  }
  std::vector<Word> longer = payload;
  longer.push_back(0xDEAD);
  expect_rejected([&] { decode_telemetry_frame(longer); },
                  "oversized telemetry frame");

  // A telemetry frame's header is a known type (corrupted headers stay
  // covered by the header fuzz above, which rejects before the payload
  // decoder ever runs).
  const std::array<Word, 3> header{
      kFrameMagic, static_cast<Word>(FrameType::kTelemetry),
      static_cast<Word>(payload.size())};
  const FrameHeader parsed = decode_frame_header(header);
  EXPECT_EQ(parsed.type, FrameType::kTelemetry);
}

// ------------------------------------------------- strict env overrides

TEST(EnvOverrides, BoolFlagsRejectUnknownValuesByName) {
  EXPECT_TRUE(mpc::parse_bool_flag("1", "ARBOR_DISTRIBUTED_LEVEL1"));
  EXPECT_TRUE(mpc::parse_bool_flag("yes", "ARBOR_DISTRIBUTED_LEVEL1"));
  EXPECT_FALSE(mpc::parse_bool_flag("0", "ARBOR_DISTRIBUTED_LEVEL1"));
  EXPECT_FALSE(mpc::parse_bool_flag("off", "ARBOR_TSAN"));
  // Regression: these used to silently fall back to the default.
  expect_rejected(
      [] { mpc::parse_bool_flag("ture", "ARBOR_DISTRIBUTED_LEVEL1"); },
      "ARBOR_DISTRIBUTED_LEVEL1=\"ture\"");
  expect_rejected([] { mpc::parse_bool_flag("2", "ARBOR_TSAN"); },
                  "ARBOR_TSAN=\"2\"");
  expect_rejected([] { mpc::parse_bool_flag("", "ARBOR_TSAN"); },
                  "not a boolean flag");
}

// ARBOR_ROUTE_AGGREGATION goes through the same strict boolean parser:
// "off" disables the bulk route for an A/B run, a typo fails loudly
// instead of silently picking the default.
TEST(EnvOverrides, RouteAggregationFlagIsStrict) {
  EXPECT_TRUE(mpc::parse_bool_flag("on", "ARBOR_ROUTE_AGGREGATION"));
  EXPECT_FALSE(mpc::parse_bool_flag("off", "ARBOR_ROUTE_AGGREGATION"));
  expect_rejected(
      [] { mpc::parse_bool_flag("fast", "ARBOR_ROUTE_AGGREGATION"); },
      "ARBOR_ROUTE_AGGREGATION=\"fast\"");
  // The config default is the knob's compiled-in default (on) when the
  // variable is unset — and per-config overrides stay independent.
  ClusterConfig cfg{2, 64};
  cfg.route_aggregation = false;
  EXPECT_FALSE(cfg.route_aggregation);
  EXPECT_TRUE((ClusterConfig{2, 64}).route_aggregation ==
              mpc::route_aggregation_env_default());
}

// ARBOR_MERGE_PATH and ARBOR_FETCH_CACHE follow the same discipline:
// strict boolean parse, "off" selects the A/B baseline (wholesale re-sort,
// uncached fetches), typos fail loudly, and the compiled-in default is on
// when the variable is unset.
TEST(EnvOverrides, MergePathFlagIsStrict) {
  EXPECT_TRUE(mpc::parse_bool_flag("on", "ARBOR_MERGE_PATH"));
  EXPECT_FALSE(mpc::parse_bool_flag("off", "ARBOR_MERGE_PATH"));
  expect_rejected([] { mpc::parse_bool_flag("merge", "ARBOR_MERGE_PATH"); },
                  "ARBOR_MERGE_PATH=\"merge\"");
  ClusterConfig cfg{2, 64};
  cfg.merge_path = false;
  EXPECT_FALSE(cfg.merge_path);
  EXPECT_TRUE((ClusterConfig{2, 64}).merge_path ==
              mpc::merge_path_env_default());
}

TEST(EnvOverrides, FetchCacheFlagIsStrict) {
  EXPECT_TRUE(mpc::parse_bool_flag("on", "ARBOR_FETCH_CACHE"));
  EXPECT_FALSE(mpc::parse_bool_flag("off", "ARBOR_FETCH_CACHE"));
  expect_rejected([] { mpc::parse_bool_flag("lru", "ARBOR_FETCH_CACHE"); },
                  "ARBOR_FETCH_CACHE=\"lru\"");
  ClusterConfig cfg{2, 64};
  cfg.fetch_cache = false;
  EXPECT_FALSE(cfg.fetch_cache);
  EXPECT_TRUE((ClusterConfig{2, 64}).fetch_cache ==
              mpc::fetch_cache_env_default());
}

TEST(EnvOverrides, TransportFlagParsesKindsAndWorkerCounts) {
  EXPECT_EQ(mpc::parse_transport_flag("inprocess", "ARBOR_TRANSPORT"),
            TransportConfig{});
  EXPECT_EQ(mpc::parse_transport_flag("loopback", "ARBOR_TRANSPORT"),
            TransportConfig::loopback(2));
  EXPECT_EQ(mpc::parse_transport_flag("loopback:5", "ARBOR_TRANSPORT"),
            TransportConfig::loopback(5));
  EXPECT_EQ(mpc::parse_transport_flag("tcp", "ARBOR_TRANSPORT"),
            TransportConfig::tcp(2));
  EXPECT_EQ(mpc::parse_transport_flag("tcp:4", "ARBOR_TRANSPORT"),
            TransportConfig::tcp(4));

  expect_rejected([] { mpc::parse_transport_flag("mpi", "ARBOR_TRANSPORT"); },
                  "ARBOR_TRANSPORT=\"mpi\"");
  expect_rejected(
      [] { mpc::parse_transport_flag("tcp:zero", "ARBOR_TRANSPORT"); },
      "not a number");
  expect_rejected([] { mpc::parse_transport_flag("tcp:0", "ARBOR_TRANSPORT"); },
                  "must be >= 1");
  // Regression: a trailing colon (truncated "tcp:4", or a script
  // interpolating an empty variable) used to silently fall back to the
  // default worker count.
  expect_rejected([] { mpc::parse_transport_flag("tcp:", "ARBOR_TRANSPORT"); },
                  "worker count is empty");
  expect_rejected(
      [] { mpc::parse_transport_flag("inprocess:", "ARBOR_TRANSPORT"); },
      "worker count is empty");
  expect_rejected(
      [] { mpc::parse_transport_flag("inprocess:2", "ARBOR_TRANSPORT"); },
      "no worker count");
}

// ------------------------------------- transport determinism matrix
//
// The acceptance bar of the subsystem: every distributable RoundProgram
// produces bit-identical outputs, inbox fingerprints, and ledger totals
// under the multi-process backend — loopback and 2-/4-worker tcp on
// localhost — as under the in-process serial engine.

std::uint64_t matrix_fingerprint(const mpc::Cluster& cluster) {
  std::uint64_t h = util::mix64(0x12345);
  for (std::size_t m = 0; m < cluster.num_machines(); ++m) {
    for (const auto& msg : cluster.inbox(m)) {
      h = util::hash_combine(h, msg.size());
      for (Word w : msg) h = util::hash_combine(h, w);
    }
    h = util::hash_combine(h, m);
  }
  return h;
}

std::vector<TransportConfig> transport_matrix() {
  return {TransportConfig{},                   // in-process reference
          TransportConfig::loopback(2),        //
          TransportConfig::loopback(3),        // uneven blocks
          {TransportConfig::Kind::kLoopback, 2, /*worker_threads=*/2},
          TransportConfig::tcp(2),             //
          TransportConfig::tcp(4)};
}

struct MatrixOutcome {
  std::uint64_t fingerprint = 0;
  std::size_t total_rounds = 0;
  std::size_t peak_traffic = 0;
  std::map<std::string, std::size_t> by_label;
};

template <typename RunFn>
void expect_transports_identical(
    const char* what, const RunFn& run, std::size_t machines = 8,
    std::size_t capacity = 4096,
    const std::function<void(ClusterConfig&)>& configure = {}) {
  std::vector<MatrixOutcome> outcomes;
  for (const TransportConfig& transport : transport_matrix()) {
    ClusterConfig cfg{machines, capacity};
    cfg.transport = transport;
    if (configure) configure(cfg);
    mpc::RoundLedger ledger(cfg);
    mpc::Cluster cluster(cfg, &ledger);
    EXPECT_EQ(cluster.distributed(), !transport.in_process());
    run(cluster, outcomes.empty());
    MatrixOutcome outcome;
    outcome.fingerprint = matrix_fingerprint(cluster);
    outcome.total_rounds = ledger.total_rounds();
    outcome.peak_traffic = ledger.peak_round_traffic();
    outcome.by_label = ledger.rounds_by_label();
    outcomes.push_back(outcome);
  }
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].fingerprint, outcomes[0].fingerprint)
        << what << " transport mode " << i;
    EXPECT_EQ(outcomes[i].total_rounds, outcomes[0].total_rounds)
        << what << " transport mode " << i;
    EXPECT_EQ(outcomes[i].peak_traffic, outcomes[0].peak_traffic)
        << what << " transport mode " << i;
    EXPECT_EQ(outcomes[i].by_label, outcomes[0].by_label)
        << what << " transport mode " << i;
  }
}

std::vector<std::vector<Word>> random_slabs(std::size_t machines,
                                            std::size_t per_machine,
                                            std::uint64_t seed) {
  util::SplitRng rng(seed);
  std::vector<std::vector<Word>> slabs(machines);
  for (auto& slab : slabs)
    for (std::size_t i = 0; i < per_machine; ++i)
      slab.push_back(rng.next_below(1u << 20));
  return slabs;
}

TEST(TransportDeterminismMatrix, SampleSort) {
  const auto input = random_slabs(8, 48, 121);
  std::vector<std::vector<Word>> reference;
  expect_transports_identical(
      "sample_sort", [&](mpc::Cluster& cluster, bool first) {
        const mpc::SampleSortResult result = sample_sort(cluster, input);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

TEST(TransportDeterminismMatrix, RecordSampleSort) {
  util::SplitRng rng(122);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));  // heavily duplicated key
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_transports_identical(
      "sample_sort_records", [&](mpc::Cluster& cluster, bool first) {
        const mpc::RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        EXPECT_EQ(result.rounds, 7u);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

// Both splitter strategies stay bit-identical across transports (the
// strategy travels as a RemoteSpec scalar), and the tree also at a wide,
// ragged machine count whose groups straddle worker-block boundaries.
TEST(TransportDeterminismMatrix, SampleSortCoordinatorStrategy) {
  const auto input = random_slabs(8, 48, 125);
  std::vector<std::vector<Word>> reference;
  expect_transports_identical(
      "sample_sort/coordinator", [&](mpc::Cluster& cluster, bool first) {
        const mpc::SampleSortResult result = sample_sort(
            cluster, input, 8, mpc::SplitterStrategy::kCoordinator);
        EXPECT_EQ(result.rounds, 3u);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      });
}

TEST(TransportDeterminismMatrix, WideTreeSampleSort) {
  const std::size_t machines = 75;  // r = 9, ragged last group of 3
  const auto input = random_slabs(machines, 40, 126);
  std::vector<std::vector<Word>> reference;
  expect_transports_identical(
      "sample_sort/tree-wide",
      [&](mpc::Cluster& cluster, bool first) {
        const mpc::SampleSortResult result = sample_sort(cluster, input);
        EXPECT_EQ(result.rounds, 6u);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      machines, 8192);
}

TEST(TransportDeterminismMatrix, BroadcastAndConverge) {
  std::vector<std::vector<Word>> reference_copies;
  expect_transports_identical(
      "broadcast", [&](mpc::Cluster& cluster, bool first) {
        const mpc::BroadcastResult result =
            broadcast_tree(cluster, 3, {7, 8, 9}, 2);
        if (first)
          reference_copies = result.copies;
        else
          EXPECT_EQ(result.copies, reference_copies);
      });
  expect_transports_identical("converge", [&](mpc::Cluster& cluster, bool) {
    std::vector<Word> values(cluster.num_machines());
    for (std::size_t m = 0; m < values.size(); ++m) values[m] = m * 3 + 1;
    const mpc::ConvergeResult result = converge_sum(cluster, 2, values, 2);
    EXPECT_EQ(result.sum, 92u);  // Σ (3m+1) for m < 8
  });
}

TEST(TransportDeterminismMatrix, BundleFetch) {
  std::vector<std::vector<Word>> bundles(12);
  std::vector<std::vector<graph::VertexId>> requests(12);
  util::SplitRng rng(123);
  for (std::size_t v = 0; v < bundles.size(); ++v)
    for (std::size_t i = 0; i <= rng.next_below(3); ++i)
      bundles[v].push_back(v * 100 + i);
  for (std::size_t u = 0; u < requests.size(); ++u)
    for (std::size_t i = 0; i < rng.next_below(4); ++i)
      requests[u].push_back(rng.next_below(bundles.size()));
  std::vector<std::vector<std::vector<Word>>> reference;
  expect_transports_identical(
      "bundle_fetch", [&](mpc::Cluster& cluster, bool first) {
        const mpc::Level0BundleFetchResult result =
            fetch_bundles_program(cluster, bundles, requests);
        EXPECT_EQ(result.rounds, 3u);
        if (first)
          reference = result.delivered;
        else
          EXPECT_EQ(result.delivered, reference);
      });
}

TEST(TransportDeterminismMatrix, EmbeddedPeeling) {
  util::SplitRng rng(124);
  const graph::Graph g = graph::gnm(300, 900, rng);
  std::vector<std::uint32_t> reference_layers;
  std::uint32_t reference_num_layers = 0;
  expect_transports_identical(
      "peeling", [&](mpc::Cluster& cluster, bool first) {
        const local::EmbeddedPeelingResult result =
            local::embedded_threshold_peeling(g, 6, cluster, 100);
        if (first) {
          reference_layers = result.layer;
          reference_num_layers = result.num_layers;
        } else {
          EXPECT_EQ(result.layer, reference_layers);
          EXPECT_EQ(result.num_layers, reference_num_layers);
        }
      });
}

// The knob-off fallbacks travel as RemoteSpec scalars too: the re-sort
// baseline and the uncached fetch path must be just as bit-identical
// across transports as the defaults, or the A/B comparison is meaningless
// off the in-process engine.
TEST(TransportDeterminismMatrix, RecordSampleSortMergePathOff) {
  util::SplitRng rng(127);
  std::vector<std::vector<Word>> input(8);
  std::size_t payload = 0;
  for (auto& slab : input)
    for (int r = 0; r < 24; ++r) {
      slab.push_back(rng.next_below(8));
      slab.push_back(payload++);
    }
  std::vector<std::vector<Word>> reference;
  expect_transports_identical(
      "sample_sort_records/no-merge-path",
      [&](mpc::Cluster& cluster, bool first) {
        const mpc::RecordSortResult result =
            sample_sort_records(cluster, input, 2, 1);
        if (first)
          reference = result.slabs;
        else
          EXPECT_EQ(result.slabs, reference);
      },
      8, 4096, [](ClusterConfig& cfg) { cfg.merge_path = false; });
}

TEST(TransportDeterminismMatrix, EmbeddedPeelingFetchCacheOff) {
  util::SplitRng rng(128);
  const graph::Graph g = graph::gnm(300, 900, rng);
  std::vector<std::uint32_t> reference_layers;
  expect_transports_identical(
      "peeling/no-fetch-cache",
      [&](mpc::Cluster& cluster, bool first) {
        const local::EmbeddedPeelingResult result =
            local::embedded_threshold_peeling(g, 6, cluster, 100);
        if (first)
          reference_layers = result.layer;
        else
          EXPECT_EQ(result.layer, reference_layers);
      },
      8, 4096, [](ClusterConfig& cfg) { cfg.fetch_cache = false; });
}

// Back-to-back programs on one distributed cluster: the second program's
// preinbox scatter must reproduce the stale leftovers of the first, so
// reuse behaves exactly like the in-process engine.
TEST(TransportDeterminismMatrix, StaleInboxesSurviveProgramReuse) {
  for (const TransportConfig& transport :
       {TransportConfig::loopback(2), TransportConfig::tcp(2)}) {
    ClusterConfig cfg{8, 4096};
    cfg.transport = transport;
    mpc::Cluster cluster(cfg, nullptr);
    broadcast_tree(cluster, 0, {11, 22}, 2);  // leaves inbox traffic
    const mpc::BroadcastResult second = broadcast_tree(cluster, 5, {77}, 2);
    for (std::size_t m = 0; m < cfg.num_machines; ++m)
      EXPECT_EQ(second.copies[m], (std::vector<Word>{77})) << "machine " << m;
  }
}

// ---------------------------------------- direct backend API + storm

std::shared_ptr<StormState> storm_state(std::size_t machines,
                                        std::size_t batch,
                                        std::size_t rounds,
                                        std::uint64_t seed) {
  auto st = std::make_shared<StormState>();
  st->machines = machines;
  st->batch = batch;
  st->rounds = rounds;
  st->slabs = random_slabs(machines, 16, seed);
  return st;
}

TEST(MultiProcessBackend, PerRoundFingerprintsAgreeAcrossTransports) {
  std::vector<std::vector<std::uint64_t>> per_transport;
  for (const TransportConfig& transport :
       {TransportConfig::loopback(2), TransportConfig::tcp(2),
        TransportConfig::tcp(4)}) {
    GroupOptions options;
    options.transport = transport;
    options.machines = 8;
    options.capacity = 4096;
    MultiProcessBackend backend(options);
    engine::Engine eng(engine::ExecutionPolicy::serial());
    eng.set_backend(&backend);
    engine::RoundState state = eng.make_state(8);
    const auto program =
        make_distributable_storm_program(storm_state(8, 16, 12, 9));
    const engine::ProgramStats stats =
        eng.run_program(state, 4096, 0, program, {});
    EXPECT_EQ(stats.rounds, 12u);
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_EQ(backend.group().programs_run(), 1u);
    ASSERT_EQ(backend.group().round_fingerprints().size(), 12u);
    per_transport.push_back(backend.group().round_fingerprints());
  }
  EXPECT_EQ(per_transport[0], per_transport[1]);
  EXPECT_EQ(per_transport[0], per_transport[2]);
}

TEST(MultiProcessBackend, ProgramsWithoutSpecStayInProcess) {
  ClusterConfig cfg{4, 256};
  cfg.transport = TransportConfig::loopback(2);
  mpc::Cluster cluster(cfg, nullptr);
  // run_round wraps an ad-hoc lambda — no RemoteSpec, so it must execute
  // on the in-process scheduler even though a backend is installed.
  cluster.run_round([](std::size_t m, const auto&, mpc::Sender& send) {
    const Word w = m;
    send.send((m + 1) % 4, std::span<const Word>(&w, 1));
  });
  for (std::size_t m = 0; m < 4; ++m) {
    ASSERT_EQ(cluster.inbox(m).size(), 1u);
    EXPECT_EQ(cluster.inbox(m).front()[0], (m + 3) % 4);
  }
}

TEST(MultiProcessBackend, UnknownProgramNameRejected) {
  GroupOptions options;
  options.transport = TransportConfig::loopback(2);
  options.machines = 4;
  options.capacity = 256;
  MultiProcessBackend backend(options);
  engine::Engine eng(engine::ExecutionPolicy::serial());
  eng.set_backend(&backend);
  engine::RoundState state = eng.make_state(4);

  engine::RoundProgram program;
  program.independent([](std::size_t, const auto&, engine::Sender&) {});
  engine::RemoteSpec spec;
  spec.name = "no.such.program";
  program.distributable(std::move(spec));
  expect_rejected([&] { eng.run_program(state, 256, 0, program, {}); },
                  "\"no.such.program\" is not registered");
}

// --------------------------------------------- driver failure handling

TEST(FailureHandling, CapViolationKeepsTypeAndNamesMachineAcrossTheWire) {
  for (const TransportConfig& transport :
       {TransportConfig::loopback(2), TransportConfig::tcp(2)}) {
    ClusterConfig cfg{4, 8};
    cfg.transport = transport;
    mpc::Cluster cluster(cfg, nullptr);
    // Payload of 5 words × fanout 2 = 10 > 8 send budget: the worker-side
    // Sender throws; the driver rethrows the relayed InvariantError.
    expect_rejected(
        [&] { broadcast_tree(cluster, 0, {1, 2, 3, 4, 5}, 2); },
        "exceeded send capacity");
  }
}

TEST(FailureHandling, LedgerChargesMatchInProcessOnErrorPaths) {
  // A program that dies in round 3 must leave the same ledger totals the
  // in-process engine would: rounds are charged as they commit.
  auto run_until_throw = [](const TransportConfig& transport) {
    ClusterConfig cfg{4, 64};
    cfg.transport = transport;
    mpc::RoundLedger ledger(cfg);
    mpc::Cluster cluster(cfg, &ledger);
    auto st = std::make_shared<StormState>();
    st->machines = 4;
    st->batch = 4;
    st->rounds = 5;
    // Slab values chosen so rounds 0..1 fit and round 2 oversends: a
    // slab of 17+ words makes batch*words exceed nothing... instead use
    // a custom program: rounds 0,1 send one word, round 2 sends 65 words
    // (> capacity) from machine 0.
    engine::RoundProgram program;
    for (std::size_t r = 0; r < 5; ++r) {
      program.independent([r](std::size_t m, const auto&,
                              engine::Sender& send) {
        if (r == 2 && m == 0) {
          const std::vector<Word> big(65, 1);
          send.send(1, big);
          return;
        }
        const Word w = m;
        send.send(0, std::span<const Word>(&w, 1));
      });
    }
    // Not a registry program — attach the storm spec? No: this ad-hoc
    // shape exists only in-process. Use the cluster directly; for the
    // distributed run the equivalent storm-with-overflow is below.
    try {
      cluster.run_program(program);
    } catch (const InvariantError&) {
    }
    return ledger.total_rounds();
  };
  const std::size_t in_process = run_until_throw(TransportConfig{});
  EXPECT_EQ(in_process, 2u);  // rounds 0 and 1 committed, round 2 threw

  // Distributed equivalent: small capacity, storm whose batch overflows
  // the receive cap eventually is nondeterministic — instead drive the
  // same assertion through the broadcast cap violation, where no round
  // ever commits (round 0 itself throws).
  for (const TransportConfig& transport :
       {TransportConfig{}, TransportConfig::loopback(2),
        TransportConfig::tcp(2)}) {
    ClusterConfig cfg{4, 8};
    cfg.transport = transport;
    mpc::RoundLedger ledger(cfg);
    mpc::Cluster cluster(cfg, &ledger);
    try {
      broadcast_tree(cluster, 0, {1, 2, 3, 4, 5}, 2);
    } catch (const InvariantError&) {
    }
    EXPECT_EQ(ledger.total_rounds(), 0u);
  }
}

TEST(FailureHandling, KilledWorkerRaisesTransportErrorAndLeavesNoZombies) {
  // Capture the run's stderr: worker processes inherit fd 2 at fork, so
  // the redirect must be in place BEFORE the backend spawns them. Every
  // line a worker runtime writes goes through worker_log and must carry
  // its "[worker:<rank>]" prefix — asserted below on the survivor's
  // peer-loss report.
  char stderr_path[] = "/tmp/arbor_net_test_stderr_XXXXXX";
  const int capture_fd = ::mkstemp(stderr_path);
  ASSERT_GE(capture_fd, 0);
  std::fflush(stderr);
  const int saved_stderr = ::dup(2);
  ASSERT_GE(saved_stderr, 0);
  ASSERT_GE(::dup2(capture_fd, 2), 0);

  GroupOptions options;
  options.transport = TransportConfig::tcp(2);
  options.machines = 8;
  options.capacity = 4096;
  MultiProcessBackend backend(options);
  const pid_t victim = backend.group().worker_pid(1);
  ASSERT_GT(victim, 0);

  engine::Engine eng(engine::ExecutionPolicy::serial());
  eng.set_backend(&backend);
  engine::RoundState state = eng.make_state(8);
  const auto program =
      make_distributable_storm_program(storm_state(8, 8, 200, 11));

  std::size_t rounds_seen = 0;
  try {
    eng.run_program(state, 4096, 0, program,
                    [&](const engine::RoundStats&) {
                      // Deterministic kill point: after round 3 commits.
                      if (++rounds_seen == 3) ::kill(victim, SIGKILL);
                    });
    FAIL() << "expected a TransportError for the killed worker";
  } catch (const TransportError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker 1"), std::string::npos) << what;
    EXPECT_NE(what.find("machines 4..7"), std::string::npos) << what;
    EXPECT_NE(what.find("in round"), std::string::npos) << what;
  }
  EXPECT_LT(rounds_seen, 200u);

  // The group tore itself down: every worker process is reaped — no
  // zombies, no stragglers left for the test harness to leak.
  const pid_t leftover = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(leftover == 0 || (leftover == -1 && errno == ECHILD))
      << "unreaped child " << leftover;

  // Teardown reaped the survivor (worker 0), so its stderr is flushed and
  // complete. Restore fd 2 before asserting on the capture.
  std::fflush(stderr);
  ::dup2(saved_stderr, 2);
  ::close(saved_stderr);
  ::close(capture_fd);
  std::string captured;
  {
    std::ifstream in(stderr_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    captured = buf.str();
  }
  ::unlink(stderr_path);
  EXPECT_NE(captured.find("[worker:0] "), std::string::npos) << captured;
  EXPECT_NE(captured.find("lost worker 1"), std::string::npos) << captured;
  // Nothing a worker wrote may dodge the rank prefix: every non-empty
  // captured line starts with "[worker:".
  std::istringstream lines(captured);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    EXPECT_EQ(line.rfind("[worker:", 0), 0u) << "unprefixed line: " << line;
  }
}

}  // namespace
}  // namespace arbor::net
