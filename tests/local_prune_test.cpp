// Tests for Algorithm 1 (LocalPrune): exact semantics on hand-built trees,
// plus the paper's guarantees as properties — Claim 3.1 (missing grows by
// ≤ k) and Lemma 3.2 (pruned size ≤ NumPathsIn at the root's vertex).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/assert.hpp"
#include "core/layering.hpp"
#include "core/local_prune.hpp"
#include "core/tree_view.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;
using NodeId = TreeView::NodeId;

TEST(LocalPrune, RootWithAtMostKChildrenBecomesSingleton) {
  const Graph g = graph::star(4);
  const TreeView t = TreeView::star(0, g.neighbors(0));  // 3 children
  EXPECT_EQ(local_prune(t, 3).size(), 1u);
  EXPECT_EQ(local_prune(t, 5).size(), 1u);
}

TEST(LocalPrune, RootAboveKDropsKLargest) {
  const Graph g = graph::star(6);
  const TreeView t = TreeView::star(0, g.neighbors(0));  // 5 children
  // All child subtrees have size 1; pruning k=2 keeps 3 of them.
  const TreeView pruned = local_prune(t, 2);
  EXPECT_EQ(pruned.size(), 4u);
  EXPECT_EQ(pruned.node(0).children.size(), 3u);
  EXPECT_TRUE(pruned.is_valid_mapping(g));
}

TEST(LocalPrune, PrunesHeaviestSubtreesFirst) {
  // Root 0 (on a star+path graph) with three children: one child carries a
  // long chain below it (heavy), two are bare leaves. k=1 must drop the
  // heavy one... but note each child subtree is pruned FIRST, and a chain
  // node has ≤ 1 child ≤ k, so the chain collapses to a single node before
  // the root compares sizes. This is exactly Algorithm 1's bottom-up
  // semantics — verify the collapse.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();

  // Tree: root(0) -> {1, 2, 3}; 3 -> 4 -> 5.
  std::vector<TreeView::Node> nodes(6);
  nodes[0] = {0, TreeView::kNoNode, 0, {1, 2, 3}};
  nodes[1] = {1, 0, 1, {}};
  nodes[2] = {2, 0, 1, {}};
  nodes[3] = {3, 0, 1, {4}};
  nodes[4] = {4, 3, 2, {5}};
  nodes[5] = {5, 4, 3, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));

  const TreeView pruned = local_prune(t, 1);
  // Chain under 3 collapses (each node ≤ 1 child = k → singleton), so all
  // three child subtrees have size 1; k=1 drops one → root keeps 2.
  EXPECT_EQ(pruned.size(), 3u);
  for (NodeId x = 0; x < pruned.size(); ++x)
    EXPECT_LE(pruned.node(x).depth, 1u);
}

TEST(LocalPrune, DeterministicTieBreaks) {
  const Graph g = graph::star(8);
  const TreeView t = TreeView::star(0, g.neighbors(0));
  const TreeView p1 = local_prune(t, 3);
  const TreeView p2 = local_prune(t, 3);
  ASSERT_EQ(p1.size(), p2.size());
  for (NodeId x = 0; x < p1.size(); ++x)
    EXPECT_EQ(p1.vertex_of(x), p2.vertex_of(x));
  // star(8): root has 7 children (vertices 1..7), all subtrees size 1.
  // The documented order (size desc, then mapped id asc) puts 1,2,3 first,
  // so those three are dropped and {4,5,6,7} survive.
  std::set<VertexId> kept;
  for (NodeId x = 1; x < p1.size(); ++x) kept.insert(p1.vertex_of(x));
  EXPECT_EQ(kept, (std::set<VertexId>{4, 5, 6, 7}));
}

// Claim 3.1 as a property: for every surviving node,
// missing_after ≤ missing_before + k.
TEST(LocalPrune, Claim31MissingGrowsByAtMostK) {
  util::SplitRng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::gnm(60, 180, rng);
    // Grow a random tree view by repeated star attachment (valid by
    // construction).
    const auto start = static_cast<VertexId>(rng.next_below(60));
    TreeView t = TreeView::star(start, g.neighbors(start));
    for (int grow = 0; grow < 2; ++grow) {
      std::vector<TreeView> stars;
      std::vector<std::pair<NodeId, const TreeView*>> attachments;
      const auto leaves = t.leaves_at_depth(t.height());
      stars.reserve(leaves.size());
      for (NodeId leaf : leaves) {
        const VertexId u = t.vertex_of(leaf);
        stars.push_back(TreeView::star(u, g.neighbors(u)));
      }
      attachments.reserve(leaves.size());
      for (std::size_t i = 0; i < leaves.size(); ++i)
        attachments.emplace_back(leaves[i], &stars[i]);
      t = t.attach(attachments);
      if (t.size() > 4000) break;
    }
    ASSERT_TRUE(t.is_valid_mapping(g));

    const std::size_t k = 1 + trial % 4;
    // Record missing-before keyed by (vertex path signature): we compare
    // node-wise via the pruned tree's correspondence — prune preserves node
    // identity only implicitly, so compare by matching root-to-node paths.
    // Simpler sound check: missing is determined by (maps_to, #children);
    // children only shrink during pruning, and Claim 3.1 says by ≤ k.
    const TreeView pruned = local_prune(t, k);
    ASSERT_TRUE(pruned.is_valid_mapping(g));

    // Walk both trees in parallel from the roots: children of a pruned
    // node are a subset of the original node's children (by mapped vertex).
    std::vector<std::pair<NodeId, NodeId>> stack{{0, 0}};  // (orig, pruned)
    while (!stack.empty()) {
      const auto [ox, px] = stack.back();
      stack.pop_back();
      const std::size_t missing_before = t.missing_count(g, ox);
      const std::size_t missing_after = pruned.missing_count(g, px);
      EXPECT_LE(missing_after, missing_before + k)
          << "Claim 3.1 violated (trial " << trial << ")";
      std::map<VertexId, NodeId> orig_children;
      for (NodeId c : t.node(ox).children)
        orig_children[t.vertex_of(c)] = c;
      for (NodeId pc : pruned.node(px).children) {
        const auto it = orig_children.find(pruned.vertex_of(pc));
        ASSERT_NE(it, orig_children.end())
            << "pruned tree has a child not present in the original";
        stack.emplace_back(it->second, pc);
      }
    }
  }
}

// Lemma 3.2 as a property: with a partial layer assignment of out-degree
// d ≤ k whose root vertex has a finite layer, |pruned| ≤ NumPathsIn(root).
TEST(LocalPrune, Lemma32SizeBoundedByPathCount) {
  util::SplitRng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::forest_union(80, 2, rng);
    const LayerAssignment ell = reference_peeling_layering(g, 8);
    ASSERT_TRUE(ell.is_complete());
    const std::size_t d = assignment_outdegree(g, ell);
    const auto paths_in = num_paths_in(g, ell);

    const auto start = static_cast<VertexId>(rng.next_below(80));
    TreeView t = TreeView::star(start, g.neighbors(start));
    // One round of star expansion to create depth-2 trees.
    {
      std::vector<TreeView> stars;
      std::vector<std::pair<NodeId, const TreeView*>> attachments;
      const auto leaves = t.leaves_at_depth(1);
      stars.reserve(leaves.size());
      for (NodeId leaf : leaves) {
        const VertexId u = t.vertex_of(leaf);
        stars.push_back(TreeView::star(u, g.neighbors(u)));
      }
      for (std::size_t i = 0; i < leaves.size(); ++i)
        attachments.emplace_back(leaves[i], &stars[i]);
      t = t.attach(attachments);
    }

    const std::size_t k = std::max<std::size_t>(d, 1);
    const TreeView pruned = local_prune(t, k);
    EXPECT_LE(pruned.size(), paths_in[start])
        << "Lemma 3.2 violated at vertex " << start << " (trial " << trial
        << ")";
  }
}

}  // namespace
}  // namespace arbor::core
