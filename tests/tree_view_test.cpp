// Tests for TreeView: Definitions 2.3 (valid mappings), 2.5 (attachment),
// 2.6 (missing neighbors), 2.7 (monotone reachability), and the arena
// invariants.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/tree_view.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;
using NodeId = TreeView::NodeId;

TEST(TreeView, SingleNode) {
  const TreeView t = TreeView::single(7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.root_vertex(), 7u);
  EXPECT_EQ(t.height(), 0u);
  EXPECT_TRUE(t.structurally_sound());
}

TEST(TreeView, StarShape) {
  const Graph g = graph::star(5);
  const TreeView t = TreeView::star(0, g.neighbors(0));
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.node(0).children.size(), 4u);
  EXPECT_TRUE(t.is_valid_mapping(g));
  EXPECT_TRUE(t.structurally_sound());
}

TEST(TreeView, LeavesAtDepth) {
  const Graph g = graph::star(4);
  const TreeView t = TreeView::star(0, g.neighbors(0));
  EXPECT_EQ(t.leaves_at_depth(1).size(), 3u);
  EXPECT_TRUE(t.leaves_at_depth(0).empty());  // root has children
  EXPECT_TRUE(t.leaves_at_depth(2).empty());
  const TreeView s = TreeView::single(2);
  EXPECT_EQ(s.leaves_at_depth(0).size(), 1u);  // lone root is a leaf
}

TEST(TreeView, MissingCountEqualsDegreeMinusChildren) {
  // Path 0-1-2; star tree rooted at 1 has children {0, 2}: missing = 0.
  const Graph g = graph::path(3);
  const TreeView t = TreeView::star(1, g.neighbors(1));
  EXPECT_EQ(t.missing_count(g, 0), 0u);
  // Leaves have no children: leaf mapping to 0 has degree 1 → missing 1.
  EXPECT_EQ(t.missing_count(g, 1), 1u);
}

TEST(TreeView, AttachReplacesLeafAndExtendsDepth) {
  // Graph: path 0-1-2-3. Tree A = star at 1 (children 0,2); tree B = star
  // at 2 (children 1,3). Attach B at A's leaf mapping to 2.
  const Graph g = graph::path(4);
  const TreeView a = TreeView::star(1, g.neighbors(1));
  const TreeView b = TreeView::star(2, g.neighbors(2));

  NodeId leaf_to_2 = TreeView::kNoNode;
  for (NodeId x : a.leaves_at_depth(1))
    if (a.vertex_of(x) == 2) leaf_to_2 = x;
  ASSERT_NE(leaf_to_2, TreeView::kNoNode);

  const std::vector<std::pair<NodeId, const TreeView*>> attachments{
      {leaf_to_2, &b}};
  const TreeView merged = a.attach(attachments);
  EXPECT_EQ(merged.size(), a.size() + b.size() - 1);  // leaf slot reused
  EXPECT_EQ(merged.height(), 2u);
  EXPECT_TRUE(merged.is_valid_mapping(g));
  EXPECT_TRUE(merged.structurally_sound());
  // The leaf now has B's children (mapping to 1 and 3).
  EXPECT_EQ(merged.node(leaf_to_2).children.size(), 2u);
}

TEST(TreeView, AttachRejectsMismatchedRoot) {
  const Graph g = graph::path(3);
  const TreeView a = TreeView::star(1, g.neighbors(1));
  const TreeView wrong = TreeView::single(0);
  NodeId leaf_to_2 = TreeView::kNoNode;
  for (NodeId x : a.leaves_at_depth(1))
    if (a.vertex_of(x) == 2) leaf_to_2 = x;
  const std::vector<std::pair<NodeId, const TreeView*>> attachments{
      {leaf_to_2, &wrong}};
  EXPECT_THROW(a.attach(attachments), arbor::InvariantError);
}

TEST(TreeView, AttachRejectsNonLeaf) {
  const Graph g = graph::path(3);
  const TreeView a = TreeView::star(1, g.neighbors(1));
  const TreeView b = TreeView::single(1);
  const std::vector<std::pair<NodeId, const TreeView*>> attachments{
      {a.root(), &b}};  // root is not a leaf here
  EXPECT_THROW(a.attach(attachments), arbor::InvariantError);
}

TEST(TreeView, AttachRejectsDuplicateLeaf) {
  const Graph g = graph::path(3);
  const TreeView a = TreeView::star(1, g.neighbors(1));
  const TreeView b = TreeView::single(2);
  NodeId leaf_to_2 = TreeView::kNoNode;
  for (NodeId x : a.leaves_at_depth(1))
    if (a.vertex_of(x) == 2) leaf_to_2 = x;
  const std::vector<std::pair<NodeId, const TreeView*>> attachments{
      {leaf_to_2, &b}, {leaf_to_2, &b}};
  EXPECT_THROW(a.attach(attachments), arbor::InvariantError);
}

TEST(TreeView, ValidMappingDetectsNonEdges) {
  // Tree claims an edge 0-2 that does not exist in the path 0-1-2.
  std::vector<TreeView::Node> nodes(2);
  nodes[0] = {0, TreeView::kNoNode, 0, {1}};
  nodes[1] = {2, 0, 1, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));
  EXPECT_FALSE(t.is_valid_mapping(graph::path(3)));
  // On a triangle the same tree IS valid (0-2 exists there).
  EXPECT_TRUE(t.is_valid_mapping(graph::cycle(3)));
}

TEST(TreeView, ValidMappingDetectsDuplicateSiblings) {
  // Root 1 with two children both mapping to 0 (0-1 is an edge of path(2)).
  std::vector<TreeView::Node> nodes(3);
  nodes[0] = {1, TreeView::kNoNode, 0, {1, 2}};
  nodes[1] = {0, 0, 1, {}};
  nodes[2] = {0, 0, 1, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));
  EXPECT_FALSE(t.is_valid_mapping(graph::path(2)));
}

TEST(TreeView, FromNodesRejectsMalformedArena) {
  // Child points to parent with wrong depth.
  std::vector<TreeView::Node> nodes(2);
  nodes[0] = {0, TreeView::kNoNode, 0, {1}};
  nodes[1] = {1, 0, 5, {}};  // depth should be 1
  EXPECT_THROW(TreeView::from_nodes(std::move(nodes)),
               arbor::InvariantError);
}

TEST(TreeView, MonotoneReachability) {
  // Chain tree: root→a→b mapping to vertices 2,1,0 of path(3) with layers
  // ℓ(0)=1 < ℓ(1)=2 < ℓ(2)=3. Reading each node's path UP to the root must
  // be strictly increasing — true for all three nodes here.
  std::vector<TreeView::Node> nodes(3);
  nodes[0] = {2, TreeView::kNoNode, 0, {1}};
  nodes[1] = {1, 0, 1, {2}};
  nodes[2] = {0, 1, 2, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));
  LayerAssignment a;
  a.layer = {1, 2, 3};
  a.num_layers = 3;
  const auto reach = t.monotonically_reachable(a);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);

  // Break monotonicity: make ℓ(1) = 3 (equal to root's vertex layer).
  a.layer = {1, 3, 3};
  const auto reach2 = t.monotonically_reachable(a);
  EXPECT_TRUE(reach2[0]);
  EXPECT_FALSE(reach2[1]);
  EXPECT_FALSE(reach2[2]);  // blocked by its ancestor
}

TEST(TreeView, MonotoneReachabilityInfinityBlocks) {
  std::vector<TreeView::Node> nodes(2);
  nodes[0] = {1, TreeView::kNoNode, 0, {1}};
  nodes[1] = {0, 0, 1, {}};
  const TreeView t = TreeView::from_nodes(std::move(nodes));
  LayerAssignment a;
  a.layer = {kInfiniteLayer, 2};
  a.num_layers = 2;
  const auto reach = t.monotonically_reachable(a);
  EXPECT_TRUE(reach[0]);
  EXPECT_FALSE(reach[1]);  // maps to an ∞ vertex

  a.layer = {1, kInfiniteLayer};
  const auto reach2 = t.monotonically_reachable(a);
  EXPECT_FALSE(reach2[0]);  // root itself at ∞
}

TEST(TreeView, SerializedWords) {
  EXPECT_EQ(TreeView::single(0).serialized_words(), 3u);
  const Graph g = graph::star(4);
  EXPECT_EQ(TreeView::star(0, g.neighbors(0)).serialized_words(), 9u);
}

}  // namespace
}  // namespace arbor::core
