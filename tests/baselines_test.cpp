// Tests for the baselines: BE08's (2+ε)λ quality and Θ(log n) rounds,
// GLM19's phase structure and Õ(√log n) round shape, and the sequential
// references.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/assert.hpp"
#include "baselines/be08_mpc.hpp"
#include "baselines/glm19.hpp"
#include "baselines/sequential.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::baselines {
namespace {

using graph::Graph;

mpc::MpcContext make_ctx(const Graph& g, mpc::RoundLedger*& ledger_out) {
  const auto cfg = mpc::ClusterConfig::for_problem(
      g.num_vertices(), g.num_edges(), 0.6);
  static thread_local std::vector<std::unique_ptr<mpc::RoundLedger>> keep;
  keep.push_back(std::make_unique<mpc::RoundLedger>(cfg));
  ledger_out = keep.back().get();
  return mpc::MpcContext(cfg, ledger_out);
}

TEST(Be08, OutdegreeAtMostThreshold) {
  util::SplitRng rng(1);
  for (std::size_t lambda : {1u, 2u, 4u}) {
    const Graph g = graph::forest_union(500, lambda, rng);
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(g, ledger);
    const Be08Result result = be08_orient(g, lambda, 0.2, ctx);
    EXPECT_LE(result.orientation.max_outdegree(g), result.threshold)
        << "λ=" << lambda;
    EXPECT_TRUE(result.layering.is_complete());
  }
}

TEST(Be08, RoundsGrowWithLogN) {
  // Natural random graphs peel in O(1) rounds; the Θ(log n) behaviour
  // needs the slow-peeling chain (one level per round by construction).
  util::SplitRng rng(2);
  std::vector<std::size_t> rounds;
  for (std::size_t levels : {6u, 10u}) {
    const auto chain = graph::slow_peeling_chain(levels, 10, rng);
    mpc::RoundLedger* ledger = nullptr;
    auto ctx = make_ctx(chain.graph, ledger);
    const Be08Result result =
        be08_orient(chain.graph, chain.lambda, 0.2, ctx);
    // One peel round per level (constructed), so rounds ≈ levels.
    EXPECT_GE(result.mpc_rounds, levels);
    rounds.push_back(result.mpc_rounds);
  }
  EXPECT_GE(rounds[1], rounds[0] + 4);  // doubling n adds a level per 2×
}

TEST(Be08, AutoEstimatesK) {
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(300, 3, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const Be08Result result = be08_orient(g, 0, 0.2, ctx);
  // k from degeneracy ∈ [λ, 2λ-1] → threshold ≤ (2.2)·2λ.
  EXPECT_LE(result.threshold, static_cast<std::size_t>(2.2 * 2 * 3) + 1);
  EXPECT_LE(result.orientation.max_outdegree(g), result.threshold);
}

TEST(Glm19, PhaseStructureMatchesSqrtLog) {
  util::SplitRng rng(4);
  const std::size_t n = 1 << 14;
  const Graph g = graph::forest_union(n, 2, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const Glm19Result result = glm19_orient(g, 2, 0.2, ctx);
  const double sqrt_log = std::sqrt(std::log2(static_cast<double>(n)));
  EXPECT_NEAR(static_cast<double>(result.phase_length), sqrt_log, 1.0);
  // Phases ≈ local_rounds / T'.
  EXPECT_LE(result.phases,
            result.local_rounds / result.phase_length + 2);
}

TEST(Glm19, SameLayeringQualityAsPeeling) {
  util::SplitRng rng(5);
  const Graph g = graph::forest_union(400, 3, rng);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  const Glm19Result result = glm19_orient(g, 3, 0.2, ctx);
  EXPECT_TRUE(result.layering.is_complete());
  const auto threshold = static_cast<std::size_t>(std::ceil(2.2 * 3));
  EXPECT_LE(result.orientation.max_outdegree(g), threshold);
}

TEST(Glm19, FewerMpcRoundsThanBe08) {
  // On the slow-peeling chain the underlying LOCAL process takes ~14
  // rounds; GLM19 compresses each T' = √log n of them into O(log T') MPC
  // rounds, which is where its advantage first becomes visible.
  util::SplitRng rng(6);
  const auto chain = graph::slow_peeling_chain(14, 10, rng);

  mpc::RoundLedger* glm_ledger = nullptr;
  auto glm_ctx = make_ctx(chain.graph, glm_ledger);
  const Glm19Result glm =
      glm19_orient(chain.graph, chain.lambda, 0.2, glm_ctx);

  mpc::RoundLedger* be_ledger = nullptr;
  auto be_ctx = make_ctx(chain.graph, be_ledger);
  const Be08Result be = be08_orient(chain.graph, chain.lambda, 0.2, be_ctx);

  EXPECT_GE(be.mpc_rounds, 14u);
  EXPECT_LT(glm.mpc_rounds, be.mpc_rounds);
}

TEST(Glm19, ThrowsBelowArboricity) {
  const Graph g = graph::clique(32);
  mpc::RoundLedger* ledger = nullptr;
  auto ctx = make_ctx(g, ledger);
  EXPECT_THROW(glm19_orient(g, 1, 0.2, ctx), arbor::InvariantError);
}

TEST(Sequential, ReferenceConsistency) {
  util::SplitRng rng(7);
  const Graph g = graph::forest_union(300, 4, rng);
  const SequentialReference ref = sequential_reference(g);
  EXPECT_EQ(ref.orientation_outdegree, ref.degeneracy);
  EXPECT_LE(ref.coloring_colors, ref.degeneracy + 1);
  EXPECT_GE(ref.degeneracy, 2u);  // λ≈4 ⇒ degeneracy ≥ λ
}

TEST(Sequential, HPartitionMatchesReferencePeeling) {
  util::SplitRng rng(8);
  const Graph g = graph::forest_union(200, 2, rng);
  const core::LayerAssignment a = sequential_h_partition(g, 8);
  EXPECT_TRUE(a.is_complete());
  EXPECT_LE(core::assignment_outdegree(g, a), 8u);
}

}  // namespace
}  // namespace arbor::baselines
