// Tests for the layering pipeline: Lemma 3.13 single shots, Lemma 3.14
// iteration, Lemma 3.15 complete layering with its decay and out-degree
// properties, parameter derivation, and the termination fallbacks.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/layering_pipeline.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

mpc::ClusterConfig test_config() { return mpc::ClusterConfig{64, 4096}; }

TEST(PipelineParams, PracticalDerivation) {
  const PipelineParams p = PipelineParams::practical(4);
  const std::size_t budget = p.derive_budget(4096);
  EXPECT_EQ(budget, 64u);  // k^3 = 64 ≥ min_budget
  const Layer layers = p.derive_layers(budget);
  EXPECT_GE(layers, 1u);
  const std::size_t steps = p.derive_steps(1 << 16, layers);
  EXPECT_GT(std::size_t{1} << steps, layers);  // Lemma 3.7 requirement
}

TEST(PipelineParams, PaperPresetClampsToCap) {
  const PipelineParams p = PipelineParams::paper(4);
  // 4^100 overflows anything: must clamp to the cap.
  EXPECT_EQ(p.derive_budget(4096), 4096u);
}

TEST(PipelineParams, BudgetRespectsExplicitCap) {
  PipelineParams p = PipelineParams::practical(10);
  p.budget_cap = 500;
  EXPECT_LE(p.derive_budget(4096), 500u);
}

TEST(RunPartialOnce, ProducesValidPartialAssignment) {
  util::SplitRng rng(1);
  const Graph g = graph::forest_union(200, 3, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(6);
  const PartialLayeringResult result =
      run_partial_once(g, p, p.derive_budget(4096), ctx);
  EXPECT_TRUE(
      is_valid_partial_assignment(g, result.assignment,
                                  result.outdegree_bound));
  // A healthy shot assigns a large fraction.
  EXPECT_GT(result.assignment.assigned_count(), g.num_vertices() / 2);
}

TEST(RunPartialIterated, AssignsEverythingOnForests) {
  util::SplitRng rng(2);
  const Graph g = graph::forest_union(300, 2, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(4);
  const PartialPipelineResult result =
      run_partial_iterated(g, p, p.derive_budget(4096), ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_TRUE(is_valid_partial_assignment(g, result.assignment,
                                          result.outdegree_bound));
}

TEST(CompleteLayering, CompleteValidAndDecaying) {
  util::SplitRng rng(3);
  for (std::size_t lambda : {1u, 2u, 4u}) {
    const Graph g = graph::forest_union(1000, lambda, rng);
    mpc::RoundLedger ledger(test_config());
    mpc::MpcContext ctx(test_config(), &ledger);
    const PipelineParams p = PipelineParams::practical(2 * lambda);
    const CompleteLayeringResult result = complete_layering(g, p, ctx);
    ASSERT_TRUE(result.assignment.is_complete());
    const std::size_t measured =
        assignment_outdegree(g, result.assignment);
    EXPECT_LE(measured, result.outdegree_bound)
        << "reported bound must dominate the measured out-degree";
    // O(k log log n) shape with small constants: generous envelope.
    const double loglog =
        std::log2(std::log2(static_cast<double>(g.num_vertices())));
    EXPECT_LE(static_cast<double>(measured),
              20.0 * static_cast<double>(2 * lambda) * loglog)
        << "λ=" << lambda;

    // Monotone decay: tail counts never increase with j.
    const auto tail = tail_layer_counts(result.assignment);
    for (std::size_t j = 2; j < tail.size(); ++j)
      EXPECT_LE(tail[j], tail[j - 1]);
  }
}

TEST(CompleteLayering, GeometricDecayEnvelope) {
  // With k comfortably above λ the Lemma 3.15 decay |{ℓ≥j}| ≤ 0.5^{j-1}·n
  // should hold up to a small constant-factor slack in the exponent.
  util::SplitRng rng(4);
  const Graph g = graph::forest_union(4000, 2, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(8);
  const CompleteLayeringResult result = complete_layering(g, p, ctx);
  ASSERT_TRUE(result.assignment.is_complete());
  const auto tail = tail_layer_counts(result.assignment);
  const double n = static_cast<double>(g.num_vertices());
  for (std::size_t j = 1; j < tail.size(); ++j) {
    const double envelope =
        n * std::pow(0.7, static_cast<double>(j - 1)) + 8.0;
    EXPECT_LE(static_cast<double>(tail[j]), envelope)
        << "decay envelope violated at layer " << j;
  }
}

TEST(CompleteLayering, HandlesDenseCoreViaFallback) {
  // k far below λ: every partial phase stalls on the clique core; the
  // escalation path (threshold-doubling peel) must still complete.
  const Graph g = graph::clique(40);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(2);
  const CompleteLayeringResult result = complete_layering(g, p, ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_LE(assignment_outdegree(g, result.assignment),
            result.outdegree_bound);
}

TEST(CompleteLayering, EmptyAndTinyGraphs) {
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(1);
  const Graph empty = graph::GraphBuilder(0).build();
  EXPECT_TRUE(complete_layering(empty, p, ctx).assignment.is_complete());
  const Graph lone = graph::GraphBuilder(1).build();
  const auto result = complete_layering(lone, p, ctx);
  ASSERT_EQ(result.assignment.layer.size(), 1u);
  EXPECT_NE(result.assignment.layer[0], kInfiniteLayer);
}

TEST(CompleteLayering, RoundsGrowSlowlyWithN) {
  // The headline claim in miniature: rounds should grow far slower than
  // log n. Compare the charged rounds at n and at n^2-ish scale: the ratio
  // must stay well below the ratio of log n (which would be 2).
  util::SplitRng rng(5);
  std::vector<std::size_t> rounds;
  for (std::size_t n : {256u, 65536u}) {
    const Graph g = graph::forest_union(n, 2, rng);
    mpc::RoundLedger ledger(test_config());
    mpc::MpcContext ctx(test_config(), &ledger);
    const PipelineParams p = PipelineParams::practical(8);
    const CompleteLayeringResult result = complete_layering(g, p, ctx);
    ASSERT_TRUE(result.assignment.is_complete());
    rounds.push_back(ledger.total_rounds());
  }
  // 256 → 65536 is a 2× jump in log n. poly(log log n) growth should keep
  // the round ratio below ~1.8; BE08 would sit at ≈ 2.
  EXPECT_LT(static_cast<double>(rounds[1]),
            1.8 * static_cast<double>(rounds[0]))
      << "rounds grew like log n: " << rounds[0] << " -> " << rounds[1];
}

TEST(CompleteLayering, StatsArePopulated) {
  util::SplitRng rng(6);
  const Graph g = graph::forest_union(500, 3, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  PipelineParams p = PipelineParams::practical(6);
  // Disable Stage-1 peeling so the exponentiation phases must do the work
  // (otherwise a sparse forest is fully peeled before any phase runs).
  p.peel_rounds_factor = 0.0;
  const CompleteLayeringResult result = complete_layering(g, p, ctx);
  EXPECT_GE(result.stats.phases, 1u);
  EXPECT_GE(result.stats.max_budget_used, 64u);
  EXPECT_TRUE(result.assignment.is_complete());
}

TEST(CompleteLayering, Stage1AloneSufficesOnSparseGraphs) {
  // The complementary case: default Stage-1 peeling clears a sparse forest
  // without needing exponentiation phases at all.
  util::SplitRng rng(7);
  const Graph g = graph::forest_union(500, 3, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const PipelineParams p = PipelineParams::practical(6);
  const CompleteLayeringResult result = complete_layering(g, p, ctx);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_GE(result.stats.fallback_peel_rounds, 1u);
}

}  // namespace
}  // namespace arbor::core
