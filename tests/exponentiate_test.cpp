// Tests for Algorithm 2 (ExponentiateAndLocalPrune): Claims 3.3 (valid
// mappings), 3.4 (budget), 3.5 (round accounting), plus reach-doubling
// behaviour on paths and the inactive-vertex rules.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/exponentiate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

mpc::ClusterConfig test_config() { return mpc::ClusterConfig{64, 4096}; }

TEST(Exponentiate, Claim33ValidMappingsThroughout) {
  util::SplitRng rng(1);
  const Graph g = graph::gnm(80, 200, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/64, /*prune_k=*/3, /*steps=*/3};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  ASSERT_EQ(result.trees.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(result.trees[v].is_valid_mapping(g)) << "vertex " << v;
    EXPECT_EQ(result.trees[v].root_vertex(), v);
  }
}

TEST(Exponentiate, Claim34BudgetNeverExceeded) {
  util::SplitRng rng(2);
  for (std::size_t budget : {16u, 64u, 256u}) {
    const Graph g = graph::gnm(100, 400, rng);
    mpc::RoundLedger ledger(test_config());
    mpc::MpcContext ctx(test_config(), &ledger);
    ExponentiateParams p{budget, /*prune_k=*/2, /*steps=*/4};
    const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
    for (const TreeView& t : result.trees) EXPECT_LE(t.size(), budget);
    EXPECT_LE(result.max_tree_nodes, budget);
  }
}

TEST(Exponentiate, HighDegreeVerticesStartInactive) {
  // Star: the center has degree n-1 ≥ B → single-node tree, inactive.
  const Graph g = graph::star(100);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/16, /*prune_k=*/2, /*steps=*/2};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  EXPECT_FALSE(result.active[0]);
  EXPECT_EQ(result.trees[0].size(), 1u);
}

TEST(Exponentiate, ReachDoublesOnBipartiteCore) {
  // Algorithm 1's rule collapses any node with ≤ k children to a leaf, so
  // growth needs fan-out above k everywhere. K_{5,5} with k=1 is fully
  // computable by hand:
  //  * init: star, 5 children (size 6);
  //  * step 1 prune: drop 1 child → 4 children (size 5, ≤ √4096 stays
  //    active); attach at depth 1: 4 pruned stars of size 5 → size
  //    5 + 4·4 = 21, height 2;
  //  * step 2 prune: depth-1 nodes keep 3 of 4 children, root keeps 3 of 4
  //    subtrees of size 4 → size 1 + 3·4 = 13; attach at depth 2: 9 leaves
  //    × pruned trees of size 13 → size 13 + 9·12 = 121, height 4 = 2^2.
  const Graph g = graph::complete_bipartite(5, 5);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/4096, /*prune_k=*/1, /*steps=*/2};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(result.trees[v].height(), 4u) << "vertex " << v;
    EXPECT_EQ(result.trees[v].size(), 121u) << "vertex " << v;
    EXPECT_TRUE(result.active[v]);
  }
}

TEST(Exponentiate, PrunedTreesOfInactiveVerticesKeepShrinking) {
  // A vertex that goes inactive still gets pruned each remaining step
  // (Algorithm 2 applies LocalPrune to every vertex). With prune_k=1 on a
  // star tree the root has many children; verify the final tree of an
  // inactive vertex is its (repeatedly) pruned version, not frozen.
  const Graph g = graph::complete_bipartite(6, 6);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  // sqrt(9)=3 < 7 tree size after the initial star → inactive after step 1.
  ExponentiateParams p{/*budget=*/9, /*prune_k=*/1, /*steps=*/2};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(result.active[v]);
    // Star with 6 children pruned with k=1 → at most 5 children remain...
    // then the size check (6 > 3) deactivates; step 2 prunes once more.
    EXPECT_LE(result.trees[v].size(), 5u);
  }
}

TEST(Exponentiate, ChargesOrderStepsRounds) {
  util::SplitRng rng(3);
  const Graph g = graph::forest_union(200, 2, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/64, /*prune_k=*/4, /*steps=*/5};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  EXPECT_EQ(result.per_step.size(), 5u);
  // Claim 3.5: O(s) rounds — each step charges O(1) fetch rounds.
  std::size_t fetch_rounds = 0;
  for (const auto& step : result.per_step) fetch_rounds += step.fetch_rounds;
  EXPECT_EQ(ledger.rounds_by_label().at("exponentiate.fetch"), fetch_rounds);
  EXPECT_LE(ledger.total_rounds(), 1 + 5 * 12);  // init + s·O(1)
}

TEST(Exponentiate, GlobalMemoryWithinNBPlusM) {
  util::SplitRng rng(4);
  const Graph g = graph::gnm(300, 900, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const std::size_t budget = 32;
  ExponentiateParams p{budget, /*prune_k=*/3, /*steps=*/3};
  (void)exponentiate_and_local_prune(g, p, ctx);
  // Claim 3.5: global O(nB + m) words. Allow the constant from the
  // serialized-tree overhead (2 words per node + header).
  EXPECT_LE(ledger.peak_global_words(),
            4 * (g.num_vertices() * budget + 2 * g.num_edges()) + 1024);
}

TEST(Exponentiate, IsolatedVerticesStaySingletons) {
  const Graph g = graph::GraphBuilder(5).build();  // no edges
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/8, /*prune_k=*/1, /*steps=*/2};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.trees[v].size(), 1u);
    EXPECT_TRUE(result.active[v]);
  }
}

TEST(Exponentiate, RejectsTinyBudget) {
  const Graph g = graph::path(4);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{/*budget=*/1, /*prune_k=*/1, /*steps=*/1};
  EXPECT_THROW(exponentiate_and_local_prune(g, p, ctx),
               arbor::InvariantError);
}

// Parameterized sweep over (budget, steps): the budget invariant holds
// across the grid (Claim 3.4 property sweep).
class ExponentiateSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ExponentiateSweep, BudgetInvariant) {
  const auto [budget, steps] = GetParam();
  util::SplitRng rng(budget * 31 + steps);
  const Graph g = graph::gnm(120, 360, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  ExponentiateParams p{budget, /*prune_k=*/2, steps};
  const ExponentiateResult result = exponentiate_and_local_prune(g, p, ctx);
  for (const TreeView& t : result.trees) {
    EXPECT_LE(t.size(), budget);
    EXPECT_TRUE(t.structurally_sound());
  }
}

INSTANTIATE_TEST_SUITE_P(
    BudgetSteps, ExponentiateSweep,
    ::testing::Combine(::testing::Values(9, 25, 100, 400),
                       ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace arbor::core
