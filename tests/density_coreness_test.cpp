// Tests for the MPC-native density estimation (the Theorem 1.1 preamble)
// and the approximate core decomposition (paper footnote 2), both checked
// against exact sequential oracles.
#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "core/coreness_mpc.hpp"
#include "core/density_estimate.hpp"
#include "core/orientation_mpc.hpp"
#include "graph/arboricity.hpp"
#include "graph/builder.hpp"
#include "graph/coreness.hpp"
#include "graph/generators.hpp"
#include "mpc/ledger.hpp"
#include "util/rng.hpp"

namespace arbor::core {
namespace {

using graph::Graph;
using graph::VertexId;

mpc::ClusterConfig test_config() { return mpc::ClusterConfig{64, 4096}; }

TEST(ExactCoreness, KnownFamilies) {
  {
    const auto c = graph::exact_coreness(graph::clique(6));
    for (auto v : c) EXPECT_EQ(v, 5u);
  }
  {
    const auto c = graph::exact_coreness(graph::cycle(8));
    for (auto v : c) EXPECT_EQ(v, 2u);
  }
  {
    const auto c = graph::exact_coreness(graph::star(8));
    for (auto v : c) EXPECT_EQ(v, 1u);
  }
  {
    // Path: every vertex has coreness 1 (endpoints peel at degree 1).
    const auto c = graph::exact_coreness(graph::path(9));
    for (auto v : c) EXPECT_EQ(v, 1u);
  }
}

TEST(ExactCoreness, PlantedCliqueCoreStandsOut) {
  util::SplitRng rng(1);
  const Graph g = graph::planted_clique(400, 400, 20, rng);
  const auto c = graph::exact_coreness(g);
  // At least 20 vertices (the clique) have coreness ≥ 19.
  std::size_t high = 0;
  for (auto v : c)
    if (v >= 19) ++high;
  EXPECT_GE(high, 20u);
}

TEST(ExactCoreness, MaxEqualsDegeneracy) {
  util::SplitRng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::gnm(200, 200 * (trial + 2), rng);
    const auto c = graph::exact_coreness(g);
    const auto max_core = *std::max_element(c.begin(), c.end());
    EXPECT_EQ(max_core, graph::degeneracy(g));
  }
}

TEST(ExactCoreness, MonotoneUnderSubgraph) {
  // Coreness in an induced subgraph never exceeds coreness in the graph.
  util::SplitRng rng(3);
  const Graph g = graph::gnm(150, 600, rng);
  const auto full = graph::exact_coreness(g);
  std::vector<VertexId> half;
  for (VertexId v = 0; v < 75; ++v) half.push_back(v);
  const auto sub = g.induced(half);
  const auto sub_core = graph::exact_coreness(sub.graph);
  for (VertexId sv = 0; sv < sub.graph.num_vertices(); ++sv)
    EXPECT_LE(sub_core[sv], full[sub.to_original[sv]]);
}

TEST(DensityEstimateMpc, SandwichOnForestUnions) {
  util::SplitRng rng(4);
  for (std::size_t lambda : {1u, 2u, 4u, 8u, 16u}) {
    const Graph g = graph::forest_union(600, lambda, rng);
    mpc::RoundLedger ledger(test_config());
    mpc::MpcContext ctx(test_config(), &ledger);
    const DensityEstimate est = estimate_density_mpc(g, ctx);
    // λ ≤ k ≤ 2·f·λ with f = 4.
    EXPECT_GE(est.k, lambda) << "λ=" << lambda;
    EXPECT_LE(est.k, 8 * lambda + 8) << "λ=" << lambda;
    EXPECT_GE(ledger.total_rounds(), est.rounds_budget);
  }
}

TEST(DensityEstimateMpc, EmptyGraph) {
  const Graph g = graph::GraphBuilder(5).build();
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  EXPECT_EQ(estimate_density_mpc(g, ctx).k, 1u);
}

TEST(DensityEstimateMpc, ChargesGlobalMemoryFactor) {
  util::SplitRng rng(5);
  const Graph g = graph::forest_union(500, 4, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const DensityEstimate est = estimate_density_mpc(g, ctx);
  EXPECT_GE(ledger.peak_global_words(),
            (g.num_vertices() + 2 * g.num_edges()) * est.guesses);
}

TEST(DensityEstimateMpc, RejectsWeakThreshold) {
  const Graph g = graph::path(4);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  EXPECT_THROW(estimate_density_mpc(g, ctx, /*threshold_factor=*/2.0),
               arbor::InvariantError);
}

TEST(OrientWithParallelGuessEstimator, EndToEnd) {
  util::SplitRng rng(6);
  const Graph g = graph::forest_union(800, 3, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  OrientationParams params;
  params.estimator = KEstimator::kParallelGuess;
  const MpcOrientationResult result = mpc_orient(g, params, ctx);
  EXPECT_GE(result.k_used, 3u);
  EXPECT_LE(result.orientation.max_outdegree(g), result.outdegree_bound);
  // The estimation preamble charges its O(log n) budget.
  EXPECT_GE(ledger.rounds_by_label().at("density_estimate"), 5u);
}

TEST(ApproximateCoreness, WithinFactorTwoPlusEps) {
  util::SplitRng rng(7);
  const Graph g = graph::planted_clique(500, 1000, 24, rng);
  const auto exact = graph::exact_coreness(g);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const CorenessResult approx = approximate_coreness(g, 0.5, ctx);
  ASSERT_EQ(approx.estimate.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Lower side: removal at threshold 2c means coreness ≤ 2c.
    EXPECT_LE(exact[v], 2 * approx.estimate[v])
        << "vertex " << v;
    // Upper side: the guess at (1+ε)·coreness must have removed v (its
    // threshold 2(1+ε)·coreness exceeds the core degree), so the estimate
    // is at most (1+ε)·coreness (+1 for ceiling effects).
    EXPECT_LE(approx.estimate[v],
              static_cast<std::uint32_t>(1.5 * exact[v]) + 2)
        << "vertex " << v;
  }
}

TEST(ApproximateCoreness, SeparatesCoreFromPeriphery) {
  util::SplitRng rng(8);
  const Graph g = graph::planted_clique(600, 600, 32, rng);
  const auto exact = graph::exact_coreness(g);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const CorenessResult approx = approximate_coreness(g, 0.25, ctx);
  // Clique members (coreness ≥ 31) must estimate far above the sparse
  // periphery (coreness ≤ ~4).
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (exact[v] >= 31) {
      EXPECT_GE(approx.estimate[v], 12u);
    }
    if (exact[v] <= 2) {
      EXPECT_LE(approx.estimate[v], 4u);
    }
  }
}

TEST(ApproximateCoreness, RoundsSharedAcrossGuesses) {
  util::SplitRng rng(9);
  const Graph g = graph::gnm(1000, 8000, rng);
  mpc::RoundLedger ledger(test_config());
  mpc::MpcContext ctx(test_config(), &ledger);
  const CorenessResult result = approximate_coreness(g, 0.5, ctx);
  EXPECT_GE(result.guesses, 3u);
  // Rounds = one shared budget, NOT budget × guesses.
  EXPECT_EQ(ledger.rounds_by_label().at("coreness.parallel_guesses"),
            result.rounds_budget);
}

TEST(ApproximateCoreness, EpsilonControlsGranularity) {
  util::SplitRng rng(10);
  const Graph g = graph::planted_clique(400, 800, 24, rng);
  mpc::RoundLedger l1(test_config());
  mpc::MpcContext c1(test_config(), &l1);
  const CorenessResult coarse = approximate_coreness(g, 1.0, c1);
  mpc::RoundLedger l2(test_config());
  mpc::MpcContext c2(test_config(), &l2);
  const CorenessResult fine = approximate_coreness(g, 0.1, c2);
  EXPECT_GT(fine.guesses, coarse.guesses);
}

}  // namespace
}  // namespace arbor::core
